// Tests for the simulated multi-GPU execution (paper §7 future work:
// shared matrix storage in multi-GPU setups).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/multi_gpu.h"

namespace speck {
namespace {

TEST(PartitionRows, BalancedByProducts) {
  // 100 rows of weight 1 plus one of weight 100 at the front: the heavy row
  // should land in its own (first) part.
  std::vector<offset_t> products(101, 1);
  products[0] = 100;
  const auto parts = partition_rows_balanced(products, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].first, 0);
  EXPECT_LE(parts[0].second - parts[0].first, 2);
  EXPECT_EQ(parts.back().second, 101);
}

TEST(PartitionRows, CoversContiguously) {
  std::vector<offset_t> products(997, 3);
  const auto parts = partition_rows_balanced(products, 8);
  ASSERT_EQ(parts.size(), 8u);
  index_t begin = 0;
  for (const auto& [lo, hi] : parts) {
    EXPECT_EQ(lo, begin);
    begin = hi;
  }
  EXPECT_EQ(begin, 997);
  // Near-even split for uniform weights.
  for (const auto& [lo, hi] : parts) {
    EXPECT_NEAR(hi - lo, 997.0 / 8.0, 2.0);
  }
}

TEST(PartitionRows, MorePartsThanRows) {
  std::vector<offset_t> products(3, 5);
  const auto parts = partition_rows_balanced(products, 8);
  ASSERT_EQ(parts.size(), 8u);
  EXPECT_EQ(parts.back().second, 3);
  // Still contiguous and non-overlapping; trailing parts are empty.
  index_t begin = 0;
  for (const auto& [lo, hi] : parts) {
    EXPECT_EQ(lo, begin);
    EXPECT_LE(lo, hi);
    begin = hi;
  }
  EXPECT_EQ(begin, 3);
}

TEST(PartitionRows, EmptyMatrix) {
  const auto parts = partition_rows_balanced({}, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const auto& [lo, hi] : parts) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 0);
  }
}

TEST(PartitionRows, AllEmptyRows) {
  // Zero total volume: every cut target is 0, so the greedy loop takes no
  // rows until the last part sweeps up everything. Contiguity and coverage
  // must still hold — downstream code only relies on those.
  std::vector<offset_t> products(64, 0);
  const auto parts = partition_rows_balanced(products, 4);
  ASSERT_EQ(parts.size(), 4u);
  index_t begin = 0;
  for (const auto& [lo, hi] : parts) {
    EXPECT_EQ(lo, begin);
    EXPECT_LE(lo, hi);
    begin = hi;
  }
  EXPECT_EQ(begin, 64);
}

TEST(PartitionRows, OneGiantRowDominates) {
  // One row carries ~99% of the volume. The documented bound: each prefix
  // of panels overshoots its proportional share by less than one row's
  // volume, so the panel holding the giant row is that row plus a bounded
  // remainder — and every other panel stays within its share.
  std::vector<offset_t> products(100, 1);
  products[37] = 10000;
  const offset_t total = 10000 + 99;
  const int parts_n = 4;
  const auto parts = partition_rows_balanced(products, parts_n);
  ASSERT_EQ(parts.size(), 4u);
  index_t begin = 0;
  offset_t prefix = 0;
  offset_t max_row_in_prefix = 0;
  for (int p = 0; p < parts_n; ++p) {
    const auto& [lo, hi] = parts[static_cast<std::size_t>(p)];
    EXPECT_EQ(lo, begin);
    EXPECT_LE(lo, hi);
    for (index_t r = lo; r < hi; ++r) {
      prefix += products[static_cast<std::size_t>(r)];
      max_row_in_prefix =
          std::max(max_row_in_prefix, products[static_cast<std::size_t>(r)]);
    }
    // Documented prefix balance bound: each prefix meets its proportional
    // share and overshoots it by less than one row's volume (the largest
    // row the prefix contains — here the giant row once it is taken).
    if (p + 1 < parts_n) {
      const offset_t target = total * (p + 1) / parts_n;
      EXPECT_GE(prefix, target) << "part " << p;
      EXPECT_LT(prefix - target, std::max<offset_t>(max_row_in_prefix, 1))
          << "part " << p;
    }
    begin = hi;
  }
  EXPECT_EQ(begin, 100);
  // The giant row's panel contains row 37.
  bool found = false;
  for (const auto& [lo, hi] : parts) {
    if (lo <= 37 && 37 < hi) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PartitionRows, SkewedFrontLoadedVolume) {
  // Volume concentrated at the front: later parts must still get valid
  // (possibly empty) contiguous ranges and coverage must be exact.
  std::vector<offset_t> products(50, 0);
  for (int r = 0; r < 10; ++r) products[static_cast<std::size_t>(r)] = 100;
  const auto parts = partition_rows_balanced(products, 5);
  ASSERT_EQ(parts.size(), 5u);
  index_t begin = 0;
  for (const auto& [lo, hi] : parts) {
    EXPECT_EQ(lo, begin);
    EXPECT_LE(lo, hi);
    begin = hi;
  }
  EXPECT_EQ(begin, 50);
}

TEST(MultiGpu, MatchesSingleDeviceResult) {
  MultiGpuConfig config;
  config.gpus = 4;
  MultiGpuSpeck multi(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::power_law(800, 800, 8, 1.9, 200, 211);
  const SpGemmResult result = multi.multiply(a, a);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  const auto diff = compare(result.c, gustavson_spgemm(a, a));
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(MultiGpu, ScalesDownMakespan) {
  const Csr a = gen::random_uniform(20000, 20000, 12, 223);
  double previous_seconds = 0.0;
  for (const int gpus : {1, 2, 4, 8}) {
    MultiGpuConfig config;
    config.gpus = gpus;
    MultiGpuSpeck multi(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
    const SpGemmResult result = multi.multiply(a, a);
    ASSERT_TRUE(result.ok());
    if (gpus > 1) {
      EXPECT_LT(result.seconds, previous_seconds)
          << gpus << " GPUs should beat " << gpus / 2;
    }
    previous_seconds = result.seconds;
  }
}

TEST(MultiGpu, ReplicatedBHasNoRemoteReferences) {
  MultiGpuConfig config;
  config.gpus = 4;
  config.replicate_b = true;
  MultiGpuSpeck multi(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::banded(1000, 20, 6, 227);
  ASSERT_TRUE(multi.multiply(a, a).ok());
  EXPECT_DOUBLE_EQ(multi.last_diagnostics().remote_reference_fraction, 0.0);
}

TEST(MultiGpu, SharedStoragePaysForRemoteRows) {
  // Uniform random references: with 4 devices, ~75% of references are
  // remote under row-partitioned shared storage.
  const Csr a = gen::random_uniform(4000, 4000, 8, 229);
  MultiGpuConfig shared;
  shared.gpus = 4;
  shared.replicate_b = false;
  MultiGpuSpeck shared_multi(sim::DeviceSpec::titan_v(), sim::CostModel{}, shared);
  const SpGemmResult shared_result = shared_multi.multiply(a, a);
  ASSERT_TRUE(shared_result.ok());
  EXPECT_NEAR(shared_multi.last_diagnostics().remote_reference_fraction, 0.75, 0.05);

  MultiGpuConfig replicated = shared;
  replicated.replicate_b = true;
  MultiGpuSpeck replicated_multi(sim::DeviceSpec::titan_v(), sim::CostModel{},
                                 replicated);
  const SpGemmResult replicated_result = replicated_multi.multiply(a, a);
  ASSERT_TRUE(replicated_result.ok());
  EXPECT_GT(shared_result.seconds, replicated_result.seconds)
      << "remote streaming must cost time";
  // Results identical either way.
  const auto diff = compare(shared_result.c, replicated_result.c);
  EXPECT_FALSE(diff.has_value());
}

TEST(MultiGpu, BandedMatrixHasFewRemoteReferences) {
  // Banded structure keeps references near the diagonal, i.e. mostly on the
  // owning device — shared storage is nearly free there.
  const Csr a = gen::banded(4000, 30, 6, 233);
  MultiGpuConfig config;
  config.gpus = 4;
  config.replicate_b = false;
  MultiGpuSpeck multi(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  ASSERT_TRUE(multi.multiply(a, a).ok());
  EXPECT_LT(multi.last_diagnostics().remote_reference_fraction, 0.1);
}

TEST(MultiGpu, DiagnosticsConsistent) {
  MultiGpuConfig config;
  config.gpus = 3;
  MultiGpuSpeck multi(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::random_uniform(900, 900, 6, 239);
  const SpGemmResult result = multi.multiply(a, a);
  ASSERT_TRUE(result.ok());
  const MultiGpuDiagnostics& d = multi.last_diagnostics();
  ASSERT_EQ(d.device_seconds.size(), 3u);
  double max_seconds = 0.0;
  for (const double s : d.device_seconds) max_seconds = std::max(max_seconds, s);
  EXPECT_DOUBLE_EQ(result.seconds, max_seconds);
  EXPECT_GT(d.parallel_efficiency, 0.3);
  EXPECT_LE(d.parallel_efficiency, 1.0 + 1e-9);
}

TEST(MultiGpu, SingleGpuEqualsSpeckTimes) {
  MultiGpuConfig config;
  config.gpus = 1;
  MultiGpuSpeck multi(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  Speck single(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::banded(600, 15, 5, 241);
  const double multi_seconds = multi.multiply(a, a).seconds;
  const double single_seconds = single.multiply(a, a).seconds;
  EXPECT_NEAR(multi_seconds, single_seconds, single_seconds * 1e-9);
}

}  // namespace
}  // namespace speck
