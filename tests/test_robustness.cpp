// Robustness suite: the error taxonomy, checked size arithmetic, hardened
// Matrix Market ingestion (driven by the checked-in malformed corpus under
// tests/data/mtx), container re-validation and the non-throwing
// Speck::try_multiply surface. See docs/robustness.md.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/checked_math.h"
#include "common/fault_injection.h"
#include "matrix/coo.h"
#include "matrix/csc.h"
#include "matrix/csr.h"
#include "matrix/io_mtx.h"
#include "speck/speck.h"

namespace speck {
namespace {

// ---------------------------------------------------------------------------
// Error taxonomy.

TEST(ErrorTaxonomy, CodesAndStdBases) {
  const BadInput bad("nope", "ctx");
  EXPECT_EQ(bad.code(), ErrorCode::kBadInput);
  EXPECT_EQ(bad.context(), "ctx");
  EXPECT_STREQ(bad.what(), "nope");
  // Each class stays catchable through its standard-library base.
  EXPECT_THROW(throw BadInput("x"), std::invalid_argument);
  EXPECT_THROW(throw ResourceExhausted("x"), std::runtime_error);
  EXPECT_THROW(throw InternalError("x"), std::logic_error);
  // And through the mixin.
  EXPECT_THROW(throw ResourceExhausted("x"), SpeckError);
}

TEST(ErrorTaxonomy, ExitCodesAreStable) {
  EXPECT_EQ(exit_code(ErrorCode::kOk), 0);
  EXPECT_EQ(exit_code(ErrorCode::kBadInput), 3);
  EXPECT_EQ(exit_code(ErrorCode::kResourceExhausted), 4);
  EXPECT_EQ(exit_code(ErrorCode::kInternal), 5);
  EXPECT_EQ(exit_code(ErrorCode::kDeadlineExceeded), 7);
}

TEST(ErrorTaxonomy, StatusToString) {
  const Status status =
      Status::error(ErrorCode::kBadInput, "missing banner", "bad.mtx:1");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.to_string(), "[BadInput] missing banner (bad.mtx:1)");
  EXPECT_TRUE(Status::success().ok());
  EXPECT_EQ(Status::success().to_string(), "[Ok]");
}

TEST(ErrorTaxonomy, StatusFromCurrentException) {
  Status status;
  try {
    throw ResourceExhausted("budget gone", "here");
  } catch (...) {
    status = status_from_current_exception();
  }
  EXPECT_EQ(status.code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(status.message, "budget gone");
  EXPECT_EQ(status.context, "here");

  try {
    throw std::out_of_range("vector");  // outside the taxonomy
  } catch (...) {
    status = status_from_current_exception();
  }
  EXPECT_EQ(status.code, ErrorCode::kInternal);
}

// ---------------------------------------------------------------------------
// Checked size arithmetic.

TEST(CheckedMath, CastAcceptsRepresentable) {
  EXPECT_EQ(checked_cast<index_t>(std::int64_t{123}), 123);
  EXPECT_EQ(checked_cast<std::size_t>(std::int64_t{0}), 0u);
}

TEST(CheckedMath, CastRejectsNarrowingAndSignChanges) {
  EXPECT_THROW(checked_cast<index_t>(std::int64_t{1} << 40), BadInput);
  EXPECT_THROW(checked_cast<std::size_t>(std::int64_t{-1}), BadInput);
  EXPECT_THROW(checked_cast<std::int32_t>(~std::uint32_t{0}), BadInput);
}

TEST(CheckedMath, AddMulRejectOverflow) {
  const auto big = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(checked_add<std::size_t>(2, 3), 5u);
  EXPECT_EQ(checked_mul<std::size_t>(6, 7), 42u);
  EXPECT_THROW(checked_add<std::size_t>(big, 1), ResourceExhausted);
  EXPECT_THROW(checked_mul<std::size_t>(big / 2, 3), ResourceExhausted);
}

// ---------------------------------------------------------------------------
// Malformed-file corpus: every checked-in seed must be rejected with a
// BadInput that carries "<source>:<line>" context. Parsed with the strict
// duplicate policy so duplicate_entry.mtx is a rejection too.

std::vector<std::filesystem::path> corpus_files() {
  const std::filesystem::path dir =
      std::filesystem::path(SPECK_TEST_DATA_DIR) / "mtx";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".mtx") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(MalformedCorpus, EveryFileRejectedWithContext) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 14u);
  MtxOptions strict;
  strict.duplicates = MtxOptions::DuplicatePolicy::kError;
  for (const auto& path : files) {
    try {
      (void)read_matrix_market_file(path.string(), strict);
      FAIL() << path << " was accepted";
    } catch (const BadInput& e) {
      // Context pins the failure to a file (and, beyond open errors, a line).
      EXPECT_NE(std::string(e.what()).find(path.filename().string()),
                std::string::npos)
          << path << ": " << e.what();
    } catch (const std::exception& e) {
      FAIL() << path << " threw outside the taxonomy: " << e.what();
    }
  }
}

TEST(MalformedCorpus, ContextNamesTheLine) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 nan\n");
  try {
    (void)read_matrix_market(in, MtxOptions{}, "poison.mtx");
    FAIL() << "NaN value was accepted";
  } catch (const BadInput& e) {
    EXPECT_EQ(e.context(), "poison.mtx:3");
  }
}

TEST(MtxReader, DuplicatePolicySumIsLenient) {
  const std::string doc =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.5\n"
      "1 1 2.5\n";
  std::istringstream sum_in(doc);
  const Csr summed = read_matrix_market(sum_in);
  EXPECT_EQ(summed.nnz(), 1);
  EXPECT_DOUBLE_EQ(summed.values()[0], 4.0);

  std::istringstream strict_in(doc);
  MtxOptions strict;
  strict.duplicates = MtxOptions::DuplicatePolicy::kError;
  EXPECT_THROW((void)read_matrix_market(strict_in, strict), BadInput);
}

TEST(MtxReader, HugeEntryClaimRejectedWithoutAllocation) {
  // Size line promises ~10^18 entries but delivers none: the reader must
  // fail structurally, not attempt the reservation.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "10 10 1000000000000000000\n");
  EXPECT_THROW((void)read_matrix_market(in), BadInput);
}

// ---------------------------------------------------------------------------
// Container re-validation.

Csr small_csr() {
  return Csr(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
}

TEST(Validate, CsrAcceptsWellFormed) { EXPECT_NO_THROW(small_csr().validate()); }

TEST(Validate, CsrCatchesMutatedColumnIndex) {
  Csr m = small_csr();
  m.col_indices_mutable()[1] = 99;  // out of range after mutation
  EXPECT_THROW(m.validate(), BadInput);
}

TEST(Validate, CsrConstructorRejectsBrokenOffsets) {
  EXPECT_THROW(Csr(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}), BadInput);
  EXPECT_THROW(Csr(2, 2, {0, 1, 1}, {5}, {1.0}), BadInput);
  EXPECT_THROW(Csr(2, 2, {0, 1, 2}, {0, 1}, {1.0}), BadInput);
}

TEST(Validate, CooChecksParallelArraysAndRanges) {
  Coo coo(2, 2);
  coo.add(0, 1, 1.0);
  EXPECT_NO_THROW(coo.validate());
  EXPECT_THROW(coo.add(2, 0, 1.0), BadInput);
  EXPECT_THROW(coo.add(0, -1, 1.0), BadInput);
}

TEST(Validate, CscConstructorRejectsOutOfRangeRow) {
  EXPECT_THROW(Csc(2, 2, {0, 1, 1}, {7}, {1.0}), BadInput);
  EXPECT_NO_THROW(Csc(2, 2, {0, 1, 1}, {1}, {1.0}).validate());
}

// ---------------------------------------------------------------------------
// Fault-spec grammar.

TEST(FaultSpecGrammar, ParsesEveryKey) {
  const FaultSpec spec = parse_fault_spec(
      "estimate-scale=0.25,estimate-jitter=0.5,seed=42,"
      "hash-overflow-after=16,scratchpad-scale=0.5,memory-budget-mb=1.5");
  EXPECT_DOUBLE_EQ(spec.estimate_scale, 0.25);
  EXPECT_DOUBLE_EQ(spec.estimate_jitter, 0.5);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.hash_overflow_after, 16);
  EXPECT_DOUBLE_EQ(spec.scratchpad_scale, 0.5);
  EXPECT_EQ(spec.memory_budget_bytes,
            static_cast<std::size_t>(1.5 * 1024 * 1024));
  EXPECT_TRUE(spec.enabled());
  EXPECT_FALSE(FaultSpec{}.enabled());
  EXPECT_FALSE(parse_fault_spec("").enabled());
}

TEST(FaultSpecGrammar, ParsesServingFaultKeys) {
  const FaultSpec spec = parse_fault_spec(
      "plan-fail-mod=3,plan-delay-ms=1.5,admission-scale=2,evict-every=64");
  EXPECT_EQ(spec.plan_fail_mod, 3u);
  EXPECT_DOUBLE_EQ(spec.plan_delay_ms, 1.5);
  EXPECT_DOUBLE_EQ(spec.admission_bytes_scale, 2.0);
  EXPECT_EQ(spec.evict_every, 64u);
  EXPECT_TRUE(spec.enabled());
  // Each serving fault alone flips enabled().
  EXPECT_TRUE(parse_fault_spec("plan-fail-mod=2").enabled());
  EXPECT_TRUE(parse_fault_spec("plan-delay-ms=1").enabled());
  EXPECT_TRUE(parse_fault_spec("admission-scale=4").enabled());
  EXPECT_TRUE(parse_fault_spec("evict-every=8").enabled());
  const std::string text = describe(spec);
  EXPECT_NE(text.find("plan-fail-mod"), std::string::npos);
  EXPECT_NE(text.find("admission-scale"), std::string::npos);
  EXPECT_EQ(text.find('\n'), std::string::npos);
}

TEST(FaultSpecGrammar, RejectsBadPairs) {
  EXPECT_THROW(parse_fault_spec("warp-drive=1"), BadInput);
  EXPECT_THROW(parse_fault_spec("estimate-scale=fast"), BadInput);
  EXPECT_THROW(parse_fault_spec("estimate-scale"), BadInput);
  EXPECT_THROW(parse_fault_spec("scratchpad-scale=0"), BadInput);
  EXPECT_THROW(parse_fault_spec("scratchpad-scale=2"), BadInput);
  EXPECT_THROW(parse_fault_spec("estimate-jitter=-0.5"), BadInput);
  EXPECT_THROW(parse_fault_spec("hash-overflow-after=-3"), BadInput);
  // Serving faults: the squeeze can only inflate charges, never shrink them.
  EXPECT_THROW(parse_fault_spec("admission-scale=0.5"), BadInput);
  EXPECT_THROW(parse_fault_spec("plan-delay-ms=-1"), BadInput);
  EXPECT_THROW(parse_fault_spec("plan-fail-mod=-2"), BadInput);
  EXPECT_THROW(parse_fault_spec("evict-every=-1"), BadInput);
}

TEST(FaultSpecGrammar, DescribeIsOneLine) {
  const std::string text =
      describe(parse_fault_spec("estimate-scale=2,seed=9"));
  EXPECT_NE(text.find("estimate-scale"), std::string::npos);
  EXPECT_EQ(text.find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Non-throwing multiply surface.

TEST(TryMultiply, SuccessCarriesResult) {
  const Csr a = Csr::identity(8);
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const auto outcome = speck.try_multiply(a, a);
  ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
  EXPECT_EQ(outcome.result.c.nnz(), 8);
}

TEST(TryMultiply, DimensionMismatchIsBadInput) {
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const auto outcome = speck.try_multiply(Csr::identity(4), Csr::identity(5));
  EXPECT_EQ(outcome.status.code, ErrorCode::kBadInput);
  EXPECT_FALSE(outcome.ok());
}

TEST(TryMultiply, UnsortedInputRejectedWhenValidating) {
  Csr a(1, 2, {0, 2}, {1, 0}, {1.0, 2.0});  // descending columns
  SpeckConfig config;
  config.validate_inputs = true;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const auto outcome = speck.try_multiply(a, Csr::identity(2));
  EXPECT_EQ(outcome.status.code, ErrorCode::kBadInput);
  // Without the toggle the (cheap) structural REQUIREs still hold but the
  // deep re-validation is skipped; this input only trips the deep check.
  speck.config().validate_inputs = false;
  EXPECT_TRUE(speck.try_multiply(a, Csr::identity(2)).ok());
}

TEST(TryMultiply, MemoryBudgetMapsToResourceExhausted) {
  SpeckConfig config;
  config.faults.memory_budget_bytes = 1024;  // far below the input footprint
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = Csr::identity(1024);
  const auto outcome = speck.try_multiply(a, a);
  EXPECT_EQ(outcome.status.code, ErrorCode::kResourceExhausted);
  EXPECT_FALSE(outcome.status.message.empty());
}

}  // namespace
}  // namespace speck
