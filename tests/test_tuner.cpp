// Tests for the auto-tuner (paper §5 / Table 2).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "speck/tuner.h"

namespace speck {
namespace {

TuningSample synthetic_sample(double off_off, double off_on, double on_off,
                              double on_on, double ratio, index_t rows,
                              bool large = false) {
  TuningSample s;
  s.seconds[0][0] = off_off;
  s.seconds[0][1] = off_on;
  s.seconds[1][0] = on_off;
  s.seconds[1][1] = on_on;
  s.symbolic_decision = {ratio, rows, large};
  s.numeric_decision = {ratio, rows, large};
  return s;
}

TEST(Tuner, LossIsOneWhenDecisionOptimal) {
  // LB always helps and the default thresholds turn it on for this profile.
  std::vector<TuningSample> samples{
      synthetic_sample(2.0, 1.5, 1.5, 1.0, 50.0, 100000)};
  const SpeckThresholds defaults;
  EXPECT_DOUBLE_EQ(tuning_loss(samples, defaults), 1.0);
}

TEST(Tuner, LossPenalizesWrongDecision) {
  // LB hurts (off is best) but a ratio of 50 with many rows turns it on.
  std::vector<TuningSample> samples{
      synthetic_sample(1.0, 2.0, 2.0, 4.0, 50.0, 100000)};
  const SpeckThresholds defaults;
  EXPECT_DOUBLE_EQ(tuning_loss(samples, defaults), 4.0);
}

TEST(Tuner, LineSearchFindsSeparatingThreshold) {
  // Construct a training set where LB pays off exactly when ratio > 8:
  // the tuner must discover a ratio threshold in that region.
  std::vector<TuningSample> samples;
  for (const double ratio : {2.0, 4.0, 6.0}) {
    samples.push_back(synthetic_sample(1.0, 3.0, 3.0, 9.0, ratio, 50000));
  }
  for (const double ratio : {16.0, 32.0, 64.0}) {
    samples.push_back(synthetic_sample(9.0, 3.0, 3.0, 1.0, ratio, 50000));
  }
  SpeckThresholds bad_start;
  bad_start.symbolic = {1.0, 0};   // always on
  bad_start.numeric = {1.0, 0};
  bad_start.symbolic_large = {1.0, 0};
  bad_start.numeric_large = {1.0, 0};
  const TuningResult result = tune_thresholds(samples, bad_start, 3);
  EXPECT_DOUBLE_EQ(result.mean_slowdown, 1.0);
  EXPECT_DOUBLE_EQ(result.best_pick_fraction, 1.0);
  // Any threshold in [6, 16) separates the two populations (the decision
  // uses a strict comparison, so 6.0 itself works).
  EXPECT_GE(result.thresholds.symbolic.ratio, 6.0);
  EXPECT_LT(result.thresholds.symbolic.ratio, 16.0);
}

TEST(Tuner, LargeKernelSamplesUseLargeThresholds) {
  // Large-kernel samples want LB at low ratios; general samples do not.
  std::vector<TuningSample> samples;
  samples.push_back(synthetic_sample(5.0, 1.0, 1.0, 1.0, 2.0, 50000, true));
  samples.push_back(synthetic_sample(1.0, 5.0, 5.0, 5.0, 2.0, 50000, false));
  SpeckThresholds start;
  const TuningResult result = tune_thresholds(samples, start, 3);
  EXPECT_DOUBLE_EQ(result.mean_slowdown, 1.0);
}

TEST(Tuner, MeasureSampleRunsAllFourCombos) {
  // The tuner samples the exact pipeline's symbolic/numeric LB grid; pin
  // exact planning so SPECK_PLANNING=estimated doesn't skip the symbolic
  // side of the sample.
  SpeckConfig config;
  config.planning = PlanningMode::kExact;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::skewed_rows(2000, 2000, 0.01, 500, 3, 1001);
  const TuningSample sample = measure_tuning_sample(speck, a, a);
  for (int s = 0; s < 2; ++s) {
    for (int n = 0; n < 2; ++n) EXPECT_GT(sample.seconds[s][n], 0.0);
  }
  EXPECT_GT(sample.symbolic_decision.ratio, 1.0);
  EXPECT_EQ(sample.symbolic_decision.rows, 2000);
  // measure_tuning_sample must restore the feature flags.
  EXPECT_EQ(speck.config().features.global_lb_symbolic, GlobalLbMode::kAuto);
}

TEST(Tuner, KFoldsPartition) {
  const auto folds = k_folds(100, 3, 7);
  ASSERT_EQ(folds.size(), 3u);
  std::vector<int> seen(100, 0);
  for (const auto& fold : folds) {
    EXPECT_GE(fold.size(), 33u);
    EXPECT_LE(fold.size(), 34u);
    for (const std::size_t i : fold) ++seen[i];
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Tuner, EmptySamples) {
  EXPECT_DOUBLE_EQ(tuning_loss({}, SpeckThresholds{}), 1.0);
  const TuningResult result = tune_thresholds({}, SpeckThresholds{}, 1);
  EXPECT_DOUBLE_EQ(result.mean_slowdown, 1.0);
}

}  // namespace
}  // namespace speck
