// Tests for the structure-reuse fast path: Speck::plan /
// Speck::multiply_with_plan and the transparent single-slot plan cache.
//
// The replay must be *bit-identical* to the full pipeline — same CSR bytes,
// same PassStats counters — at any thread count, including under forced
// spill fault injection. Stale plans (pattern or config changes) must be
// detected and fall back to the full pipeline, never produce wrong values.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "common/alloc_counter.h"
#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

// Counting allocator (as in bench_hotpath): makes the replay path's
// zero-allocation claim observable via PassStats::hot_path_allocs.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace speck {
namespace {

/// Same structure, fresh values.
Csr reweighted(const Csr& a, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<offset_t> offsets(a.row_offsets().begin(), a.row_offsets().end());
  std::vector<index_t> cols(a.col_indices().begin(), a.col_indices().end());
  std::vector<value_t> vals(static_cast<std::size_t>(a.nnz()));
  for (auto& v : vals) v = rng.next_double(-2.0, 2.0);
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols),
             std::move(vals));
}

/// Every PassStats counter must match; hot_path_allocs is checked separately
/// because it depends on workspace warm-up state, not on the computation.
void expect_stats_equal(const PassStats& replay, const PassStats& full,
                        const char* pass) {
  EXPECT_EQ(replay.seconds, full.seconds) << pass;
  EXPECT_EQ(replay.direct_rows, full.direct_rows) << pass;
  EXPECT_EQ(replay.dense_rows, full.dense_rows) << pass;
  EXPECT_EQ(replay.hash_rows, full.hash_rows) << pass;
  EXPECT_EQ(replay.global_hash_blocks, full.global_hash_blocks) << pass;
  EXPECT_EQ(replay.global_pool_bytes, full.global_pool_bytes) << pass;
  EXPECT_EQ(replay.hash_probes, full.hash_probes) << pass;
  EXPECT_EQ(replay.moved_entries, full.moved_entries) << pass;
  EXPECT_EQ(replay.global_inserts, full.global_inserts) << pass;
}

void expect_diagnostics_equal(const SpeckDiagnostics& replay,
                              const SpeckDiagnostics& full) {
  expect_stats_equal(replay.symbolic, full.symbolic, "symbolic");
  expect_stats_equal(replay.numeric, full.numeric, "numeric");
  EXPECT_EQ(replay.symbolic_lb_used, full.symbolic_lb_used);
  EXPECT_EQ(replay.numeric_lb_used, full.numeric_lb_used);
  EXPECT_EQ(replay.products, full.products);
  EXPECT_EQ(replay.radix_sorted_elements, full.radix_sorted_elements);
  EXPECT_EQ(replay.symbolic_blocks, full.symbolic_blocks);
  EXPECT_EQ(replay.numeric_blocks, full.numeric_blocks);
  EXPECT_EQ(replay.wide_keys, full.wide_keys);
}

/// Runs plan + replay on one Speck and a plain full multiply on another
/// (identical config), and checks bitwise-identical CSR output plus equal
/// PassStats counters.
void check_replay_matches_full(SpeckConfig cfg, const Csr& a, const Csr& b) {
  cfg.plan_cache = false;  // isolate the explicit plan API from the cache
  Speck planner(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  Speck reference(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);

  const SpGemmResult full = reference.multiply(a, b);
  ASSERT_TRUE(full.ok()) << full.failure_reason;
  const SpeckDiagnostics full_diag = reference.last_diagnostics();

  const SpeckPlan plan = planner.plan(a, b);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;
  const SpGemmResult replay = planner.multiply_with_plan(plan, a, b);
  ASSERT_TRUE(replay.ok()) << replay.failure_reason;

  EXPECT_TRUE(planner.last_diagnostics().plan_used);
  EXPECT_FALSE(planner.last_diagnostics().plan_fallback)
      << planner.last_diagnostics().plan_fallback_reason;

  const auto diff = compare(replay.c, full.c, 0.0);  // bitwise
  EXPECT_FALSE(diff.has_value()) << diff->description;
  expect_diagnostics_equal(planner.last_diagnostics(), full_diag);
  EXPECT_LT(replay.seconds, full.seconds)
      << "replay must skip analysis/symbolic/load-balancing time";
}

TEST(PlanReuse, ReplayBitIdenticalAcrossThreadCounts) {
  const Csr a = gen::power_law(600, 600, 8, 1.9, 150, 2101);
  const Csr b = gen::power_law(600, 600, 7, 1.8, 150, 2103);
  for (const int threads : {1, 8}) {
    SCOPED_TRACE(threads);
    SpeckConfig cfg;
    cfg.host_threads = threads;
    check_replay_matches_full(cfg, a, b);
  }
}

TEST(PlanReuse, ReplayBitIdenticalUnderForcedSpill) {
  const Csr a = gen::power_law(400, 400, 10, 1.7, 200, 2105);
  for (const int threads : {1, 8}) {
    SCOPED_TRACE(threads);
    SpeckConfig cfg;
    cfg.host_threads = threads;
    cfg.faults.hash_overflow_after = 8;   // force global-memory fallback
    cfg.faults.estimate_scale = 0.25;     // undersized bins -> spills
    check_replay_matches_full(cfg, a, a);
  }
}

TEST(PlanReuse, ReplayValuesOnlyAcrossValueChanges) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr base = gen::banded(500, 10, 6, 2107);
  const SpeckPlan plan = sp.plan(base, base);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;
  for (const std::uint64_t seed : {2109u, 2111u, 2113u}) {
    const Csr a = reweighted(base, seed);
    const Csr b = reweighted(base, seed + 7);
    const SpGemmResult replay = sp.multiply_with_plan(plan, a, b);
    ASSERT_TRUE(replay.ok()) << replay.failure_reason;
    EXPECT_FALSE(sp.last_diagnostics().plan_fallback);
    const auto diff = compare(replay.c, gustavson_spgemm(a, b), 0.0);
    EXPECT_FALSE(diff.has_value())
        << "seed " << seed << ": " << diff->description;
  }
}

TEST(PlanReuse, ReplayHotPathIsAllocationFree) {
  SpeckConfig cfg;
  cfg.host_threads = 1;
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  const Csr a = gen::power_law(500, 500, 8, 1.9, 120, 2115);
  const SpeckPlan plan = sp.plan(a, a);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;
  const SpGemmResult replay = sp.multiply_with_plan(plan, a, a);
  ASSERT_TRUE(replay.ok()) << replay.failure_reason;
  EXPECT_TRUE(sp.last_diagnostics().plan_used);
  EXPECT_EQ(sp.last_diagnostics().numeric.hot_path_allocs, 0u)
      << "the values-only replay must not allocate";
}

TEST(PlanReuse, StalePatternMutationFallsBack) {
  SpeckConfig cfg;
  cfg.validate_inputs = true;  // enables the full pattern-hash check
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  const Csr a = gen::random_uniform(200, 200, 6, 2117);
  const SpeckPlan plan = sp.plan(a, a);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;

  // Same dims and nnz, different pattern: move one entry's column while
  // keeping the row sorted. Only the full fingerprint can catch this.
  Csr mutated = a;
  bool changed = false;
  for (index_t r = 0; r < mutated.rows() && !changed; ++r) {
    const auto cols = mutated.row_cols(r);
    if (cols.empty()) continue;
    const index_t last = cols[cols.size() - 1];
    if (last + 1 < mutated.cols()) {
      mutated.col_indices_mutable()[static_cast<std::size_t>(
          mutated.row_offsets()[r + 1] - 1)] = last + 1;
      changed = true;
    }
  }
  ASSERT_TRUE(changed);

  const SpGemmResult result = sp.multiply_with_plan(plan, mutated, mutated);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_TRUE(sp.last_diagnostics().plan_fallback);
  EXPECT_FALSE(sp.last_diagnostics().plan_used);
  EXPECT_FALSE(sp.last_diagnostics().plan_fallback_reason.empty());
  const auto diff = compare(result.c, gustavson_spgemm(mutated, mutated), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(PlanReuse, StaleConfigChangeFallsBack) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::random_uniform(200, 200, 6, 2119);
  const SpeckPlan plan = sp.plan(a, a);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;

  // A planning-relevant config change invalidates the fingerprint's config
  // hash — caught by the O(1) quick check even without validate_inputs.
  sp.config().dense_density_threshold *= 0.5;
  const SpGemmResult result = sp.multiply_with_plan(plan, a, a);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_TRUE(sp.last_diagnostics().plan_fallback);
  const auto diff = compare(result.c, gustavson_spgemm(a, a), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(PlanReuse, DimensionMismatchFallsBack) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::random_uniform(150, 150, 5, 2121);
  const SpeckPlan plan = sp.plan(a, a);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;
  const Csr smaller = gen::random_uniform(100, 100, 5, 2123);
  const SpGemmResult result = sp.multiply_with_plan(plan, smaller, smaller);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_TRUE(sp.last_diagnostics().plan_fallback);
  const auto diff =
      compare(result.c, gustavson_spgemm(smaller, smaller), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(PlanReuse, IncompletePlanFallsBack) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::random_uniform(100, 100, 4, 2125);
  const SpeckPlan empty;  // complete == false
  const SpGemmResult result = sp.multiply_with_plan(empty, a, a);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_TRUE(sp.last_diagnostics().plan_fallback);
  const auto diff = compare(result.c, gustavson_spgemm(a, a), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(PlanReuse, TransparentCacheHitsOnThirdIdenticalMultiply) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});  // plan_cache on
  const Csr base = gen::power_law(400, 400, 7, 1.9, 100, 2127);

  // Call 1: new structure — full pipeline. Call 2: structure seen twice —
  // full pipeline that additionally captures a plan. Call 3+: replay.
  const SpGemmResult r1 = sp.multiply(base, base);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(sp.last_diagnostics().plan_cache_hit);
  const SpGemmResult r2 = sp.multiply(base, base);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(sp.last_diagnostics().plan_cache_hit);
  const SpGemmResult r3 = sp.multiply(base, base);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(sp.last_diagnostics().plan_cache_hit);
  EXPECT_TRUE(sp.last_diagnostics().plan_used);

  const auto d12 = compare(r1.c, r2.c, 0.0);
  EXPECT_FALSE(d12.has_value()) << d12->description;
  const auto d13 = compare(r1.c, r3.c, 0.0);
  EXPECT_FALSE(d13.has_value()) << d13->description;
  EXPECT_LT(r3.seconds, r1.seconds);

  // Fresh values, same structure: still a hit, still exact.
  const Csr rw = reweighted(base, 2129);
  const SpGemmResult r4 = sp.multiply(rw, rw);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(sp.last_diagnostics().plan_cache_hit);
  const auto d4 = compare(r4.c, gustavson_spgemm(rw, rw), 0.0);
  EXPECT_FALSE(d4.has_value()) << d4->description;

  // A different structure evicts the slot and runs the full pipeline.
  const Csr other = gen::random_uniform(300, 300, 6, 2131);
  const SpGemmResult r5 = sp.multiply(other, other);
  ASSERT_TRUE(r5.ok());
  EXPECT_FALSE(sp.last_diagnostics().plan_cache_hit);
}

TEST(PlanReuse, CacheDisabledNeverReplays) {
  SpeckConfig cfg;
  cfg.plan_cache = false;
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  const Csr a = gen::random_uniform(200, 200, 5, 2133);
  for (int i = 0; i < 4; ++i) {
    const SpGemmResult r = sp.multiply(a, a);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(sp.last_diagnostics().plan_cache_hit) << i;
    EXPECT_FALSE(sp.last_diagnostics().plan_used) << i;
  }
}

TEST(PlanReuse, EmptyAndTinyMatrices) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr z = Csr::zeros(16, 16);
  const SpeckPlan zero_plan = sp.plan(z, z);
  ASSERT_TRUE(zero_plan.complete) << zero_plan.incomplete_reason;
  const SpGemmResult zero = sp.multiply_with_plan(zero_plan, z, z);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.c.nnz(), 0);
  EXPECT_FALSE(sp.last_diagnostics().plan_fallback);

  const Csr one = gen::random_uniform(1, 1, 1, 2135);
  const SpeckPlan one_plan = sp.plan(one, one);
  ASSERT_TRUE(one_plan.complete) << one_plan.incomplete_reason;
  const SpGemmResult r = sp.multiply_with_plan(one_plan, one, one);
  ASSERT_TRUE(r.ok());
  const auto diff = compare(r.c, gustavson_spgemm(one, one), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(PlanReuse, PlanReportsByteSizeAndFingerprint) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::power_law(300, 300, 7, 1.8, 90, 2137);
  const SpeckPlan plan = sp.plan(a, a);
  ASSERT_TRUE(plan.complete);
  EXPECT_GT(plan.byte_size(), 0u);
  EXPECT_EQ(plan.fingerprint.a_rows, a.rows());
  EXPECT_EQ(plan.fingerprint.b_cols, a.cols());
  EXPECT_EQ(plan.fingerprint.a_nnz, a.nnz());
  EXPECT_NE(plan.fingerprint.a_pattern_hash, 0u);
  EXPECT_EQ(plan.c_nnz(), plan.fingerprint.a_rows == 0
                              ? 0
                              : plan.c_row_offsets.back());
  EXPECT_EQ(static_cast<std::size_t>(plan.c_nnz()), plan.c_col_indices.size());
}

}  // namespace
}  // namespace speck
