// The headline guarantee of the host thread pool: running the full spECK
// pipeline at 1, 2 or 8 threads produces bit-identical CSR output and
// bit-identical simulated seconds. Chunk boundaries are a pure function of
// the range, every chunk writes only its own slots, and block costs are
// committed in plan order — so nothing may depend on the thread count.
#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.h"
#include "gen/corpus.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

namespace speck {
namespace {

struct PipelineRun {
  Csr c;
  double seconds = 0.0;
  std::size_t peak_memory = 0;
};

PipelineRun run_speck(const gen::CorpusEntry& entry, int threads) {
  SpeckConfig config;
  config.host_threads = threads;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  SpGemmResult result = speck.multiply(entry.a, entry.b);
  EXPECT_TRUE(result.ok()) << entry.name << ": " << result.failure_reason;
  return PipelineRun{std::move(result.c), result.seconds, result.peak_memory_bytes};
}

void expect_identical(const PipelineRun& serial, const PipelineRun& parallel,
                      const std::string& name, int threads) {
  SCOPED_TRACE(name + " at " + std::to_string(threads) + " threads");
  // Structure: bit-identical offsets and column indices.
  ASSERT_EQ(parallel.c.rows(), serial.c.rows());
  ASSERT_EQ(parallel.c.nnz(), serial.c.nnz());
  const auto so = serial.c.row_offsets();
  const auto po = parallel.c.row_offsets();
  ASSERT_TRUE(std::equal(so.begin(), so.end(), po.begin()));
  const auto sc = serial.c.col_indices();
  const auto pc = parallel.c.col_indices();
  ASSERT_TRUE(std::equal(sc.begin(), sc.end(), pc.begin()));
  // Values: exactly equal, not approximately — the parallel path must run
  // the same per-row accumulation in the same order.
  const auto sv = serial.c.values();
  const auto pv = parallel.c.values();
  for (std::size_t i = 0; i < sv.size(); ++i) {
    ASSERT_EQ(sv[i], pv[i]) << "value " << i;
  }
  // The simulated cost model charges identical work regardless of how the
  // host computed it.
  EXPECT_EQ(parallel.seconds, serial.seconds);
  EXPECT_EQ(parallel.peak_memory, serial.peak_memory);
}

TEST(ParallelDeterminism, CommonCorpusIdenticalAcrossThreadCounts) {
  for (const gen::CorpusEntry& entry : gen::common_corpus()) {
    const PipelineRun serial = run_speck(entry, 1);
    for (const int threads : {2, 8}) {
      expect_identical(serial, run_speck(entry, threads), entry.name, threads);
    }
  }
}

TEST(ParallelDeterminism, GlobalPoolPathMatchesPerInstancePool) {
  // host_threads == 0 routes through the process-wide pool; the result must
  // still match the single-threaded run exactly.
  const auto corpus = gen::test_corpus();
  ASSERT_FALSE(corpus.empty());
  const gen::CorpusEntry& entry = corpus.front();
  const PipelineRun serial = run_speck(entry, 1);
  set_global_thread_count(8);
  const PipelineRun pooled = run_speck(entry, 0);
  set_global_thread_count(0);
  expect_identical(serial, pooled, entry.name, 8);
}

TEST(ParallelDeterminism, ReferenceGustavsonIdenticalAcrossThreadCounts) {
  // The oracle itself is parallel over the global pool; it must stay exact.
  for (const gen::CorpusEntry& entry : gen::test_corpus()) {
    set_global_thread_count(1);
    const Csr serial = gustavson_spgemm(entry.a, entry.b);
    for (const int threads : {2, 8}) {
      set_global_thread_count(threads);
      const Csr parallel = gustavson_spgemm(entry.a, entry.b);
      SCOPED_TRACE(entry.name + " at " + std::to_string(threads) + " threads");
      ASSERT_EQ(parallel.nnz(), serial.nnz());
      const auto sc = serial.col_indices();
      const auto pc = parallel.col_indices();
      ASSERT_TRUE(std::equal(sc.begin(), sc.end(), pc.begin()));
      const auto sv = serial.values();
      const auto pv = parallel.values();
      for (std::size_t i = 0; i < sv.size(); ++i) {
        ASSERT_EQ(sv[i], pv[i]) << "value " << i;
      }
    }
  }
  set_global_thread_count(0);
}

}  // namespace
}  // namespace speck
