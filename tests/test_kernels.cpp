// Unit tests for the symbolic/numeric kernels: method selection, per-method
// correctness, global-hash fallback and the radix-sort stage accounting.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/kernels.h"
#include "speck/speck.h"

namespace speck {
namespace {

struct Fixture {
  sim::DeviceSpec device = sim::DeviceSpec::titan_v();
  sim::CostModel model;
  SpeckConfig cfg;
  std::vector<KernelConfig> configs = kernel_configs(device);
  RowAnalysis analysis;

  KernelContext context(const Csr& a, const Csr& b) {
    sim::Launch launch("analysis", device, model);
    analysis = analyze_rows(a, b, launch);
    KernelContext ctx;
    ctx.a = &a;
    ctx.b = &b;
    ctx.analysis = &analysis;
    ctx.cfg = &cfg;
    ctx.configs = &configs;
    ctx.device = &device;
    ctx.model = &model;
    ctx.wide_keys = b.cols() > kMaxColumns32Bit;
    return ctx;
  }

  BinPlan plan(const KernelContext& ctx, bool symbolic,
               std::span<const offset_t> entries) {
    sim::Launch launch("lb", device, model);
    return plan_global_lb({entries, symbolic}, configs, cfg, launch);
  }
};

TEST(Kernels, SymbolicMatchesOracleAllPaths) {
  Fixture f;
  const Csr a = gen::skewed_rows(500, 500, 0.02, 300, 3, 801);
  auto ctx = f.context(a, a);
  const BinPlan plan = f.plan(ctx, true, f.analysis.products);
  const SymbolicOutcome symbolic = run_symbolic(ctx, plan);
  const auto expected = gustavson_symbolic(a, a);
  ASSERT_EQ(symbolic.row_nnz.size(), expected.size());
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(symbolic.row_nnz[r], expected[r]) << "row " << r;
  }
  EXPECT_GT(symbolic.stats.seconds, 0.0);
  EXPECT_GT(symbolic.stats.hash_probes, 0u);
}

TEST(Kernels, NumericMatchesOracle) {
  Fixture f;
  const Csr a = gen::power_law(400, 400, 8, 1.8, 120, 803);
  auto ctx = f.context(a, a);
  const BinPlan splan = f.plan(ctx, true, f.analysis.products);
  const SymbolicOutcome symbolic = run_symbolic(ctx, splan);
  std::vector<offset_t> numeric_entries(symbolic.row_nnz.begin(),
                                        symbolic.row_nnz.end());
  const BinPlan nplan = f.plan(ctx, false, numeric_entries);
  const NumericOutcome numeric = run_numeric(ctx, nplan, symbolic.row_nnz);
  const Csr expected = gustavson_spgemm(a, a);
  const auto diff = compare(numeric.c, expected);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Kernels, SymbolicMethodSelection) {
  Fixture f;
  // Row 0: single entry -> direct. Other rows: normal -> hash.
  Coo coo(4, 4);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 2, 1.0);
  coo.add(2, 1, 1.0);
  coo.add(2, 3, 1.0);
  coo.add(3, 3, 1.0);
  const Csr a = coo.to_csr();
  auto ctx = f.context(a, a);
  EXPECT_EQ(choose_symbolic_method(ctx, 0, false, f.configs[0]), RowMethod::kDirect);
  EXPECT_EQ(choose_symbolic_method(ctx, 1, false, f.configs[0]), RowMethod::kHash);
  // Disabling the direct path falls back to hash.
  f.cfg.features.direct_rows = false;
  EXPECT_EQ(choose_symbolic_method(ctx, 0, false, f.configs[0]), RowMethod::kHash);
}

TEST(Kernels, SymbolicDenseOnlyForGiantRows) {
  Fixture f;
  // A row whose product count exceeds 2x the largest symbolic hash capacity
  // (2 * 24576) must use the dense bitmask path.
  const index_t n = 60000;
  Coo coo(n, n);
  for (index_t c = 0; c < 120; ++c) coo.add(0, c * 7 % n, 1.0);
  for (index_t r = 1; r < n; r += 1) coo.add(r, (r * 13) % n, 1.0);
  // Make the rows referenced by row 0 long: each of those 120 rows gets
  // ~500 entries -> 60000 products.
  for (index_t c = 0; c < 120; ++c) {
    const index_t target = c * 7 % n;
    for (index_t i = 0; i < 500; ++i) coo.add(target, (i * 101) % n, 1.0);
  }
  const Csr a = coo.to_csr();
  auto ctx = f.context(a, a);
  ASSERT_GT(f.analysis.products[0], 2 * 24576);
  EXPECT_EQ(choose_symbolic_method(ctx, 0, false, f.configs.back()),
            RowMethod::kDense);
  EXPECT_EQ(choose_symbolic_method(ctx, 0, true, f.configs.back()),
            RowMethod::kHash)
      << "merged blocks always hash";
}

TEST(Kernels, NumericDenseForDenseRows) {
  Fixture f;
  const Csr a = gen::block_diagonal(2, 80, 0.9, 805);
  auto ctx = f.context(a, a);
  // Block rows produce ~80 NNZ over a range of 80: density 1.0 >= 18%.
  const index_t nnz = 72;
  EXPECT_EQ(choose_numeric_method(ctx, 0, nnz, false, 1), RowMethod::kDense);
  // Largest config: always dense.
  EXPECT_EQ(choose_numeric_method(ctx, 0, 1, false,
                                  static_cast<int>(f.configs.size()) - 1),
            RowMethod::kDense);
  // Sparse row in a small config: hash.
  EXPECT_EQ(choose_numeric_method(ctx, 0, 2, false, 1), RowMethod::kHash);
  // Feature off: hash everywhere.
  f.cfg.features.dense_accumulation = false;
  EXPECT_EQ(choose_numeric_method(ctx, 0, nnz, false, 1), RowMethod::kHash);
}

TEST(Kernels, GlobalHashFallbackEngages) {
  Fixture f;
  f.cfg.features.dense_accumulation = false;  // force hashing of giant rows
  // One row with products above the largest symbolic hash capacity and no
  // compaction (distinct columns) must spill to the global map.
  const index_t n = 40000;
  Coo coo(n, n);
  for (index_t c = 0; c < 100; ++c) coo.add(0, c, 1.0);
  for (index_t r = 0; r < 100; ++r) {
    for (index_t i = 0; i < 300; ++i) coo.add(r, 100 + (r * 300 + i), 1.0);
  }
  for (index_t r = 100; r < n; ++r) coo.add(r, r, 1.0);
  const Csr a = coo.to_csr();
  auto ctx = f.context(a, a);
  ASSERT_GT(f.analysis.products[0], 24576);
  const BinPlan plan = f.plan(ctx, true, f.analysis.products);
  const SymbolicOutcome symbolic = run_symbolic(ctx, plan);
  EXPECT_GT(symbolic.stats.global_hash_blocks, 0);
  EXPECT_GT(symbolic.stats.global_pool_bytes, 0u);
  // Counts stay exact despite the spill.
  const auto expected = gustavson_symbolic(a, a);
  for (std::size_t r = 0; r < expected.size(); ++r) {
    ASSERT_EQ(symbolic.row_nnz[r], expected[r]) << "row " << r;
  }
}

TEST(Kernels, RadixStageOnlyForLargeHashRows) {
  Fixture f;
  // Small uniform matrix: every row lands in small kernels -> scratch sort,
  // no radix elements.
  const Csr small = gen::random_uniform(300, 300, 4, 807);
  auto ctx = f.context(small, small);
  const BinPlan splan = f.plan(ctx, true, f.analysis.products);
  const SymbolicOutcome symbolic = run_symbolic(ctx, splan);
  std::vector<offset_t> entries(symbolic.row_nnz.begin(), symbolic.row_nnz.end());
  const BinPlan nplan = f.plan(ctx, false, entries);
  const NumericOutcome numeric = run_numeric(ctx, nplan, symbolic.row_nnz);
  EXPECT_EQ(numeric.radix_sorted_elements, 0);
  EXPECT_DOUBLE_EQ(numeric.sorting_seconds, 0.0);
}

TEST(Kernels, WideKeysForHugeColumnCounts) {
  Fixture f;
  // Columns beyond 2^27 force 64-bit keys; result must stay exact.
  const index_t cols = (index_t{1} << 27) + 1000;
  Coo a_coo(40, cols);
  Xoshiro256 rng(809);
  for (index_t r = 0; r < 40; ++r) {
    for (int i = 0; i < 6; ++i) {
      a_coo.add(r, static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(40))), 1.0);
    }
    a_coo.add(r, cols - 1 - r, 2.0);  // far-right columns
  }
  const Csr a = a_coo.to_csr();
  // B: 40 rows of the wide matrix... use A itself is invalid (cols != rows);
  // build B = [40 x cols] accessed via A's first 40 columns.
  Coo b_coo(cols, cols);
  for (index_t r = 0; r < 40; ++r) {
    b_coo.add(r, cols - 10 + (r % 10), 1.0);
    b_coo.add(r, r, 1.0);
  }
  const Csr b = b_coo.to_csr();
  auto ctx = f.context(a, b);
  EXPECT_TRUE(ctx.wide_keys);
  const BinPlan splan = f.plan(ctx, true, f.analysis.products);
  const SymbolicOutcome symbolic = run_symbolic(ctx, splan);
  const auto expected = gustavson_symbolic(a, b);
  for (std::size_t r = 0; r < expected.size(); ++r) {
    ASSERT_EQ(symbolic.row_nnz[r], expected[r]) << "row " << r;
  }
}

TEST(Kernels, EmptyPlanProducesEmptyResult) {
  Fixture f;
  const Csr a = Csr::zeros(16, 16);
  auto ctx = f.context(a, a);
  const BinPlan plan = f.plan(ctx, true, f.analysis.products);
  const SymbolicOutcome symbolic = run_symbolic(ctx, plan);
  for (const index_t nnz : symbolic.row_nnz) EXPECT_EQ(nnz, 0);
  std::vector<offset_t> entries(symbolic.row_nnz.begin(), symbolic.row_nnz.end());
  const BinPlan nplan = f.plan(ctx, false, entries);
  const NumericOutcome numeric = run_numeric(ctx, nplan, symbolic.row_nnz);
  EXPECT_EQ(numeric.c.nnz(), 0);
}

}  // namespace
}  // namespace speck
