// Unit tests for the windowed dense accumulator (paper Fig. 5 semantics).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "matrix/coo.h"
#include "ref/gustavson.h"
#include "speck/dense_acc.h"

namespace speck {
namespace {

/// Runs the accumulator on row `r` of A against the oracle row of C = A*B.
void check_row(const Csr& a, const Csr& b, index_t r, std::size_t window) {
  index_t col_min = b.cols(), col_max = -1;
  for (const index_t k : a.row_cols(r)) {
    const auto cols = b.row_cols(k);
    if (cols.empty()) continue;
    col_min = std::min(col_min, cols.front());
    col_max = std::max(col_max, cols.back());
  }
  if (col_max < 0) {
    col_min = 0;
    col_max = 0;
  }
  const auto result = dense_accumulate_row(b, a.row_cols(r), a.row_vals(r), col_min,
                                           col_max, window, /*numeric=*/true);
  const Csr expected = gustavson_spgemm(a, b);
  const auto exp_cols = expected.row_cols(r);
  const auto exp_vals = expected.row_vals(r);
  ASSERT_EQ(result.cols.size(), exp_cols.size()) << "row " << r;
  for (std::size_t i = 0; i < exp_cols.size(); ++i) {
    EXPECT_EQ(result.cols[i], exp_cols[i]);
    EXPECT_NEAR(result.vals[i], exp_vals[i], 1e-9);
  }
}

TEST(DenseAcc, SingleWindowMatchesOracle) {
  const Csr a = gen::random_uniform(40, 40, 6, 301);
  for (index_t r = 0; r < a.rows(); ++r) check_row(a, a, r, 4096);
}

TEST(DenseAcc, MultiWindowMatchesOracle) {
  const Csr a = gen::random_uniform(40, 40, 6, 303);
  for (index_t r = 0; r < a.rows(); ++r) check_row(a, a, r, 7);  // tiny windows
}

TEST(DenseAcc, WindowOfOneColumn) {
  const Csr a = gen::random_uniform(12, 12, 4, 305);
  for (index_t r = 0; r < a.rows(); ++r) check_row(a, a, r, 1);
}

TEST(DenseAcc, PassCountMatchesRange) {
  const Csr b = Csr::identity(100);
  Coo a_coo(1, 100);
  a_coo.add(0, 0, 1.0);
  a_coo.add(0, 99, 1.0);
  const Csr a = a_coo.to_csr();
  const auto result = dense_accumulate_row(b, a.row_cols(0), a.row_vals(0), 0, 99, 25,
                                           /*numeric=*/true);
  EXPECT_EQ(result.passes, 4);  // range 100 / window 25
  EXPECT_EQ(result.cols.size(), 2u);
}

TEST(DenseAcc, ElementTouchesEqualProducts) {
  const Csr a = gen::banded(60, 6, 4, 307);
  for (index_t r = 0; r < 10; ++r) {
    offset_t products = 0;
    for (const index_t k : a.row_cols(r)) products += a.row_length(k);
    index_t col_min = a.cols(), col_max = -1;
    for (const index_t k : a.row_cols(r)) {
      const auto cols = a.row_cols(k);
      if (cols.empty()) continue;
      col_min = std::min(col_min, cols.front());
      col_max = std::max(col_max, cols.back());
    }
    if (col_max < 0) continue;
    const auto result = dense_accumulate_row(a, a.row_cols(r), a.row_vals(r), col_min,
                                             col_max, 16, /*numeric=*/true);
    EXPECT_EQ(result.element_touches, products) << "each product visited exactly once";
  }
}

TEST(DenseAcc, SymbolicCountsOnly) {
  const Csr a = gen::random_uniform(30, 30, 5, 309);
  const Csr expected = gustavson_spgemm(a, a);
  for (index_t r = 0; r < a.rows(); ++r) {
    index_t col_min = a.cols(), col_max = -1;
    for (const index_t k : a.row_cols(r)) {
      const auto cols = a.row_cols(k);
      if (cols.empty()) continue;
      col_min = std::min(col_min, cols.front());
      col_max = std::max(col_max, cols.back());
    }
    if (col_max < 0) continue;
    const auto result = dense_accumulate_row(a, a.row_cols(r), {}, col_min, col_max,
                                             64, /*numeric=*/false);
    EXPECT_EQ(static_cast<index_t>(result.cols.size()), expected.row_length(r));
    EXPECT_TRUE(result.vals.empty());
  }
}

TEST(DenseAcc, EmptyRow) {
  const Csr b = Csr::identity(10);
  const auto result = dense_accumulate_row(b, {}, {}, 0, 9, 16, /*numeric=*/true);
  EXPECT_EQ(result.passes, 0);
  EXPECT_TRUE(result.cols.empty());
}

TEST(DenseAcc, OutputSorted) {
  const Csr a = gen::power_law(50, 50, 8, 1.8, 30, 311);
  for (index_t r = 0; r < a.rows(); ++r) {
    index_t col_min = a.cols(), col_max = -1;
    for (const index_t k : a.row_cols(r)) {
      const auto cols = a.row_cols(k);
      if (cols.empty()) continue;
      col_min = std::min(col_min, cols.front());
      col_max = std::max(col_max, cols.back());
    }
    if (col_max < 0) continue;
    const auto result = dense_accumulate_row(a, a.row_cols(r), a.row_vals(r), col_min,
                                             col_max, 8, /*numeric=*/true);
    EXPECT_TRUE(std::is_sorted(result.cols.begin(), result.cols.end()));
  }
}

TEST(DenseAcc, RejectsZeroWindow) {
  const Csr b = Csr::identity(4);
  EXPECT_THROW(dense_accumulate_row(b, {}, {}, 0, 3, 0, true), InvalidArgument);
}

}  // namespace
}  // namespace speck
