// Estimation-based planning tests (src/speck/estimator.h).
//
// The contract: estimated planning changes how much work plan() spends, never
// what the multiply computes. C must be bit-identical to exact-mode planning
// at any thread count — including when fault injection scales the sampled
// estimates below the true row sizes and every row re-runs through the exact
// fallback. Estimated and exact plans must never collide in the plan cache.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/fault_injection.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/estimator.h"
#include "speck/plan_cache.h"
#include "speck/speck.h"

namespace speck {
namespace {

Speck make_speck(SpeckConfig cfg) {
  return Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
}

/// Runs the same inputs through exact and estimated planning (separate
/// instances, otherwise identical configs) and checks bitwise-identical C.
/// Returns the estimated run's diagnostics for further checks.
SpeckDiagnostics check_estimated_matches_exact(SpeckConfig cfg, const Csr& a,
                                               const Csr& b) {
  cfg.plan_cache = false;
  cfg.planning = PlanningMode::kExact;
  Speck exact = make_speck(cfg);
  cfg.planning = PlanningMode::kEstimated;
  Speck estimated = make_speck(cfg);

  const SpGemmResult exact_result = exact.multiply(a, b);
  EXPECT_TRUE(exact_result.ok()) << exact_result.failure_reason;
  EXPECT_FALSE(exact.last_diagnostics().estimated_planning);
  EXPECT_EQ(exact.last_diagnostics().numeric.estimate_underflow_rows, 0);

  const SpGemmResult est_result = estimated.multiply(a, b);
  EXPECT_TRUE(est_result.ok()) << est_result.failure_reason;
  EXPECT_TRUE(estimated.last_diagnostics().estimated_planning);

  const auto diff = compare(est_result.c, exact_result.c, 0.0);  // bitwise
  EXPECT_FALSE(diff.has_value()) << diff->description;
  const auto oracle = compare(est_result.c, gustavson_spgemm(a, b), 0.0);
  EXPECT_FALSE(oracle.has_value()) << oracle->description;
  return estimated.last_diagnostics();
}

TEST(Estimator, SamplingDeterministicUnderFixedSeedAndThreadCount) {
  const Csr a = gen::power_law(700, 700, 9, 1.8, 160, 8101);
  const Csr b = gen::power_law(700, 700, 8, 1.9, 160, 8103);
  SpeckConfig cfg;  // default estimator_seed
  const sim::DeviceSpec device = sim::DeviceSpec::titan_v();
  const sim::CostModel model;

  ThreadPool pool1(1);
  ThreadPool pool8(8);
  sim::Launch l1("row_estimator", device, model);
  sim::Launch l2("row_estimator", device, model);
  sim::Launch l3("row_estimator", device, model);
  const RowEstimate serial = estimate_rows(a, b, cfg, l1, &pool1);
  const RowEstimate again = estimate_rows(a, b, cfg, l2, &pool1);
  const RowEstimate parallel = estimate_rows(a, b, cfg, l3, &pool8);

  // Same seed => identical estimates, run-to-run and at any thread count.
  EXPECT_EQ(serial.row_nnz_estimate, again.row_nnz_estimate);
  EXPECT_EQ(serial.analysis.products, again.analysis.products);
  EXPECT_EQ(serial.row_nnz_estimate, parallel.row_nnz_estimate);
  EXPECT_EQ(serial.analysis.products, parallel.analysis.products);
  EXPECT_EQ(serial.analysis.longest_b_row, parallel.analysis.longest_b_row);
}

TEST(Estimator, EstimatesAreBoundedAndConservative) {
  const Csr a = gen::power_law(500, 500, 10, 1.7, 200, 8105);
  SpeckConfig cfg;
  sim::Launch launch("row_estimator", sim::DeviceSpec::titan_v(),
                     sim::CostModel{});
  const RowEstimate est = estimate_rows(a, a, cfg, launch);
  ASSERT_EQ(est.row_nnz_estimate.size(), static_cast<std::size_t>(a.rows()));
  for (std::size_t r = 0; r < est.row_nnz_estimate.size(); ++r) {
    EXPECT_GE(est.row_nnz_estimate[r], 0);
    EXPECT_LE(est.row_nnz_estimate[r], a.cols());
    // An estimate is only 0 when the row produces nothing at all.
    if (a.row_length(static_cast<index_t>(r)) > 0 &&
        est.analysis.products[r] > 0) {
      EXPECT_GE(est.row_nnz_estimate[r], 1);
    }
  }
}

TEST(Estimator, MultiplyBitIdenticalToExactAcrossThreadCounts) {
  const Csr a = gen::power_law(800, 800, 9, 1.8, 180, 8107);
  const Csr b = gen::power_law(800, 800, 8, 1.9, 180, 8109);
  for (const int threads : {1, 8}) {
    SCOPED_TRACE(threads);
    SpeckConfig cfg;
    cfg.host_threads = threads;
    check_estimated_matches_exact(cfg, a, b);
  }
}

TEST(Estimator, MultiplyBitIdenticalOnStructuredMatrices) {
  // Banded/stencil structures exercise the dense and direct row methods.
  const Csr grid = gen::stencil_2d(40, 40);
  const Csr band = gen::banded(600, 10, 7, 8111);
  SpeckConfig cfg;
  cfg.host_threads = 4;
  check_estimated_matches_exact(cfg, grid, grid);
  check_estimated_matches_exact(cfg, band, band);
}

TEST(Estimator, ForcedUnderflowFallsBackBitIdentical) {
  const Csr a = gen::power_law(600, 600, 9, 1.8, 150, 8113);
  for (const int threads : {1, 8}) {
    SCOPED_TRACE(threads);
    SpeckConfig cfg;
    cfg.host_threads = threads;
    // Scale every sampled estimate to a fraction of the true size: most
    // rows underflow their staging slot and re-run the exact fallback.
    cfg.faults.estimator_scale = 0.05;
    const SpeckDiagnostics diag = check_estimated_matches_exact(cfg, a, a);
    EXPECT_GT(diag.numeric.estimate_underflow_rows, 0)
        << "estimator-scale=0.05 must force fallback re-runs";
  }
}

TEST(Estimator, UnderflowCounterBoundedOnHonestEstimates) {
  const Csr a = gen::power_law(800, 800, 9, 1.8, 180, 8115);
  SpeckConfig cfg;
  cfg.planning = PlanningMode::kEstimated;
  Speck sp = make_speck(cfg);
  const SpGemmResult result = sp.multiply(a, a);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  // The safety margin keeps the fallback the exception, not the rule.
  const double rate =
      static_cast<double>(sp.last_diagnostics().numeric.estimate_underflow_rows) /
      static_cast<double>(a.rows());
  EXPECT_LT(rate, 0.5) << "more than half the rows underflowed their estimate";
}

TEST(Estimator, EstimatedPlanReplaysBitIdentical) {
  const Csr a = gen::power_law(600, 600, 8, 1.9, 150, 8117);
  SpeckConfig cfg;
  cfg.plan_cache = false;
  cfg.planning = PlanningMode::kEstimated;
  Speck planner = make_speck(cfg);
  cfg.planning = PlanningMode::kExact;
  Speck exact = make_speck(cfg);

  const SpGemmResult full = exact.multiply(a, a);
  ASSERT_TRUE(full.ok()) << full.failure_reason;

  const SpeckPlan plan = planner.plan(a, a);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;
  EXPECT_TRUE(plan.diagnostics.estimated_planning);
  const SpGemmResult replay = planner.multiply_with_plan(plan, a, a);
  ASSERT_TRUE(replay.ok()) << replay.failure_reason;
  EXPECT_TRUE(planner.last_diagnostics().plan_used);
  EXPECT_FALSE(planner.last_diagnostics().plan_fallback)
      << planner.last_diagnostics().plan_fallback_reason;
  const auto diff = compare(replay.c, full.c, 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Estimator, PlanFingerprintSeparatesPlanningModes) {
  SpeckConfig exact_cfg;
  exact_cfg.planning = PlanningMode::kExact;
  SpeckConfig est_cfg = exact_cfg;
  est_cfg.planning = PlanningMode::kEstimated;
  EXPECT_NE(planning_config_hash(exact_cfg), planning_config_hash(est_cfg));

  // Every estimator knob is planning-relevant in the hash.
  SpeckConfig knobs = est_cfg;
  knobs.estimator_samples *= 2;
  EXPECT_NE(planning_config_hash(est_cfg), planning_config_hash(knobs));
  knobs = est_cfg;
  knobs.estimator_safety_margin += 0.5;
  EXPECT_NE(planning_config_hash(est_cfg), planning_config_hash(knobs));
  knobs = est_cfg;
  knobs.estimator_seed ^= 1;
  EXPECT_NE(planning_config_hash(est_cfg), planning_config_hash(knobs));
  knobs = est_cfg;
  knobs.faults.estimator_scale = 0.5;
  EXPECT_NE(planning_config_hash(est_cfg), planning_config_hash(knobs));
}

TEST(Estimator, PlanCacheNeverConflatesPlanningModes) {
  const Csr a = gen::random_uniform(300, 300, 6, 8119);
  SpeckConfig cfg;
  cfg.planning = PlanningMode::kEstimated;
  Speck estimated = make_speck(cfg);
  const SpeckPlan built = estimated.plan(a, a);
  ASSERT_TRUE(built.complete) << built.incomplete_reason;

  PlanCache cache(1, 64 << 20);
  auto shared = std::make_shared<SpeckPlan>(built);
  cache.insert(shared);
  EXPECT_NE(cache.find(plan_fingerprint(a, a, cfg)), nullptr);

  cfg.planning = PlanningMode::kExact;
  EXPECT_EQ(cache.find(plan_fingerprint(a, a, cfg)), nullptr)
      << "an estimated plan must never serve an exact-mode lookup";
}

TEST(Estimator, FaultSpecParsesEstimatorScale) {
  const FaultSpec spec = parse_fault_spec("estimator-scale=0.25");
  EXPECT_DOUBLE_EQ(spec.estimator_scale, 0.25);
  EXPECT_TRUE(spec.enabled());
  EXPECT_NE(describe(spec).find("estimator-scale"), std::string::npos);

  const FaultInjector injector(spec);
  EXPECT_EQ(injector.scale_sampled_estimate(100), 25);
  EXPECT_EQ(injector.scale_sampled_estimate(0), 0);
  EXPECT_THROW(parse_fault_spec("estimator-scale=-1"), InvalidArgument);
}

TEST(Estimator, ConfigValidatesEstimatorKnobs) {
  SpeckConfig cfg;
  cfg.estimator_samples = 0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg = SpeckConfig{};
  cfg.estimator_safety_margin = 0.5;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg = SpeckConfig{};
  cfg.estimator_safety_margin = 17.0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
}

TEST(Estimator, PlanningModeParsingAndResolution) {
  EXPECT_EQ(parse_planning_mode("exact"), PlanningMode::kExact);
  EXPECT_EQ(parse_planning_mode("estimated"), PlanningMode::kEstimated);
  EXPECT_EQ(parse_planning_mode("auto"), PlanningMode::kAuto);
  EXPECT_FALSE(parse_planning_mode("bogus").has_value());
  EXPECT_STREQ(planning_mode_name(PlanningMode::kEstimated), "estimated");

  // Concrete modes resolve to themselves regardless of the environment.
  EXPECT_EQ(resolve_planning(PlanningMode::kExact), PlanningMode::kExact);
  EXPECT_EQ(resolve_planning(PlanningMode::kEstimated),
            PlanningMode::kEstimated);
#if !defined(_WIN32)
  // kAuto follows SPECK_PLANNING, defaulting to exact.
  const char* saved = std::getenv("SPECK_PLANNING");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::setenv("SPECK_PLANNING", "estimated", 1);
  EXPECT_EQ(resolve_planning(PlanningMode::kAuto), PlanningMode::kEstimated);
  ::unsetenv("SPECK_PLANNING");
  EXPECT_EQ(resolve_planning(PlanningMode::kAuto), PlanningMode::kExact);
  if (saved != nullptr) ::setenv("SPECK_PLANNING", saved_value.c_str(), 1);
#endif
}

}  // namespace
}  // namespace speck
