// Randomized differential testing: seeded sweeps over generator parameters,
// every algorithm against the exact oracle. Complements the corpus tests
// with broader random coverage of shapes, densities and structures.
#include <gtest/gtest.h>

#include "baselines/suite.h"
#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "matrix/permute.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

namespace speck {
namespace {

const sim::DeviceSpec kDevice = sim::DeviceSpec::titan_v();
const sim::CostModel kModel;

/// Builds a random matrix whose shape/structure are derived from the seed.
Csr random_matrix(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto rows = static_cast<index_t>(20 + rng.next_below(600));
  switch (rng.next_below(6)) {
    case 0:
      return gen::random_uniform(rows, rows,
                                 static_cast<index_t>(1 + rng.next_below(12)), seed);
    case 1:
      return gen::banded(rows, static_cast<index_t>(2 + rng.next_below(20)),
                         static_cast<index_t>(1 + rng.next_below(8)), seed);
    case 2:
      return gen::power_law(rows, rows, static_cast<index_t>(2 + rng.next_below(8)),
                            1.5 + rng.next_double(), rows / 2 + 1, seed);
    case 3:
      return gen::block_diagonal(static_cast<index_t>(1 + rng.next_below(6)),
                                 static_cast<index_t>(8 + rng.next_below(40)),
                                 0.2 + 0.6 * rng.next_double(), seed);
    case 4:
      return gen::single_entry_mix(rows, rows, rng.next_double(),
                                   static_cast<index_t>(2 + rng.next_below(10)), seed);
    default:
      return gen::skewed_rows(rows, rows, 0.05,
                              static_cast<index_t>(16 + rng.next_below(200)),
                              static_cast<index_t>(1 + rng.next_below(4)), seed);
  }
}

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, AllAlgorithmsMatchOracle) {
  const std::uint64_t seed = GetParam();
  const Csr a = random_matrix(seed);
  const Csr b = random_matrix(seed + 1000000);
  // Make shapes compatible: multiply A by a matrix with rows == A.cols().
  const Csr b_fit = a.cols() == b.rows()
                        ? b
                        : gen::random_uniform(a.cols(), a.cols(), 4, seed + 7);
  const Csr expected = gustavson_spgemm(a, b_fit);

  for (const auto& algorithm : baselines::make_all_algorithms(kDevice, kModel)) {
    const SpGemmResult result = algorithm->multiply(a, b_fit);
    if (!result.ok()) {
      EXPECT_EQ(result.status, SpGemmStatus::kUnsupported) << algorithm->name();
      continue;
    }
    const auto diff = compare(result.c, expected, 1e-8);
    EXPECT_FALSE(diff.has_value())
        << algorithm->name() << " seed " << seed << ": " << diff->description;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

/// spECK must be permutation-consistent: P(AB)Pᵀ == (PAPᵀ)(PBPᵀ).
class PermutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationSweep, SpeckCommutesWithSymmetricPermutation) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const auto n = static_cast<index_t>(50 + rng.next_below(300));
  const Csr a = gen::random_uniform(n, n, 5, seed + 3);
  const Csr b = gen::banded(n, 8, 4, seed + 5);
  const Permutation p = random_permutation(n, seed + 11);

  Speck speck(kDevice, kModel);
  const SpGemmResult plain = speck.multiply(a, b);
  ASSERT_TRUE(plain.ok());
  const SpGemmResult permuted =
      speck.multiply(permute_symmetric(a, p), permute_symmetric(b, p));
  ASSERT_TRUE(permuted.ok());
  const auto diff = compare(permuted.c, permute_symmetric(plain.c, p), 1e-9);
  EXPECT_FALSE(diff.has_value()) << "seed " << seed << ": " << diff->description;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationSweep,
                         ::testing::Range<std::uint64_t>(100, 110));

/// Scaling linearity: (alpha A)(B) == alpha (A B).
class ScalingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingSweep, SpeckIsLinearInA) {
  const std::uint64_t seed = GetParam();
  const Csr a = gen::power_law(200, 200, 6, 1.8, 60, seed);
  const Csr b = gen::random_uniform(200, 200, 4, seed + 13);
  Speck speck(kDevice, kModel);
  const SpGemmResult base = speck.multiply(a, b);
  ASSERT_TRUE(base.ok());
  const SpGemmResult scaled_run = speck.multiply(scaled(a, -2.5), b);
  ASSERT_TRUE(scaled_run.ok());
  const auto diff = compare(scaled_run.c, scaled(base.c, -2.5), 1e-9);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingSweep,
                         ::testing::Range<std::uint64_t>(200, 206));

}  // namespace
}  // namespace speck
