// Tests for the semiring SpGEMM layer: plus-times equivalence with the
// oracle, min-plus shortest paths against Dijkstra, boolean reachability
// against BFS.
#include <gtest/gtest.h>

#include <cmath>
#include <queue>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "ref/semiring.h"

namespace speck {
namespace {

TEST(Semiring, PlusTimesMatchesGustavson) {
  const Csr a = gen::random_uniform(70, 70, 5, 1501);
  const Csr b = gen::banded(70, 8, 4, 1503);
  const Csr via_semiring = semiring_spgemm<PlusTimes>(a, b);
  const Csr via_oracle = gustavson_spgemm(a, b);
  const auto diff = compare(via_semiring, via_oracle, 1e-12);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

/// Small weighted digraph with known shortest paths.
Csr path_graph() {
  // 0 -> 1 (1), 1 -> 2 (1), 0 -> 2 (5): shortest 0->2 is 2 via 1.
  Coo coo(3, 3);
  for (index_t v = 0; v < 3; ++v) coo.add(v, v, 0.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 2, 1.0);
  coo.add(0, 2, 5.0);
  return coo.to_csr();
}

TEST(Semiring, MinPlusRelaxesPaths) {
  const Csr d = path_graph();
  const Csr squared = semiring_spgemm<MinPlus>(d, d);
  // Entry (0,2) must now be the relaxed 2.0 (0->1->2), not the direct 5.0.
  bool found = false;
  const auto cols = squared.row_cols(0);
  const auto vals = squared.row_vals(0);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == 2) {
      EXPECT_DOUBLE_EQ(vals[i], 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

/// Dijkstra reference on an adjacency CSR with 0-weight self loops.
std::vector<value_t> dijkstra(const Csr& g, index_t source) {
  std::vector<value_t> dist(static_cast<std::size_t>(g.rows()),
                            std::numeric_limits<value_t>::infinity());
  using Item = std::pair<value_t, index_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[static_cast<std::size_t>(source)] = 0.0;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, v] = queue.top();
    queue.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    const auto cols = g.row_cols(v);
    const auto vals = g.row_vals(v);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const value_t candidate = d + vals[i];
      if (candidate < dist[static_cast<std::size_t>(cols[i])]) {
        dist[static_cast<std::size_t>(cols[i])] = candidate;
        queue.emplace(candidate, cols[i]);
      }
    }
  }
  return dist;
}

TEST(Semiring, ApspMatchesDijkstra) {
  // Random weighted digraph, repeated tropical squaring until fixpoint.
  const index_t n = 60;
  Xoshiro256 rng(1507);
  Coo coo(n, n);
  for (index_t v = 0; v < n; ++v) {
    coo.add(v, v, 0.0);
    for (int e = 0; e < 3; ++e) {
      coo.add(v, static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n))),
              rng.next_double(0.5, 4.0));
    }
  }
  Csr graph = coo.to_csr();
  Csr dist = graph;
  for (int step = 0; step < 7; ++step) {  // 2^7 > 60 hops
    dist = semiring_add<MinPlus>(dist, semiring_spgemm<MinPlus>(dist, dist));
  }
  for (const index_t source : {index_t{0}, index_t{17}, index_t{59}}) {
    const auto expected = dijkstra(graph, source);
    const auto cols = dist.row_cols(source);
    const auto vals = dist.row_vals(source);
    std::vector<value_t> measured(static_cast<std::size_t>(n),
                                  std::numeric_limits<value_t>::infinity());
    for (std::size_t i = 0; i < cols.size(); ++i) {
      measured[static_cast<std::size_t>(cols[i])] = vals[i];
    }
    for (index_t v = 0; v < n; ++v) {
      if (std::isinf(expected[static_cast<std::size_t>(v)])) {
        EXPECT_TRUE(std::isinf(measured[static_cast<std::size_t>(v)]))
            << "source " << source << " target " << v;
      } else {
        EXPECT_NEAR(measured[static_cast<std::size_t>(v)],
                    expected[static_cast<std::size_t>(v)], 1e-9)
            << "source " << source << " target " << v;
      }
    }
  }
}

TEST(Semiring, BooleanReachabilityMatchesBfs) {
  const index_t n = 80;
  Xoshiro256 rng(1511);
  Coo coo(n, n);
  for (index_t v = 0; v < n; ++v) {
    coo.add(v, v, 1.0);
    coo.add(v, static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n))), 1.0);
  }
  const Csr graph = coo.to_csr();
  Csr reach = graph;
  for (int step = 0; step < 7; ++step) {
    reach = semiring_add<OrAnd>(reach, semiring_spgemm<OrAnd>(reach, reach));
  }
  // BFS reference from vertex 0.
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::queue<index_t> frontier;
  visited[0] = true;
  frontier.push(0);
  while (!frontier.empty()) {
    const index_t v = frontier.front();
    frontier.pop();
    for (const index_t w : graph.row_cols(v)) {
      if (!visited[static_cast<std::size_t>(w)]) {
        visited[static_cast<std::size_t>(w)] = true;
        frontier.push(w);
      }
    }
  }
  std::vector<bool> reachable(static_cast<std::size_t>(n), false);
  for (const index_t c : reach.row_cols(0)) reachable[static_cast<std::size_t>(c)] = true;
  for (index_t v = 0; v < n; ++v) {
    EXPECT_EQ(reachable[static_cast<std::size_t>(v)],
              visited[static_cast<std::size_t>(v)])
        << "vertex " << v;
  }
  // Boolean values stay 0/1.
  for (const value_t v : reach.values()) EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(Semiring, AddUnionStructure) {
  Coo a_coo(2, 3);
  a_coo.add(0, 0, 3.0);
  a_coo.add(1, 2, 4.0);
  Coo b_coo(2, 3);
  b_coo.add(0, 0, 1.0);
  b_coo.add(0, 1, 7.0);
  const Csr sum = semiring_add<MinPlus>(a_coo.to_csr(), b_coo.to_csr());
  EXPECT_EQ(sum.nnz(), 3);
  EXPECT_DOUBLE_EQ(sum.row_vals(0)[0], 1.0);  // min(3, 1)
  EXPECT_DOUBLE_EQ(sum.row_vals(0)[1], 7.0);
  EXPECT_DOUBLE_EQ(sum.row_vals(1)[0], 4.0);
}

TEST(Semiring, AddRejectsShapeMismatch) {
  EXPECT_THROW(semiring_add<MinPlus>(Csr::zeros(2, 2), Csr::zeros(2, 3)),
               InvalidArgument);
}

}  // namespace
}  // namespace speck
