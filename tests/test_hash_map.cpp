// Unit tests for the scratchpad hash-map emulation (keys, probing, overflow).
#include <gtest/gtest.h>

#include <set>

#include "speck/hash_map.h"

namespace speck {
namespace {

TEST(CompoundKey, RoundTrip32) {
  for (const int row : {0, 5, 31}) {
    for (const index_t col : {0, 1, 12345, (index_t{1} << 27) - 1}) {
      const key64_t key = compound_key(row, col, /*wide=*/false);
      EXPECT_EQ(key_local_row(key, false), row);
      EXPECT_EQ(key_column(key, false), col);
    }
  }
}

TEST(CompoundKey, RoundTrip64) {
  for (const int row : {0, 31}) {
    for (const index_t col : {0, (index_t{1} << 27), (index_t{1} << 30)}) {
      const key64_t key = compound_key(row, col, /*wide=*/true);
      EXPECT_EQ(key_local_row(key, true), row);
      EXPECT_EQ(key_column(key, true), col);
    }
  }
}

TEST(CompoundKey, DistinctRowsDistinctKeys) {
  EXPECT_NE(compound_key(1, 100, false), compound_key(2, 100, false));
  EXPECT_NE(compound_key(0, 100, false), compound_key(0, 101, false));
}

TEST(DeviceHashMap, InsertAndCount) {
  DeviceHashMap map(64);
  EXPECT_TRUE(map.insert_key(10));
  EXPECT_FALSE(map.insert_key(10));  // duplicate
  EXPECT_TRUE(map.insert_key(11));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_FALSE(map.overflowed());
}

TEST(DeviceHashMap, AccumulateSums) {
  DeviceHashMap map(16);
  EXPECT_TRUE(map.accumulate(3, 1.5));
  EXPECT_TRUE(map.accumulate(3, 2.5));
  EXPECT_TRUE(map.accumulate(4, 1.0));
  const auto entries = map.extract();
  ASSERT_EQ(entries.size(), 2u);
  double total = 0.0;
  for (const auto& entry : entries) total += entry.value;
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(DeviceHashMap, ExtractMatchesInserted) {
  DeviceHashMap map(128);
  std::set<key64_t> expected;
  for (key64_t k = 1; k <= 100; k += 3) {
    map.insert_key(k);
    expected.insert(k);
  }
  std::set<key64_t> seen;
  for (const auto& entry : map.extract()) seen.insert(entry.key);
  EXPECT_EQ(seen, expected);
}

TEST(DeviceHashMap, ProbesGrowWithFill) {
  DeviceHashMap sparse(1024);
  DeviceHashMap dense(70);
  for (key64_t k = 1; k <= 64; ++k) {
    sparse.insert_key(k * 7919);
    dense.insert_key(k * 7919);
  }
  const double sparse_per_insert = static_cast<double>(sparse.probes()) / 64.0;
  const double dense_per_insert = static_cast<double>(dense.probes()) / 64.0;
  EXPECT_LT(sparse_per_insert, 1.5);
  EXPECT_GT(dense_per_insert, sparse_per_insert);
}

TEST(DeviceHashMap, OverflowDetected) {
  DeviceHashMap map(8);
  for (key64_t k = 1; k <= 8; ++k) EXPECT_TRUE(map.insert_key(k));
  EXPECT_TRUE(map.full());
  EXPECT_FALSE(map.insert_key(99));
  EXPECT_TRUE(map.overflowed());
  // Existing key still found even when full.
  EXPECT_FALSE(map.insert_key(4));
}

TEST(DeviceHashMap, ResetClears) {
  DeviceHashMap map(8);
  map.insert_key(1);
  map.insert_key(2);
  map.reset();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.overflowed());
  EXPECT_TRUE(map.insert_key(1));
}

TEST(DeviceHashMap, FillRate) {
  DeviceHashMap map(10);
  map.insert_key(1);
  map.insert_key(2);
  EXPECT_DOUBLE_EQ(map.fill_rate(), 0.2);
}

TEST(DeviceHashMap, RejectsZeroCapacity) {
  EXPECT_THROW(DeviceHashMap(0), InvalidArgument);
}

}  // namespace
}  // namespace speck
