// Tests for the reference layer: the exact Gustavson oracle itself (checked
// against dense arithmetic) and the MKL-like CPU baseline.
#include <gtest/gtest.h>

#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "ref/mkl_like.h"

namespace speck {
namespace {

/// Dense reference multiply for small matrices.
Csr dense_multiply(const Csr& a, const Csr& b) {
  const auto da = to_dense(a);
  const auto db = to_dense(b);
  std::vector<value_t> dc(static_cast<std::size_t>(a.rows()) *
                              static_cast<std::size_t>(b.cols()),
                          0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = 0; k < a.cols(); ++k) {
      const value_t av = da[static_cast<std::size_t>(i) * a.cols() + k];
      if (av == 0.0) continue;
      for (index_t j = 0; j < b.cols(); ++j) {
        dc[static_cast<std::size_t>(i) * b.cols() + j] +=
            av * db[static_cast<std::size_t>(k) * b.cols() + j];
      }
    }
  }
  return from_dense(a.rows(), b.cols(), dc);
}

TEST(Gustavson, MatchesDenseReference) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Csr a = gen::random_uniform(40, 35, 5, seed);
    const Csr b = gen::random_uniform(35, 50, 4, seed + 100);
    const Csr fast = gustavson_spgemm(a, b);
    const Csr slow = dense_multiply(a, b);
    const auto diff = compare(fast, slow, 1e-9);
    EXPECT_FALSE(diff.has_value()) << "seed " << seed << ": " << diff->description;
  }
}

TEST(Gustavson, StructuralCancellationKept) {
  // Values that cancel to zero still count as structural non-zeros —
  // SpGEMM is structural, matching every GPU implementation.
  Coo a_coo(1, 2);
  a_coo.add(0, 0, 1.0);
  a_coo.add(0, 1, -1.0);
  const Csr a = a_coo.to_csr();
  Coo b_coo(2, 1);
  b_coo.add(0, 0, 1.0);
  b_coo.add(1, 0, 1.0);
  const Csr b = b_coo.to_csr();
  const Csr c = gustavson_spgemm(a, b);
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.row_vals(0)[0], 0.0);
}

TEST(Gustavson, SymbolicMatchesNumeric) {
  const Csr a = gen::power_law(200, 200, 7, 1.9, 60, 901);
  const auto symbolic = gustavson_symbolic(a, a);
  const Csr c = gustavson_spgemm(a, a);
  for (index_t r = 0; r < c.rows(); ++r) {
    EXPECT_EQ(c.row_length(r), symbolic[static_cast<std::size_t>(r)]);
  }
}

TEST(Gustavson, RejectsMismatchedShapes) {
  EXPECT_THROW(gustavson_spgemm(Csr::zeros(3, 4), Csr::zeros(5, 3)), InvalidArgument);
}

TEST(MklLike, ExactResult) {
  MklLikeCpu mkl(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::banded(300, 10, 5, 903);
  const SpGemmResult result = mkl.multiply(a, a);
  ASSERT_TRUE(result.ok());
  const auto diff = compare(result.c, gustavson_spgemm(a, a));
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(MklLike, TimeScalesWithProducts) {
  MklLikeCpu mkl(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr small = gen::random_uniform(1000, 1000, 4, 905);
  const Csr large = gen::random_uniform(1000, 1000, 32, 907);
  const double t_small = mkl.multiply(small, small).seconds;
  const double t_large = mkl.multiply(large, large).seconds;
  const double p_ratio = static_cast<double>(count_products(large, large)) /
                         static_cast<double>(count_products(small, small));
  EXPECT_GT(t_large / t_small, p_ratio / 4.0);
}

TEST(MklLike, HasCallOverheadFloor) {
  MklLikeCpu mkl(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr tiny = gen::random_uniform(10, 10, 2, 909);
  EXPECT_GE(mkl.multiply(tiny, tiny).seconds, 4e-6);
}

}  // namespace
}  // namespace speck
