// End-to-end smoke test: spECK against the exact oracle on a small matrix.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

namespace speck {
namespace {

TEST(Smoke, SpeckMatchesOracle) {
  const Csr a = gen::random_uniform(200, 200, 6, 42);
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const SpGemmResult result = speck.multiply(a, a);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  const Csr expected = gustavson_spgemm(a, a);
  const auto diff = compare(result.c, expected);
  EXPECT_FALSE(diff.has_value()) << diff->description;
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.peak_memory_bytes, 0u);
}

}  // namespace
}  // namespace speck
