// Unit tests for the synthetic matrix generators and corpora.
#include <gtest/gtest.h>

#include <set>

#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"

namespace speck::gen {
namespace {

TEST(Generators, RandomUniformShapeAndDegree) {
  const Csr m = random_uniform(200, 300, 7, 1);
  EXPECT_EQ(m.rows(), 200);
  EXPECT_EQ(m.cols(), 300);
  for (index_t r = 0; r < m.rows(); ++r) EXPECT_EQ(m.row_length(r), 7);
  EXPECT_TRUE(m.coalesced());
}

TEST(Generators, Deterministic) {
  const Csr a = random_uniform(100, 100, 5, 9);
  const Csr b = random_uniform(100, 100, 5, 9);
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_TRUE(std::equal(a.col_indices().begin(), a.col_indices().end(),
                         b.col_indices().begin()));
}

TEST(Generators, BandedStaysInBand) {
  const index_t half = 15;
  const Csr m = banded(500, half, 6, 3);
  for (index_t r = 0; r < m.rows(); ++r) {
    for (const index_t c : m.row_cols(r)) {
      EXPECT_GE(c, std::max<index_t>(0, r - half));
      EXPECT_LE(c, std::min<index_t>(499, r + half));
    }
  }
}

TEST(Generators, BandedHasDiagonal) {
  const Csr m = banded(100, 5, 3, 5);
  for (index_t r = 0; r < m.rows(); ++r) {
    bool diag = false;
    for (const index_t c : m.row_cols(r)) diag = diag || c == r;
    EXPECT_TRUE(diag) << "row " << r;
  }
}

TEST(Generators, Stencil2dStructure) {
  const Csr m = stencil_2d(10, 8);
  EXPECT_EQ(m.rows(), 80);
  // Interior point has 5 entries; corner 3.
  EXPECT_EQ(m.row_length(0), 3);
  EXPECT_EQ(m.row_length(11), 5);  // (1,1) interior
  // Symmetric structure.
  EXPECT_EQ(m.nnz() % 2, 80 % 2 ? 1 : 0);
}

TEST(Generators, Stencil3dDegrees) {
  const Csr m = stencil_3d(4);
  EXPECT_EQ(m.rows(), 64);
  // Corner: 8 neighbours; interior: 27.
  EXPECT_EQ(m.row_length(0), 8);
  const index_t interior = (1 * 4 + 1) * 4 + 1;
  EXPECT_EQ(m.row_length(interior), 27);
}

TEST(Generators, PowerLawIsSkewed) {
  const Csr m = power_law(2000, 2000, 8, 1.8, 500, 7);
  index_t max_len = 0;
  for (index_t r = 0; r < m.rows(); ++r) max_len = std::max(max_len, m.row_length(r));
  const double avg = static_cast<double>(m.nnz()) / m.rows();
  EXPECT_GT(max_len, 5 * avg) << "power-law corpus must have heavy rows";
  EXPECT_GT(avg, 1.0);
}

TEST(Generators, RmatShape) {
  const Csr m = rmat(8, 4, 0.5, 0.2, 0.2, 11);
  EXPECT_EQ(m.rows(), 256);
  EXPECT_EQ(m.cols(), 256);
  EXPECT_GT(m.nnz(), 500);
  EXPECT_LE(m.nnz(), 1024);  // duplicates merged
}

TEST(Generators, BlockDiagonalStaysInBlocks) {
  const index_t block_size = 32;
  const Csr m = block_diagonal(4, block_size, 0.5, 13);
  for (index_t r = 0; r < m.rows(); ++r) {
    const index_t block = r / block_size;
    for (const index_t c : m.row_cols(r)) {
      EXPECT_EQ(c / block_size, block);
    }
  }
}

TEST(Generators, BlockDiagonalHighCompaction) {
  const Csr m = block_diagonal(4, 64, 0.8, 15);
  const offset_t products = count_products(m, m);
  const offset_t max_output = static_cast<offset_t>(m.rows()) * 64;
  EXPECT_GT(products, 4 * max_output) << "dense blocks must compact strongly";
}

TEST(Generators, SingleEntryMixFractions) {
  const Csr m = single_entry_mix(1000, 1000, 0.7, 10, 17);
  int singles = 0;
  for (index_t r = 0; r < m.rows(); ++r) singles += m.row_length(r) == 1 ? 1 : 0;
  EXPECT_GT(singles, 600);
  EXPECT_LT(singles, 800);
}

TEST(Generators, SkewedRowsTwoPopulations) {
  const Csr m = skewed_rows(1000, 1000, 0.05, 200, 3, 19);
  int heavy = 0;
  for (index_t r = 0; r < m.rows(); ++r) {
    if (m.row_length(r) > 100) ++heavy;
  }
  EXPECT_GT(heavy, 20);
  EXPECT_LT(heavy, 120);
}

TEST(Corpus, CommonCorpusNamesMatchTable4) {
  const auto corpus = common_corpus();
  ASSERT_EQ(corpus.size(), 11u);
  const std::vector<std::string> expected{
      "webbase", "hugebubbles", "mario002",   "stat96v2", "email-Enron", "cage13",
      "144",     "poisson3Da",  "QCD",        "harbor",   "TSC_OPF"};
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus[i].name, expected[i]);
  }
}

TEST(Corpus, CommonCorpusStructuralContracts) {
  for (const auto& entry : common_corpus()) {
    EXPECT_EQ(entry.a.cols(), entry.b.rows()) << entry.name;
    EXPECT_GT(entry.a.nnz(), 0) << entry.name;
    EXPECT_GT(entry.products(), 0) << entry.name;
    if (entry.square) {
      EXPECT_EQ(entry.a.rows(), entry.a.cols()) << entry.name;
    }
  }
}

TEST(Corpus, TscOpfHasHighestCompaction) {
  // Table 4: TSC_OPF's defining feature is an extreme product count
  // relative to the output size.
  const auto corpus = common_corpus();
  const auto& tsc = corpus.back();
  ASSERT_EQ(tsc.name, "TSC_OPF");
  const double compaction =
      static_cast<double>(tsc.products()) /
      static_cast<double>(std::max<offset_t>(tsc.a.nnz(), 1));
  EXPECT_GT(compaction, 50.0);
}

TEST(Corpus, Stat96v2HasShortBRows) {
  // The paper attributes nsparse's stat96v2 slowdown to very short B rows.
  for (const auto& entry : common_corpus()) {
    if (entry.name != "stat96v2") continue;
    const double avg_b_row =
        static_cast<double>(entry.b.nnz()) / entry.b.rows();
    EXPECT_LT(avg_b_row, 8.0);
    EXPECT_FALSE(entry.square);
  }
}

TEST(Corpus, EvaluationCollectionDiverse) {
  const auto corpus = evaluation_collection();
  EXPECT_GT(corpus.size(), 60u);
  std::set<std::string> names;
  offset_t min_products = std::numeric_limits<offset_t>::max();
  offset_t max_products = 0;
  for (const auto& entry : corpus) {
    EXPECT_TRUE(names.insert(entry.name).second) << "duplicate " << entry.name;
    const offset_t p = entry.products();
    min_products = std::min(min_products, p);
    max_products = std::max(max_products, p);
  }
  EXPECT_LT(min_products, 20000);
  EXPECT_GT(max_products, 1000000);
}

TEST(Corpus, TestCorpusIncludesEdgeCases) {
  const auto corpus = test_corpus();
  bool has_empty = false, has_identity = false, has_rect = false;
  for (const auto& entry : corpus) {
    has_empty = has_empty || entry.a.nnz() == 0;
    has_identity = has_identity || entry.name == "identity";
    has_rect = has_rect || !entry.square;
  }
  EXPECT_TRUE(has_empty);
  EXPECT_TRUE(has_identity);
  EXPECT_TRUE(has_rect);
}

}  // namespace
}  // namespace speck::gen

namespace speck::gen {
namespace {

TEST(Kronecker, MatchesDenseDefinition) {
  const Csr a = random_uniform(5, 4, 2, 1901);
  const Csr b = random_uniform(3, 6, 2, 1903);
  const Csr k = kronecker(a, b);
  ASSERT_EQ(k.rows(), 15);
  ASSERT_EQ(k.cols(), 24);
  const auto da = to_dense(a);
  const auto db = to_dense(b);
  const auto dk = to_dense(k);
  for (index_t ia = 0; ia < 5; ++ia) {
    for (index_t ja = 0; ja < 4; ++ja) {
      for (index_t ib = 0; ib < 3; ++ib) {
        for (index_t jb = 0; jb < 6; ++jb) {
          const value_t expected =
              da[static_cast<std::size_t>(ia) * 4 + static_cast<std::size_t>(ja)] *
              db[static_cast<std::size_t>(ib) * 6 + static_cast<std::size_t>(jb)];
          const value_t actual =
              dk[static_cast<std::size_t>(ia * 3 + ib) * 24 +
                 static_cast<std::size_t>(ja * 6 + jb)];
          ASSERT_DOUBLE_EQ(actual, expected);
        }
      }
    }
  }
}

TEST(Kronecker, MixedProductProperty) {
  // (A ⊗ B)(C ⊗ D) == (AC) ⊗ (BD)
  const Csr a = random_uniform(4, 4, 2, 1905);
  const Csr b = random_uniform(3, 3, 2, 1907);
  const Csr c = random_uniform(4, 4, 2, 1909);
  const Csr d = random_uniform(3, 3, 2, 1911);
  const Csr lhs = gustavson_spgemm(kronecker(a, b), kronecker(c, d));
  const Csr rhs = kronecker(gustavson_spgemm(a, c), gustavson_spgemm(b, d));
  const auto diff = compare(lhs, rhs, 1e-9);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Kronecker, SortedAndIdentity) {
  const Csr a = banded(10, 3, 2, 1913);
  const Csr k = kronecker(a, Csr::identity(4));
  EXPECT_TRUE(k.sorted_within_rows());
  EXPECT_EQ(k.nnz(), a.nnz() * 4);
  const Csr k2 = kronecker(Csr::identity(1), a);
  const auto diff = compare(k2, a, 0.0);
  EXPECT_FALSE(diff.has_value());
}

TEST(Kronecker, EmptyFactor) {
  const Csr k = kronecker(Csr::zeros(3, 3), random_uniform(4, 4, 2, 1915));
  EXPECT_EQ(k.nnz(), 0);
  EXPECT_EQ(k.rows(), 12);
}

}  // namespace
}  // namespace speck::gen
