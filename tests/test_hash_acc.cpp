// Unit tests for the spilling hash accumulators (paper §4.3 global-memory
// fallback), now directly testable.
#include <gtest/gtest.h>

#include "speck/hash_acc.h"

namespace speck {
namespace {

TEST(SymbolicAcc, CountsDistinctKeysWithoutSpill) {
  SymbolicHashAccumulator acc(64);
  for (key64_t k = 1; k <= 20; ++k) {
    acc.insert(compound_key(0, static_cast<index_t>(k), false));
    acc.insert(compound_key(0, static_cast<index_t>(k), false));  // duplicate
    acc.insert(compound_key(1, static_cast<index_t>(k), false));
  }
  EXPECT_FALSE(acc.spilled());
  const auto counts = acc.row_counts(2, false);
  EXPECT_EQ(counts[0], 20);
  EXPECT_EQ(counts[1], 20);
  EXPECT_EQ(acc.unique_keys(), 40u);
}

TEST(SymbolicAcc, SpillsWhenFullAndStaysExact) {
  SymbolicHashAccumulator acc(16);
  for (index_t c = 1; c <= 100; ++c) acc.insert(compound_key(0, c, false));
  EXPECT_TRUE(acc.spilled());
  EXPECT_GT(acc.moved_entries(), 0u);
  EXPECT_GT(acc.global_inserts(), 0u);
  const auto counts = acc.row_counts(1, false);
  EXPECT_EQ(counts[0], 100);
}

TEST(SymbolicAcc, DuplicatesDedupAcrossSpillBoundary) {
  SymbolicHashAccumulator acc(8);
  // Insert 1..6 locally, spill on 7..8, then repeat everything.
  for (int round = 0; round < 2; ++round) {
    for (index_t c = 1; c <= 20; ++c) acc.insert(compound_key(0, c, false));
  }
  EXPECT_EQ(acc.row_counts(1, false)[0], 20);
}

TEST(SymbolicAcc, ProbesCounted) {
  SymbolicHashAccumulator acc(1024);
  for (index_t c = 1; c <= 100; ++c) acc.insert(compound_key(0, c, false));
  EXPECT_GE(acc.probes(), 100u);
}

TEST(NumericAcc, AccumulatesValues) {
  NumericHashAccumulator acc(32);
  acc.accumulate(compound_key(0, 5, false), 1.5);
  acc.accumulate(compound_key(0, 5, false), 2.5);
  acc.accumulate(compound_key(1, 5, false), 1.0);
  const auto entries = acc.extract();
  ASSERT_EQ(entries.size(), 2u);
  double total = 0.0;
  for (const auto& entry : entries) total += entry.value;
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(NumericAcc, SpillPreservesPartialSums) {
  NumericHashAccumulator acc(8);
  // Key 3 accumulates both before and after the spill.
  acc.accumulate(compound_key(0, 3, false), 1.0);
  for (index_t c = 10; c < 30; ++c) acc.accumulate(compound_key(0, c, false), 0.5);
  ASSERT_TRUE(acc.spilled());
  acc.accumulate(compound_key(0, 3, false), 2.0);
  double key3 = 0.0;
  for (const auto& entry : acc.extract()) {
    if (key_column(entry.key, false) == 3) key3 += entry.value;
  }
  EXPECT_DOUBLE_EQ(key3, 3.0);
}

TEST(NumericAcc, ExtractCoversLocalAndGlobal) {
  NumericHashAccumulator acc(8);
  for (index_t c = 0; c < 50; ++c) acc.accumulate(compound_key(0, c + 1, false), 1.0);
  const auto entries = acc.extract();
  EXPECT_EQ(entries.size(), 50u);
}

}  // namespace
}  // namespace speck
