// Cross-module integration tests: multi-stage application pipelines built on
// the public API (the scenarios the examples demonstrate).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

namespace speck {
namespace {

Speck make_speck() { return Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}); }

TEST(Integration, MatrixPowersStayExact) {
  // A^4 via repeated squaring: errors would compound across multiplies.
  Speck speck = make_speck();
  const Csr a = gen::banded(200, 6, 3, 1101);
  const SpGemmResult a2 = speck.multiply(a, a);
  ASSERT_TRUE(a2.ok());
  const SpGemmResult a4 = speck.multiply(a2.c, a2.c);
  ASSERT_TRUE(a4.ok());
  const Csr expected = gustavson_spgemm(gustavson_spgemm(a, a),
                                        gustavson_spgemm(a, a));
  const auto diff = compare(a4.c, expected, 1e-6);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Integration, GalerkinTripleProduct) {
  // AMG coarsening: A_coarse = R * A * P with P piecewise-constant
  // aggregation and R = Pᵀ.
  Speck speck = make_speck();
  const Csr a = gen::stencil_2d(24, 24);
  const index_t fine = a.rows();
  const index_t coarse = fine / 4;
  Coo p_coo(fine, coarse);
  for (index_t i = 0; i < fine; ++i) p_coo.add(i, std::min(i / 4, coarse - 1), 1.0);
  const Csr p = p_coo.to_csr();
  const Csr r = transpose(p);

  const SpGemmResult ap = speck.multiply(a, p);
  ASSERT_TRUE(ap.ok());
  const SpGemmResult rap = speck.multiply(r, ap.c);
  ASSERT_TRUE(rap.ok());
  EXPECT_EQ(rap.c.rows(), coarse);
  EXPECT_EQ(rap.c.cols(), coarse);

  const Csr expected = gustavson_spgemm(r, gustavson_spgemm(a, p));
  const auto diff = compare(rap.c, expected, 1e-9);
  EXPECT_FALSE(diff.has_value()) << diff->description;

  // Row sums of R*A*P equal the aggregated row sums of the Poisson matrix
  // (constant vectors are preserved by piecewise-constant transfer).
  double fine_total = 0.0;
  for (const value_t v : a.values()) fine_total += v;
  double coarse_total = 0.0;
  for (const value_t v : rap.c.values()) coarse_total += v;
  EXPECT_NEAR(fine_total, coarse_total, 1e-6);
}

TEST(Integration, TriangleCountingViaA2) {
  // Triangles of an undirected graph: sum(A .* A^2) / 6.
  // Build a graph with known triangle count: two disjoint K4s (4 each).
  Coo coo(8, 8);
  auto add_edge = [&](index_t u, index_t v) {
    coo.add(u, v, 1.0);
    coo.add(v, u, 1.0);
  };
  for (index_t base : {0, 4}) {
    for (index_t i = 0; i < 4; ++i) {
      for (index_t j = i + 1; j < 4; ++j) add_edge(base + i, base + j);
    }
  }
  const Csr a = coo.to_csr();
  Speck speck = make_speck();
  const SpGemmResult a2 = speck.multiply(a, a);
  ASSERT_TRUE(a2.ok());

  double triangle_paths = 0.0;
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto a2_cols = a2.c.row_cols(r);
    const auto a2_vals = a2.c.row_vals(r);
    std::size_t j = 0;
    for (const index_t c : cols) {
      while (j < a2_cols.size() && a2_cols[j] < c) ++j;
      if (j < a2_cols.size() && a2_cols[j] == c) triangle_paths += a2_vals[j];
    }
  }
  EXPECT_NEAR(triangle_paths / 6.0, 8.0, 1e-9);  // two K4s: 2 * C(4,3) = 8
}

TEST(Integration, MarkovReachability) {
  // Two steps of a random-walk transition matrix: rows remain stochastic.
  const index_t n = 500;
  const Csr raw = gen::random_uniform(n, n, 4, 1103);
  // Normalize rows to sum 1.
  std::vector<offset_t> offsets(raw.row_offsets().begin(), raw.row_offsets().end());
  std::vector<index_t> cols(raw.col_indices().begin(), raw.col_indices().end());
  std::vector<value_t> vals(raw.values().begin(), raw.values().end());
  for (index_t r = 0; r < n; ++r) {
    value_t sum = 0.0;
    for (const value_t v : raw.row_vals(r)) sum += v;
    if (sum == 0.0) continue;
    for (offset_t i = offsets[static_cast<std::size_t>(r)];
         i < offsets[static_cast<std::size_t>(r) + 1]; ++i) {
      vals[static_cast<std::size_t>(i)] /= sum;
    }
  }
  const Csr p = Csr(n, n, std::move(offsets), std::move(cols), std::move(vals));
  Speck speck = make_speck();
  const SpGemmResult p2 = speck.multiply(p, p);
  ASSERT_TRUE(p2.ok());
  for (index_t r = 0; r < n; ++r) {
    value_t sum = 0.0;
    for (const value_t v : p2.c.row_vals(r)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << r;
  }
}

TEST(Integration, MixedAlgorithmsAgree) {
  // spECK's output feeds a second multiply computed by the oracle and vice
  // versa; both orders agree.
  Speck speck = make_speck();
  const Csr a = gen::power_law(300, 300, 6, 1.9, 80, 1105);
  const Csr b = gen::banded(300, 12, 5, 1107);
  const SpGemmResult ab_speck = speck.multiply(a, b);
  ASSERT_TRUE(ab_speck.ok());
  const Csr ab_ref = gustavson_spgemm(a, b);
  const SpGemmResult chain1 = speck.multiply(ab_speck.c, a);
  ASSERT_TRUE(chain1.ok());
  const Csr chain2 = gustavson_spgemm(ab_ref, a);
  const auto diff = compare(chain1.c, chain2, 1e-8);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

}  // namespace
}  // namespace speck
