// The zero-allocation hot path: FlatSpillMap semantics, epoch-tagged map
// reuse, accumulator begin_block() equivalence, steady-state allocation
// accounting, and the headline guarantee that per-worker workspace reuse
// keeps CSR output, simulated seconds and every PassStats counter
// bit-identical across thread counts — including under forced spill.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <new>
#include <set>
#include <vector>

#include "common/alloc_counter.h"
#include "common/fault_injection.h"
#include "gen/corpus.h"
#include "speck/flat_map.h"
#include "speck/hash_acc.h"
#include "speck/hash_map.h"
#include "speck/speck.h"
#include "speck/workspace.h"

// Counting allocator: makes PassStats::hot_path_allocs live in this binary
// (see common/alloc_counter.h). Frees are uncounted on purpose.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace speck {
namespace {

// ---------------------------------------------------------------------------
// FlatSpillMap

TEST(FlatSpillMap, InsertDeduplicates) {
  FlatSpillMap map;
  EXPECT_TRUE(map.insert(7));
  EXPECT_TRUE(map.insert(9));
  EXPECT_FALSE(map.insert(7));
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatSpillMap, AccumulateSumsPerKey) {
  FlatSpillMap map;
  map.accumulate(3, 1.5);
  map.accumulate(5, 2.0);
  map.accumulate(3, 0.5);
  std::vector<std::pair<key64_t, value_t>> entries;
  map.for_each([&](key64_t k, value_t v) { entries.emplace_back(k, v); });
  std::sort(entries.begin(), entries.end());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (std::pair<key64_t, value_t>{3, 2.0}));
  EXPECT_EQ(entries[1], (std::pair<key64_t, value_t>{5, 2.0}));
}

TEST(FlatSpillMap, GrowthKeepsEveryEntry) {
  FlatSpillMap map;
  constexpr key64_t kKeys = 10000;
  for (key64_t k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(map.insert(k * 2654435761ull));
  }
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kKeys));
  std::set<key64_t> seen;
  map.for_each([&](key64_t k, value_t) { seen.insert(k); });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kKeys));
  for (key64_t k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(seen.count(k * 2654435761ull)) << k;
  }
}

TEST(FlatSpillMap, ClearIsReusableAndKeepsStorage) {
  FlatSpillMap map;
  for (key64_t k = 0; k < 1000; ++k) map.insert(k);
  const std::size_t slots = map.slot_count();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.slot_count(), slots);
  // Old keys are forgotten: inserting them again reports them as new.
  EXPECT_TRUE(map.insert(0));
  EXPECT_TRUE(map.insert(999));
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatSpillMap, ClearedMapAllocatesNothing) {
  FlatSpillMap map;
  for (key64_t k = 0; k < 1000; ++k) map.insert(k);
  map.clear();
  const std::size_t before = detail::alloc_events_now();
  for (key64_t k = 0; k < 1000; ++k) map.insert(k);
  map.clear();
  EXPECT_EQ(detail::alloc_events_now(), before);
}

// ---------------------------------------------------------------------------
// DeviceHashMap epoch reuse

TEST(DeviceHashMapReuse, ReconfigureBehavesLikeFreshMap) {
  // A map that shrank logically (capacity 64 -> 16) must probe exactly like
  // a fresh capacity-16 map even though its storage still holds 64 slots.
  DeviceHashMap reused(64);
  for (key64_t k = 0; k < 40; ++k) reused.insert_key(k * 7);
  reused.reconfigure(16);

  DeviceHashMap fresh(16);
  for (key64_t k = 0; k < 12; ++k) {
    EXPECT_EQ(reused.insert_key(k * 13), fresh.insert_key(k * 13)) << k;
  }
  EXPECT_EQ(reused.probes(), fresh.probes());
  EXPECT_EQ(reused.size(), fresh.size());
  const auto a = reused.extract();
  const auto b = fresh.extract();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(DeviceHashMapReuse, ResetForgetsContentsInO1) {
  DeviceHashMap map(32);
  for (key64_t k = 0; k < 20; ++k) map.insert_key(k);
  map.reset();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.overflowed());
  // Every old key inserts as new again.
  EXPECT_TRUE(map.insert_key(0));
  EXPECT_TRUE(map.insert_key(19));
}

TEST(DeviceHashMapReuse, ExtractIntoAppendsInSlotOrder) {
  DeviceHashMap map(16);
  map.accumulate(3, 1.0);
  map.accumulate(9, 2.0);
  std::vector<DeviceHashMap::Entry> out;
  map.extract_into(out);
  const auto reference = map.extract();
  ASSERT_EQ(out.size(), reference.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, reference[i].key);
    EXPECT_EQ(out[i].value, reference[i].value);
  }
}

// ---------------------------------------------------------------------------
// Accumulator reuse via begin_block()

TEST(AccumulatorReuse, SymbolicReusedMatchesFresh) {
  SymbolicHashAccumulator reused;
  // Dirty the accumulator with a first block, including a spill.
  const FaultSpec spec = parse_fault_spec("hash-overflow-after=8");
  const FaultInjector injector(spec);
  reused.begin_block(64, &injector);
  for (key64_t k = 0; k < 32; ++k) reused.insert(k);
  ASSERT_TRUE(reused.spilled());

  // Second block without faults must match a freshly constructed one.
  reused.begin_block(32, nullptr);
  SymbolicHashAccumulator fresh(32, nullptr);
  for (key64_t k = 0; k < 20; ++k) {
    reused.insert(compound_key(static_cast<int>(k % 3), static_cast<index_t>(k), false));
    fresh.insert(compound_key(static_cast<int>(k % 3), static_cast<index_t>(k), false));
  }
  EXPECT_EQ(reused.spilled(), fresh.spilled());
  EXPECT_EQ(reused.probes(), fresh.probes());
  EXPECT_EQ(reused.moved_entries(), fresh.moved_entries());
  EXPECT_EQ(reused.global_inserts(), fresh.global_inserts());
  EXPECT_EQ(reused.row_counts(3, false), fresh.row_counts(3, false));
}

TEST(AccumulatorReuse, NumericReusedMatchesFreshUnderSpill) {
  const FaultSpec spec = parse_fault_spec("hash-overflow-after=8");
  const FaultInjector injector(spec);
  NumericHashAccumulator reused;
  reused.begin_block(64, &injector);
  for (key64_t k = 0; k < 32; ++k) reused.accumulate(k, 1.0);
  ASSERT_TRUE(reused.spilled());

  reused.begin_block(64, &injector);
  NumericHashAccumulator fresh(64, &injector);
  for (key64_t k = 0; k < 32; ++k) {
    reused.accumulate(k * 3, 0.5);
    fresh.accumulate(k * 3, 0.5);
  }
  EXPECT_EQ(reused.spilled(), fresh.spilled());
  EXPECT_EQ(reused.probes(), fresh.probes());
  EXPECT_EQ(reused.moved_entries(), fresh.moved_entries());
  EXPECT_EQ(reused.global_inserts(), fresh.global_inserts());
  auto sort_by_key = [](std::vector<DeviceHashMap::Entry> v) {
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    return v;
  };
  const auto a = sort_by_key(reused.extract());
  const auto b = sort_by_key(fresh.extract());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
}

TEST(AccumulatorReuse, WarmAccumulatorBlockIsAllocationFree) {
  NumericHashAccumulator acc;
  std::vector<DeviceHashMap::Entry> entries;
  // Warm-up block grows the map storage and the entry buffer.
  acc.begin_block(256, nullptr);
  for (key64_t k = 0; k < 128; ++k) acc.accumulate(k, 1.0);
  acc.extract_into(entries);
  // A same-shape block on the warm accumulator must not allocate at all.
  const std::size_t before = detail::alloc_events_now();
  acc.begin_block(256, nullptr);
  for (key64_t k = 0; k < 128; ++k) acc.accumulate(k, 2.0);
  acc.extract_into(entries);
  EXPECT_EQ(detail::alloc_events_now(), before);
  EXPECT_EQ(entries.size(), 128u);
}

// ---------------------------------------------------------------------------
// Pipeline: steady-state zero allocation and cross-thread bit-identity

struct PipelineRun {
  Csr c;
  double seconds = 0.0;
  SpeckDiagnostics diag;
};

PipelineRun run_pipeline(Speck& speck, const gen::CorpusEntry& entry) {
  SpGemmResult result = speck.multiply(entry.a, entry.b);
  EXPECT_TRUE(result.ok()) << entry.name << ": " << result.failure_reason;
  return PipelineRun{std::move(result.c), result.seconds,
                     speck.last_diagnostics()};
}

void expect_identical(const PipelineRun& serial, const PipelineRun& parallel,
                      const std::string& name, int threads) {
  SCOPED_TRACE(name + " at " + std::to_string(threads) + " threads");
  ASSERT_EQ(parallel.c.nnz(), serial.c.nnz());
  const auto so = serial.c.row_offsets();
  const auto po = parallel.c.row_offsets();
  ASSERT_TRUE(std::equal(so.begin(), so.end(), po.begin()));
  const auto sc = serial.c.col_indices();
  const auto pc = parallel.c.col_indices();
  ASSERT_TRUE(std::equal(sc.begin(), sc.end(), pc.begin()));
  const auto sv = serial.c.values();
  const auto pv = parallel.c.values();
  for (std::size_t i = 0; i < sv.size(); ++i) {
    ASSERT_EQ(sv[i], pv[i]) << "value " << i;
  }
  EXPECT_EQ(parallel.seconds, serial.seconds);
  // Every container-independent counter must match exactly: the workspace
  // maps replaced node-based containers, and any probe-sequence or spill
  // divergence would show up here. (hot_path_allocs is warm-up dependent
  // and deliberately excluded.)
  for (const bool numeric : {false, true}) {
    const PassStats& s = numeric ? serial.diag.numeric : serial.diag.symbolic;
    const PassStats& p = numeric ? parallel.diag.numeric : parallel.diag.symbolic;
    SCOPED_TRACE(numeric ? "numeric" : "symbolic");
    EXPECT_EQ(p.seconds, s.seconds);
    EXPECT_EQ(p.direct_rows, s.direct_rows);
    EXPECT_EQ(p.dense_rows, s.dense_rows);
    EXPECT_EQ(p.hash_rows, s.hash_rows);
    EXPECT_EQ(p.global_hash_blocks, s.global_hash_blocks);
    EXPECT_EQ(p.hash_probes, s.hash_probes);
    EXPECT_EQ(p.moved_entries, s.moved_entries);
    EXPECT_EQ(p.global_inserts, s.global_inserts);
  }
}

TEST(WorkspacePipeline, BitIdenticalAcrossThreadCountsWithWarmWorkspaces) {
  for (const gen::CorpusEntry& entry : gen::test_corpus()) {
    SpeckConfig serial_cfg;
    serial_cfg.host_threads = 1;
    Speck serial_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, serial_cfg);
    // Two runs on the same instance: the second uses fully warm workspaces
    // and must be bit-identical to the first (cold) one.
    const PipelineRun cold = run_pipeline(serial_speck, entry);
    const PipelineRun warm = run_pipeline(serial_speck, entry);
    expect_identical(cold, warm, entry.name + " cold-vs-warm", 1);

    for (const int threads : {2, 8}) {
      SpeckConfig cfg;
      cfg.host_threads = threads;
      Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
      expect_identical(cold, run_pipeline(speck, entry), entry.name, threads);
      expect_identical(cold, run_pipeline(speck, entry),
                       entry.name + " warm", threads);
    }
  }
}

TEST(WorkspacePipeline, BitIdenticalAcrossThreadCountsUnderForcedSpill) {
  // hash-overflow-after forces every hash block onto the global spill path,
  // exercising moved_entries/global_inserts; results and counters must still
  // match across thread counts.
  int spilled_blocks = 0;
  for (const gen::CorpusEntry& entry : gen::test_corpus()) {
    SpeckConfig serial_cfg;
    serial_cfg.host_threads = 1;
    // The spilled_blocks tally below counts exact-pipeline global hash
    // blocks; pin exact planning so SPECK_PLANNING=estimated can't zero it.
    serial_cfg.planning = PlanningMode::kExact;
    serial_cfg.faults = parse_fault_spec("hash-overflow-after=16");
    Speck serial_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, serial_cfg);
    const PipelineRun serial = run_pipeline(serial_speck, entry);
    spilled_blocks += serial.diag.symbolic.global_hash_blocks +
                      serial.diag.numeric.global_hash_blocks;

    for (const int threads : {8}) {
      SpeckConfig cfg;
      cfg.host_threads = threads;
      cfg.planning = PlanningMode::kExact;
      cfg.faults = parse_fault_spec("hash-overflow-after=16");
      Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
      expect_identical(serial, run_pipeline(speck, entry), entry.name, threads);
      expect_identical(serial, run_pipeline(speck, entry),
                       entry.name + " warm", threads);
    }
  }
  // Trivial corpus entries (identity, empty) never reach 16 keys; the spec
  // must have fired on the real matrices or this test exercised nothing.
  EXPECT_GT(spilled_blocks, 0) << "fault spec did not force any spill";
}

TEST(WorkspacePipeline, SteadyStateBlocksAreAllocationFree) {
  // After one cold multiply the instance's workspaces are warm; from then on
  // every block body must run without any heap allocation, on every further
  // multiply of the same instance (single worker: assignment deterministic).
  for (const gen::CorpusEntry& entry : gen::test_corpus()) {
    SpeckConfig cfg;
    cfg.host_threads = 1;
    Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    (void)run_pipeline(speck, entry);  // warm-up
    for (int rep = 0; rep < 2; ++rep) {
      const PipelineRun run = run_pipeline(speck, entry);
      EXPECT_EQ(run.diag.symbolic.hot_path_allocs, 0u)
          << entry.name << " rep " << rep;
      EXPECT_EQ(run.diag.numeric.hot_path_allocs, 0u)
          << entry.name << " rep " << rep;
    }
  }
}

TEST(WorkspacePipeline, NullWorkspacePoolFallbackMatches) {
  // A KernelContext without a workspace pool (external callers of
  // run_symbolic/run_numeric) must produce the same result via the
  // pass-local fallback pool. The public pipeline always sets the pool, so
  // compare a fresh instance (cold pool) with a warm one.
  const auto corpus = gen::test_corpus();
  ASSERT_FALSE(corpus.empty());
  const gen::CorpusEntry& entry = corpus.front();
  SpeckConfig cfg;
  cfg.host_threads = 1;
  Speck warm(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  (void)run_pipeline(warm, entry);
  const PipelineRun warm_run = run_pipeline(warm, entry);
  Speck cold(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  expect_identical(run_pipeline(cold, entry), warm_run, entry.name, 1);
}

TEST(WorkspacePool, EnsureGrowsAndKeepsAddressesStable) {
  WorkspacePool pool;
  pool.ensure(2);
  ASSERT_EQ(pool.size(), 2);
  KernelWorkspace* first = &pool.at(0);
  first->entries().resize(128);
  pool.ensure(8);
  EXPECT_EQ(pool.size(), 8);
  EXPECT_EQ(&pool.at(0), first);           // stable across growth
  EXPECT_EQ(pool.at(0).entries().size(), 128u);  // warm state survives
  pool.ensure(4);
  EXPECT_EQ(pool.size(), 8);  // never shrinks
}

}  // namespace
}  // namespace speck
