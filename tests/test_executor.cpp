// Tests for the inspector-executor API (structure reuse across multiplies).
#include <gtest/gtest.h>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/executor.h"

namespace speck {
namespace {

/// Same structure, fresh values.
Csr reweighted(const Csr& a, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<offset_t> offsets(a.row_offsets().begin(), a.row_offsets().end());
  std::vector<index_t> cols(a.col_indices().begin(), a.col_indices().end());
  std::vector<value_t> vals(static_cast<std::size_t>(a.nnz()));
  for (auto& v : vals) v = rng.next_double(-2.0, 2.0);
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols), std::move(vals));
}

TEST(Executor, ExecuteMatchesFullMultiply) {
  SpeckExecutor executor(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::power_law(500, 500, 8, 1.9, 120, 1801);
  const SpeckPlan plan = executor.inspect(a, a);
  const SpGemmResult result = executor.execute(plan, a, a);
  ASSERT_TRUE(result.ok());
  const auto diff = compare(result.c, gustavson_spgemm(a, a));
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Executor, ReusePlanAcrossValueChanges) {
  SpeckExecutor executor(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr base = gen::banded(400, 12, 5, 1803);
  const SpeckPlan plan = executor.inspect(base, base);
  for (const std::uint64_t seed : {1805u, 1807u, 1809u}) {
    const Csr a = reweighted(base, seed);
    const Csr b = reweighted(base, seed + 50);
    const SpGemmResult result = executor.execute(plan, a, b);
    ASSERT_TRUE(result.ok()) << seed;
    const auto diff = compare(result.c, gustavson_spgemm(a, b), 1e-9);
    EXPECT_FALSE(diff.has_value()) << "seed " << seed << ": " << diff->description;
  }
}

TEST(Executor, ExecuteIsCheaperThanFullMultiply) {
  SpeckExecutor executor(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::random_uniform(3000, 3000, 10, 1811);
  const SpeckPlan plan = executor.inspect(a, a);
  const SpGemmResult repeated = executor.execute(plan, a, a);
  ASSERT_TRUE(repeated.ok());

  Speck full(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const SpGemmResult whole = full.multiply(a, a);
  ASSERT_TRUE(whole.ok());
  EXPECT_LT(repeated.seconds, whole.seconds)
      << "execute must skip analysis/symbolic/load-balancing time";
  EXPECT_GT(plan.inspect_seconds, 0.0);
  // The amortized split covers the whole pipeline.
  EXPECT_NEAR(plan.inspect_seconds + repeated.seconds, whole.seconds,
              whole.seconds * 0.25);
}

TEST(Executor, RejectsStructuralMismatch) {
  SpeckExecutor executor(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::random_uniform(100, 100, 4, 1813);
  const SpeckPlan plan = executor.inspect(a, a);
  const Csr other = gen::random_uniform(100, 100, 5, 1815);  // different nnz
  EXPECT_THROW(executor.execute(plan, other, other), InvalidArgument);
  const Csr smaller = gen::random_uniform(90, 90, 4, 1817);
  EXPECT_THROW(executor.execute(plan, smaller, smaller), InvalidArgument);
}

TEST(Executor, PlanRecordsFingerprint) {
  SpeckExecutor executor(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::rectangular_lp(60, 500, 6, 1819);
  const Csr b = transpose(a);
  const SpeckPlan plan = executor.inspect(a, b);
  EXPECT_EQ(plan.fingerprint.a_rows, 60);
  EXPECT_EQ(plan.fingerprint.a_cols, 500);
  EXPECT_EQ(plan.fingerprint.b_cols, 60);
  EXPECT_EQ(plan.fingerprint.a_nnz, a.nnz());
  EXPECT_EQ(static_cast<index_t>(plan.row_nnz.size()), a.rows());
}

TEST(Executor, EmptyMatrixPlan) {
  SpeckExecutor executor(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr z = Csr::zeros(32, 32);
  const SpeckPlan plan = executor.inspect(z, z);
  const SpGemmResult result = executor.execute(plan, z, z);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.c.nnz(), 0);
}

}  // namespace
}  // namespace speck

namespace speck {
namespace {

TEST(SymbolicEstimate, MatchesOracleCounts) {
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::power_law(300, 300, 7, 1.8, 80, 1901);
  const SymbolicEstimate estimate = symbolic_estimate(speck, a, a);
  const auto expected = gustavson_symbolic(a, a);
  ASSERT_EQ(estimate.row_nnz.size(), expected.size());
  offset_t total = 0;
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(estimate.row_nnz[r], expected[r]) << "row " << r;
    total += expected[r];
  }
  EXPECT_EQ(estimate.c_nnz, total);
  EXPECT_GT(estimate.seconds, 0.0);
  EXPECT_GT(estimate.products, estimate.c_nnz);  // compaction >= 1
}

TEST(SymbolicEstimate, CheaperThanFullMultiply) {
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::random_uniform(3000, 3000, 10, 1903);
  const SymbolicEstimate estimate = symbolic_estimate(speck, a, a);
  const SpGemmResult full = speck.multiply(a, a);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(estimate.seconds, full.seconds);
}

}  // namespace
}  // namespace speck
