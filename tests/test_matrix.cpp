// Unit tests for src/matrix: CSR/COO containers, ops, Matrix Market IO,
// statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/csr.h"
#include "matrix/io_mtx.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"

namespace speck {
namespace {

Csr small_example() {
  // [[1 0 2]
  //  [0 0 0]
  //  [3 4 0]]
  Coo coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(0, 2, 2.0);
  coo.add(2, 0, 3.0);
  coo.add(2, 1, 4.0);
  return coo.to_csr();
}

TEST(Csr, EmptyDefault) {
  Csr m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(Csr, ZerosAndIdentity) {
  const Csr z = Csr::zeros(4, 7);
  EXPECT_EQ(z.rows(), 4);
  EXPECT_EQ(z.cols(), 7);
  EXPECT_EQ(z.nnz(), 0);

  const Csr i = Csr::identity(5);
  EXPECT_EQ(i.nnz(), 5);
  for (index_t r = 0; r < 5; ++r) {
    ASSERT_EQ(i.row_length(r), 1);
    EXPECT_EQ(i.row_cols(r)[0], r);
    EXPECT_EQ(i.row_vals(r)[0], 1.0);
  }
}

TEST(Csr, RowAccessors) {
  const Csr m = small_example();
  EXPECT_EQ(m.row_length(0), 2);
  EXPECT_EQ(m.row_length(1), 0);
  EXPECT_EQ(m.row_length(2), 2);
  EXPECT_EQ(m.row_cols(2)[1], 1);
  EXPECT_EQ(m.row_vals(2)[1], 4.0);
}

TEST(Csr, ValidationRejectsBadOffsets) {
  EXPECT_THROW(Csr(2, 2, {0, 1}, {0}, {1.0}), InvalidArgument);       // missing offset
  EXPECT_THROW(Csr(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}), InvalidArgument);  // decreasing
  EXPECT_THROW(Csr(2, 2, {0, 1, 2}, {0, 5}, {1.0, 1.0}), InvalidArgument);  // col range
  EXPECT_THROW(Csr(2, 2, {1, 1, 2}, {0, 1}, {1.0, 1.0}), InvalidArgument);  // start != 0
}

TEST(Csr, SortRowsAndSortedCheck) {
  Csr m(2, 4, {0, 3, 4}, {3, 0, 2, 1}, {30.0, 0.0, 20.0, 10.0});
  EXPECT_FALSE(m.sorted_within_rows());
  m.sort_rows();
  EXPECT_TRUE(m.sorted_within_rows());
  EXPECT_EQ(m.row_cols(0)[0], 0);
  EXPECT_EQ(m.row_vals(0)[0], 0.0);
  EXPECT_EQ(m.row_cols(0)[2], 3);
  EXPECT_EQ(m.row_vals(0)[2], 30.0);
}

TEST(Csr, ByteSizeCountsAllArrays) {
  const Csr m = small_example();
  EXPECT_EQ(m.byte_size(), 4 * sizeof(offset_t) + 4 * sizeof(index_t) +
                               4 * sizeof(value_t));
}

TEST(Coo, MergesDuplicates) {
  Coo coo(2, 2);
  coo.add(0, 1, 1.5);
  coo.add(0, 1, 2.5);
  coo.add(1, 0, 1.0);
  const Csr m = coo.to_csr();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.row_vals(0)[0], 4.0);
}

TEST(Coo, RejectsOutOfRange) {
  Coo coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), InvalidArgument);
  EXPECT_THROW(coo.add(0, -1, 1.0), InvalidArgument);
}

TEST(Coo, ToCsrSortedWithinRows) {
  Coo coo(1, 10);
  coo.add(0, 7, 1.0);
  coo.add(0, 2, 1.0);
  coo.add(0, 5, 1.0);
  const Csr m = coo.to_csr();
  EXPECT_TRUE(m.sorted_within_rows());
}

TEST(Ops, TransposeSmall) {
  const Csr m = small_example();
  const Csr t = transpose(m);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), m.nnz());
  // t[0] = {m[0][0], m[2][0]} = {1, 3}
  ASSERT_EQ(t.row_length(0), 2);
  EXPECT_EQ(t.row_vals(0)[0], 1.0);
  EXPECT_EQ(t.row_vals(0)[1], 3.0);
  EXPECT_TRUE(t.sorted_within_rows());
}

TEST(Ops, TransposeInvolution) {
  const Csr m = gen::random_uniform(50, 70, 5, 7);
  const auto diff = compare(transpose(transpose(m)), m);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Ops, CompareDetectsDifferences) {
  const Csr m = small_example();
  EXPECT_FALSE(compare(m, m).has_value());
  EXPECT_TRUE(compare(m, Csr::zeros(3, 3)).has_value());
  EXPECT_TRUE(compare(m, Csr::zeros(3, 4)).has_value());
  const Csr scaled_m = scaled(m, 1.0 + 1e-3);
  EXPECT_TRUE(compare(m, scaled_m, 1e-9).has_value());
  EXPECT_FALSE(compare(m, scaled_m, 1e-2).has_value());
}

TEST(Ops, DenseRoundTrip) {
  const Csr m = gen::random_uniform(20, 30, 4, 99);
  const auto dense = to_dense(m);
  const Csr back = from_dense(20, 30, dense);
  const auto diff = compare(m, back);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Ops, Scaled) {
  const Csr m = small_example();
  const Csr s = scaled(m, -2.0);
  EXPECT_DOUBLE_EQ(s.row_vals(0)[1], -4.0);
}

TEST(IoMtx, RoundTrip) {
  const Csr m = gen::random_uniform(25, 40, 3, 55);
  std::stringstream buffer;
  write_matrix_market(buffer, m);
  const Csr read_back = read_matrix_market(buffer);
  const auto diff = compare(m, read_back);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(IoMtx, SymmetricExpansion) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const Csr m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 3);  // (1,0), (0,1) mirrored, (2,2) diagonal once
  EXPECT_DOUBLE_EQ(m.row_vals(0)[0], 5.0);
  EXPECT_DOUBLE_EQ(m.row_vals(1)[0], 5.0);
}

TEST(IoMtx, PatternField) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const Csr m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.row_vals(0)[0], 1.0);
}

TEST(IoMtx, SkewSymmetric) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const Csr m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.row_vals(0)[0], -3.0);
  EXPECT_DOUBLE_EQ(m.row_vals(1)[0], 3.0);
}

TEST(IoMtx, RejectsMalformed) {
  std::stringstream no_banner("1 1 0\n");
  EXPECT_THROW(read_matrix_market(no_banner), InvalidArgument);
  std::stringstream bad_field(
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(bad_field), InvalidArgument);
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), InvalidArgument);
}

TEST(MatrixStats, CountProducts) {
  const Csr i = Csr::identity(10);
  EXPECT_EQ(count_products(i, i), 10);
  const Csr m = small_example();
  // row0 references cols {0,2} -> rows 0 (len 2) and 2 (len 2) => 4
  // row2 references cols {0,1} -> rows 0 (len 2) and 1 (len 0) => 2
  EXPECT_EQ(count_products(m, m), 6);
}

TEST(MatrixStats, AnalyzeMatrix) {
  const Csr m = small_example();
  const MatrixStats s = analyze_matrix(m);
  EXPECT_EQ(s.rows, 3);
  EXPECT_EQ(s.nnz, 4);
  EXPECT_EQ(s.row_lengths.max, 2);
  EXPECT_EQ(s.products, 6);
}

TEST(MatrixStats, AsciiSpyShape) {
  const Csr m = gen::banded(100, 5, 3, 3);
  const std::string spy = ascii_spy(m, 16);
  int newlines = 0;
  for (const char ch : spy) newlines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(newlines, 16);
  // A banded matrix must put ink on the diagonal.
  EXPECT_NE(spy.find_first_not_of(" \n"), std::string::npos);
}

}  // namespace
}  // namespace speck

namespace speck {
namespace {

/// Fuzz-ish robustness: mutated Matrix Market inputs must throw a typed
/// error, never crash or silently succeed.
TEST(IoMtxFuzz, MalformedInputsThrowTypedErrors) {
  const std::vector<std::string> bad_inputs = {
      "",                                                       // empty
      "%%MatrixMarket\n",                                       // truncated banner
      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n",  // array format
      "%%MatrixMarket matrix coordinate real general\n",        // no size line
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",  // row oob
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1.0\n",  // col oob
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",  // short
      "%%MatrixMarket matrix coordinate hermitian general\n1 1 0\n",      // field
      "%%MatrixMarket vector coordinate real general\n1 1 0\n",           // object
  };
  for (const std::string& text : bad_inputs) {
    std::istringstream in(text);
    EXPECT_THROW(read_matrix_market(in), InvalidArgument) << text;
  }
}

TEST(IoMtxFuzz, WhitespaceAndCommentsTolerated) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "%% another\n"
      "3 3 2\n"
      "1 1 1.5\n"
      "3 2 -2.0\n");
  const Csr m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.row_vals(2)[0], -2.0);
}

}  // namespace
}  // namespace speck
