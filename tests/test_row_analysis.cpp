// Unit tests for the lightweight row analysis (paper Algorithm 1).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "speck/row_analysis.h"

namespace speck {
namespace {

RowAnalysis analyze(const Csr& a, const Csr& b) {
  sim::CostModel model;
  sim::Launch launch("analysis", sim::DeviceSpec::titan_v(), model);
  return analyze_rows(a, b, launch);
}

TEST(RowAnalysis, ProductsMatchOracle) {
  const Csr a = gen::random_uniform(120, 120, 6, 401);
  const RowAnalysis r = analyze(a, a);
  EXPECT_EQ(r.total_products, count_products(a, a));
  offset_t sum = 0, max = 0;
  for (const offset_t p : r.products) {
    sum += p;
    max = std::max(max, p);
  }
  EXPECT_EQ(sum, r.total_products);
  EXPECT_EQ(max, r.max_products);
  EXPECT_NEAR(r.avg_products, static_cast<double>(sum) / a.rows(), 1e-12);
}

TEST(RowAnalysis, PerRowValuesHandComputed) {
  // A = [[x x .]    B row lengths: 2, 1, 3
  //      [. . x]]
  Coo a_coo(2, 3);
  a_coo.add(0, 0, 1.0);
  a_coo.add(0, 1, 1.0);
  a_coo.add(1, 2, 1.0);
  const Csr a = a_coo.to_csr();
  Coo b_coo(3, 5);
  b_coo.add(0, 1, 1.0);
  b_coo.add(0, 4, 1.0);
  b_coo.add(1, 2, 1.0);
  b_coo.add(2, 0, 1.0);
  b_coo.add(2, 2, 1.0);
  b_coo.add(2, 3, 1.0);
  const Csr b = b_coo.to_csr();

  const RowAnalysis r = analyze(a, b);
  EXPECT_EQ(r.products[0], 3);           // 2 + 1
  EXPECT_EQ(r.products[1], 3);           // 3
  EXPECT_EQ(r.longest_b_row[0], 2);
  EXPECT_EQ(r.longest_b_row[1], 3);
  EXPECT_EQ(r.col_min[0], 1);
  EXPECT_EQ(r.col_max[0], 4);
  EXPECT_EQ(r.col_min[1], 0);
  EXPECT_EQ(r.col_max[1], 3);
  EXPECT_EQ(r.max_products, 3);
}

TEST(RowAnalysis, ColumnRangeBoundsOutput) {
  // For every row of C = A*B, all output columns lie in [col_min, col_max].
  const Csr a = gen::banded(80, 8, 4, 403);
  const RowAnalysis r = analyze(a, a);
  for (index_t row = 0; row < a.rows(); ++row) {
    for (const index_t k : a.row_cols(row)) {
      for (const index_t c : a.row_cols(k)) {
        EXPECT_GE(c, r.col_min[static_cast<std::size_t>(row)]);
        EXPECT_LE(c, r.col_max[static_cast<std::size_t>(row)]);
      }
    }
  }
}

TEST(RowAnalysis, EmptyRowsAreZero) {
  Coo coo(4, 4);
  coo.add(1, 2, 1.0);
  const Csr a = coo.to_csr();
  const RowAnalysis r = analyze(a, a);
  EXPECT_EQ(r.products[0], 0);
  EXPECT_EQ(r.products[2], 0);
  EXPECT_EQ(r.longest_b_row[0], 0);
  // Row 1 references row 2 of B, which is empty.
  EXPECT_EQ(r.products[1], 0);
}

TEST(RowAnalysis, EmptyMatrix) {
  const Csr a = Csr::zeros(10, 10);
  const RowAnalysis r = analyze(a, a);
  EXPECT_EQ(r.total_products, 0);
  EXPECT_EQ(r.max_products, 0);
  EXPECT_EQ(r.rows, 10);
}

TEST(RowAnalysis, ChargesCost) {
  const Csr a = gen::random_uniform(1000, 1000, 8, 405);
  sim::CostModel model;
  sim::Launch launch("analysis", sim::DeviceSpec::titan_v(), model);
  analyze_rows(a, a, launch);
  EXPECT_GT(launch.block_count(), 0);
  EXPECT_GT(launch.finish().seconds, 0.0);
}

TEST(RowAnalysis, CostIsLinearInNnz) {
  // O(NNZ_A): doubling the matrix roughly doubles the analysis time.
  sim::CostModel model;
  const auto seconds_for = [&](index_t rows) {
    const Csr a = gen::random_uniform(rows, rows, 8, 407);
    sim::Launch launch("analysis", sim::DeviceSpec::titan_v(), model);
    analyze_rows(a, a, launch);
    return launch.finish().seconds;
  };
  const double t1 = seconds_for(20000);
  const double t2 = seconds_for(40000);
  EXPECT_GT(t2, t1 * 1.5);
  EXPECT_LT(t2, t1 * 3.0);
}

TEST(RowAnalysis, RectangularInputs) {
  const Csr a = gen::rectangular_lp(50, 400, 10, 409);
  const Csr b = transpose(a);
  const RowAnalysis r = analyze(a, b);
  EXPECT_EQ(r.total_products, count_products(a, b));
  EXPECT_EQ(static_cast<index_t>(r.products.size()), a.rows());
}

}  // namespace
}  // namespace speck
