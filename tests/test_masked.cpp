// Tests for masked SpGEMM and the probabilistic output-size estimator.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "ref/masked.h"
#include "ref/size_estimate.h"

namespace speck {
namespace {

TEST(Masked, EqualsFilteredFullProduct) {
  const Csr a = gen::random_uniform(60, 60, 5, 2401);
  const Csr b = gen::banded(60, 8, 4, 2403);
  const Csr mask = gen::random_uniform(60, 60, 10, 2405);
  const Csr masked = masked_spgemm(a, b, mask);

  // Reference: full product, then keep only masked positions.
  const Csr full = gustavson_spgemm(a, b);
  Coo filtered(60, 60);
  for (index_t r = 0; r < full.rows(); ++r) {
    const auto mask_cols = mask.row_cols(r);
    const auto cols = full.row_cols(r);
    const auto vals = full.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (std::binary_search(mask_cols.begin(), mask_cols.end(), cols[i])) {
        filtered.add(r, cols[i], vals[i]);
      }
    }
  }
  const auto diff = compare(masked, filtered.to_csr(), 1e-12);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Masked, ComplementMaskIsTheRest) {
  const Csr a = gen::random_uniform(50, 50, 4, 2407);
  const Csr mask = gen::random_uniform(50, 50, 8, 2409);
  const Csr inside = masked_spgemm(a, a, mask, /*complement=*/false);
  const Csr outside = masked_spgemm(a, a, mask, /*complement=*/true);
  const Csr full = gustavson_spgemm(a, a);
  EXPECT_EQ(inside.nnz() + outside.nnz(), full.nnz());
}

TEST(Masked, TriangleCountViaMask) {
  // Two disjoint K4s: 8 triangles; each triangle counted 6 times in
  // sum(A .* A^2).
  Coo coo(8, 8);
  for (index_t base : {0, 4}) {
    for (index_t i = 0; i < 4; ++i) {
      for (index_t j = 0; j < 4; ++j) {
        if (i != j) coo.add(base + i, base + j, 1.0);
      }
    }
  }
  const Csr k4s = coo.to_csr();
  EXPECT_NEAR(masked_product_sum(k4s, k4s, k4s) / 6.0, 8.0, 1e-9);
}

TEST(Masked, MaskedOutputNeverExceedsMask) {
  const Csr a = gen::power_law(80, 80, 6, 1.8, 30, 2411);
  const Csr mask = gen::random_uniform(80, 80, 3, 2413);
  const Csr masked = masked_spgemm(a, a, mask);
  EXPECT_LE(masked.nnz(), mask.nnz());
}

TEST(Masked, RejectsWrongMaskShape) {
  const Csr a = gen::random_uniform(10, 10, 2, 2417);
  EXPECT_THROW(masked_spgemm(a, a, Csr::zeros(10, 9)), InvalidArgument);
}

TEST(SizeEstimate, AccurateOnRandomMatrices) {
  const Csr a = gen::random_uniform(400, 400, 8, 2419);
  const auto symbolic = gustavson_symbolic(a, a);
  offset_t exact = 0;
  for (const index_t nnz : symbolic) exact += nnz;

  const SizeEstimate estimate = estimate_output_size(a, a, /*rounds=*/64, 2421);
  EXPECT_NEAR(estimate.total_nnz, static_cast<double>(exact),
              0.15 * static_cast<double>(exact))
      << "64 rounds should land within ~15%";
}

TEST(SizeEstimate, PerRowWithinStatisticalError) {
  const Csr a = gen::banded(200, 20, 6, 2423);
  const auto symbolic = gustavson_symbolic(a, a);
  const SizeEstimate estimate = estimate_output_size(a, a, 128, 2427);
  int far_off = 0;
  for (std::size_t r = 0; r < symbolic.size(); ++r) {
    const double exact = symbolic[r];
    if (exact < 8) continue;  // relative error meaningless for tiny rows
    if (std::abs(estimate.row_nnz[r] - exact) > 0.5 * exact) ++far_off;
  }
  EXPECT_LT(far_off, static_cast<int>(symbolic.size()) / 20)
      << "fewer than 5% of rows may deviate >50% at 128 rounds";
}

TEST(SizeEstimate, EmptyRowsEstimateZero) {
  Coo coo(4, 4);
  coo.add(1, 2, 1.0);
  const Csr a = coo.to_csr();
  const SizeEstimate estimate = estimate_output_size(a, a, 16, 2429);
  EXPECT_DOUBLE_EQ(estimate.row_nnz[0], 0.0);
  EXPECT_DOUBLE_EQ(estimate.row_nnz[3], 0.0);
}

TEST(SizeEstimate, MoreRoundsTightens) {
  const Csr a = gen::power_law(300, 300, 8, 1.8, 80, 2431);
  const auto symbolic = gustavson_symbolic(a, a);
  offset_t exact = 0;
  for (const index_t nnz : symbolic) exact += nnz;
  const double err4 = std::abs(
      estimate_output_size(a, a, 4, 2433).total_nnz - static_cast<double>(exact));
  const double err256 = std::abs(
      estimate_output_size(a, a, 256, 2433).total_nnz - static_cast<double>(exact));
  EXPECT_LT(err256, err4);
}

TEST(SizeEstimate, RejectsBadArguments) {
  const Csr a = Csr::zeros(3, 3);
  EXPECT_THROW(estimate_output_size(a, a, 0, 1), InvalidArgument);
  EXPECT_THROW(estimate_output_size(Csr::zeros(3, 4), a, 4, 1), InvalidArgument);
}

}  // namespace
}  // namespace speck
