// Unit tests for the simulated device: specs, cost accounting, occupancy,
// scheduling, memory tracking, stage timeline.
#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "sim/cost_model.h"
#include "sim/device_spec.h"
#include "sim/launch.h"
#include "sim/memory_tracker.h"
#include "sim/timeline.h"
#include "sim/trace.h"

namespace speck::sim {
namespace {

TEST(DeviceSpec, TitanVDefaults) {
  const DeviceSpec d = DeviceSpec::titan_v();
  EXPECT_EQ(d.num_sms, 80);
  EXPECT_EQ(d.max_threads_per_block, 1024);
  EXPECT_EQ(d.static_scratchpad_per_block, 48u * 1024);
  EXPECT_EQ(d.dynamic_scratchpad_per_block, 96u * 1024);
}

TEST(DeviceSpec, PascalHasNoOptIn) {
  const DeviceSpec d = DeviceSpec::pascal_like();
  EXPECT_EQ(d.dynamic_scratchpad_per_block, d.static_scratchpad_per_block);
}

TEST(BlockCost, OverheadOnly) {
  const CostModel model;
  BlockCost cost(256, 0, model);
  EXPECT_DOUBLE_EQ(cost.cycles(), model.block_overhead_cycles);
}

TEST(BlockCost, IssuedOpsScaleWithIssueWidth) {
  CostModel model;
  model.block_overhead_cycles = 0.0;
  BlockCost cost(256, 0, model);
  cost.issued(1280.0);
  EXPECT_DOUBLE_EQ(cost.cycles(), 1280.0 / model.issue_width);
}

TEST(BlockCost, LockstepChargesAllThreads) {
  CostModel model;
  model.block_overhead_cycles = 0.0;
  BlockCost a(128, 0, model);
  a.lockstep(10.0);
  BlockCost b(1024, 0, model);
  b.lockstep(10.0);
  EXPECT_LT(a.cycles(), b.cycles());
}

TEST(BlockCost, CoalescedVsScattered) {
  CostModel model;
  model.block_overhead_cycles = 0.0;
  BlockCost coalesced(256, 0, model);
  coalesced.global_coalesced(1024);  // 1024 words -> 32 transactions
  BlockCost scattered(256, 0, model);
  scattered.global_scattered(1024);  // 1024 transactions
  EXPECT_DOUBLE_EQ(coalesced.global_transactions(), 32.0);
  EXPECT_DOUBLE_EQ(scattered.global_transactions(), 1024.0);
  EXPECT_LT(coalesced.cycles(), scattered.cycles() / 10.0);
}

TEST(BlockCost, SegmentedAddsPartialSectors) {
  CostModel model;
  BlockCost cost(256, 0, model);
  cost.global_segmented(320, 10);
  // 320 words = 10 full transactions, plus a quarter-transaction (32-byte
  // sector) per segment boundary.
  EXPECT_DOUBLE_EQ(cost.global_transactions(), 10.0 + 2.5);
}

TEST(BlockCost, AtomicsAreExpensive) {
  CostModel model;
  model.block_overhead_cycles = 0.0;
  BlockCost smem(256, 0, model);
  smem.smem_atomic(1000.0);
  BlockCost global(256, 0, model);
  global.global_atomic(1000.0);
  EXPECT_LT(smem.cycles() * 10.0, global.cycles());
}

TEST(Occupancy, LimitedByThreads) {
  const DeviceSpec d = DeviceSpec::titan_v();
  EXPECT_EQ(blocks_resident_per_sm(d, 1024, 0), 2);
  EXPECT_EQ(blocks_resident_per_sm(d, 512, 0), 4);
  EXPECT_EQ(blocks_resident_per_sm(d, 64, 0), 32);  // capped by max blocks
}

TEST(Occupancy, LimitedByScratchpad) {
  const DeviceSpec d = DeviceSpec::titan_v();
  // 96 KB per block on a 96 KB SM: one resident block (paper: the opt-in
  // config halves occupancy relative to 48 KB).
  EXPECT_EQ(blocks_resident_per_sm(d, 1024, 96 * 1024), 1);
  EXPECT_EQ(blocks_resident_per_sm(d, 1024, 48 * 1024), 2);
}

TEST(Occupancy, EfficiencyClamps) {
  const DeviceSpec d = DeviceSpec::titan_v();
  EXPECT_DOUBLE_EQ(occupancy_efficiency(d, 2048), 1.0);
  EXPECT_DOUBLE_EQ(occupancy_efficiency(d, 1024), 1.0);
  EXPECT_DOUBLE_EQ(occupancy_efficiency(d, 512), 0.5);
  EXPECT_DOUBLE_EQ(occupancy_efficiency(d, 1), 0.25);
}

TEST(Launch, EmptyLaunchCostsOnlyOverhead) {
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  Launch launch("empty", d, model);
  const LaunchResult r = launch.finish();
  EXPECT_EQ(r.blocks, 0);
  EXPECT_DOUBLE_EQ(r.seconds, model.kernel_launch_overhead_us * 1e-6);
}

TEST(Launch, MakespanScalesWithBlocks) {
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  auto run = [&](int blocks) {
    Launch launch("n", d, model);
    for (int i = 0; i < blocks; ++i) {
      auto cost = launch.make_block(256, 1024);
      cost.issued(1e6);
      launch.add(cost);
    }
    return launch.finish().makespan_cycles;
  };
  const double t80 = run(80);       // one block per SM
  const double t160 = run(160);     // two waves
  const double t8000 = run(8000);
  EXPECT_NEAR(t160 / t80, 2.0, 0.3);
  EXPECT_NEAR(t8000 / t80, 100.0, 15.0);
}

TEST(Launch, SingleBlockNotFasterThanItsCycles) {
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  Launch launch("one", d, model);
  auto cost = launch.make_block(1024, 0);
  cost.issued(1.28e8);  // 1e6 cycles of issue
  const double cycles = cost.cycles();
  launch.add(cost);
  const LaunchResult r = launch.finish();
  EXPECT_GE(r.makespan_cycles, cycles);
}

TEST(Launch, LowOccupancyInflatesTime) {
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  auto run = [&](int threads, std::size_t smem) {
    Launch launch("occ", d, model);
    for (int i = 0; i < 80; ++i) {
      auto cost = launch.make_block(threads, smem);
      cost.issued(1e6);
      launch.add(cost);
    }
    return launch.finish().seconds;
  };
  // Same per-block work, but 64-thread blocks with huge scratchpad demand
  // leave the SM underfilled.
  EXPECT_GT(run(64, 48 * 1024), run(1024, 48 * 1024));
}

TEST(Launch, EmptyLaunchLeavesSummaryFieldsAtDefaults) {
  // Regression: finish() must not read blocks_.front() on an empty launch.
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  Launch launch("empty", d, model);
  const LaunchResult r = launch.finish();
  EXPECT_EQ(r.blocks, 0);
  EXPECT_EQ(r.threads_per_block, 0);
  EXPECT_EQ(r.scratchpad_per_block, 0u);
  EXPECT_EQ(r.resident_blocks_per_sm, 0);
  EXPECT_FALSE(r.heterogeneous);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 0.0);
}

TEST(Launch, SingleBlockSummaryDescribesThatBlock) {
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  Launch launch("one", d, model);
  auto cost = launch.make_block(512, 4096);
  cost.issued(1000.0);
  launch.add(cost);
  const LaunchResult r = launch.finish();
  EXPECT_EQ(r.blocks, 1);
  EXPECT_EQ(r.threads_per_block, 512);
  EXPECT_EQ(r.scratchpad_per_block, 4096u);
  EXPECT_FALSE(r.heterogeneous);
  EXPECT_EQ(r.resident_blocks_per_sm, blocks_resident_per_sm(d, 512, 4096));
  EXPECT_GT(r.makespan_cycles, 0.0);
}

TEST(Launch, HeterogeneousBlocksAreFlaggedAndSummaryIsFirstBlock) {
  // spECK merges small rows into shared blocks, so a launch can mix block
  // shapes. The summary fields describe the *first* block by contract; the
  // makespan must still account for every block's own occupancy.
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  Launch launch("hetero", d, model);
  auto big = launch.make_block(1024, 48 * 1024);
  big.issued(1e6);
  launch.add(big);
  auto small = launch.make_block(64, 0);
  small.issued(1e6);
  launch.add(small);
  const LaunchResult r = launch.finish();
  EXPECT_TRUE(r.heterogeneous);
  EXPECT_EQ(r.threads_per_block, 1024);
  EXPECT_EQ(r.scratchpad_per_block, 48u * 1024);
  EXPECT_EQ(r.resident_blocks_per_sm, blocks_resident_per_sm(d, 1024, 48 * 1024));

  // Sanity: a homogeneous launch of the same two shapes brackets the
  // heterogeneous makespan from below (it is at least the serial max).
  EXPECT_GT(r.makespan_cycles, 0.0);
  EXPECT_GE(r.seconds, model.kernel_launch_overhead_us * 1e-6);
}

TEST(Launch, SingleHeterogeneousPairNotFlaggedWhenShapesMatch) {
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  Launch launch("same", d, model);
  for (int i = 0; i < 2; ++i) {
    auto cost = launch.make_block(256, 1024);
    cost.issued(100.0);
    launch.add(cost);
  }
  EXPECT_FALSE(launch.finish().heterogeneous);
}

TEST(Launch, FinishIsIdenticalAcrossThreadCounts) {
  // Large launches compute per-block weights through the host pool; the
  // resulting makespan must be bit-identical to the serial computation.
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  auto build = [&]() {
    Launch launch("big", d, model);
    for (int i = 0; i < 5000; ++i) {  // above the parallel threshold
      auto cost = launch.make_block(i % 3 == 0 ? 128 : 256,
                                    static_cast<std::size_t>(i % 5) * 1024);
      cost.issued(100.0 + i);
      launch.add(cost);
    }
    return launch;
  };
  set_global_thread_count(1);
  const LaunchResult serial = build().finish();
  set_global_thread_count(8);
  const LaunchResult parallel = build().finish();
  set_global_thread_count(0);
  EXPECT_TRUE(serial.heterogeneous);
  EXPECT_EQ(parallel.blocks, serial.blocks);
  EXPECT_EQ(parallel.makespan_cycles, serial.makespan_cycles);
  EXPECT_EQ(parallel.seconds, serial.seconds);
}

TEST(Launch, RejectsOversizedBlocks) {
  const DeviceSpec d = DeviceSpec::titan_v();
  const CostModel model;
  Launch launch("bad", d, model);
  EXPECT_THROW(launch.make_block(2048, 0), InvalidArgument);
  EXPECT_THROW(launch.make_block(256, 128 * 1024), InvalidArgument);
}

TEST(MemoryTracker, PeakTracking) {
  MemoryTracker tracker(1000);
  EXPECT_TRUE(tracker.allocate(400));
  EXPECT_TRUE(tracker.allocate(500));
  EXPECT_EQ(tracker.peak_bytes(), 900u);
  tracker.release(500);
  EXPECT_EQ(tracker.current_bytes(), 400u);
  EXPECT_EQ(tracker.peak_bytes(), 900u);
  EXPECT_TRUE(tracker.allocate(600));
  EXPECT_EQ(tracker.peak_bytes(), 1000u);
}

TEST(MemoryTracker, RejectsOverCapacity) {
  MemoryTracker tracker(100);
  EXPECT_FALSE(tracker.allocate(101));
  EXPECT_TRUE(tracker.allocate(100));
  EXPECT_FALSE(tracker.allocate(1));
}

TEST(MemoryTracker, ScopedAllocationReleases) {
  MemoryTracker tracker(100);
  ASSERT_TRUE(tracker.allocate(40));
  {
    ScopedAllocation scoped(tracker, 40);
  }
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(Timeline, SharesSumToOne) {
  StageTimeline t;
  t.add(Stage::kAnalysis, 1.0);
  t.add(Stage::kNumeric, 3.0);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(t.share(Stage::kAnalysis), 0.25);
  EXPECT_DOUBLE_EQ(t.share(Stage::kNumeric), 0.75);
  EXPECT_DOUBLE_EQ(t.share(Stage::kSorting), 0.0);
}

TEST(Timeline, StageNames) {
  EXPECT_STREQ(stage_name(Stage::kSymbolic), "symb. SpGEMM");
  EXPECT_STREQ(stage_name(Stage::kSorting), "sorting");
}

}  // namespace
}  // namespace speck::sim

namespace speck::sim {
namespace {

TEST(ReuseCacheFactor, FitsInL2IsDiscounted) {
  const DeviceSpec d = DeviceSpec::titan_v();
  EXPECT_DOUBLE_EQ(reuse_cache_factor(d, 0), d.l2_hit_cost);
  EXPECT_DOUBLE_EQ(reuse_cache_factor(d, d.l2_cache_bytes / 4), d.l2_hit_cost);
}

TEST(ReuseCacheFactor, ExceedsL2IsFullCost) {
  const DeviceSpec d = DeviceSpec::titan_v();
  EXPECT_DOUBLE_EQ(reuse_cache_factor(d, d.l2_cache_bytes * 10), 1.0);
}

TEST(ReuseCacheFactor, InterpolatesBetween) {
  const DeviceSpec d = DeviceSpec::titan_v();
  const double half = reuse_cache_factor(d, d.l2_cache_bytes * 3 / 4);
  EXPECT_GT(half, d.l2_hit_cost);
  EXPECT_LT(half, 1.0);
}

TEST(BlockCost, SegmentedCacheFactorScalesTransactions) {
  CostModel model;
  BlockCost full(256, 0, model);
  full.global_segmented(320, 8, 1.0);
  BlockCost cached(256, 0, model);
  cached.global_segmented(320, 8, 0.5);
  EXPECT_DOUBLE_EQ(cached.global_transactions(), full.global_transactions() / 2.0);
}

TEST(LaunchTrace, RecordsAndSummarizes) {
  LaunchTrace trace;
  EXPECT_TRUE(trace.empty());
  LaunchResult a;
  a.name = "k1";
  a.blocks = 10;
  a.seconds = 1e-4;
  LaunchResult b;
  b.name = "k2";
  b.blocks = 5;
  b.seconds = 2e-4;
  trace.record(a);
  trace.record(b);
  EXPECT_EQ(trace.total_blocks(), 15);
  EXPECT_NEAR(trace.total_seconds(), 3e-4, 1e-12);
  const std::string text = trace.to_string();
  EXPECT_NE(text.find("k1"), std::string::npos);
  EXPECT_NE(text.find("k2"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

}  // namespace
}  // namespace speck::sim
