// End-to-end tests of the spECK pipeline: correctness against the exact
// oracle across the test corpus, ablation configurations, edge cases and
// the diagnostics surface.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

namespace speck {
namespace {

Speck make_speck() { return Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}); }

/// For tests that assert exact-pipeline internals (symbolic-stage
/// diagnostics, timelines, traces): pinned so an SPECK_PLANNING=estimated
/// environment doesn't reroute them through the estimated pipeline.
Speck make_exact_speck() {
  SpeckConfig config;
  config.planning = PlanningMode::kExact;
  return Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
}

void expect_exact(Speck& speck, const Csr& a, const Csr& b,
                  const std::string& label) {
  const SpGemmResult result = speck.multiply(a, b);
  ASSERT_TRUE(result.ok()) << label << ": " << result.failure_reason;
  const Csr expected = gustavson_spgemm(a, b);
  const auto diff = compare(result.c, expected);
  EXPECT_FALSE(diff.has_value()) << label << ": " << diff->description;
  EXPECT_TRUE(result.c.sorted_within_rows()) << label;
}

/// Every corpus entry, default configuration.
class SpeckCorpus : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpeckCorpus, MatchesOracle) {
  const auto corpus = gen::test_corpus();
  const auto& entry = corpus[GetParam()];
  Speck speck = make_speck();
  expect_exact(speck, entry.a, entry.b, entry.name);
}

INSTANTIATE_TEST_SUITE_P(AllEntries, SpeckCorpus,
                         ::testing::Range<std::size_t>(0, 13),
                         [](const auto& info) {
                           return gen::test_corpus()[info.param].name;
                         });

/// Ablation grid: every feature combination must stay exact (only the
/// modeled time may change).
class SpeckAblation
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, int>> {};

TEST_P(SpeckAblation, AllConfigurationsExact) {
  const auto [dense, direct, dynamic_g, lb_mode] = GetParam();
  Speck speck = make_speck();
  speck.config().features.dense_accumulation = dense;
  speck.config().features.direct_rows = direct;
  speck.config().features.dynamic_group_size = dynamic_g;
  speck.config().features.set_global_lb(static_cast<GlobalLbMode>(lb_mode));
  const Csr a = gen::skewed_rows(800, 800, 0.02, 400, 3, 601);
  expect_exact(speck, a, a, "ablation");
  const Csr p = gen::power_law(400, 400, 8, 1.8, 120, 603);
  expect_exact(speck, p, p, "ablation powerlaw");
}

INSTANTIATE_TEST_SUITE_P(Grid, SpeckAblation,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Values(0, 1, 2)));

TEST(Speck, IdentityTimesAnything) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(300, 300, 5, 605);
  const Csr i = Csr::identity(300);
  const SpGemmResult result = speck.multiply(i, a);
  ASSERT_TRUE(result.ok());
  const auto diff = compare(result.c, a);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Speck, AnythingTimesIdentity) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(300, 300, 5, 607);
  const SpGemmResult result = speck.multiply(a, Csr::identity(300));
  ASSERT_TRUE(result.ok());
  const auto diff = compare(result.c, a);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Speck, EmptyMatrix) {
  Speck speck = make_speck();
  const Csr z = Csr::zeros(100, 100);
  const SpGemmResult result = speck.multiply(z, z);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.c.nnz(), 0);
  EXPECT_EQ(result.c.rows(), 100);
}

TEST(Speck, EmptyTimesNonEmpty) {
  Speck speck = make_speck();
  const Csr z = Csr::zeros(50, 50);
  const Csr a = gen::random_uniform(50, 50, 4, 609);
  EXPECT_TRUE(speck.multiply(z, a).ok());
  EXPECT_TRUE(speck.multiply(a, z).ok());
}

TEST(Speck, RectangularChain) {
  Speck speck = make_speck();
  const Csr a = gen::rectangular_lp(80, 700, 9, 611);
  const Csr b = transpose(a);
  expect_exact(speck, a, b, "A*At");
  expect_exact(speck, b, a, "At*A");
}

TEST(Speck, RejectsDimensionMismatch) {
  Speck speck = make_speck();
  const Csr a = Csr::zeros(4, 5);
  const Csr b = Csr::zeros(4, 5);
  EXPECT_THROW(speck.multiply(a, b), InvalidArgument);
}

TEST(Speck, TransposeIdentityHolds) {
  // (A*B)ᵀ == Bᵀ*Aᵀ — both sides computed by spECK.
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(150, 150, 5, 613);
  const Csr b = gen::banded(150, 10, 4, 617);
  const SpGemmResult ab = speck.multiply(a, b);
  const SpGemmResult btat = speck.multiply(transpose(b), transpose(a));
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(btat.ok());
  const auto diff = compare(transpose(ab.c), btat.c);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Speck, DiagnosticsPopulated) {
  Speck speck = make_exact_speck();
  const Csr a = gen::random_uniform(500, 500, 8, 619);
  ASSERT_TRUE(speck.multiply(a, a).ok());
  const SpeckDiagnostics& d = speck.last_diagnostics();
  EXPECT_EQ(d.products, count_products(a, a));
  EXPECT_GT(d.symbolic_blocks, 0);
  EXPECT_GT(d.numeric_blocks, 0);
  EXPECT_EQ(d.symbolic.hash_rows + d.symbolic.dense_rows + d.symbolic.direct_rows,
            a.rows());
  EXPECT_FALSE(d.wide_keys);
}

TEST(Speck, DirectRowsUsedForSingleEntryRows) {
  Speck speck = make_exact_speck();
  const Csr a = gen::single_entry_mix(600, 600, 1.0, 4, 621);  // all single-entry
  expect_exact(speck, a, a, "single entry");
  const SpeckDiagnostics& d = speck.last_diagnostics();
  EXPECT_EQ(d.symbolic.direct_rows, a.rows());
  EXPECT_EQ(d.numeric.direct_rows, a.rows());
  EXPECT_EQ(d.symbolic.hash_rows, 0);
}

TEST(Speck, DenseRowsUsedForDenseOutput) {
  Speck speck = make_speck();
  // Dense blocks produce output rows with density ~1 over their range.
  const Csr a = gen::block_diagonal(4, 120, 0.9, 623);
  expect_exact(speck, a, a, "block diagonal");
  EXPECT_GT(speck.last_diagnostics().numeric.dense_rows, 0);
}

TEST(Speck, GlobalLbEngagesOnSkewedLargeMatrix) {
  Speck speck = make_exact_speck();
  const Csr a = gen::skewed_rows(30000, 30000, 0.005, 3000, 2, 625);
  ASSERT_TRUE(speck.multiply(a, a).ok());
  EXPECT_TRUE(speck.last_diagnostics().symbolic_lb_used);
}

TEST(Speck, GlobalLbSkipsUniformSmallMatrix) {
  Speck speck = make_speck();
  const Csr a = gen::stencil_2d(30, 30);
  ASSERT_TRUE(speck.multiply(a, a).ok());
  EXPECT_FALSE(speck.last_diagnostics().symbolic_lb_used);
  EXPECT_FALSE(speck.last_diagnostics().numeric_lb_used);
}

TEST(Speck, SymbolicCountsMatchNumeric) {
  Speck speck = make_speck();
  for (const auto& entry : gen::test_corpus()) {
    const SpGemmResult result = speck.multiply(entry.a, entry.b);
    ASSERT_TRUE(result.ok()) << entry.name;
    const auto expected_nnz = gustavson_symbolic(entry.a, entry.b);
    for (index_t r = 0; r < result.c.rows(); ++r) {
      ASSERT_EQ(result.c.row_length(r), expected_nnz[static_cast<std::size_t>(r)])
          << entry.name << " row " << r;
    }
  }
}

TEST(Speck, OutOfMemoryReported) {
  sim::DeviceSpec tiny = sim::DeviceSpec::titan_v();
  tiny.global_memory_bytes = 1024;  // 1 KB device
  Speck speck(tiny, sim::CostModel{});
  const Csr a = gen::random_uniform(1000, 1000, 8, 627);
  const SpGemmResult result = speck.multiply(a, a);
  EXPECT_EQ(result.status, SpGemmStatus::kOutOfMemory);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(Speck, TimelineCoversAllTime) {
  Speck speck = make_exact_speck();
  const Csr a = gen::random_uniform(2000, 2000, 10, 629);
  const SpGemmResult result = speck.multiply(a, a);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.timeline.total_seconds(), result.seconds, 1e-12);
  EXPECT_GT(result.timeline.seconds(sim::Stage::kAnalysis), 0.0);
  EXPECT_GT(result.timeline.seconds(sim::Stage::kSymbolic), 0.0);
  EXPECT_GT(result.timeline.seconds(sim::Stage::kNumeric), 0.0);
}

TEST(Speck, PeakMemoryIncludesInputsAndOutput) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(1000, 1000, 8, 631);
  const SpGemmResult result = speck.multiply(a, a);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.peak_memory_bytes,
            2 * a.byte_size() + result.c.byte_size());
}

TEST(Speck, PascalDeviceWorks) {
  Speck speck(sim::DeviceSpec::pascal_like(), sim::CostModel{});
  const Csr a = gen::random_uniform(400, 400, 8, 633);
  expect_exact(speck, a, a, "pascal");
}

TEST(Speck, DeterministicTiming) {
  Speck speck = make_speck();
  const Csr a = gen::power_law(500, 500, 8, 1.9, 100, 635);
  const SpGemmResult r1 = speck.multiply(a, a);
  const SpGemmResult r2 = speck.multiply(a, a);
  EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds);
  EXPECT_EQ(r1.peak_memory_bytes, r2.peak_memory_bytes);
}

}  // namespace
}  // namespace speck

namespace speck {
namespace {

TEST(SpeckTrace, CoversAllStages) {
  // Asserts symbolic launches exist, so pin exact planning (the estimated
  // pipeline intentionally has no symbolic stage).
  SpeckConfig exact_config;
  exact_config.planning = PlanningMode::kExact;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, exact_config);
  const Csr a = gen::random_uniform(800, 800, 8, 901);
  ASSERT_TRUE(speck.multiply(a, a).ok());
  const sim::LaunchTrace& trace = speck.last_trace();
  ASSERT_FALSE(trace.empty());
  bool saw_analysis = false, saw_symbolic = false, saw_numeric = false;
  for (const auto& launch : trace.launches()) {
    saw_analysis = saw_analysis || launch.name == "row_analysis";
    saw_symbolic = saw_symbolic || launch.name.rfind("symbolic/", 0) == 0;
    saw_numeric = saw_numeric || launch.name.rfind("numeric/", 0) == 0;
  }
  EXPECT_TRUE(saw_analysis);
  EXPECT_TRUE(saw_symbolic);
  EXPECT_TRUE(saw_numeric);
  EXPECT_GT(trace.total_blocks(), 0);
}

TEST(SpeckTrace, LbLaunchesOnlyWhenEngaged) {
  SpeckConfig config;
  // The lb_launches == 2 count below assumes both the symbolic and numeric
  // balancer run; estimated planning only has the numeric one.
  config.planning = PlanningMode::kExact;
  config.features.set_global_lb(GlobalLbMode::kAlwaysOff);
  Speck off(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::skewed_rows(3000, 3000, 0.01, 500, 3, 907);
  ASSERT_TRUE(off.multiply(a, a).ok());
  for (const auto& launch : off.last_trace().launches()) {
    EXPECT_EQ(launch.name.find("_lb"), std::string::npos) << launch.name;
  }

  config.features.set_global_lb(GlobalLbMode::kAlwaysOn);
  Speck on(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  ASSERT_TRUE(on.multiply(a, a).ok());
  int lb_launches = 0;
  for (const auto& launch : on.last_trace().launches()) {
    lb_launches += launch.name.find("_lb") != std::string::npos ? 1 : 0;
  }
  EXPECT_EQ(lb_launches, 2);
}

TEST(SpeckTrace, ResetBetweenRuns) {
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr big = gen::random_uniform(2000, 2000, 8, 911);
  const Csr small = gen::random_uniform(50, 50, 2, 913);
  ASSERT_TRUE(speck.multiply(big, big).ok());
  const int big_blocks = speck.last_trace().total_blocks();
  ASSERT_TRUE(speck.multiply(small, small).ok());
  EXPECT_LT(speck.last_trace().total_blocks(), big_blocks);
}

}  // namespace
}  // namespace speck

namespace speck {
namespace {

/// Robustness: exotic-but-valid configurations all stay exact.
class SpeckConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(SpeckConfigSweep, ExactUnderAnyValidConfig) {
  const auto [max_rows, fill, density] = GetParam();
  SpeckConfig config;
  config.max_rows_per_block = max_rows;
  config.max_numeric_fill = fill;
  config.dense_density_threshold = density;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::power_law(500, 500, 7, 1.8, 120, 2101);
  const SpGemmResult result = speck.multiply(a, a);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  const auto diff = compare(result.c, gustavson_spgemm(a, a));
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

INSTANTIATE_TEST_SUITE_P(Grid, SpeckConfigSweep,
                         ::testing::Combine(::testing::Values(1, 4, 32),
                                            ::testing::Values(0.3, 0.66, 1.0),
                                            ::testing::Values(0.05, 0.18, 0.9)));

TEST(SpeckWideKeys, EndToEndBeyond27BitColumns) {
  // B with more than 2^27 columns forces the 64-bit compound keys through
  // the whole pipeline.
  const index_t wide = (index_t{1} << 27) + 64;
  Coo a_coo(64, 256);
  Coo b_coo(256, wide);
  Xoshiro256 rng(2111);
  for (index_t r = 0; r < 64; ++r) {
    for (int i = 0; i < 4; ++i) {
      a_coo.add(r, static_cast<index_t>(rng.next_below(256)), 1.0 + r);
    }
  }
  for (index_t r = 0; r < 256; ++r) {
    b_coo.add(r, r, 1.0);                       // low columns
    b_coo.add(r, wide - 1 - r, 2.0);            // beyond 2^27
    b_coo.add(r, (index_t{1} << 27) + (r % 50), 3.0);  // straddling
  }
  const Csr a = a_coo.to_csr();
  const Csr b = b_coo.to_csr();

  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const SpGemmResult result = speck.multiply(a, b);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_TRUE(speck.last_diagnostics().wide_keys);
  const auto diff = compare(result.c, gustavson_spgemm(a, b));
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(SpeckDescribe, RoundTripsThroughConfig) {
  SpeckConfig config;
  config.thresholds = reduced_scale_thresholds();
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const std::string text = describe(speck.config());
  EXPECT_NE(text.find("39.2"), std::string::npos);  // tuned symbolic ratio
}

}  // namespace
}  // namespace speck
