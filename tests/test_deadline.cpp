// Tests for request deadlines and cooperative cancellation
// (common/deadline.h) plus the bounded blocking admission of MemoryBudget
// (speck/service.h): deadline arithmetic, CancelToken's exception contract,
// the kDeadlineExceeded taxonomy mapping, acquire_until outcomes
// (admit / timeout / shed-oldest / never-fits) and cancellation of an
// in-flight Speck::plan between pipeline phases.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/deadline.h"
#include "gen/generators.h"
#include "speck/service.h"
#include "speck/speck.h"

namespace speck {
namespace {

TEST(DeadlineTest, DefaultIsInfiniteAndNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::max());
  EXPECT_TRUE(Deadline::infinite().is_infinite());
}

TEST(DeadlineTest, PastDeadlineIsExpiredWithZeroRemaining) {
  const Deadline d = Deadline::at(Deadline::Clock::now() -
                                  std::chrono::milliseconds(5));
  EXPECT_FALSE(d.is_infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, FutureBudgetExpiresAfterItElapses) {
  const Deadline d = Deadline::after_ms(20.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), Deadline::Clock::duration::zero());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, SoonerPicksTheEarlierDeadline) {
  const Deadline near = Deadline::after_ms(10.0);
  const Deadline far = Deadline::after_ms(10000.0);
  EXPECT_EQ(Deadline::sooner(near, far).time(), near.time());
  EXPECT_EQ(Deadline::sooner(far, near).time(), near.time());
  // Any finite deadline beats the infinite one.
  EXPECT_EQ(Deadline::sooner(Deadline::infinite(), near).time(), near.time());
  EXPECT_TRUE(Deadline::sooner(Deadline::infinite(), Deadline::infinite())
                  .is_infinite());
}

TEST(DeadlineTest, ErrorTaxonomyMapsDeadlineExceededToExitCode7) {
  EXPECT_EQ(exit_code(ErrorCode::kDeadlineExceeded), 7);
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "DeadlineExceeded");
  const DeadlineExceeded err("late", "symbolic pass");
  EXPECT_EQ(err.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(err.context(), "symbolic pass");
}

TEST(CancelTokenTest, InfiniteTokenNeverCancels) {
  const CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check("row analysis"));
}

TEST(CancelTokenTest, ExpiredDeadlineThrowsNamingThePhase) {
  const CancelToken token(Deadline::at(Deadline::Clock::now()));
  EXPECT_TRUE(token.cancelled());
  try {
    token.check("symbolic pass");
    FAIL() << "check() must throw on an expired deadline";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("symbolic pass"), std::string::npos);
    EXPECT_EQ(e.context(), "symbolic pass");
  }
  // The taxonomy mapping used by the serving layer's catch sites.
  try {
    token.check("numeric pass");
  } catch (...) {
    const Status st = status_from_current_exception();
    EXPECT_EQ(st.code, ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(st.context, "numeric pass");
  }
}

TEST(CancelTokenTest, ExternalFlagCancelsAnInfiniteDeadline) {
  std::atomic<bool> flag{false};
  const CancelToken token(Deadline::infinite(), &flag);
  EXPECT_FALSE(token.cancelled());
  flag.store(true);
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check("admission"), DeadlineExceeded);
}

TEST(MemoryBudgetDeadlines, OversizedRequestNeverFitsWithoutBlocking) {
  MemoryBudget budget(100);
  bool waited = true;
  EXPECT_EQ(budget.acquire_until(200, Deadline::infinite(), 0, &waited),
            MemoryBudget::Admit::kNeverFits);
  EXPECT_FALSE(waited);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetDeadlines, FastPathAdmissionReportsNoWait) {
  MemoryBudget budget(100);
  bool waited = true;
  EXPECT_EQ(budget.acquire_until(60, Deadline::infinite(), 0, &waited),
            MemoryBudget::Admit::kAdmitted);
  EXPECT_FALSE(waited);
  budget.release(60);
}

TEST(MemoryBudgetDeadlines, FullBudgetTimesOutAtTheDeadline) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.try_acquire(100));
  bool waited = false;
  const auto t0 = Deadline::Clock::now();
  EXPECT_EQ(budget.acquire_until(10, Deadline::after_ms(20.0), 0, &waited),
            MemoryBudget::Admit::kTimedOut);
  EXPECT_TRUE(waited);
  EXPECT_GE(Deadline::Clock::now() - t0, std::chrono::milliseconds(19));
  budget.release(100);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudgetDeadlines, FullQueueShedsTheOldestWaiter) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.try_acquire(100));

  std::atomic<int> first_outcome{-1};
  std::thread first([&] {
    first_outcome.store(static_cast<int>(
        budget.acquire_until(50, Deadline::infinite(), /*max_waiters=*/1)));
  });
  while (budget.waiters() == 0) std::this_thread::yield();

  // The queue (capacity 1) is full: the newcomer sheds the oldest waiter
  // and takes its place.
  std::atomic<int> second_outcome{-1};
  std::thread second([&] {
    second_outcome.store(static_cast<int>(
        budget.acquire_until(50, Deadline::infinite(), /*max_waiters=*/1)));
  });
  first.join();
  EXPECT_EQ(first_outcome.load(),
            static_cast<int>(MemoryBudget::Admit::kShed));

  budget.release(100);  // frees capacity: the surviving waiter admits
  second.join();
  EXPECT_EQ(second_outcome.load(),
            static_cast<int>(MemoryBudget::Admit::kAdmitted));
  budget.release(50);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.waiters(), 0u);
}

TEST(MemoryBudgetDeadlines, ReleaseUnderflowThrowsInternalError) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.try_acquire(40));
  EXPECT_THROW(budget.release(41), InternalError);
  // The counter is untouched: the corrupt release must not leak capacity
  // into later admission decisions.
  EXPECT_EQ(budget.used(), 40u);
  budget.release(40);
  EXPECT_THROW(budget.release(1), InternalError);
}

TEST(SpeckCancellation, ExpiredTokenCancelsPlanBetweenPhases) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::banded(96, 6, 5, 13);
  const CancelToken expired(Deadline::at(Deadline::Clock::now()));
  SpGemmResult full;
  EXPECT_THROW(sp.plan(a, a, &full, &expired), DeadlineExceeded);
  // The same multiply without a token (or with an infinite one) succeeds —
  // cancellation is a property of the request, not the input.
  const CancelToken open;
  EXPECT_TRUE(sp.plan(a, a, &full, &open).complete);
  EXPECT_TRUE(full.ok());
}

}  // namespace
}  // namespace speck
