// The two-level partitioned executor's headline guarantee: partition count,
// partition-local teams, cross-partition work stealing and NUMA-local B
// copies change only host wall-clock, never results. CSR bytes, simulated
// seconds and every PassStats counter must be bit-identical at any
// (partitions, threads, steal) combination — including the power-law skew
// that forces finished teams to steal — plus steady-state zero-allocation
// with partition-local workspace pools and sane schedule-dependent
// telemetry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/alloc_counter.h"
#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "speck/multi_gpu.h"
#include "speck/speck.h"

// Counting allocator: makes PassStats::hot_path_allocs live in this binary
// (see common/alloc_counter.h). Frees are uncounted on purpose.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace speck {
namespace {

struct PipelineRun {
  Csr c;
  double seconds = 0.0;
  SpeckDiagnostics diag;
};

PipelineRun run_once(Speck& speck, const Csr& a, const Csr& b,
                     const std::string& name) {
  SpGemmResult result = speck.multiply(a, b);
  EXPECT_TRUE(result.ok()) << name << ": " << result.failure_reason;
  return PipelineRun{std::move(result.c), result.seconds,
                     speck.last_diagnostics()};
}

void expect_identical(const PipelineRun& want, const PipelineRun& got,
                      const std::string& trace) {
  SCOPED_TRACE(trace);
  ASSERT_EQ(got.c.nnz(), want.c.nnz());
  const auto wo = want.c.row_offsets();
  const auto go = got.c.row_offsets();
  ASSERT_TRUE(std::equal(wo.begin(), wo.end(), go.begin()));
  const auto wc = want.c.col_indices();
  const auto gc = got.c.col_indices();
  ASSERT_TRUE(std::equal(wc.begin(), wc.end(), gc.begin()));
  const auto wv = want.c.values();
  const auto gv = got.c.values();
  for (std::size_t i = 0; i < wv.size(); ++i) {
    ASSERT_EQ(wv[i], gv[i]) << "value " << i;
  }
  EXPECT_EQ(got.seconds, want.seconds);
  // Counters must match exactly; the schedule-dependent telemetry lives in
  // diag.partition, deliberately outside this comparison.
  for (const bool numeric : {false, true}) {
    const PassStats& w = numeric ? want.diag.numeric : want.diag.symbolic;
    const PassStats& g = numeric ? got.diag.numeric : got.diag.symbolic;
    SCOPED_TRACE(numeric ? "numeric" : "symbolic");
    EXPECT_EQ(g.seconds, w.seconds);
    EXPECT_EQ(g.direct_rows, w.direct_rows);
    EXPECT_EQ(g.dense_rows, w.dense_rows);
    EXPECT_EQ(g.hash_rows, w.hash_rows);
    EXPECT_EQ(g.global_hash_blocks, w.global_hash_blocks);
    EXPECT_EQ(g.global_pool_bytes, w.global_pool_bytes);
    EXPECT_EQ(g.hash_probes, w.hash_probes);
    EXPECT_EQ(g.moved_entries, w.moved_entries);
    EXPECT_EQ(g.global_inserts, w.global_inserts);
  }
  EXPECT_EQ(got.diag.radix_sorted_elements, want.diag.radix_sorted_elements);
}

SpeckConfig base_config() {
  SpeckConfig cfg;
  cfg.plan_cache = false;  // exercise the full pipeline every call
  return cfg;
}

/// The stress shape for stealing: one heavy head, a long light tail.
Csr skewed_power_law() { return gen::power_law(700, 700, 10, 2.2, 220, 9001); }

TEST(PartitionExecutor, BitIdenticalAcrossPartitionsThreadsAndStealing) {
  for (const gen::CorpusEntry& entry : gen::test_corpus()) {
    SpeckConfig cfg = base_config();
    cfg.host_threads = 1;
    cfg.partitions = 1;
    Speck baseline_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    const PipelineRun baseline =
        run_once(baseline_speck, entry.a, entry.b, entry.name);
    for (const int partitions : {2, 4}) {
      for (const int threads : {1, 8}) {
        for (const bool steal : {false, true}) {
          SpeckConfig run_cfg = base_config();
          run_cfg.host_threads = threads;
          run_cfg.partitions = partitions;
          run_cfg.partition_steal = steal;
          Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, run_cfg);
          expect_identical(
              baseline, run_once(speck, entry.a, entry.b, entry.name),
              entry.name + " partitions=" + std::to_string(partitions) +
                  " threads=" + std::to_string(threads) +
                  (steal ? " steal" : " no-steal"));
        }
      }
    }
  }
}

TEST(PartitionExecutor, PowerLawSkewBitIdenticalWithStealing) {
  // Heavy head rows concentrate the volume in the first partition, so the
  // other teams finish early and (with stealing on) claim foreign chunks.
  // The result must not care.
  const Csr a = skewed_power_law();
  SpeckConfig cfg = base_config();
  cfg.host_threads = 1;
  Speck baseline_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  const PipelineRun baseline = run_once(baseline_speck, a, a, "power-law");
  for (const int partitions : {2, 4}) {
    for (const bool steal : {false, true}) {
      SpeckConfig run_cfg = base_config();
      run_cfg.host_threads = 8;
      run_cfg.partitions = partitions;
      run_cfg.partition_steal = steal;
      Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, run_cfg);
      // Two multiplies: cold workspaces, then warm — both must match.
      expect_identical(baseline, run_once(speck, a, a, "power-law"),
                       "cold partitions=" + std::to_string(partitions) +
                           (steal ? " steal" : " no-steal"));
      expect_identical(baseline, run_once(speck, a, a, "power-law"),
                       "warm partitions=" + std::to_string(partitions) +
                           (steal ? " steal" : " no-steal"));
    }
  }
}

TEST(PartitionExecutor, NumaLocalBMatchesSharedB) {
  const Csr a = skewed_power_law();
  SpeckConfig cfg = base_config();
  cfg.host_threads = 1;
  Speck baseline_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  const PipelineRun baseline = run_once(baseline_speck, a, a, "power-law");
  SpeckConfig numa_cfg = base_config();
  numa_cfg.host_threads = 8;
  numa_cfg.partitions = 4;
  numa_cfg.numa_local_b = true;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, numa_cfg);
  expect_identical(baseline, run_once(speck, a, a, "power-law"),
                   "numa_local_b cold");
  expect_identical(baseline, run_once(speck, a, a, "power-law"),
                   "numa_local_b warm");
}

TEST(PartitionExecutor, EstimatedPlanningBitIdenticalAcrossPartitions) {
  const Csr a = skewed_power_law();
  SpeckConfig cfg = base_config();
  cfg.host_threads = 1;
  cfg.planning = PlanningMode::kEstimated;
  Speck baseline_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  const PipelineRun baseline = run_once(baseline_speck, a, a, "estimated");
  for (const int partitions : {2, 4}) {
    SpeckConfig run_cfg = base_config();
    run_cfg.host_threads = 8;
    run_cfg.partitions = partitions;
    run_cfg.planning = PlanningMode::kEstimated;
    Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, run_cfg);
    expect_identical(baseline, run_once(speck, a, a, "estimated"),
                     "estimated partitions=" + std::to_string(partitions));
  }
}

TEST(PartitionExecutor, SteadyStateAllocationFreeWithPartitions) {
  // Partition-local workspace pools must preserve the zero-allocation hot
  // path: after one cold multiply every block body runs allocation-free.
  // Single worker keeps the block-to-team assignment deterministic.
  for (const gen::CorpusEntry& entry : gen::test_corpus()) {
    SpeckConfig cfg = base_config();
    cfg.host_threads = 1;
    cfg.partitions = 4;
    Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    (void)run_once(speck, entry.a, entry.b, entry.name);  // warm-up
    for (int rep = 0; rep < 2; ++rep) {
      const PipelineRun run = run_once(speck, entry.a, entry.b, entry.name);
      EXPECT_EQ(run.diag.symbolic.hot_path_allocs, 0u)
          << entry.name << " rep " << rep;
      EXPECT_EQ(run.diag.numeric.hot_path_allocs, 0u)
          << entry.name << " rep " << rep;
    }
  }
}

TEST(PartitionExecutor, DiagnosticsReflectTheRun) {
  const Csr a = skewed_power_law();
  SpeckConfig cfg = base_config();
  cfg.host_threads = 4;
  cfg.partitions = 4;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  (void)run_once(speck, a, a, "power-law");
  const PartitionDiag& part = speck.last_diagnostics().partition;
  EXPECT_EQ(part.partitions, 4);
  ASSERT_EQ(part.team_chunks.size(), 4u);
  ASSERT_EQ(part.team_steals.size(), 4u);
  ASSERT_EQ(part.team_seconds.size(), 4u);
  std::size_t chunks = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    chunks += part.team_chunks[t];
    EXPECT_LE(part.team_steals[t], part.team_chunks[t]);
    EXPECT_GE(part.team_seconds[t], 0.0);
  }
  EXPECT_GT(chunks, 0u);
  EXPECT_LE(part.steal_count(), chunks);
  EXPECT_GE(part.imbalance_ratio(), 1.0);  // max/avg over non-empty teams

  // The flat executor reports an empty struct.
  SpeckConfig flat_cfg = base_config();
  flat_cfg.host_threads = 4;
  flat_cfg.partitions = 1;
  Speck flat(sim::DeviceSpec::titan_v(), sim::CostModel{}, flat_cfg);
  (void)run_once(flat, a, a, "power-law");
  EXPECT_EQ(flat.last_diagnostics().partition.partitions, 1);
  EXPECT_EQ(flat.last_diagnostics().partition.steal_count(), 0u);
}

TEST(PartitionExecutor, MultiGpuPanelsAggregatePartitionTelemetry) {
  const Csr a = skewed_power_law();
  MultiGpuConfig mg;
  mg.gpus = 2;
  mg.speck = base_config();
  mg.speck.host_threads = 4;
  mg.speck.partitions = 2;
  MultiGpuSpeck multi(sim::DeviceSpec::titan_v(), sim::CostModel{}, mg);
  const SpGemmResult got = multi.multiply(a, a);
  ASSERT_TRUE(got.ok()) << got.failure_reason;

  SpeckConfig single_cfg = base_config();
  single_cfg.host_threads = 1;
  Speck single(sim::DeviceSpec::titan_v(), sim::CostModel{}, single_cfg);
  const SpGemmResult want = single.multiply(a, a);
  ASSERT_TRUE(want.ok());
  const auto diff = compare(got.c, want.c, 0.0);  // bitwise
  EXPECT_FALSE(diff.has_value()) << diff->description;

  const MultiGpuDiagnostics& diag = multi.last_diagnostics();
  EXPECT_GE(diag.worst_imbalance_ratio, 1.0);
  // steal_count is schedule-dependent; only sanity-bound it.
  EXPECT_LT(diag.steal_count, std::size_t{1} << 40);
}

TEST(PartitionExecutor, ResolvePartitionsHonorsEnvironment) {
  EXPECT_EQ(resolve_partitions(3), 3);
  ::setenv("SPECK_PARTITIONS", "5", 1);
  EXPECT_EQ(resolve_partitions(0), 5);
  EXPECT_EQ(resolve_partitions(2), 2);  // explicit config wins
  ::setenv("SPECK_PARTITIONS", "not-a-number", 1);
  EXPECT_EQ(resolve_partitions(0), 1);  // warned once, fell back to flat
  ::setenv("SPECK_PARTITIONS", "0", 1);
  EXPECT_EQ(resolve_partitions(0), 1);
  ::unsetenv("SPECK_PARTITIONS");
  EXPECT_EQ(resolve_partitions(0), 1);
}

TEST(PartitionExecutor, ConfigValidationAndDescribe) {
  SpeckConfig cfg;
  cfg.partitions = 4;
  cfg.partition_steal = false;
  cfg.numa_local_b = true;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  const std::string text = describe(speck.config());
  EXPECT_NE(text.find("partitions"), std::string::npos);
  EXPECT_NE(text.find("partition_steal"), std::string::npos);
  EXPECT_NE(text.find("numa_local_b"), std::string::npos);
  SpeckConfig bad;
  bad.partitions = 300;
  EXPECT_THROW(
      Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, bad).multiply(
          gen::banded(8, 1, 1, 1), gen::banded(8, 1, 1, 1)),
      SpeckError);
}

}  // namespace
}  // namespace speck
