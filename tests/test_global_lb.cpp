// Unit tests for the global load balancer: kernel configurations, the
// Table 2 decision rule, binning and the Algorithm 2 block merge.
#include <gtest/gtest.h>

#include <numeric>

#include "speck/config.h"
#include "speck/global_lb.h"
#include "speck/speck.h"

namespace speck {
namespace {

sim::DeviceSpec titan() { return sim::DeviceSpec::titan_v(); }

TEST(KernelConfigs, TitanVHasSixConfigs) {
  const auto configs = kernel_configs(titan());
  ASSERT_EQ(configs.size(), 6u);
  // Smallest first: 3 KB / 64 threads ... 48 KB / 1024, then 96 KB opt-in.
  EXPECT_EQ(configs.front().threads, 64);
  EXPECT_EQ(configs.front().scratchpad_bytes, 3u * 1024);
  EXPECT_EQ(configs[4].threads, 1024);
  EXPECT_EQ(configs[4].scratchpad_bytes, 48u * 1024);
  EXPECT_EQ(configs.back().scratchpad_bytes, 96u * 1024);
  EXPECT_TRUE(configs.back().reduced_occupancy);
  EXPECT_FALSE(configs[4].reduced_occupancy);
}

TEST(KernelConfigs, PascalHasFive) {
  const auto configs = kernel_configs(sim::DeviceSpec::pascal_like());
  EXPECT_EQ(configs.size(), 5u);
  EXPECT_FALSE(configs.back().reduced_occupancy);
}

TEST(KernelConfigs, CapacitiesMatchPaper) {
  const auto configs = kernel_configs(titan());
  // Paper §4.3: ~24k hash entries symbolically in the largest config,
  // >500k dense-bitmask entries.
  EXPECT_EQ(configs.back().symbolic_hash_capacity(), 24576u);
  EXPECT_EQ(configs.back().dense_symbolic_capacity(), 786432u);
  EXPECT_GT(configs.back().dense_symbolic_capacity(), 500000u);
  // Numeric entries carry a 64-bit value: a third of the symbolic count
  // (paper: "the symbolic step can store three times as many elements").
  EXPECT_EQ(configs.back().symbolic_hash_capacity(),
            3 * configs.back().numeric_hash_capacity());
}

TEST(ConfigForEntries, PicksSmallestFitting) {
  const auto configs = kernel_configs(titan());
  EXPECT_EQ(config_for_entries(configs, 1, true), 0);
  EXPECT_EQ(config_for_entries(configs, 768, true), 0);   // 3KB/4B = 768
  EXPECT_EQ(config_for_entries(configs, 769, true), 1);
  EXPECT_EQ(config_for_entries(configs, 24576, true), 5);
  // Too large for every config: still the largest.
  EXPECT_EQ(config_for_entries(configs, 1 << 20, true), 5);
}

TEST(LbDecision, ThresholdSemantics) {
  LbDecisionStats stats;
  stats.ratio = 40.0;
  stats.rows = 30000;
  stats.large_kernel = false;
  const LoadBalanceThresholds general{39.2, 28000};
  const LoadBalanceThresholds large{6.0, 5431};
  EXPECT_TRUE(lb_decision(stats, general, large));
  stats.ratio = 39.0;
  EXPECT_FALSE(lb_decision(stats, general, large));
  stats.ratio = 40.0;
  stats.rows = 28000;
  EXPECT_FALSE(lb_decision(stats, general, large));
  // The large-kernel set is much more permissive.
  stats.large_kernel = true;
  stats.ratio = 7.0;
  stats.rows = 6000;
  EXPECT_TRUE(lb_decision(stats, general, large));
}

TEST(ShouldUseGlobalLb, UniformMatrixSkipsBalancer) {
  const auto configs = kernel_configs(titan());
  const SpeckConfig cfg;
  std::vector<offset_t> entries(50000, 100);  // perfectly uniform
  const GlobalLbInputs in{entries, true};
  EXPECT_FALSE(should_use_global_lb(in, configs, cfg));
}

TEST(ShouldUseGlobalLb, SkewedLargeMatrixUsesBalancer) {
  const auto configs = kernel_configs(titan());
  const SpeckConfig cfg;
  std::vector<offset_t> entries(50000, 100);
  entries[7] = 100000;  // one giant row -> large-kernel thresholds apply
  const GlobalLbInputs in{entries, true};
  const LbDecisionStats stats = lb_decision_stats(in, configs, cfg);
  EXPECT_TRUE(stats.large_kernel);
  EXPECT_TRUE(should_use_global_lb(in, configs, cfg));
}

TEST(ShouldUseGlobalLb, SmallMatrixSkipsEvenWhenSkewed) {
  const auto configs = kernel_configs(titan());
  const SpeckConfig cfg;
  std::vector<offset_t> entries(100, 10);
  entries[0] = 500;  // skewed but tiny
  const GlobalLbInputs in{entries, true};
  EXPECT_FALSE(should_use_global_lb(in, configs, cfg));
}

TEST(ShouldUseGlobalLb, ForcedModes) {
  const auto configs = kernel_configs(titan());
  SpeckConfig cfg;
  std::vector<offset_t> entries(10, 1);
  const GlobalLbInputs in{entries, true};
  cfg.features.global_lb_symbolic = GlobalLbMode::kAlwaysOn;
  EXPECT_TRUE(should_use_global_lb(in, configs, cfg));
  cfg.features.global_lb_symbolic = GlobalLbMode::kAlwaysOff;
  EXPECT_FALSE(should_use_global_lb(in, configs, cfg));
}

TEST(BlockMerge, MergesSmallNeighbours) {
  // Figure 3's example: 16 unit blocks, capacity 16.
  const std::vector<offset_t> demands{7, 8, 3, 0, 1, 5, 4, 3,
                                      5, 2, 2, 3, 0, 0, 1, 2};
  const auto blocks = block_merge(demands, 16, 32);
  // The paper's reduction reaches 4 blocks: {7,8}, {3,0,1,5,4,3}=16? No:
  // 3+0=3, 1+5=6 -> 3+6=9 -> 9+? ... verify the invariants instead of the
  // exact partition, then check the count is small.
  offset_t covered = 0;
  for (const auto& [begin, end] : blocks) {
    offset_t sum = 0;
    for (std::size_t i = begin; i < end; ++i) sum += demands[i];
    EXPECT_TRUE(end - begin == 1 || sum < 16) << "merged block exceeds capacity";
    EXPECT_LE(end - begin, 32u);
    covered += static_cast<offset_t>(end - begin);
  }
  EXPECT_EQ(covered, 16);
  EXPECT_LE(blocks.size(), 5u);
}

TEST(BlockMerge, PreservesOrderAndCoverage) {
  const std::vector<offset_t> demands{1, 1, 1, 1, 1, 1, 1, 1, 1};
  const auto blocks = block_merge(demands, 100, 32);
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : blocks) {
    EXPECT_EQ(begin, expected_begin) << "blocks must tile consecutively";
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, demands.size());
}

TEST(BlockMerge, RespectsRowLimit) {
  const std::vector<offset_t> demands(64, 1);
  const auto blocks = block_merge(demands, 1 << 20, 32);
  for (const auto& [begin, end] : blocks) EXPECT_LE(end - begin, 32u);
  EXPECT_EQ(blocks.size(), 2u);  // 64 rows / 32 max
}

TEST(BlockMerge, NothingFitsNothingMerges) {
  const std::vector<offset_t> demands{10, 10, 10};
  const auto blocks = block_merge(demands, 15, 32);
  EXPECT_EQ(blocks.size(), 3u);
}

TEST(BlockMerge, WithinFactorTwoOfOptimal) {
  // Paper: the greedy pairwise merge is within 50% of full utilization —
  // if two neighbours cannot merge, their average fill exceeds 50%.
  const std::vector<offset_t> demands{9, 9, 9, 9, 9, 9, 9, 9};
  const auto blocks = block_merge(demands, 16, 32);
  EXPECT_EQ(blocks.size(), 8u);  // 9+9 > 16: nothing merges, all >50% full
}

TEST(BlockMerge, EmptyInput) {
  EXPECT_TRUE(block_merge({}, 16, 32).empty());
}

TEST(PlanGlobalLb, UniformFallbackChunksRows) {
  const auto configs = kernel_configs(titan());
  const SpeckConfig cfg;
  sim::CostModel model;
  sim::Launch launch("lb", titan(), model);
  std::vector<offset_t> entries(1000, 50);
  const BinPlan plan = plan_global_lb({entries, true}, configs, cfg, launch);
  EXPECT_FALSE(plan.used_load_balancer);
  // Identity order, full coverage, uniform config.
  std::size_t covered = 0;
  for (const auto& block : plan.blocks) {
    covered += block.end - block.begin;
    EXPECT_EQ(block.config, plan.blocks.front().config);
    EXPECT_LE(block.end - block.begin,
              static_cast<std::size_t>(cfg.max_rows_per_block));
  }
  EXPECT_EQ(covered, entries.size());
  EXPECT_EQ(launch.block_count(), 0) << "no LB cost when the balancer is off";
}

TEST(PlanGlobalLb, BinnedPlanCoversEveryRowOnce) {
  const auto configs = kernel_configs(titan());
  SpeckConfig cfg;
  cfg.features.global_lb_symbolic = GlobalLbMode::kAlwaysOn;
  sim::CostModel model;
  sim::Launch launch("lb", titan(), model);
  std::vector<offset_t> entries(5000);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i] = static_cast<offset_t>(1 + (i * 37) % 20000);
  }
  const BinPlan plan = plan_global_lb({entries, true}, configs, cfg, launch);
  EXPECT_TRUE(plan.used_load_balancer);
  EXPECT_GT(launch.block_count(), 0);

  std::vector<int> seen(entries.size(), 0);
  for (const auto& block : plan.blocks) {
    for (std::size_t i = block.begin; i < block.end; ++i) {
      ++seen[static_cast<std::size_t>(plan.row_order[i])];
    }
    // Every row in the block fits the block's configuration.
    for (std::size_t i = block.begin; i < block.end; ++i) {
      const offset_t demand = entries[static_cast<std::size_t>(plan.row_order[i])];
      const int needed = config_for_entries(configs, demand, true);
      EXPECT_LE(needed, block.config);
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(PlanGlobalLb, BinKeepsRowOrder) {
  const auto configs = kernel_configs(titan());
  SpeckConfig cfg;
  cfg.features.global_lb_symbolic = GlobalLbMode::kAlwaysOn;
  sim::CostModel model;
  sim::Launch launch("lb", titan(), model);
  std::vector<offset_t> entries(512, 10);  // all in the smallest bin
  const BinPlan plan = plan_global_lb({entries, true}, configs, cfg, launch);
  EXPECT_TRUE(std::is_sorted(plan.row_order.begin(), plan.row_order.end()))
      << "binning must preserve CSR row order within a bin";
}

TEST(PlanGlobalLb, EmptyMatrix) {
  const auto configs = kernel_configs(titan());
  const SpeckConfig cfg;
  sim::CostModel model;
  sim::Launch launch("lb", titan(), model);
  const BinPlan plan = plan_global_lb({{}, true}, configs, cfg, launch);
  EXPECT_TRUE(plan.blocks.empty());
}

}  // namespace
}  // namespace speck

namespace speck {
namespace {

TEST(ConfigValidate, DefaultsAreValid) {
  EXPECT_NO_THROW(validate(SpeckConfig{}));
  SpeckConfig tuned;
  tuned.thresholds = reduced_scale_thresholds();
  EXPECT_NO_THROW(validate(tuned));
}

TEST(ConfigValidate, RejectsBadValues) {
  SpeckConfig config;
  config.max_numeric_fill = 0.0;
  EXPECT_THROW(validate(config), InvalidArgument);
  config = SpeckConfig{};
  config.max_rows_per_block = 33;  // exceeds the 5-bit local row index
  EXPECT_THROW(validate(config), InvalidArgument);
  config = SpeckConfig{};
  config.features.fixed_group_size = 24;  // not a power of two
  EXPECT_THROW(validate(config), InvalidArgument);
  config = SpeckConfig{};
  config.symbolic_dense_factor = 0.5;
  EXPECT_THROW(validate(config), InvalidArgument);
  config = SpeckConfig{};
  config.thresholds.symbolic.ratio = -1.0;
  EXPECT_THROW(validate(config), InvalidArgument);
}

TEST(ConfigValidate, SpeckConstructorValidates) {
  SpeckConfig bad;
  bad.max_rows_per_block = 0;
  EXPECT_THROW(Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, bad),
               InvalidArgument);
}

TEST(ConfigDescribe, MentionsEveryKnob) {
  const std::string text = describe(SpeckConfig{});
  for (const char* key :
       {"thresholds.symbolic", "dense_accumulation", "direct_rows",
        "dynamic_group_size", "block_merge", "global_lb", "max_numeric_fill",
        "dense_density_threshold", "max_rows_per_block"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace speck
