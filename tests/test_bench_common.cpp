// Tests for the benchmark-harness library itself: suite runner with
// verification, CSV export, table/chart rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_common.h"

namespace speck::bench {
namespace {

std::vector<gen::CorpusEntry> tiny_corpus() {
  auto corpus = gen::test_corpus();
  corpus.resize(4);  // keep the harness test fast
  return corpus;
}

TEST(RunSuite, ProducesOneMeasurementPerPair) {
  const auto corpus = tiny_corpus();
  const auto algorithms = baselines::make_all_algorithms(
      sim::DeviceSpec::titan_v(), sim::CostModel{});
  const auto measurements = run_suite(corpus, algorithms);
  EXPECT_EQ(measurements.size(), corpus.size() * algorithms.size());
  for (const Measurement& m : measurements) {
    EXPECT_FALSE(m.algorithm.empty());
    EXPECT_FALSE(m.matrix.empty());
    if (m.status == SpGemmStatus::kOk && m.products > 0) {
      EXPECT_GT(m.seconds, 0.0);
      EXPECT_GT(m.gflops, 0.0);
    }
  }
}

TEST(RunSuite, VerifiesResultsAgainstOracle) {
  // The harness aborts on a wrong result — all shipped algorithms pass.
  const auto corpus = tiny_corpus();
  const auto algorithms = baselines::make_gpu_algorithms(
      sim::DeviceSpec::titan_v(), sim::CostModel{});
  EXPECT_NO_THROW(run_suite(corpus, algorithms, /*verify=*/true));
}

TEST(BestSeconds, PicksMinimumPerMatrix) {
  std::vector<Measurement> measurements(3);
  measurements[0] = {"a", "m1", 10, SpGemmStatus::kOk, 2.0, 0, 0, {}};
  measurements[1] = {"b", "m1", 10, SpGemmStatus::kOk, 1.0, 0, 0, {}};
  measurements[2] = {"c", "m1", 10, SpGemmStatus::kOutOfMemory, 0.1, 0, 0, {}};
  const auto best = best_seconds_per_matrix(measurements);
  EXPECT_DOUBLE_EQ(best.at("m1"), 1.0);  // the OOM run does not count
}

TEST(Csv, RoundTripsMeasurements) {
  std::vector<Measurement> measurements(2);
  measurements[0] = {"speck", "m1", 1000, SpGemmStatus::kOk, 0.5, 4.0, 2048, {}};
  measurements[1] = {"cusp", "m2", 500, SpGemmStatus::kOutOfMemory, 0, 0, 0, {}};
  const std::string path = "/tmp/speck_test_csv.csv";
  write_csv(path, measurements);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "algorithm,matrix,products,status,seconds,gflops,peak_memory_bytes");
  std::getline(in, line);
  EXPECT_NE(line.find("speck,m1,1000,ok,0.5,4,2048"), std::string::npos);
  std::getline(in, line);
  EXPECT_NE(line.find("cusp,m2,500,oom"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RejectsUnwritablePath) {
  EXPECT_THROW(write_csv("/nonexistent/dir/out.csv", {}), InvalidArgument);
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
  EXPECT_EQ(format_double(10.0, 0), "10");
  EXPECT_EQ(format_bytes_mb(2 * 1024 * 1024), "2.0");
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  const std::vector<std::string> names{"up", "down"};
  const std::vector<std::vector<double>> series{{1, 2, 4, 8, 16},
                                                {16, 8, 4, 2, 1}};
  const std::string chart = ascii_chart(names, series, 8, true);
  EXPECT_NE(chart.find("legend: *=up o=down"), std::string::npos);
  EXPECT_NE(chart.find("16.00"), std::string::npos);
  EXPECT_NE(chart.find("1.00"), std::string::npos);
  // 8 grid rows between the two axis lines.
  int lines = 0;
  for (const char c : chart) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 8 + 3);
}

TEST(AsciiChart, HandlesDegenerateInput) {
  EXPECT_EQ(ascii_chart({}, {}, 8, true), "(no data)\n");
  EXPECT_EQ(ascii_chart({"flat"}, {{5, 5, 5}}, 8, true), "(no data)\n");
  EXPECT_THROW(ascii_chart({"a"}, {{1, 2}, {3}}, 8, true), InvalidArgument);
}

}  // namespace
}  // namespace speck::bench
