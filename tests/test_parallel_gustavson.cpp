// Tests for the multi-threaded host oracle.
#include <gtest/gtest.h>

#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "ref/parallel_gustavson.h"

namespace speck {
namespace {

class ParallelThreads : public ::testing::TestWithParam<int> {};

TEST_P(ParallelThreads, MatchesSerialOracleExactly) {
  const int threads = GetParam();
  const Csr a = gen::power_law(500, 500, 8, 1.8, 100, 1601);
  const Csr parallel = parallel_gustavson_spgemm(a, a, threads);
  const Csr serial = gustavson_spgemm(a, a);
  // Bit-identical: same per-row accumulation order regardless of threads.
  ASSERT_EQ(parallel.nnz(), serial.nnz());
  for (std::size_t i = 0; i < static_cast<std::size_t>(serial.nnz()); ++i) {
    ASSERT_EQ(parallel.col_indices()[i], serial.col_indices()[i]);
    ASSERT_EQ(parallel.values()[i], serial.values()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelThreads,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(ParallelGustavson, WholeTestCorpus) {
  for (const auto& entry : gen::test_corpus()) {
    const Csr parallel = parallel_gustavson_spgemm(entry.a, entry.b, 4);
    const Csr serial = gustavson_spgemm(entry.a, entry.b);
    const auto diff = compare(parallel, serial, 0.0);
    EXPECT_FALSE(diff.has_value()) << entry.name << ": " << diff->description;
  }
}

TEST(ParallelGustavson, MoreThreadsThanRows) {
  const Csr a = gen::random_uniform(3, 3, 2, 1607);
  const Csr c = parallel_gustavson_spgemm(a, a, 64);
  const auto diff = compare(c, gustavson_spgemm(a, a), 0.0);
  EXPECT_FALSE(diff.has_value());
}

TEST(ParallelGustavson, DefaultThreadCount) {
  const Csr a = gen::banded(200, 10, 4, 1609);
  const Csr c = parallel_gustavson_spgemm(a, a, 0);  // hardware concurrency
  const auto diff = compare(c, gustavson_spgemm(a, a), 0.0);
  EXPECT_FALSE(diff.has_value());
}

TEST(ParallelGustavson, EmptyMatrix) {
  const Csr z = Csr::zeros(16, 16);
  EXPECT_EQ(parallel_gustavson_spgemm(z, z, 4).nnz(), 0);
}

TEST(ParallelGustavson, RejectsBadArguments) {
  const Csr a = Csr::zeros(3, 4);
  EXPECT_THROW(parallel_gustavson_spgemm(a, a, 2), InvalidArgument);
  const Csr sq = Csr::zeros(3, 3);
  EXPECT_THROW(parallel_gustavson_spgemm(sq, sq, -1), InvalidArgument);
}

}  // namespace
}  // namespace speck
