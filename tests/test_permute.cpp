// Tests for permutations, RCM reordering and SpMV.
#include <gtest/gtest.h>

#include <numeric>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "matrix/permute.h"
#include "matrix/spmv.h"
#include "ref/gustavson.h"

namespace speck {
namespace {

TEST(Permutation, IsPermutationChecks) {
  EXPECT_TRUE(is_permutation(std::vector<index_t>{2, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 3, 1}));
  EXPECT_FALSE(is_permutation(std::vector<index_t>{0, -1, 1}));
  EXPECT_TRUE(is_permutation(std::vector<index_t>{}));
}

TEST(Permutation, InvertRoundTrip) {
  const Permutation p = random_permutation(50, 9);
  const Permutation inverse = invert_permutation(p);
  for (index_t i = 0; i < 50; ++i) {
    EXPECT_EQ(inverse[static_cast<std::size_t>(p[static_cast<std::size_t>(i)])], i);
  }
}

TEST(Permutation, RandomIsValidAndDeterministic) {
  const Permutation a = random_permutation(100, 7);
  const Permutation b = random_permutation(100, 7);
  EXPECT_TRUE(is_permutation(a));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, random_permutation(100, 8));
}

TEST(PermuteRows, MovesRows) {
  const Csr m = gen::random_uniform(30, 40, 4, 11);
  const Permutation p = random_permutation(30, 13);
  const Csr permuted = permute_rows(m, p);
  for (index_t r = 0; r < 30; ++r) {
    const index_t new_row = p[static_cast<std::size_t>(r)];
    ASSERT_EQ(permuted.row_length(new_row), m.row_length(r));
    const auto expected = m.row_cols(r);
    const auto actual = permuted.row_cols(new_row);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), actual.begin()));
  }
}

TEST(PermuteRows, IdentityIsNoop) {
  const Csr m = gen::banded(40, 5, 3, 17);
  Permutation identity(40);
  std::iota(identity.begin(), identity.end(), index_t{0});
  const auto diff = compare(permute_rows(m, identity), m);
  EXPECT_FALSE(diff.has_value());
}

TEST(PermuteCols, MovesColumnsAndStaysSorted) {
  const Csr m = gen::random_uniform(25, 25, 5, 19);
  const Permutation p = random_permutation(25, 23);
  const Csr permuted = permute_cols(m, p);
  EXPECT_TRUE(permuted.sorted_within_rows());
  // Entry check via dense comparison.
  const auto dense_before = to_dense(m);
  const auto dense_after = to_dense(permuted);
  for (index_t r = 0; r < 25; ++r) {
    for (index_t c = 0; c < 25; ++c) {
      EXPECT_DOUBLE_EQ(
          dense_after[static_cast<std::size_t>(r) * 25 +
                      static_cast<std::size_t>(p[static_cast<std::size_t>(c)])],
          dense_before[static_cast<std::size_t>(r) * 25 + static_cast<std::size_t>(c)]);
    }
  }
}

TEST(PermuteSymmetric, PreservesSpGemmUpToPermutation) {
  // (P A Pᵀ)(P B Pᵀ) == P (A B) Pᵀ — validates the permutation algebra and
  // gives SpGEMM an independent consistency probe.
  const Csr a = gen::random_uniform(60, 60, 5, 29);
  const Csr b = gen::banded(60, 8, 4, 31);
  const Permutation p = random_permutation(60, 37);
  const Csr lhs = gustavson_spgemm(permute_symmetric(a, p), permute_symmetric(b, p));
  const Csr rhs = permute_symmetric(gustavson_spgemm(a, b), p);
  const auto diff = compare(lhs, rhs, 1e-9);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Rcm, ReducesBandwidthOfShuffledBandedMatrix) {
  const Csr banded_matrix = gen::banded(400, 6, 4, 41);
  const index_t original_band = bandwidth(banded_matrix);
  const Csr shuffled =
      permute_symmetric(banded_matrix, random_permutation(400, 43));
  const index_t shuffled_band = bandwidth(shuffled);
  ASSERT_GT(shuffled_band, original_band * 3) << "shuffle must destroy locality";

  const Permutation rcm = reverse_cuthill_mckee(shuffled);
  EXPECT_TRUE(is_permutation(rcm));
  const Csr restored = permute_symmetric(shuffled, rcm);
  EXPECT_LT(bandwidth(restored), shuffled_band / 4)
      << "RCM must recover most of the bandwidth";
}

TEST(Rcm, HandlesDisconnectedComponents) {
  const Csr m = gen::block_diagonal(4, 25, 0.3, 47);
  const Permutation p = reverse_cuthill_mckee(m);
  EXPECT_TRUE(is_permutation(p));
  EXPECT_LE(bandwidth(permute_symmetric(m, p)), bandwidth(m));
}

TEST(Rcm, EmptyAndIdentityMatrices) {
  EXPECT_TRUE(is_permutation(reverse_cuthill_mckee(Csr::zeros(10, 10))));
  EXPECT_TRUE(is_permutation(reverse_cuthill_mckee(Csr::identity(10))));
}

TEST(Spmv, MatchesDense) {
  const Csr m = gen::random_uniform(30, 20, 4, 53);
  Xoshiro256 rng(59);
  std::vector<value_t> x(20);
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  const auto y = spmv(m, x);
  const auto dense = to_dense(m);
  for (index_t r = 0; r < 30; ++r) {
    value_t expected = 0.0;
    for (index_t c = 0; c < 20; ++c) {
      expected += dense[static_cast<std::size_t>(r) * 20 + static_cast<std::size_t>(c)] *
                  x[static_cast<std::size_t>(c)];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(r)], expected, 1e-12);
  }
}

TEST(Spmv, AlphaBetaForm) {
  const Csr m = Csr::identity(5);
  std::vector<value_t> x{1, 2, 3, 4, 5};
  std::vector<value_t> y{10, 10, 10, 10, 10};
  spmv(m, x, 2.0, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 1 + 5.0);
  EXPECT_DOUBLE_EQ(y[4], 2.0 * 5 + 5.0);
}

TEST(Spmv, SpGemmAssociativityProbe) {
  // (A*B)*x == A*(B*x) with the SpGEMM result from the oracle.
  const Csr a = gen::power_law(80, 80, 6, 1.9, 30, 61);
  const Csr b = gen::banded(80, 10, 4, 67);
  Xoshiro256 rng(71);
  std::vector<value_t> x(80);
  for (auto& v : x) v = rng.next_double(-1.0, 1.0);
  const Csr ab = gustavson_spgemm(a, b);
  const auto lhs = spmv(ab, x);
  const auto rhs = spmv(a, spmv(b, x));
  for (std::size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-9);
}

TEST(Spmv, RejectsBadSizes) {
  const Csr m = Csr::zeros(4, 6);
  std::vector<value_t> wrong(5);
  EXPECT_THROW(spmv(m, wrong), InvalidArgument);
}

TEST(Bandwidth, KnownValues) {
  EXPECT_EQ(bandwidth(Csr::identity(10)), 0);
  EXPECT_EQ(bandwidth(Csr::zeros(10, 10)), 0);
  const Csr grid = gen::stencil_2d(8, 8);
  EXPECT_EQ(bandwidth(grid), 8);  // +-nx coupling
}

}  // namespace
}  // namespace speck
