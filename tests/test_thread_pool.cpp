// Unit tests for the host thread pool: chunk coverage, fixed boundaries,
// worker ids, deterministic reduction, exception propagation, thread-count
// resolution, nested calls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace speck {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.parallel_for(n, 13, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
      }
    }
  }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnNAndChunk) {
  // Collect the set of (begin, end) pairs at several thread counts; the
  // determinism guarantee requires them to be identical.
  const std::size_t n = 103;
  const std::size_t chunk = 10;
  auto boundaries = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> out(
        (n + chunk - 1) / chunk);
    pool.parallel_for(n, chunk, [&](std::size_t begin, std::size_t end, int) {
      out[begin / chunk] = {begin, end};
    });
    return out;
  };
  const auto serial = boundaries(1);
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.front(), (std::pair<std::size_t, std::size_t>{0, 10}));
  EXPECT_EQ(serial.back(), (std::pair<std::size_t, std::size_t>{100, 103}));
  EXPECT_EQ(boundaries(2), serial);
  EXPECT_EQ(boundaries(8), serial);
}

TEST(ThreadPool, WorkerIdsAreInRange) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<bool> bad{false};
  pool.parallel_for(256, 1, [&](std::size_t, std::size_t, int worker) {
    if (worker < 0 || worker >= 4) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, CallingThreadParticipatesWhenSerial) {
  ThreadPool pool(1);
  int worker_seen = -1;
  pool.parallel_for(5, 100, [&](std::size_t begin, std::size_t end, int worker) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    worker_seen = worker;
  });
  EXPECT_EQ(worker_seen, 0);
}

TEST(ThreadPool, DeterministicReduceMatchesSerialSum) {
  // A sum whose float rounding depends on association order: identical
  // partial order must give a bit-identical result at any thread count.
  const std::size_t n = 10'000;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto reduce_at = [&](int threads) {
    ThreadPool pool(threads);
    return deterministic_reduce<double>(
        pool, n, 97, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += data[i];
          return s;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  const double serial = reduce_at(1);
  EXPECT_EQ(reduce_at(2), serial);  // bit-identical, not just NEAR
  EXPECT_EQ(reduce_at(8), serial);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t begin, std::size_t, int) {
                          if (begin == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(10, 1,
                    [&](std::size_t, std::size_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(8, 1, [&](std::size_t begin, std::size_t, int) {
    // Nested call from a worker: must not deadlock, must cover its range.
    pool.parallel_for(8, 2, [&](std::size_t ib, std::size_t ie, int) {
      for (std::size_t i = ib; i < ie; ++i) {
        hits[begin * 8 + i].fetch_add(1);
      }
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroChunkIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(7, 0,
                    [&](std::size_t begin, std::size_t end, int) {
                      count.fetch_add(static_cast<int>(end - begin));
                    });
  EXPECT_EQ(count.load(), 7);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvironment) {
  ::setenv("SPECK_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3);
  ::setenv("SPECK_THREADS", "not-a-number", 1);
  EXPECT_GE(default_thread_count(), 1);  // falls back to hardware
  ::setenv("SPECK_THREADS", "0", 1);
  EXPECT_GE(default_thread_count(), 1);
  ::unsetenv("SPECK_THREADS");
  EXPECT_GE(default_thread_count(), 1);
}

TEST(ThreadPool, GlobalPoolResizes) {
  set_global_thread_count(3);
  EXPECT_EQ(global_pool().thread_count(), 3);
  EXPECT_EQ(pool_or_global(nullptr).thread_count(), 3);
  ThreadPool local(2);
  EXPECT_EQ(pool_or_global(&local).thread_count(), 2);
  set_global_thread_count(0);  // back to the default
  EXPECT_EQ(global_pool().thread_count(), default_thread_count());
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  // Regression guard for generation handling: rapid successive jobs must
  // not lose chunks to stale workers.
  ThreadPool pool(4);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::atomic<int> count{0};
    pool.parallel_for(16, 1, [&](std::size_t, std::size_t, int) {
      count.fetch_add(1);
    });
    ASSERT_EQ(count.load(), 16) << "iteration " << iteration;
  }
}

// ---------------------------------------------------------------------------
// Two-level executor: partitioned_for and its helpers.

std::vector<std::size_t> even_bounds(std::size_t chunks, int parts) {
  std::vector<std::size_t> bounds(static_cast<std::size_t>(parts) + 1);
  for (int p = 0; p <= parts; ++p) {
    bounds[static_cast<std::size_t>(p)] =
        chunks * static_cast<std::size_t>(p) / static_cast<std::size_t>(parts);
  }
  return bounds;
}

TEST(PartitionedFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    for (const int parts : {1, 2, 4, 7}) {
      for (const bool steal : {false, true}) {
        for (const std::size_t n :
             {std::size_t{0}, std::size_t{1}, std::size_t{7},
              std::size_t{64}, std::size_t{1000}}) {
          const std::size_t chunk = 13;
          const std::size_t chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
          const auto bounds = even_bounds(chunks, parts);
          std::vector<std::atomic<int>> hits(n);
          for (auto& h : hits) h.store(0);
          pool.partitioned_for(
              n, chunk, bounds, steal,
              [&](std::size_t begin, std::size_t end, int team, int slot) {
                ASSERT_GE(team, 0);
                ASSERT_LT(team, parts);
                ASSERT_GE(slot, 0);
                for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
              });
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(hits[i].load(), 1)
                << "index " << i << " threads=" << threads
                << " parts=" << parts << " steal=" << steal;
          }
        }
      }
    }
  }
}

TEST(PartitionedFor, ChunkBoundariesDependOnlyOnNAndChunk) {
  // Identical (begin, end) pairs regardless of thread count, partition
  // count or stealing — the determinism contract the pipeline builds on.
  const std::size_t n = 103;
  const std::size_t chunk = 10;
  const std::size_t chunks = (n + chunk - 1) / chunk;
  auto boundaries = [&](int threads, int parts, bool steal) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> out(chunks);
    pool.partitioned_for(n, chunk, even_bounds(chunks, parts), steal,
                         [&](std::size_t begin, std::size_t end, int, int) {
                           out[begin / chunk] = {begin, end};
                         });
    return out;
  };
  const auto serial = boundaries(1, 1, false);
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.front(), (std::pair<std::size_t, std::size_t>{0, 10}));
  EXPECT_EQ(serial.back(), (std::pair<std::size_t, std::size_t>{100, 103}));
  for (const int threads : {2, 8}) {
    for (const int parts : {2, 4}) {
      for (const bool steal : {false, true}) {
        EXPECT_EQ(boundaries(threads, parts, steal), serial)
            << "threads=" << threads << " parts=" << parts
            << " steal=" << steal;
      }
    }
  }
}

TEST(PartitionedFor, ChunksStayInsideTheirHomePartitionWithoutHelp) {
  // With one lane per team and stealing off, every chunk of partition p must
  // run as team p — until a team finishes its own range and starts helping.
  // With equal-sized partitions and equal chunks the serial path guarantees
  // it outright; verify on the serial path where the schedule is fixed.
  ThreadPool pool(1);
  const std::size_t chunks = 12;
  const auto bounds = even_bounds(chunks, 4);
  std::vector<int> team_of(chunks, -1);
  pool.partitioned_for(chunks, 1, bounds, false,
                       [&](std::size_t begin, std::size_t, int team, int) {
                         team_of[begin] = team;
                       });
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(team_of[c], static_cast<int>(c / 3)) << "chunk " << c;
  }
}

TEST(PartitionedFor, RejectsMalformedBoundaries) {
  ThreadPool pool(2);
  const auto body = [](std::size_t, std::size_t, int, int) {};
  // Too few boundaries.
  EXPECT_THROW(pool.partitioned_for(
                   10, 1, std::vector<std::size_t>{0}, false, body),
               SpeckError);
  // front != 0.
  EXPECT_THROW(pool.partitioned_for(
                   10, 1, std::vector<std::size_t>{1, 10}, false, body),
               SpeckError);
  // back != total chunks.
  EXPECT_THROW(pool.partitioned_for(
                   10, 1, std::vector<std::size_t>{0, 9}, false, body),
               SpeckError);
  // Decreasing.
  EXPECT_THROW(pool.partitioned_for(
                   10, 1, std::vector<std::size_t>{0, 7, 5, 10}, false, body),
               SpeckError);
}

TEST(PartitionedFor, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  for (const bool steal : {false, true}) {
    EXPECT_THROW(
        pool.partitioned_for(100, 1, even_bounds(100, 4), steal,
                             [](std::size_t begin, std::size_t, int, int) {
                               if (begin == 42) throw std::runtime_error("boom");
                             }),
        std::runtime_error);
    std::atomic<int> count{0};
    pool.partitioned_for(10, 1, even_bounds(10, 2), steal,
                         [&](std::size_t, std::size_t, int, int) {
                           count.fetch_add(1);
                         });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(PartitionedFor, DiagAccountsForEveryChunk) {
  for (const int threads : {1, 4}) {
    for (const bool steal : {false, true}) {
      ThreadPool pool(threads);
      const std::size_t chunks = 64;
      PartitionedRunDiag diag;
      pool.partitioned_for(chunks, 1, even_bounds(chunks, 4), steal,
                           [](std::size_t, std::size_t, int, int) {}, &diag);
      ASSERT_EQ(diag.team_chunks.size(), 4u);
      ASSERT_EQ(diag.team_steals.size(), 4u);
      ASSERT_EQ(diag.team_seconds.size(), 4u);
      std::size_t total = 0;
      std::size_t steals = 0;
      for (std::size_t t = 0; t < 4; ++t) {
        total += diag.team_chunks[t];
        steals += diag.team_steals[t];
        EXPECT_LE(diag.team_steals[t], diag.team_chunks[t]);
        EXPECT_GE(diag.team_seconds[t], 0.0);
      }
      EXPECT_EQ(total, chunks);
      if (threads == 1) EXPECT_EQ(steals, 0u);  // serial path never steals
    }
  }
}

TEST(PartitionedFor, StealingDrainsASkewedPartition) {
  // All chunks in partition 0: teams 1..3 have nothing of their own and must
  // help (steal) for the loop to stay work-conserving. Exercises the steal
  // claim path under real concurrency; coverage is the assertion.
  ThreadPool pool(4);
  const std::size_t chunks = 200;
  const std::vector<std::size_t> bounds{0, chunks, chunks, chunks, chunks};
  std::vector<std::atomic<int>> hits(chunks);
  for (auto& h : hits) h.store(0);
  PartitionedRunDiag diag;
  pool.partitioned_for(chunks, 1, bounds, true,
                       [&](std::size_t begin, std::size_t end, int, int) {
                         for (std::size_t i = begin; i < end; ++i) {
                           hits[i].fetch_add(1);
                         }
                       },
                       &diag);
  for (std::size_t i = 0; i < chunks; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "chunk " << i;
  }
  std::size_t total = 0;
  for (const std::size_t c : diag.team_chunks) total += c;
  EXPECT_EQ(total, chunks);
}

TEST(PartitionTeamMapping, PartitionsLanesContiguously) {
  for (const int lanes : {1, 2, 4, 7, 16}) {
    for (const int parts : {1, 2, 3, 4, 9}) {
      int covered = 0;
      for (int team = 0; team < parts; ++team) {
        const int first = partition_team_first_lane(team, lanes, parts);
        const int width = partition_team_lanes(team, lanes, parts);
        EXPECT_GE(width, 0);
        for (int lane = first; lane < first + width; ++lane) {
          EXPECT_EQ(partition_team_of_lane(lane, lanes, parts), team)
              << "lane " << lane << " lanes=" << lanes << " parts=" << parts;
          ++covered;
        }
      }
      EXPECT_EQ(covered, lanes) << "lanes=" << lanes << " parts=" << parts;
    }
  }
}

TEST(PartitionWeightsBalanced, BoundariesAreValidAndBalanced) {
  const std::vector<std::uint64_t> weights{5, 1, 1, 1, 8, 1, 1, 1, 5, 1};
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  for (const int parts : {1, 2, 3, 4}) {
    const auto bounds = partition_weights_balanced(weights, parts);
    ASSERT_EQ(bounds.size(), static_cast<std::size_t>(parts) + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), weights.size());
    for (int p = 0; p < parts; ++p) {
      ASSERT_LE(bounds[static_cast<std::size_t>(p)],
                bounds[static_cast<std::size_t>(p) + 1]);
    }
    // Prefix balance: the first p partitions hold at least their
    // proportional share minus one item's weight (the greedy cut overshoots
    // by less than the last item it took).
    std::uint64_t prefix = 0;
    std::size_t item = 0;
    for (int p = 0; p < parts; ++p) {
      while (item < bounds[static_cast<std::size_t>(p) + 1]) {
        prefix += weights[item++];
      }
      const std::uint64_t target =
          total / static_cast<std::uint64_t>(parts) *
              static_cast<std::uint64_t>(p + 1) +
          total % static_cast<std::uint64_t>(parts) *
              static_cast<std::uint64_t>(p + 1) /
              static_cast<std::uint64_t>(parts);
      EXPECT_GE(prefix, target) << "parts=" << parts << " p=" << p;
    }
  }
}

TEST(PartitionWeightsBalanced, DegenerateInputs) {
  // Empty weights: every partition is empty.
  const auto empty = partition_weights_balanced({}, 3);
  EXPECT_EQ(empty, (std::vector<std::size_t>{0, 0, 0, 0}));
  // All-zero weights: everything lands somewhere; bounds stay valid.
  const std::vector<std::uint64_t> zeros(5, 0);
  const auto z = partition_weights_balanced(zeros, 2);
  ASSERT_EQ(z.size(), 3u);
  EXPECT_EQ(z.front(), 0u);
  EXPECT_EQ(z.back(), 5u);
  // More partitions than items: trailing partitions come back empty.
  const std::vector<std::uint64_t> two{1, 1};
  const auto wide = partition_weights_balanced(two, 5);
  ASSERT_EQ(wide.size(), 6u);
  EXPECT_EQ(wide.front(), 0u);
  EXPECT_EQ(wide.back(), 2u);
  for (std::size_t p = 0; p + 1 < wide.size(); ++p) {
    ASSERT_LE(wide[p], wide[p + 1]);
  }
  // One giant item: the partition holding it takes the overshoot alone.
  const std::vector<std::uint64_t> giant{1, 1000, 1, 1};
  const auto g = partition_weights_balanced(giant, 2);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_GE(g[1], 2u);  // the cut lands at or after the giant item
}

}  // namespace
}  // namespace speck
