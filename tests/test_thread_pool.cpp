// Unit tests for the host thread pool: chunk coverage, fixed boundaries,
// worker ids, deterministic reduction, exception propagation, thread-count
// resolution, nested calls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace speck {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.parallel_for(n, 13, [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
      }
    }
  }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnNAndChunk) {
  // Collect the set of (begin, end) pairs at several thread counts; the
  // determinism guarantee requires them to be identical.
  const std::size_t n = 103;
  const std::size_t chunk = 10;
  auto boundaries = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> out(
        (n + chunk - 1) / chunk);
    pool.parallel_for(n, chunk, [&](std::size_t begin, std::size_t end, int) {
      out[begin / chunk] = {begin, end};
    });
    return out;
  };
  const auto serial = boundaries(1);
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.front(), (std::pair<std::size_t, std::size_t>{0, 10}));
  EXPECT_EQ(serial.back(), (std::pair<std::size_t, std::size_t>{100, 103}));
  EXPECT_EQ(boundaries(2), serial);
  EXPECT_EQ(boundaries(8), serial);
}

TEST(ThreadPool, WorkerIdsAreInRange) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<bool> bad{false};
  pool.parallel_for(256, 1, [&](std::size_t, std::size_t, int worker) {
    if (worker < 0 || worker >= 4) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, CallingThreadParticipatesWhenSerial) {
  ThreadPool pool(1);
  int worker_seen = -1;
  pool.parallel_for(5, 100, [&](std::size_t begin, std::size_t end, int worker) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
    worker_seen = worker;
  });
  EXPECT_EQ(worker_seen, 0);
}

TEST(ThreadPool, DeterministicReduceMatchesSerialSum) {
  // A sum whose float rounding depends on association order: identical
  // partial order must give a bit-identical result at any thread count.
  const std::size_t n = 10'000;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto reduce_at = [&](int threads) {
    ThreadPool pool(threads);
    return deterministic_reduce<double>(
        pool, n, 97, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += data[i];
          return s;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  const double serial = reduce_at(1);
  EXPECT_EQ(reduce_at(2), serial);  // bit-identical, not just NEAR
  EXPECT_EQ(reduce_at(8), serial);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t begin, std::size_t, int) {
                          if (begin == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(10, 1,
                    [&](std::size_t, std::size_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(8, 1, [&](std::size_t begin, std::size_t, int) {
    // Nested call from a worker: must not deadlock, must cover its range.
    pool.parallel_for(8, 2, [&](std::size_t ib, std::size_t ie, int) {
      for (std::size_t i = ib; i < ie; ++i) {
        hits[begin * 8 + i].fetch_add(1);
      }
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroChunkIsTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(7, 0,
                    [&](std::size_t begin, std::size_t end, int) {
                      count.fetch_add(static_cast<int>(end - begin));
                    });
  EXPECT_EQ(count.load(), 7);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvironment) {
  ::setenv("SPECK_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3);
  ::setenv("SPECK_THREADS", "not-a-number", 1);
  EXPECT_GE(default_thread_count(), 1);  // falls back to hardware
  ::setenv("SPECK_THREADS", "0", 1);
  EXPECT_GE(default_thread_count(), 1);
  ::unsetenv("SPECK_THREADS");
  EXPECT_GE(default_thread_count(), 1);
}

TEST(ThreadPool, GlobalPoolResizes) {
  set_global_thread_count(3);
  EXPECT_EQ(global_pool().thread_count(), 3);
  EXPECT_EQ(pool_or_global(nullptr).thread_count(), 3);
  ThreadPool local(2);
  EXPECT_EQ(pool_or_global(&local).thread_count(), 2);
  set_global_thread_count(0);  // back to the default
  EXPECT_EQ(global_pool().thread_count(), default_thread_count());
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  // Regression guard for generation handling: rapid successive jobs must
  // not lose chunks to stale workers.
  ThreadPool pool(4);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::atomic<int> count{0};
    pool.parallel_for(16, 1, [&](std::size_t, std::size_t, int) {
      count.fetch_add(1);
    });
    ASSERT_EQ(count.load(), 16) << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace speck
