// Unit tests for the local load balancer's group-size selection
// (paper §4.3, Fig. 1 / Fig. 13).
#include <gtest/gtest.h>

#include "common/bit_utils.h"
#include "speck/local_lb.h"

namespace speck {
namespace {

SpeckFeatures dynamic_features() { return SpeckFeatures{}; }

TEST(LocalLb, GroupTimesGroupsEqualsThreads) {
  const SpeckFeatures features = dynamic_features();
  for (const int threads : {64, 128, 256, 512, 1024}) {
    for (const offset_t nnz : {1, 7, 100}) {
      for (const offset_t products : {1, 50, 5000}) {
        BlockRowStats stats;
        stats.nnz_a = nnz;
        stats.products = products;
        stats.max_b_row_len = static_cast<index_t>(products);
        const LocalLbDecision d = choose_group_size(threads, stats, features);
        EXPECT_EQ(d.group_size * d.groups, threads);
        EXPECT_TRUE(is_pow2(static_cast<std::uint64_t>(d.group_size)));
      }
    }
  }
}

TEST(LocalLb, StartsAtAverageRowLength) {
  BlockRowStats stats;
  stats.nnz_a = 64;         // enough rows that every group has work
  stats.products = 64 * 8;  // avg B row length 8
  stats.max_b_row_len = 8;  // perfectly uniform
  const LocalLbDecision d = choose_group_size(256, stats, dynamic_features());
  EXPECT_EQ(d.group_size, 8);
}

TEST(LocalLb, ShortRowsGetSmallGroups) {
  BlockRowStats stats;
  stats.nnz_a = 512;
  stats.products = 512 * 2;  // avg length 2
  stats.max_b_row_len = 2;
  const LocalLbDecision d = choose_group_size(1024, stats, dynamic_features());
  EXPECT_LE(d.group_size, 4) << "short rows must not waste 32-thread groups";
}

TEST(LocalLb, LongRowsGetLargeGroups) {
  BlockRowStats stats;
  stats.nnz_a = 2;
  stats.products = 2 * 4096;
  stats.max_b_row_len = 4096;
  const LocalLbDecision d = choose_group_size(1024, stats, dynamic_features());
  EXPECT_GE(d.group_size, 512);
}

TEST(LocalLb, SkewIncreasesGroupSize) {
  // Uniform average 4, but one row of 4096: iter_max (1024) far exceeds
  // rows-per-group, so g grows beyond the average.
  BlockRowStats stats;
  stats.nnz_a = 64;
  stats.products = 64 * 4;
  stats.max_b_row_len = 4096;
  const LocalLbDecision d = choose_group_size(256, stats, dynamic_features());
  EXPECT_GT(d.group_size, 4);
}

TEST(LocalLb, ManyRowsReduceGroupSize) {
  // avg length 64 but thousands of rows per group: nrows >> iter_max, so g
  // shrinks to expose more parallelism across rows.
  BlockRowStats stats;
  stats.nnz_a = 4096;
  stats.products = 4096 * 64;
  stats.max_b_row_len = 64;
  const LocalLbDecision d = choose_group_size(256, stats, dynamic_features());
  EXPECT_LT(d.group_size, 64);
}

TEST(LocalLb, NoMoreGroupsThanWork) {
  BlockRowStats stats;
  stats.nnz_a = 3;  // only three rows of B to process
  stats.products = 3;
  stats.max_b_row_len = 1;
  const LocalLbDecision d = choose_group_size(1024, stats, dynamic_features());
  EXPECT_LE(d.groups, 4) << "k must shrink towards NNZ_A";
}

TEST(LocalLb, EmptyBlockUsesWholeBlock) {
  BlockRowStats stats;  // all zero
  const LocalLbDecision d = choose_group_size(256, stats, dynamic_features());
  EXPECT_EQ(d.group_size, 256);
  EXPECT_EQ(d.groups, 1);
}

TEST(LocalLb, FixedModeMatchesNsparse) {
  SpeckFeatures features;
  features.dynamic_group_size = false;
  BlockRowStats stats;
  stats.nnz_a = 100;
  stats.products = 200;
  stats.max_b_row_len = 2;
  const LocalLbDecision d = choose_group_size(256, stats, features);
  EXPECT_EQ(d.group_size, 32);
  EXPECT_EQ(d.groups, 8);
}

TEST(LocalLb, FixedModeClampedToBlock) {
  SpeckFeatures features;
  features.dynamic_group_size = false;
  features.fixed_group_size = 64;
  BlockRowStats stats;
  stats.nnz_a = 10;
  stats.products = 10;
  stats.max_b_row_len = 1;
  const LocalLbDecision d = choose_group_size(32, stats, features);
  EXPECT_EQ(d.group_size, 32);
}

TEST(LocalLb, GroupNeverExceedsBlock) {
  BlockRowStats stats;
  stats.nnz_a = 1;
  stats.products = 1 << 20;
  stats.max_b_row_len = 1 << 20;
  const LocalLbDecision d = choose_group_size(64, stats, dynamic_features());
  EXPECT_EQ(d.group_size, 64);
}

TEST(LocalLb, RejectsNonPow2Threads) {
  BlockRowStats stats;
  EXPECT_THROW(choose_group_size(100, stats, dynamic_features()), InvalidArgument);
}

/// Property sweep: the chosen g never needs more total iterations than both
/// extreme static choices (g=1 and g=threads) — i.e. the heuristic is sane.
class LocalLbSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LocalLbSweep, ChosenGBeatsWorstStaticChoice) {
  const auto [threads, avg_len, max_len] = GetParam();
  BlockRowStats stats;
  stats.nnz_a = 256;
  stats.products = static_cast<offset_t>(256) * avg_len;
  stats.max_b_row_len = std::max(avg_len, max_len);
  const LocalLbDecision d = choose_group_size(threads, stats, dynamic_features());

  // Model iterations: ceil(rows/k) * ceil(avg_len/g) lockstep sweeps.
  const auto iterations = [&](int g) {
    const int k = threads / g;
    return ceil_div<offset_t>(stats.nnz_a, k) *
           ceil_div<offset_t>(std::max<offset_t>(avg_len, 1), g);
  };
  const offset_t chosen = iterations(d.group_size);
  const offset_t worst = std::max(iterations(1), iterations(threads));
  EXPECT_LE(chosen, worst);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LocalLbSweep,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(1, 4, 32, 300),
                       ::testing::Values(1, 64, 4096)));

}  // namespace
}  // namespace speck
