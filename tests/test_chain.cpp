// Tests for cost-driven chain multiplication.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/chain.h"
#include "speck/speck.h"

namespace speck {
namespace {

Speck make_speck() { return Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}); }

TEST(Chain, SingleMatrixPassesThrough) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(50, 50, 4, 1201);
  const ChainResult result = multiply_chain({a}, speck);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.steps.empty());
  EXPECT_FALSE(compare(result.c, a).has_value());
}

TEST(Chain, PairMatchesDirectMultiply) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(80, 80, 4, 1203);
  const Csr b = gen::banded(80, 6, 3, 1205);
  const ChainResult result = multiply_chain({a, b}, speck);
  ASSERT_TRUE(result.ok());
  const auto diff = compare(result.c, gustavson_spgemm(a, b));
  EXPECT_FALSE(diff.has_value()) << diff->description;
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_EQ(result.steps[0].products, count_products(a, b));
}

TEST(Chain, TripleProductCorrectEitherOrder) {
  Speck speck = make_speck();
  const Csr r = gen::rectangular_lp(40, 200, 6, 1207);
  const Csr a = gen::random_uniform(200, 200, 5, 1209);
  const Csr p = transpose(r);
  const ChainResult result = multiply_chain({r, a, p}, speck);
  ASSERT_TRUE(result.ok());
  const Csr expected = gustavson_spgemm(gustavson_spgemm(r, a), p);
  const auto diff = compare(result.c, expected, 1e-8);
  EXPECT_FALSE(diff.has_value()) << diff->description;
  EXPECT_EQ(result.steps.size(), 2u);
}

TEST(Chain, GreedyPicksCheapPairFirst) {
  // D1 * D2 * F where D1,D2 are diagonal (trivial products) and F is dense:
  // the greedy order must contract D1*D2 first.
  Speck speck = make_speck();
  const Csr d1 = Csr::identity(100);
  const Csr d2 = scaled(Csr::identity(100), 2.0);
  const Csr f = gen::random_uniform(100, 100, 40, 1211);
  const ChainResult result = multiply_chain({d1, d2, f}, speck);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.steps[0].left_index, 0u) << "diagonal pair first";
  const auto diff = compare(result.c, scaled(f, 2.0), 1e-9);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Chain, GreedyBeatsLeftToRightOnProducts) {
  // X (dense-ish) * Y (dense-ish) * S (column selector): contracting Y*S
  // first shrinks Y to ten columns, so the expensive X multiply sees a tiny
  // operand. Left-to-right would pay the full X*Y expansion.
  const Csr x = gen::random_uniform(100, 100, 40, 1213);
  const Csr y = gen::random_uniform(100, 100, 40, 1215);
  Coo s_coo(100, 10);  // selector: each column sourced from one row
  for (index_t c = 0; c < 10; ++c) s_coo.add(c * 10, c, 1.0);
  const Csr s = s_coo.to_csr();

  Speck speck = make_speck();
  const ChainResult greedy = multiply_chain({x, y, s}, speck);
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(greedy.steps[0].left_index, 1u) << "must contract Y*S first";

  // Left-to-right order: (X*Y) then (*S).
  const Csr xy = gustavson_spgemm(x, y);
  const offset_t left_to_right = count_products(x, y) + count_products(xy, s);
  EXPECT_LT(greedy.total_products, left_to_right / 2);
  // And correct.
  const Csr expected = gustavson_spgemm(xy, s);
  const auto diff = compare(greedy.c, expected, 1e-8);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Chain, FiveMatrixChain) {
  Speck speck = make_speck();
  std::vector<Csr> chain;
  for (int i = 0; i < 5; ++i) {
    chain.push_back(gen::banded(120, 5, 3, 1300 + static_cast<std::uint64_t>(i)));
  }
  const ChainResult result = multiply_chain(chain, speck);
  ASSERT_TRUE(result.ok());
  Csr expected = chain[0];
  for (int i = 1; i < 5; ++i) expected = gustavson_spgemm(expected, chain[static_cast<std::size_t>(i)]);
  const auto diff = compare(result.c, expected, 1e-6);
  EXPECT_FALSE(diff.has_value()) << diff->description;
  EXPECT_EQ(result.steps.size(), 4u);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Chain, RejectsNonConformable) {
  Speck speck = make_speck();
  EXPECT_THROW(multiply_chain({Csr::zeros(3, 4), Csr::zeros(5, 6)}, speck),
               InvalidArgument);
  EXPECT_THROW(multiply_chain({}, speck), InvalidArgument);
}

/// Same structure, fresh values.
Csr chain_reweighted(const Csr& a, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<offset_t> offsets(a.row_offsets().begin(), a.row_offsets().end());
  std::vector<index_t> cols(a.col_indices().begin(), a.col_indices().end());
  std::vector<value_t> vals(static_cast<std::size_t>(a.nnz()));
  for (auto& v : vals) v = rng.next_double(-2.0, 2.0);
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols),
             std::move(vals));
}

TEST(ChainPlanReuse, SecondPassReplaysCachedPlans) {
  Speck speck = make_speck();
  ChainPlanCache cache;
  const Csr a = gen::random_uniform(60, 60, 4, 1407);
  const Csr b = gen::banded(60, 5, 2, 1409);
  const Csr c = gen::random_uniform(60, 60, 3, 1411);

  // First pass populates the cache with one plan per contraction.
  const ChainResult first = multiply_chain({a, b, c}, speck, cache);
  ASSERT_TRUE(first.ok()) << first.failure_reason;
  EXPECT_EQ(cache.size(), first.steps.size());
  EXPECT_GT(cache.byte_size(), 0u);
  for (const ChainStep& step : first.steps) {
    EXPECT_FALSE(step.plan_reused);
  }

  // Second pass, fresh values and the same structures: the greedy
  // contraction order is value-independent, so every link replays.
  const Csr a2 = chain_reweighted(a, 1413);
  const Csr b2 = chain_reweighted(b, 1415);
  const Csr c2 = chain_reweighted(c, 1417);
  const ChainResult second = multiply_chain({a2, b2, c2}, speck, cache);
  ASSERT_TRUE(second.ok()) << second.failure_reason;
  EXPECT_EQ(cache.size(), first.steps.size());  // no new plans needed
  ASSERT_EQ(second.steps.size(), first.steps.size());
  for (const ChainStep& step : second.steps) {
    EXPECT_TRUE(step.plan_reused);
  }
  EXPECT_LT(second.seconds, first.seconds);

  // Replayed chain result matches a from-scratch recompute exactly.
  Speck reference = make_speck();
  const ChainResult recompute = multiply_chain({a2, b2, c2}, reference);
  ASSERT_TRUE(recompute.ok());
  const auto diff = compare(second.c, recompute.c, 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(ChainPlanReuse, PlanAwareMatchesPlain) {
  Speck speck = make_speck();
  ChainPlanCache cache;
  const Csr a = gen::power_law(50, 50, 5, 1.8, 25, 1419);
  const ChainResult planned = multiply_chain({a, a, a}, speck, cache);
  ASSERT_TRUE(planned.ok()) << planned.failure_reason;

  Speck reference = make_speck();
  const ChainResult plain = multiply_chain({a, a, a}, reference);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(planned.total_products, plain.total_products);
  const auto diff = compare(planned.c, plain.c, 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(ChainPairProducts, MatchesCountProducts) {
  const Csr a = gen::random_uniform(30, 30, 3, 1401);
  const Csr b = gen::random_uniform(30, 30, 5, 1403);
  const Csr c = gen::random_uniform(30, 30, 7, 1405);
  const auto products = chain_pair_products({a, b, c});
  ASSERT_EQ(products.size(), 2u);
  EXPECT_EQ(products[0], count_products(a, b));
  EXPECT_EQ(products[1], count_products(b, c));
}

}  // namespace
}  // namespace speck
