// Tests for the panel-wise (partial) multiplication — the paper's §7
// future-work extension for matrices exceeding device memory.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/partial.h"

namespace speck {
namespace {

TEST(PlanPanels, RespectsBudget) {
  const std::vector<offset_t> products{10, 10, 10, 10, 10, 10};
  const auto panels = plan_panels(products, 25);
  // Greedy: panels of two rows (10+10 <= 25, +10 exceeds).
  ASSERT_EQ(panels.size(), 3u);
  for (const auto& [begin, end] : panels) EXPECT_EQ(end - begin, 2);
}

TEST(PlanPanels, GiantRowGetsOwnPanel) {
  const std::vector<offset_t> products{5, 1000, 5};
  const auto panels = plan_panels(products, 100);
  ASSERT_EQ(panels.size(), 3u);
  EXPECT_EQ(panels[1].first, 1);
  EXPECT_EQ(panels[1].second, 2);
}

TEST(PlanPanels, CoversAllRowsExactlyOnce) {
  Xoshiro256 rng(71);
  std::vector<offset_t> products(500);
  for (auto& p : products) p = static_cast<offset_t>(rng.next_below(200));
  const auto panels = plan_panels(products, 1000);
  index_t expected_begin = 0;
  for (const auto& [begin, end] : panels) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 500);
}

TEST(PlanPanels, EmptyInput) { EXPECT_TRUE(plan_panels({}, 100).empty()); }

TEST(ExtractPanel, RoundTripsThroughConcat) {
  const Csr a = gen::random_uniform(120, 90, 7, 73);
  std::vector<Csr> panels;
  panels.push_back(extract_row_panel(a, 0, 40));
  panels.push_back(extract_row_panel(a, 40, 41));
  panels.push_back(extract_row_panel(a, 41, 120));
  const Csr rebuilt = concat_row_panels(panels);
  const auto diff = compare(rebuilt, a);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(ExtractPanel, EmptyPanel) {
  const Csr a = gen::random_uniform(10, 10, 2, 79);
  const Csr panel = extract_row_panel(a, 5, 5);
  EXPECT_EQ(panel.rows(), 0);
  EXPECT_EQ(panel.cols(), 10);
  EXPECT_EQ(panel.nnz(), 0);
}

TEST(ExtractPanel, RejectsBadRange) {
  const Csr a = gen::random_uniform(10, 10, 2, 83);
  EXPECT_THROW(extract_row_panel(a, 5, 3), InvalidArgument);
  EXPECT_THROW(extract_row_panel(a, 0, 11), InvalidArgument);
}

TEST(PartialSpeck, MatchesFullMultiplication) {
  PartialConfig config;
  config.max_products_per_panel = 4000;  // force many panels
  PartialSpeck partial(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::power_law(600, 600, 8, 1.9, 150, 89);
  const SpGemmResult result = partial.multiply(a, a);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  const auto diff = compare(result.c, gustavson_spgemm(a, a));
  EXPECT_FALSE(diff.has_value()) << diff->description;
  EXPECT_GT(partial.last_diagnostics().panels, 5);
  EXPECT_LE(partial.last_diagnostics().largest_panel_rows, 600);
}

TEST(PartialSpeck, SinglePanelWhenBudgetLarge) {
  PartialConfig config;
  config.max_products_per_panel = 1 << 30;
  PartialSpeck partial(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::banded(300, 10, 4, 97);
  ASSERT_TRUE(partial.multiply(a, a).ok());
  EXPECT_EQ(partial.last_diagnostics().panels, 1);
}

TEST(PartialSpeck, BoundsPeakMemory) {
  // A matrix whose full-run temporaries exceed a tiny panel's: panelled
  // execution must report a lower high-water mark than the whole-matrix run
  // would need for its analysis + bin arrays.
  const Csr a = gen::random_uniform(4000, 4000, 10, 101);
  Speck full(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const SpGemmResult full_result = full.multiply(a, a);
  ASSERT_TRUE(full_result.ok());

  PartialConfig config;
  config.max_products_per_panel = 50000;
  PartialSpeck partial(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const SpGemmResult partial_result = partial.multiply(a, a);
  ASSERT_TRUE(partial_result.ok());
  // With output streaming (the default) the device never holds more than
  // the inputs plus one panel's working set.
  EXPECT_LT(partial_result.peak_memory_bytes,
            full_result.peak_memory_bytes * 8 / 10);
  // Correctness unchanged.
  const auto diff = compare(partial_result.c, full_result.c);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(PartialSpeck, TimeOverheadIsModest) {
  const Csr a = gen::banded(3000, 30, 8, 103);
  Speck full(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const double full_seconds = full.multiply(a, a).seconds;
  PartialConfig config;
  config.max_products_per_panel = 40000;
  config.stream_output_to_host = false;  // isolate the panelling overhead
  PartialSpeck partial(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const double partial_seconds = partial.multiply(a, a).seconds;
  EXPECT_GT(partial_seconds, full_seconds) << "panelling adds launch overhead";
  EXPECT_LT(partial_seconds, full_seconds * 5.0) << "but should stay in range";

  // Streaming the output over PCIe adds the transfer on top.
  config.stream_output_to_host = true;
  PartialSpeck streaming(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  EXPECT_GT(streaming.multiply(a, a).seconds, partial_seconds);
}

TEST(PartialSpeck, RectangularInputs) {
  PartialConfig config;
  config.max_products_per_panel = 2000;
  PartialSpeck partial(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const Csr a = gen::rectangular_lp(150, 900, 8, 107);
  const Csr b = transpose(a);
  const SpGemmResult result = partial.multiply(a, b);
  ASSERT_TRUE(result.ok());
  const auto diff = compare(result.c, gustavson_spgemm(a, b));
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

}  // namespace
}  // namespace speck
