// SIMD backend equivalence tests.
//
// The contract (src/common/simd.h): a backend changes only how fast the hot
// loops run, never what they compute. These tests pin that down at three
// levels — the raw primitives, the group-probing containers at boundary
// capacities, and the full pipeline (CSR bytes, simulated seconds, every
// PassStats counter) at 1 and 8 threads, including forced-spill fault
// injection and plan replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/prefix_sum.h"
#include "common/prng.h"
#include "common/simd.h"
#include "common/sorting.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "speck/dense_acc.h"
#include "speck/flat_map.h"
#include "speck/hash_map.h"
#include "speck/speck.h"

namespace speck {
namespace {

/// Vector backends this machine can actually execute (often just one).
std::vector<SimdBackend> vector_backends() {
  std::vector<SimdBackend> out;
  for (const SimdBackend b :
       {SimdBackend::kSse, SimdBackend::kAvx2, SimdBackend::kNeon}) {
    if (simd::backend_available(b)) out.push_back(b);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(SimdPrimitives, PrefixScansU64AgreeWithScalar) {
  Xoshiro256 rng(994);
  // Odd lengths straddle every vector-width remainder path.
  for (const std::size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 250}) {
    std::vector<std::uint64_t> base(n);
    for (auto& v : base) v = rng.next_u64() >> 40;

    std::vector<std::uint64_t> want_incl = base;
    const std::uint64_t incl_total =
        simd::inclusive_scan_u64_scalar(want_incl.data(), n);
    std::vector<std::uint64_t> want_excl = base;
    const std::uint64_t excl_total =
        simd::exclusive_scan_u64_scalar(want_excl.data(), n);

    for (const SimdBackend b : vector_backends()) {
      std::vector<std::uint64_t> got = base;
      EXPECT_EQ(simd::inclusive_scan_u64(got.data(), n, b), incl_total)
          << simd::backend_name(b) << " n=" << n;
      EXPECT_EQ(got, want_incl) << simd::backend_name(b) << " n=" << n;
      got = base;
      EXPECT_EQ(simd::exclusive_scan_u64(got.data(), n, b), excl_total)
          << simd::backend_name(b) << " n=" << n;
      EXPECT_EQ(got, want_excl) << simd::backend_name(b) << " n=" << n;
    }
  }
}

TEST(SimdPrimitives, WidenI32ToI64AgreesWithScalar) {
  Xoshiro256 rng(996);
  // Odd lengths straddle every vector-width remainder path; negative values
  // exercise the sign-extension lanes.
  for (const std::size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 250}) {
    std::vector<std::int32_t> src(n);
    for (auto& v : src) {
      v = static_cast<std::int32_t>(rng.next_u64());  // full range, both signs
    }
    std::vector<std::int64_t> want(n, -1);
    simd::widen_i32_to_i64_scalar(src.data(), want.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], static_cast<std::int64_t>(src[i])) << "i=" << i;
    }
    for (const SimdBackend b : vector_backends()) {
      std::vector<std::int64_t> got(n, -1);
      simd::widen_i32_to_i64(src.data(), got.data(), n, b);
      EXPECT_EQ(got, want) << simd::backend_name(b) << " n=" << n;
    }
  }
}

TEST(SimdPrimitives, AddU64AgreesWithScalar) {
  Xoshiro256 rng(997);
  for (const std::size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 250}) {
    std::vector<std::uint64_t> dst_base(n);
    std::vector<std::uint64_t> src(n);
    for (auto& v : dst_base) v = rng.next_u64() >> 1;
    for (auto& v : src) v = rng.next_u64() >> 1;
    std::vector<std::uint64_t> want = dst_base;
    simd::add_u64_scalar(want.data(), src.data(), n);
    for (const SimdBackend b : vector_backends()) {
      std::vector<std::uint64_t> got = dst_base;
      simd::add_u64(got.data(), src.data(), n, b);
      EXPECT_EQ(got, want) << simd::backend_name(b) << " n=" << n;
    }
  }
}

TEST(SimdPrimitives, RadixSortOffsetsBitIdenticalAcrossBackends) {
  // The radix sort's histogram->offsets scan is vectorized; the permutation
  // must stay identical on every backend.
  Xoshiro256 rng(998);
  std::vector<std::uint32_t> keys(513);
  std::vector<std::uint32_t> vals(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint32_t>(rng.next_u64());
    vals[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::uint32_t> want_keys = keys;
  std::vector<std::uint32_t> want_vals = vals;
  radix_sort_pairs(want_keys, want_vals, SimdBackend::kScalar);
  for (const SimdBackend b : vector_backends()) {
    std::vector<std::uint32_t> got_keys = keys;
    std::vector<std::uint32_t> got_vals = vals;
    radix_sort_pairs(got_keys, got_vals, b);
    EXPECT_EQ(got_keys, want_keys) << simd::backend_name(b);
    EXPECT_EQ(got_vals, want_vals) << simd::backend_name(b);
  }
}

TEST(SimdPrimitives, PrefixSumOverloadsMatchScalarTemplates) {
  // The backend-dispatched overloads must agree with the plain templates for
  // every 64-bit integral element type the pipeline scans (offset_t row
  // offsets, size_t histograms).
  Xoshiro256 rng(995);
  std::vector<offset_t> offsets(129);
  for (auto& v : offsets) v = static_cast<offset_t>(rng.next_u64() % 5000);
  std::vector<std::size_t> hist(77);
  for (auto& v : hist) v = static_cast<std::size_t>(rng.next_u64() % 4096);

  std::vector<offset_t> want_offsets = offsets;
  const offset_t want_off_total =
      inclusive_prefix_sum(std::span<offset_t>(want_offsets));
  std::vector<std::size_t> want_hist = hist;
  const std::size_t want_hist_total =
      exclusive_prefix_sum(std::span<std::size_t>(want_hist));

  std::vector<SimdBackend> backends = vector_backends();
  backends.push_back(SimdBackend::kScalar);
  for (const SimdBackend b : backends) {
    std::vector<offset_t> got = offsets;
    EXPECT_EQ(inclusive_prefix_sum(std::span<offset_t>(got), b),
              want_off_total)
        << simd::backend_name(b);
    EXPECT_EQ(got, want_offsets) << simd::backend_name(b);
    std::vector<std::size_t> got_hist = hist;
    EXPECT_EQ(exclusive_prefix_sum(std::span<std::size_t>(got_hist), b),
              want_hist_total)
        << simd::backend_name(b);
    EXPECT_EQ(got_hist, want_hist) << simd::backend_name(b);
  }
}

TEST(SimdPrimitives, MatchMask16AgreesWithScalar) {
  Xoshiro256 rng(991);
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint8_t group[simd::kGroupWidth];
    for (auto& byte : group) {
      // Small alphabet → plenty of matches, empties and sentinels.
      const auto roll = static_cast<std::uint8_t>(rng.next_u64() % 6);
      byte = roll < 3 ? roll : (roll == 3 ? std::uint8_t{0x80} : std::uint8_t{0xFF});
    }
    const auto tag = static_cast<std::uint8_t>(rng.next_u64() % 6);
    const std::uint32_t want = simd::match_mask16_scalar(group, tag);
    for (const SimdBackend b : vector_backends()) {
      EXPECT_EQ(simd::match_mask16(group, tag, b), want)
          << "backend " << simd::backend_name(b) << " trial " << trial;
    }
  }
}

TEST(SimdPrimitives, NonzeroMask32AgreesWithScalar) {
  Xoshiro256 rng(992);
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint8_t bytes[simd::kChunkWidth];
    for (auto& byte : bytes) {
      byte = (rng.next_u64() & 3) == 0 ? static_cast<std::uint8_t>(rng.next_u64())
                                       : std::uint8_t{0};
    }
    const std::uint32_t want = simd::nonzero_mask32_scalar(bytes);
    for (const SimdBackend b : vector_backends()) {
      EXPECT_EQ(simd::nonzero_mask32(bytes, b), want)
          << "backend " << simd::backend_name(b) << " trial " << trial;
    }
  }
}

TEST(SimdPrimitives, GroupMasks16AgreesWithScalar) {
  Xoshiro256 rng(993);
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint8_t group[simd::kGroupWidth];
    for (auto& byte : group) {
      const auto roll = static_cast<std::uint8_t>(rng.next_u64() % 6);
      byte = roll < 3 ? roll : (roll == 3 ? std::uint8_t{0x80} : std::uint8_t{0xFF});
    }
    const auto tag = static_cast<std::uint8_t>(rng.next_u64() % 6);
    const simd::GroupMasks want =
        simd::group_masks16_scalar(group, tag, 0x80);
    for (const SimdBackend b : vector_backends()) {
      const simd::GroupMasks got = simd::group_masks16(group, tag, 0x80, b);
      EXPECT_EQ(got.tag_mask, want.tag_mask)
          << "backend " << simd::backend_name(b) << " trial " << trial;
      EXPECT_EQ(got.empty_mask, want.empty_mask)
          << "backend " << simd::backend_name(b) << " trial " << trial;
    }
    // The combined primitive must agree with the two single matches too.
    EXPECT_EQ(want.tag_mask, simd::match_mask16_scalar(group, tag));
    EXPECT_EQ(want.empty_mask, simd::match_mask16_scalar(group, 0x80));
  }
}

TEST(SimdPrimitives, OccupiedMask16AgreesWithScalar) {
  Xoshiro256 rng(994);
  for (int trial = 0; trial < 2000; ++trial) {
    std::uint8_t group[simd::kGroupWidth];
    std::uint32_t want = 0;
    for (std::size_t i = 0; i < simd::kGroupWidth; ++i) {
      // Mix of tags (occupied), empties and sentinels.
      const auto roll = static_cast<std::uint8_t>(rng.next_u64() % 4);
      group[i] = roll < 2 ? static_cast<std::uint8_t>(rng.next_u64() & 0x7F)
                          : (roll == 2 ? std::uint8_t{0x80} : std::uint8_t{0xFF});
      want |= static_cast<std::uint32_t>(group[i] < 0x80) << i;
    }
    EXPECT_EQ(simd::occupied_mask16_scalar(group), want) << "trial " << trial;
    for (const SimdBackend b : vector_backends()) {
      EXPECT_EQ(simd::occupied_mask16(group, b), want)
          << "backend " << simd::backend_name(b) << " trial " << trial;
    }
  }
}

TEST(SimdPrimitives, MaskEdgeCases) {
  std::uint8_t all_zero[simd::kChunkWidth] = {};
  std::uint8_t all_set[simd::kChunkWidth];
  for (auto& byte : all_set) byte = 0xFF;
  std::uint8_t group_same[simd::kGroupWidth];
  for (auto& byte : group_same) byte = 0x42;
  for (const SimdBackend b : vector_backends()) {
    EXPECT_EQ(simd::nonzero_mask32(all_zero, b), 0u);
    EXPECT_EQ(simd::nonzero_mask32(all_set, b), 0xFFFFFFFFu);
    EXPECT_EQ(simd::match_mask16(group_same, 0x42, b), 0xFFFFu);
    EXPECT_EQ(simd::match_mask16(group_same, 0x43, b), 0u);
    // 0x7F is the largest occupied control byte; 0x80/0xFF are free.
    std::uint8_t boundary[simd::kGroupWidth];
    for (std::size_t i = 0; i < simd::kGroupWidth; ++i) {
      boundary[i] = i % 3 == 0 ? std::uint8_t{0x7F}
                               : (i % 3 == 1 ? std::uint8_t{0x80} : std::uint8_t{0xFF});
    }
    EXPECT_EQ(simd::occupied_mask16(boundary, b),
              simd::occupied_mask16_scalar(boundary));
    const simd::GroupMasks gm = simd::group_masks16(boundary, 0x7F, 0x80, b);
    EXPECT_EQ(gm.tag_mask, simd::match_mask16_scalar(boundary, 0x7F));
    EXPECT_EQ(gm.empty_mask, simd::match_mask16_scalar(boundary, 0x80));
  }
  EXPECT_EQ(simd::lowest_bit(1u), 0u);
  EXPECT_EQ(simd::lowest_bit(0x8000u), 15u);
  EXPECT_EQ(simd::lowest_bit(0x80000000u), 31u);
}

TEST(SimdDispatch, ParseAndNames) {
  EXPECT_EQ(simd::parse_backend("auto"), SimdBackend::kAuto);
  EXPECT_EQ(simd::parse_backend("scalar"), SimdBackend::kScalar);
  EXPECT_EQ(simd::parse_backend("SSE"), SimdBackend::kSse);
  EXPECT_EQ(simd::parse_backend("avx2"), SimdBackend::kAvx2);
  EXPECT_EQ(simd::parse_backend("neon"), SimdBackend::kNeon);
  EXPECT_FALSE(simd::parse_backend("avx512").has_value());
  EXPECT_FALSE(simd::parse_backend("").has_value());
  for (const SimdBackend b :
       {SimdBackend::kAuto, SimdBackend::kScalar, SimdBackend::kSse,
        SimdBackend::kAvx2, SimdBackend::kNeon}) {
    EXPECT_EQ(simd::parse_backend(simd::backend_name(b)), b);
  }
}

TEST(SimdDispatch, ResolveNeverReturnsAuto) {
  const SimdBackend resolved = simd::resolve_backend(SimdBackend::kAuto);
  EXPECT_NE(resolved, SimdBackend::kAuto);
  EXPECT_TRUE(simd::backend_available(resolved));
  EXPECT_EQ(simd::resolve_backend(SimdBackend::kScalar), SimdBackend::kScalar);
  EXPECT_TRUE(simd::backend_available(SimdBackend::kScalar));
  EXPECT_TRUE(simd::backend_available(SimdBackend::kAuto));
}

// ---------------------------------------------------------------------------
// Group-probing containers: scalar vs vector at boundary capacities
// ---------------------------------------------------------------------------

/// Capacities around every group boundary the probe loops special-case:
/// sub-group, exact group, one over, wrap-around re-scan territory.
const std::size_t kBoundaryCapacities[] = {1,  2,  15, 16,  17,  31, 32,
                                           33, 47, 48, 100, 255, 256, 1000};

TEST(SimdHashMap, InsertEquivalentToScalarAtBoundaryCapacities) {
  for (const SimdBackend backend : vector_backends()) {
    for (const std::size_t capacity : kBoundaryCapacities) {
      SCOPED_TRACE(testing::Message() << simd::backend_name(backend)
                                      << " capacity " << capacity);
      Xoshiro256 rng(7000 + capacity);
      DeviceHashMap scalar_map(capacity);
      DeviceHashMap vector_map(capacity);
      vector_map.set_backend(backend);
      // Overfill on purpose: the overflow path must also match. Reinsert
      // some keys so the found-after-collision path is exercised.
      std::vector<key64_t> keys;
      for (std::size_t i = 0; i < capacity + 4; ++i) {
        keys.push_back(rng.next_u64() % (capacity * 4 + 16));
      }
      keys.insert(keys.end(), keys.begin(), keys.begin() + keys.size() / 2);
      for (const key64_t k : keys) {
        EXPECT_EQ(scalar_map.insert_key(k), vector_map.insert_key(k));
        ASSERT_EQ(scalar_map.probes(), vector_map.probes()) << "key " << k;
      }
      EXPECT_EQ(scalar_map.size(), vector_map.size());
      EXPECT_EQ(scalar_map.overflowed(), vector_map.overflowed());
      const auto scalar_entries = scalar_map.extract();
      const auto vector_entries = vector_map.extract();
      ASSERT_EQ(scalar_entries.size(), vector_entries.size());
      for (std::size_t i = 0; i < scalar_entries.size(); ++i) {
        EXPECT_EQ(scalar_entries[i].key, vector_entries[i].key)
            << "slot order must be identical at entry " << i;
      }
    }
  }
}

TEST(SimdHashMap, AccumulateEquivalentAcrossReconfigureCycles) {
  for (const SimdBackend backend : vector_backends()) {
    Xoshiro256 rng(7400);
    DeviceHashMap scalar_map;
    DeviceHashMap vector_map;
    vector_map.set_backend(backend);
    // Reuse one map across shrinking/growing capacities — the epoch-reset
    // path must keep the two in lockstep.
    for (const std::size_t capacity : {64u, 16u, 100u, 17u, 1000u, 33u}) {
      SCOPED_TRACE(capacity);
      scalar_map.reconfigure(capacity);
      vector_map.reconfigure(capacity);
      for (std::size_t i = 0; i < capacity; ++i) {
        const key64_t k = rng.next_u64() % (capacity * 2);
        const value_t v = rng.next_double(-1.0, 1.0);
        EXPECT_EQ(scalar_map.accumulate(k, v), vector_map.accumulate(k, v));
      }
      ASSERT_EQ(scalar_map.probes(), vector_map.probes());
      const auto scalar_entries = scalar_map.extract();
      const auto vector_entries = vector_map.extract();
      ASSERT_EQ(scalar_entries.size(), vector_entries.size());
      for (std::size_t i = 0; i < scalar_entries.size(); ++i) {
        EXPECT_EQ(scalar_entries[i].key, vector_entries[i].key);
        EXPECT_EQ(scalar_entries[i].value, vector_entries[i].value);
      }
    }
  }
}

TEST(SimdFlatMap, EquivalentToScalarAcrossGrowthAndClear) {
  for (const SimdBackend backend : vector_backends()) {
    SCOPED_TRACE(simd::backend_name(backend));
    Xoshiro256 rng(7800);
    FlatSpillMap scalar_map;
    FlatSpillMap vector_map;
    vector_map.set_backend(backend);
    for (int round = 0; round < 3; ++round) {
      // Grow through several doublings; mix fresh keys and re-accumulates.
      for (int i = 0; i < 3000; ++i) {
        const key64_t k = rng.next_u64() % 1024;
        const value_t v = rng.next_double(-1.0, 1.0);
        if ((i & 7) == 0) {
          EXPECT_EQ(scalar_map.insert(k), vector_map.insert(k));
        } else {
          scalar_map.accumulate(k, v);
          vector_map.accumulate(k, v);
        }
      }
      ASSERT_EQ(scalar_map.size(), vector_map.size());
      std::vector<std::pair<key64_t, value_t>> scalar_seen, vector_seen;
      scalar_map.for_each([&](key64_t k, value_t v) { scalar_seen.emplace_back(k, v); });
      vector_map.for_each([&](key64_t k, value_t v) { vector_seen.emplace_back(k, v); });
      EXPECT_EQ(scalar_seen, vector_seen) << "round " << round;
      scalar_map.clear();
      vector_map.clear();
    }
  }
}

TEST(SimdDenseExtraction, EquivalentToScalar) {
  const Csr b = gen::power_law(300, 300, 12, 1.8, 100, 7900);
  const Csr a = gen::power_law(40, 300, 20, 1.6, 100, 7901);
  DenseScratch scalar_scratch, vector_scratch;
  for (const SimdBackend backend : vector_backends()) {
    for (index_t row = 0; row < a.rows(); ++row) {
      // Window smaller than the range → multiple passes incl. partial tails.
      for (const std::size_t window : {7u, 32u, 64u, 300u}) {
        const auto scalar_view = dense_accumulate_row(
            b, a.row_cols(row), a.row_vals(row), 0, b.cols() - 1, window,
            /*numeric=*/true, scalar_scratch, SimdBackend::kScalar);
        const auto vector_view = dense_accumulate_row(
            b, a.row_cols(row), a.row_vals(row), 0, b.cols() - 1, window,
            /*numeric=*/true, vector_scratch, backend);
        ASSERT_EQ(scalar_view.cols.size(), vector_view.cols.size());
        for (std::size_t i = 0; i < scalar_view.cols.size(); ++i) {
          EXPECT_EQ(scalar_view.cols[i], vector_view.cols[i]);
          EXPECT_EQ(scalar_view.vals[i], vector_view.vals[i]);
        }
        EXPECT_EQ(scalar_view.passes, vector_view.passes);
        EXPECT_EQ(scalar_view.element_touches, vector_view.element_touches);
        EXPECT_EQ(scalar_view.cells_scanned, vector_view.cells_scanned);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Full pipeline: backend choice never changes results
// ---------------------------------------------------------------------------

void expect_stats_equal(const PassStats& got, const PassStats& want,
                        const char* pass) {
  EXPECT_EQ(got.seconds, want.seconds) << pass;
  EXPECT_EQ(got.direct_rows, want.direct_rows) << pass;
  EXPECT_EQ(got.dense_rows, want.dense_rows) << pass;
  EXPECT_EQ(got.hash_rows, want.hash_rows) << pass;
  EXPECT_EQ(got.global_hash_blocks, want.global_hash_blocks) << pass;
  EXPECT_EQ(got.global_pool_bytes, want.global_pool_bytes) << pass;
  EXPECT_EQ(got.hash_probes, want.hash_probes) << pass;
  EXPECT_EQ(got.moved_entries, want.moved_entries) << pass;
  EXPECT_EQ(got.global_inserts, want.global_inserts) << pass;
}

/// Multiplies (a, b) with the scalar backend and with `backend`, asserting
/// bitwise-equal CSR output, equal simulated time and equal counters.
void check_backend_matches_scalar(SpeckConfig cfg, SimdBackend backend,
                                  const Csr& a, const Csr& b) {
  cfg.plan_cache = false;  // exercise the full pipeline every call
  cfg.simd_backend = SimdBackend::kScalar;
  Speck scalar_sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  cfg.simd_backend = backend;
  Speck vector_sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);

  const SpGemmResult scalar_result = scalar_sp.multiply(a, b);
  const SpGemmResult vector_result = vector_sp.multiply(a, b);
  ASSERT_TRUE(scalar_result.ok()) << scalar_result.failure_reason;
  ASSERT_TRUE(vector_result.ok()) << vector_result.failure_reason;

  const auto diff = compare(vector_result.c, scalar_result.c, 0.0);  // bitwise
  EXPECT_FALSE(diff.has_value()) << diff->description;
  EXPECT_EQ(vector_result.seconds, scalar_result.seconds);
  EXPECT_EQ(vector_result.peak_memory_bytes, scalar_result.peak_memory_bytes);
  expect_stats_equal(vector_sp.last_diagnostics().symbolic,
                     scalar_sp.last_diagnostics().symbolic, "symbolic");
  expect_stats_equal(vector_sp.last_diagnostics().numeric,
                     scalar_sp.last_diagnostics().numeric, "numeric");
  EXPECT_EQ(vector_sp.last_diagnostics().radix_sorted_elements,
            scalar_sp.last_diagnostics().radix_sorted_elements);
}

TEST(SimdPipeline, BackendsBitIdenticalAcrossThreadCounts) {
  const Csr a = gen::power_law(600, 600, 8, 1.9, 150, 6101);
  const Csr b = gen::power_law(600, 600, 7, 1.8, 150, 6103);
  for (const SimdBackend backend : vector_backends()) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(testing::Message() << simd::backend_name(backend) << " x"
                                      << threads);
      SpeckConfig cfg;
      cfg.host_threads = threads;
      check_backend_matches_scalar(cfg, backend, a, b);
    }
  }
}

TEST(SimdPipeline, BackendsBitIdenticalUnderForcedSpill) {
  const Csr a = gen::power_law(400, 400, 10, 1.7, 200, 6105);
  for (const SimdBackend backend : vector_backends()) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(testing::Message() << simd::backend_name(backend) << " x"
                                      << threads);
      SpeckConfig cfg;
      cfg.host_threads = threads;
      cfg.faults.hash_overflow_after = 8;  // force the global-memory fallback
      cfg.faults.estimate_scale = 0.25;    // undersized bins -> spills
      check_backend_matches_scalar(cfg, backend, a, a);
    }
  }
}

TEST(SimdPipeline, BackendsBitIdenticalOnStructuredMatrices) {
  // Dense-friendly structures drive the vectorized window extraction.
  const Csr grid = gen::stencil_2d(48, 48);
  const Csr band = gen::banded(800, 12, 8, 6107);
  for (const SimdBackend backend : vector_backends()) {
    SCOPED_TRACE(simd::backend_name(backend));
    SpeckConfig cfg;
    cfg.host_threads = 1;
    check_backend_matches_scalar(cfg, backend, grid, grid);
    check_backend_matches_scalar(cfg, backend, band, band);
  }
}

TEST(SimdPipeline, PlanReplayBitIdenticalAcrossBackends) {
  const Csr a = gen::power_law(500, 500, 9, 1.8, 120, 6109);
  for (const SimdBackend backend : vector_backends()) {
    SCOPED_TRACE(simd::backend_name(backend));
    SpeckConfig cfg;
    cfg.plan_cache = false;
    cfg.simd_backend = SimdBackend::kScalar;
    Speck scalar_sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    cfg.simd_backend = backend;
    Speck vector_sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);

    const SpeckPlan scalar_plan = scalar_sp.plan(a, a);
    const SpeckPlan vector_plan = vector_sp.plan(a, a);
    ASSERT_TRUE(scalar_plan.complete) << scalar_plan.incomplete_reason;
    ASSERT_TRUE(vector_plan.complete) << vector_plan.incomplete_reason;

    const SpGemmResult scalar_replay = scalar_sp.multiply_with_plan(scalar_plan, a, a);
    const SpGemmResult vector_replay = vector_sp.multiply_with_plan(vector_plan, a, a);
    ASSERT_TRUE(scalar_replay.ok());
    ASSERT_TRUE(vector_replay.ok());
    EXPECT_FALSE(vector_sp.last_diagnostics().plan_fallback);
    const auto diff = compare(vector_replay.c, scalar_replay.c, 0.0);
    EXPECT_FALSE(diff.has_value()) << diff->description;
    EXPECT_EQ(vector_replay.seconds, scalar_replay.seconds);
  }
}

TEST(SimdPipeline, UnavailableBackendIsRejectedAtConstruction) {
#if !defined(__aarch64__)
  SpeckConfig cfg;
  cfg.simd_backend = SimdBackend::kNeon;
  EXPECT_THROW(Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg),
               InvalidArgument);
#else
  GTEST_SKIP() << "NEON is the native backend here";
#endif
}

}  // namespace
}  // namespace speck
