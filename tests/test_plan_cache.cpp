// Tests for the sharded LRU PlanCache: byte-budget eviction order, full-
// fingerprint keying (quick-field collisions must not alias), insert dedup,
// rejection of oversized/incomplete plans, and concurrent get/insert/evict
// hammering — plus the transparent multi-slot cache behavior it gives
// Speck::multiply.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/plan_cache.h"
#include "speck/speck.h"

namespace speck {
namespace {

/// A complete synthetic plan with a distinct full fingerprint and a replay
/// program padded so byte_size() lands close to `approx_bytes` — precise
/// control over the cache's byte accounting without running the pipeline.
std::shared_ptr<const SpeckPlan> make_plan(std::uint64_t id,
                                           std::size_t approx_bytes) {
  auto plan = std::make_shared<SpeckPlan>();
  plan->complete = true;
  plan->fingerprint.a_rows = 4;
  plan->fingerprint.a_cols = 4;
  plan->fingerprint.b_rows = 4;
  plan->fingerprint.b_cols = 4;
  plan->fingerprint.a_nnz = 4;
  plan->fingerprint.b_nnz = 4;
  plan->fingerprint.config_hash = 7;
  plan->fingerprint.a_pattern_hash = id;
  plan->fingerprint.b_pattern_hash = id ^ 0x9E3779B9u;
  const std::size_t base = plan->byte_size();
  if (approx_bytes > base) {
    // Pad with the dominant program array; shrink_to_fit is not needed —
    // byte_size is capacity-based, resize from empty gives capacity == size.
    plan->program.dest.resize((approx_bytes - base) / sizeof(std::uint32_t));
  }
  return plan;
}

TEST(PlanCache, FindOnEmptyMisses) {
  PlanCache cache(4, 1 << 20);
  const auto probe = make_plan(1, 0);
  EXPECT_EQ(cache.find(probe->fingerprint), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(PlanCache, InsertThenFindReturnsSameInstance) {
  PlanCache cache(4, 1 << 20);
  const auto plan = make_plan(1, 4096);
  const auto retained = cache.insert(plan);
  EXPECT_EQ(retained, plan);
  EXPECT_EQ(cache.find(plan->fingerprint), plan);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), plan->byte_size());
}

TEST(PlanCache, InsertDedupConvergesOnFirstWriter) {
  PlanCache cache(1, 1 << 20);
  const auto first = make_plan(1, 4096);
  const auto duplicate = make_plan(1, 4096);  // same fingerprint, new object
  EXPECT_EQ(cache.insert(first), first);
  EXPECT_EQ(cache.insert(duplicate), first)
      << "a racing insert must converge on the already-cached instance";
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(PlanCache, EvictsInLruOrderUnderByteBudget) {
  const auto p1 = make_plan(1, 8192);
  const auto p2 = make_plan(2, 8192);
  const auto p3 = make_plan(3, 8192);
  // Budget fits exactly two of the three plans; one shard gives one global
  // LRU order.
  PlanCache cache(1, p1->byte_size() + p2->byte_size() + 64);
  cache.insert(p1);
  cache.insert(p2);
  ASSERT_EQ(cache.entries(), 2u);

  // Touch p1: p2 becomes the LRU tail and must be the eviction victim.
  EXPECT_NE(cache.find(p1->fingerprint), nullptr);
  cache.insert(p3);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.find(p1->fingerprint), nullptr) << "recently used, kept";
  EXPECT_EQ(cache.find(p2->fingerprint), nullptr) << "LRU tail, evicted";
  EXPECT_NE(cache.find(p3->fingerprint), nullptr) << "fresh insert, kept";
  EXPECT_LE(cache.bytes(), cache.limit_bytes());
}

TEST(PlanCache, OversizedPlanIsRejectedNotFatal) {
  PlanCache cache(2, 1024);
  const auto huge = make_plan(1, 64 * 1024);
  const auto kept = cache.insert(huge);
  EXPECT_EQ(kept, huge) << "the caller keeps its plan and can still replay";
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().rejected_inserts, 1u);
}

TEST(PlanCache, IncompletePlanIsNeverCached) {
  PlanCache cache(2, 1 << 20);
  auto incomplete = std::make_shared<SpeckPlan>();
  incomplete->fingerprint.a_pattern_hash = 5;
  incomplete->fingerprint.b_pattern_hash = 6;
  cache.insert(incomplete);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().rejected_inserts, 1u);
}

TEST(PlanCache, QuickFieldCollisionDoesNotAlias) {
  // Same dims, nnz and config hash — only the pattern hashes differ (the
  // satellite's collision case). The cache must treat them as distinct keys.
  PlanCache cache(4, 1 << 20);
  const auto p1 = make_plan(1, 4096);
  const auto p2 = make_plan(2, 4096);
  ASSERT_TRUE(p1->fingerprint.matches_quick(p2->fingerprint));
  ASSERT_FALSE(p1->fingerprint.matches_full(p2->fingerprint));
  cache.insert(p1);
  EXPECT_EQ(cache.find(p2->fingerprint), nullptr)
      << "a quick-field collision must not serve the other pattern's plan";
  cache.insert(p2);
  EXPECT_EQ(cache.find(p1->fingerprint), p1);
  EXPECT_EQ(cache.find(p2->fingerprint), p2);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(PlanCache, ClearDropsEntriesKeepsCounters) {
  PlanCache cache(4, 1 << 20);
  cache.insert(make_plan(1, 4096));
  cache.insert(make_plan(2, 4096));
  const std::uint64_t insertions = cache.stats().insertions;
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().insertions, insertions);
}

TEST(PlanCacheStress, ConcurrentGetInsertEvictFromSixteenThreads) {
  // 16 threads hammer a deliberately tight cache (continuous eviction) over
  // a pool of 32 distinct fingerprints. Correctness bar: every hit returns
  // the plan for the requested fingerprint, and the cache's accounting
  // stays consistent.
  constexpr int kThreads = 16;
  constexpr int kPlans = 32;
  constexpr int kIterations = 400;

  std::vector<std::shared_ptr<const SpeckPlan>> plans;
  for (int i = 0; i < kPlans; ++i) {
    plans.push_back(make_plan(static_cast<std::uint64_t>(i) + 1, 16 * 1024));
  }
  // Budget for roughly a quarter of the pool.
  PlanCache cache(4, 8 * plans.front()->byte_size());

  std::atomic<std::uint64_t> wrong_plan{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t state = 0xC0FFEE + static_cast<std::uint64_t>(t);
      for (int i = 0; i < kIterations; ++i) {
        const auto pick =
            static_cast<std::size_t>(splitmix64(state) % kPlans);
        const auto& want = plans[pick];
        std::shared_ptr<const SpeckPlan> got = cache.find(want->fingerprint);
        if (got == nullptr) {
          got = cache.insert(want);
        }
        if (got == nullptr ||
            !got->fingerprint.matches_full(want->fingerprint)) {
          wrong_plan.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(wrong_plan.load(), 0u);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, cache.entries());
  EXPECT_EQ(stats.bytes, cache.bytes());
  EXPECT_LE(stats.bytes, cache.limit_bytes());
  EXPECT_EQ(stats.insertions - stats.evictions, stats.entries);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIterations);
}

/// Two matrices with identical dims, nnz and config (quick-field collision)
/// but different sparsity patterns.
struct CollisionPair {
  Csr a;
  Csr b;
};

CollisionPair collision_pair() {
  // 4x4, 4 nnz each, different patterns, same values everywhere.
  const std::vector<value_t> vals{1.0, 2.0, 3.0, 4.0};
  Csr a(4, 4, {0, 2, 3, 4, 4}, {0, 2, 1, 3}, vals);
  Csr b(4, 4, {0, 1, 2, 3, 4}, {1, 2, 3, 0}, vals);
  return {std::move(a), std::move(b)};
}

TEST(TransparentPlanCache, CollisionPatternsServedCorrectly) {
  // End-to-end through Speck::multiply, with validate_inputs on and off:
  // after warming the cache on pattern A, pattern B (same dims/nnz/config
  // hash) must not replay A's plan — its product must match the reference.
  for (const bool validate : {false, true}) {
    SCOPED_TRACE(validate ? "validate_inputs=on" : "validate_inputs=off");
    SpeckConfig cfg;
    cfg.validate_inputs = validate;
    Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    const CollisionPair pair = collision_pair();
    ASSERT_TRUE(plan_fingerprint(pair.a, pair.a, cfg, false)
                    .matches_quick(plan_fingerprint(pair.b, pair.b, cfg, false)));

    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(sp.multiply(pair.a, pair.a).ok());
    }
    EXPECT_TRUE(sp.last_diagnostics().plan_cache_hit);

    const SpGemmResult r = sp.multiply(pair.b, pair.b);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(sp.last_diagnostics().plan_cache_hit)
        << "quick-field collision must miss, not replay the wrong pattern";
    const auto diff = compare(r.c, gustavson_spgemm(pair.b, pair.b), 0.0);
    EXPECT_FALSE(diff.has_value()) << diff->description;
  }
}

TEST(TransparentPlanCache, MultiplePatternsStayWarm) {
  // The single-slot cache this replaces forgot pattern A the moment B
  // appeared. Now A, A, A (hit) then B, B, B (hit) then A again must hit
  // immediately — both plans live in the cache.
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::banded(300, 6, 4, 901);
  const Csr b = gen::power_law(300, 300, 5, 1.8, 60, 903);

  for (int i = 0; i < 3; ++i) ASSERT_TRUE(sp.multiply(a, a).ok());
  EXPECT_TRUE(sp.last_diagnostics().plan_cache_hit);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(sp.multiply(b, b).ok());
  EXPECT_TRUE(sp.last_diagnostics().plan_cache_hit);

  const SpGemmResult back = sp.multiply(a, a);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(sp.last_diagnostics().plan_cache_hit)
      << "pattern A must still be cached after serving pattern B";
  EXPECT_EQ(sp.plan_cache().entries(), 2u);
  const auto diff = compare(back.c, gustavson_spgemm(a, a), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

}  // namespace
}  // namespace speck
