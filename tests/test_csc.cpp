// Tests for the CSC format and the outer-product extension baseline.
#include <gtest/gtest.h>

#include "baselines/outer_product.h"
#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/csc.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"

namespace speck {
namespace {

TEST(Csc, RoundTripThroughCsr) {
  const Csr a = gen::random_uniform(60, 80, 5, 1701);
  const Csc csc = csr_to_csc(a);
  EXPECT_EQ(csc.rows(), 60);
  EXPECT_EQ(csc.cols(), 80);
  EXPECT_EQ(csc.nnz(), a.nnz());
  const Csr back = csc_to_csr(csc);
  const auto diff = compare(back, a, 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(Csc, ColumnsMatchTransposedRows) {
  const Csr a = gen::banded(50, 6, 4, 1703);
  const Csc csc = csr_to_csc(a);
  const Csr at = transpose(a);
  for (index_t c = 0; c < a.cols(); ++c) {
    const auto csc_rows = csc.col_rows(c);
    const auto t_cols = at.row_cols(c);
    ASSERT_EQ(csc_rows.size(), t_cols.size()) << "column " << c;
    for (std::size_t i = 0; i < csc_rows.size(); ++i) {
      EXPECT_EQ(csc_rows[i], t_cols[i]);
      EXPECT_EQ(csc.col_vals(c)[i], at.row_vals(c)[i]);
    }
  }
}

TEST(Csc, RowIndicesSortedWithinColumns) {
  const Csr a = gen::power_law(80, 80, 6, 1.8, 30, 1707);
  const Csc csc = csr_to_csc(a);
  for (index_t c = 0; c < csc.cols(); ++c) {
    const auto rows = csc.col_rows(c);
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end())) << "column " << c;
  }
}

TEST(Csc, EmptyMatrix) {
  const Csc csc = csr_to_csc(Csr::zeros(5, 7));
  EXPECT_EQ(csc.nnz(), 0);
  EXPECT_EQ(csc.col_length(3), 0);
  EXPECT_EQ(csc_to_csr(csc).nnz(), 0);
}

TEST(Csc, ValidatesStructure) {
  EXPECT_THROW(Csc(2, 2, {0, 1}, {0}, {1.0}), InvalidArgument);        // offsets size
  EXPECT_THROW(Csc(2, 2, {0, 1, 1}, {5}, {1.0}), InvalidArgument);     // row range
  EXPECT_THROW(Csc(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}), InvalidArgument);  // decreasing
}

TEST(OuterProduct, ExactOnCorpus) {
  baselines::OuterProduct outer(sim::DeviceSpec::titan_v(), sim::CostModel{});
  for (const auto& entry : gen::test_corpus()) {
    const SpGemmResult result = outer.multiply(entry.a, entry.b);
    ASSERT_TRUE(result.ok()) << entry.name << ": " << result.failure_reason;
    const auto diff = compare(result.c, gustavson_spgemm(entry.a, entry.b));
    EXPECT_FALSE(diff.has_value()) << entry.name << ": " << diff->description;
  }
}

TEST(OuterProduct, MemoryScalesWithProducts) {
  baselines::OuterProduct outer(sim::DeviceSpec::titan_v(), sim::CostModel{});
  // High-compaction input: expansion buffer far exceeds the output.
  const Csr dense_blocks = gen::block_diagonal(4, 80, 0.9, 1711);
  const SpGemmResult result = outer.multiply(dense_blocks, dense_blocks);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.peak_memory_bytes, 8 * result.c.byte_size())
      << "outer product must pay the full expansion";
}

TEST(OuterProduct, ReportsTimeline) {
  baselines::OuterProduct outer(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::random_uniform(500, 500, 8, 1713);
  const SpGemmResult result = outer.multiply(a, a);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.timeline.seconds(sim::Stage::kSorting), 0.0);
  EXPECT_NEAR(result.timeline.total_seconds(), result.seconds, 1e-12);
}

}  // namespace
}  // namespace speck
