// Tests for the INI configuration reader used by the runspeck tool.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "common/ini.h"

namespace speck {
namespace {

IniConfig parse(const std::string& text) {
  std::istringstream in(text);
  return IniConfig::parse(in);
}

TEST(Ini, BasicKeyValues) {
  const IniConfig c = parse(
      "TrackCompleteTimes = true\n"
      "IterationsExecution = 10\n"
      "InputFile = /tmp/m.mtx\n");
  EXPECT_TRUE(c.get_bool("TrackCompleteTimes", false));
  EXPECT_EQ(c.get_int("IterationsExecution", 0), 10);
  EXPECT_EQ(c.get_string("InputFile", ""), "/tmp/m.mtx");
}

TEST(Ini, DefaultsWhenMissing) {
  const IniConfig c = parse("");
  EXPECT_FALSE(c.get_bool("Missing", false));
  EXPECT_TRUE(c.get_bool("Missing", true));
  EXPECT_EQ(c.get_int("Missing", 42), 42);
  EXPECT_DOUBLE_EQ(c.get_double("Missing", 2.5), 2.5);
  EXPECT_EQ(c.get_string("Missing", "x"), "x");
}

TEST(Ini, CommentsAndBlankLines) {
  const IniConfig c = parse(
      "# a comment\n"
      "\n"
      "; another comment\n"
      "key = value\n");
  EXPECT_EQ(c.values().size(), 1u);
  EXPECT_EQ(c.get_string("key", ""), "value");
}

TEST(Ini, SectionsFlatten) {
  const IniConfig c = parse(
      "[device]\n"
      "sms = 80\n"
      "[run]\n"
      "iterations = 3\n");
  EXPECT_EQ(c.get_int("device.sms", 0), 80);
  EXPECT_EQ(c.get_int("run.iterations", 0), 3);
  EXPECT_FALSE(c.contains("sms"));
}

TEST(Ini, BooleanSpellings) {
  const IniConfig c = parse(
      "a = TRUE\nb = Yes\nc = on\nd = 1\ne = False\nf = NO\ng = off\nh = 0\n");
  for (const char* key : {"a", "b", "c", "d"}) EXPECT_TRUE(c.get_bool(key, false));
  for (const char* key : {"e", "f", "g", "h"}) EXPECT_FALSE(c.get_bool(key, true));
}

TEST(Ini, WhitespaceTrimmed) {
  const IniConfig c = parse("   spaced   =    out value   \n");
  EXPECT_EQ(c.get_string("spaced", ""), "out value");
}

TEST(Ini, Doubles) {
  const IniConfig c = parse("ratio = 39.2\n");
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0.0), 39.2);
}

TEST(Ini, MalformedInputThrows) {
  EXPECT_THROW(parse("just a line without equals\n"), InvalidArgument);
  EXPECT_THROW(parse("[unterminated\n"), InvalidArgument);
  EXPECT_THROW(parse("= novalue\n"), InvalidArgument);
  const IniConfig c = parse("key = notabool\n");
  EXPECT_THROW(c.get_bool("key", false), InvalidArgument);
  EXPECT_THROW(c.get_int("key", 0), InvalidArgument);
}

TEST(Ini, MissingFileThrows) {
  EXPECT_THROW(IniConfig::parse_file("/nonexistent/config.ini"), InvalidArgument);
}

TEST(Ini, LastValueWins) {
  const IniConfig c = parse("k = 1\nk = 2\n");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

}  // namespace
}  // namespace speck
