// Fault-injection matrix: every injected fault (estimate mis-scaling, forced
// hash-map overflow, shrunken scratchpads, jittered estimates, memory-budget
// caps) may only change the *planning* and the simulated cost. Over the whole
// test corpus the numeric CSR output must stay bit-identical to the Gustavson
// oracle — or fail with the typed out-of-memory status. This is the paper's
// graceful-degradation claim (estimates are hints, never correctness inputs)
// under deliberately hostile estimates.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "gen/corpus.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

namespace speck {
namespace {

struct NamedFault {
  std::string name;
  FaultSpec spec;
};

std::vector<NamedFault> fault_matrix() {
  std::vector<NamedFault> faults;
  {
    FaultSpec s;
    s.estimate_scale = 0.25;  // under-estimate: undersized bins, spills
    faults.push_back({"estimate-x0.25", s});
  }
  {
    FaultSpec s;
    s.estimate_scale = 4.0;  // over-estimate: rows mis-binned upward
    faults.push_back({"estimate-x4", s});
  }
  {
    FaultSpec s;
    s.hash_overflow_after = 8;  // force the global-memory fallback
    faults.push_back({"hash-overflow-after-8", s});
  }
  {
    FaultSpec s;
    s.scratchpad_scale = 0.5;  // kernels get half what binning assumed
    faults.push_back({"scratchpad-x0.5", s});
  }
  {
    FaultSpec s;
    s.estimate_jitter = 0.9;  // per-row chaos, deterministic via seed
    s.seed = 17;
    faults.push_back({"jitter-0.9", s});
  }
  {
    FaultSpec s;
    s.estimate_scale = 0.5;
    s.hash_overflow_after = 16;
    s.scratchpad_scale = 0.5;
    faults.push_back({"combined", s});
  }
  return faults;
}

Speck make_speck(const FaultSpec& spec, int host_threads) {
  SpeckConfig config;
  config.faults = spec;
  config.host_threads = host_threads;
  config.validate_inputs = true;
  return Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
}

void run_matrix(int host_threads) {
  const auto corpus = gen::test_corpus();
  const auto faults = fault_matrix();
  for (const auto& entry : corpus) {
    const Csr oracle = gustavson_spgemm(entry.a, entry.b);
    for (const auto& fault : faults) {
      Speck speck = make_speck(fault.spec, host_threads);
      const auto outcome = speck.try_multiply(entry.a, entry.b);
      ASSERT_TRUE(outcome.ok()) << entry.name << " under " << fault.name
                                << ": " << outcome.status.to_string();
      // Tolerance 0: bit-identical values, not merely close.
      const auto diff = compare(outcome.result.c, oracle, 0.0);
      EXPECT_FALSE(diff.has_value())
          << entry.name << " under " << fault.name << ": "
          << (diff ? diff->description : "");
    }
  }
}

TEST(FaultMatrix, OutputBitIdenticalToOracle) { run_matrix(/*host_threads=*/0); }

TEST(FaultMatrix, OutputBitIdenticalToOracleAt8Threads) {
  run_matrix(/*host_threads=*/8);
}

TEST(FaultMatrix, ForcedOverflowActuallySpills) {
  // Prove the fault drives the fallback path rather than being ignored.
  FaultSpec spec;
  spec.hash_overflow_after = 4;
  bool spilled_somewhere = false;
  for (const auto& entry : gen::test_corpus()) {
    Speck speck = make_speck(spec, 0);
    // The spill counters below belong to the exact pipeline's hash kernels.
    speck.config().planning = PlanningMode::kExact;
    const auto outcome = speck.try_multiply(entry.a, entry.b);
    ASSERT_TRUE(outcome.ok()) << entry.name;
    const SpeckDiagnostics& diag = speck.last_diagnostics();
    spilled_somewhere = spilled_somewhere ||
                        diag.symbolic.global_hash_blocks > 0 ||
                        diag.numeric.global_hash_blocks > 0;
  }
  EXPECT_TRUE(spilled_somewhere)
      << "hash-overflow-after=4 never reached the global fallback";
}

TEST(FaultMatrix, ResultsIdenticalAcrossThreadCounts) {
  FaultSpec spec;
  spec.estimate_jitter = 0.5;
  spec.seed = 99;
  spec.hash_overflow_after = 8;
  for (const auto& entry : gen::test_corpus()) {
    Speck one = make_speck(spec, 1);
    Speck eight = make_speck(spec, 8);
    const auto r1 = one.try_multiply(entry.a, entry.b);
    const auto r8 = eight.try_multiply(entry.a, entry.b);
    ASSERT_TRUE(r1.ok() && r8.ok()) << entry.name;
    EXPECT_FALSE(compare(r1.result.c, r8.result.c, 0.0).has_value())
        << entry.name;
    // The simulated schedule (and thus the modeled time) is part of the
    // determinism contract too.
    EXPECT_EQ(r1.result.seconds, r8.result.seconds) << entry.name;
  }
}

TEST(FaultMatrix, TightMemoryBudgetIsTypedFailure) {
  FaultSpec spec;
  spec.memory_budget_bytes = 2048;
  const auto corpus = gen::test_corpus();
  ASSERT_FALSE(corpus.empty());
  Speck speck = make_speck(spec, 0);
  const auto outcome = speck.try_multiply(corpus.front().a, corpus.front().b);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code, ErrorCode::kResourceExhausted);
  EXPECT_FALSE(outcome.status.message.empty());
}

TEST(FaultInjector, EstimateScalingIsDeterministic) {
  FaultSpec spec;
  spec.estimate_scale = 2.0;
  spec.estimate_jitter = 0.5;
  spec.seed = 7;
  const FaultInjector injector(spec);
  const FaultInjector again(spec);
  for (index_t row = 0; row < 64; ++row) {
    const offset_t scaled = injector.scale_estimate(row, 100);
    EXPECT_EQ(scaled, again.scale_estimate(row, 100));
    // scale 2 +/- 50% jitter keeps the factor within [1, 3].
    EXPECT_GE(scaled, 100);
    EXPECT_LE(scaled, 300);
  }
  // Different seeds must actually change something.
  FaultSpec other = spec;
  other.seed = 8;
  const FaultInjector reseeded(other);
  bool any_difference = false;
  for (index_t row = 0; row < 64; ++row) {
    any_difference = any_difference ||
                     injector.scale_estimate(row, 100) !=
                         reseeded.scale_estimate(row, 100);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, CapacityClampsToOneSlot) {
  FaultSpec spec;
  spec.scratchpad_scale = 0.001;
  const FaultInjector injector(spec);
  EXPECT_EQ(injector.scratchpad_capacity(10), 1u);
  EXPECT_EQ(injector.scratchpad_capacity(10000), 10u);
  // Identity when the fault is off.
  EXPECT_EQ(FaultInjector(FaultSpec{}).scratchpad_capacity(123), 123u);
}

TEST(FaultInjector, OverflowThresholdAndMemoryCap) {
  FaultSpec spec;
  spec.hash_overflow_after = 8;
  spec.memory_budget_bytes = 1000;
  const FaultInjector injector(spec);
  EXPECT_FALSE(injector.force_hash_overflow(7));
  EXPECT_TRUE(injector.force_hash_overflow(8));
  EXPECT_EQ(injector.cap_memory(5000), 1000u);
  EXPECT_EQ(injector.cap_memory(500), 500u);
  EXPECT_EQ(FaultInjector(FaultSpec{}).cap_memory(5000), 5000u);
}

}  // namespace
}  // namespace speck
