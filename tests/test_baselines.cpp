// Integration tests for the baseline algorithms: exact results, failure
// modes, and the qualitative properties the paper's Table 1/3 attribute to
// each family.
#include <gtest/gtest.h>

#include <map>

#include "baselines/kokkos_like.h"
#include "matrix/coo.h"
#include "baselines/suite.h"
#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "ref/mkl_like.h"
#include "speck/speck.h"

namespace speck {
namespace {

const sim::DeviceSpec kDevice = sim::DeviceSpec::titan_v();
const sim::CostModel kModel;

/// (algorithm index, corpus index) sweep: every baseline must be exact on
/// every test matrix (or report a typed failure).
class BaselineCorpus
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BaselineCorpus, ExactOrTypedFailure) {
  const auto [algo_index, corpus_index] = GetParam();
  const auto algorithms = baselines::make_all_algorithms(kDevice, kModel);
  ASSERT_LT(algo_index, algorithms.size());
  const auto corpus = gen::test_corpus();
  const auto& entry = corpus[corpus_index];

  const SpGemmResult result = algorithms[algo_index]->multiply(entry.a, entry.b);
  if (!result.ok()) {
    EXPECT_FALSE(result.failure_reason.empty());
    return;
  }
  const Csr expected = gustavson_spgemm(entry.a, entry.b);
  const auto diff = compare(result.c, expected);
  EXPECT_FALSE(diff.has_value())
      << algorithms[algo_index]->name() << " on " << entry.name << ": "
      << diff->description;
  if (count_products(entry.a, entry.b) > 0) {
    EXPECT_GT(result.seconds, 0.0);
  }
  EXPECT_GT(result.peak_memory_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BaselineCorpus,
    ::testing::Combine(::testing::Range<std::size_t>(0, 9),
                       ::testing::Range<std::size_t>(0, 13)));

TEST(BaselineSuite, ContainsAllPaperCompetitors) {
  const auto algorithms = baselines::make_all_algorithms(kDevice, kModel);
  std::vector<std::string> names;
  for (const auto& algorithm : algorithms) names.push_back(algorithm->name());
  const std::vector<std::string> expected{"cusparse", "ac",    "nsparse",
                                          "rmerge",   "bhsparse", "cusp",
                                          "speck",    "kokkos", "mkl"};
  EXPECT_EQ(names, expected);
}

TEST(BaselineSuite, GpuSuiteExcludesMkl) {
  const auto algorithms = baselines::make_gpu_algorithms(kDevice, kModel);
  for (const auto& algorithm : algorithms) EXPECT_NE(algorithm->name(), "mkl");
  EXPECT_EQ(algorithms.size(), 8u);
}

TEST(Kokkos, FailsOnOversizedRows) {
  baselines::KokkosLike kokkos(kDevice, kModel);
  // One row of A references every row of B: products = nnz(B) > limit.
  Coo heavy_coo(2000, 2000);
  for (index_t c = 0; c < 2000; ++c) heavy_coo.add(0, c, 1.0);
  for (index_t r = 1; r < 2000; ++r) {
    for (index_t i = 0; i < 100; ++i) heavy_coo.add(r, (r * 31 + i * 7) % 2000, 1.0);
  }
  const Csr heavy = heavy_coo.to_csr();
  const SpGemmResult result = kokkos.multiply(heavy, heavy);
  EXPECT_EQ(result.status, SpGemmStatus::kUnsupported);
}

TEST(Kokkos, ReportsUnsortedOutput) {
  baselines::KokkosLike kokkos(kDevice, kModel);
  const Csr a = gen::random_uniform(200, 200, 5, 701);
  const SpGemmResult result = kokkos.multiply(a, a);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.sorted_output) << "KokkosKernels violates CSR ordering";
}

TEST(Memory, HashMethodsUseLessThanEsc) {
  // Paper Table 3: hash-based methods (speck, cusparse, nsparse) have far
  // lower peak memory than ESC/merging (ac, cusp, rmerge, bhsparse).
  const Csr a = gen::random_uniform(3000, 3000, 16, 703);
  const auto algorithms = baselines::make_all_algorithms(kDevice, kModel);
  std::map<std::string, std::size_t> memory;
  for (const auto& algorithm : algorithms) {
    const SpGemmResult result = algorithm->multiply(a, a);
    if (result.ok()) memory[algorithm->name()] = result.peak_memory_bytes;
  }
  EXPECT_LT(memory["speck"], memory["cusp"]);
  EXPECT_LT(memory["speck"], memory["ac"]);
  EXPECT_LT(memory["speck"], memory["rmerge"]);
  EXPECT_LT(memory["nsparse"], memory["cusp"]);
}

TEST(Timing, EscScalesWithProductsNotOutput) {
  // High-compaction input: products >> nnz(C). ESC must be much slower than
  // spECK there (paper: ESC "fast for low compaction" only).
  const Csr dense_blocks = gen::block_diagonal(6, 100, 0.9, 705);
  const auto algorithms = baselines::make_all_algorithms(kDevice, kModel);
  std::map<std::string, double> seconds;
  for (const auto& algorithm : algorithms) {
    const SpGemmResult result = algorithm->multiply(dense_blocks, dense_blocks);
    if (result.ok()) seconds[algorithm->name()] = result.seconds;
  }
  EXPECT_GT(seconds["cusp"], seconds["speck"] * 2.0)
      << "ESC should lose badly on high-compaction matrices";
}

TEST(Timing, MklWinsTinyMatrices) {
  // Below ~15k products the GPU launch overheads dominate (paper Fig. 6).
  const Csr tiny = gen::random_uniform(100, 100, 4, 707);
  ASSERT_LT(count_products(tiny, tiny), 15000);
  MklLikeCpu mkl(kDevice, kModel);
  Speck speck(kDevice, kModel);
  const double mkl_seconds = mkl.multiply(tiny, tiny).seconds;
  const double speck_seconds = speck.multiply(tiny, tiny).seconds;
  EXPECT_LT(mkl_seconds, speck_seconds);
}

TEST(Timing, GpuWinsLargeMatrices) {
  const Csr big = gen::random_uniform(20000, 20000, 16, 709);
  ASSERT_GT(count_products(big, big), 1000000);
  MklLikeCpu mkl(kDevice, kModel);
  Speck speck(kDevice, kModel);
  const double mkl_seconds = mkl.multiply(big, big).seconds;
  const double speck_seconds = speck.multiply(big, big).seconds;
  EXPECT_GT(mkl_seconds, speck_seconds);
}

TEST(Timing, AllGpuMethodsReportTimelines) {
  const Csr a = gen::random_uniform(800, 800, 8, 711);
  for (const auto& algorithm : baselines::make_gpu_algorithms(kDevice, kModel)) {
    const SpGemmResult result = algorithm->multiply(a, a);
    if (!result.ok()) continue;
    EXPECT_NEAR(result.timeline.total_seconds(), result.seconds, 1e-12)
        << algorithm->name();
  }
}

TEST(Baselines, RejectDimensionMismatch) {
  const Csr a = Csr::zeros(4, 5);
  for (const auto& algorithm : baselines::make_all_algorithms(kDevice, kModel)) {
    EXPECT_THROW(algorithm->multiply(a, a), InvalidArgument) << algorithm->name();
  }
}

TEST(Baselines, HandleEmptyMatrices) {
  const Csr z = Csr::zeros(64, 64);
  for (const auto& algorithm : baselines::make_all_algorithms(kDevice, kModel)) {
    const SpGemmResult result = algorithm->multiply(z, z);
    ASSERT_TRUE(result.ok()) << algorithm->name() << ": " << result.failure_reason;
    EXPECT_EQ(result.c.nnz(), 0) << algorithm->name();
  }
}

}  // namespace
}  // namespace speck

namespace speck {
namespace {

TEST(BaselineOom, MemoryHungryMethodsFailOnTinyDevice) {
  // A device whose memory fits the inputs and output but not the ESC/merge
  // expansion buffers: hash methods succeed, expansion methods report OOM.
  const Csr a = gen::block_diagonal(6, 100, 0.9, 2203);  // high compaction
  sim::DeviceSpec tiny = sim::DeviceSpec::titan_v();
  tiny.global_memory_bytes = 24 * 1024 * 1024;  // 24 MB
  const auto algorithms = baselines::make_all_algorithms(tiny, sim::CostModel{});
  std::map<std::string, SpGemmStatus> status;
  for (const auto& algorithm : algorithms) {
    status[algorithm->name()] = algorithm->multiply(a, a).status;
  }
  EXPECT_EQ(status["speck"], SpGemmStatus::kOk);
  EXPECT_EQ(status["cusparse"], SpGemmStatus::kOk);
  EXPECT_EQ(status["cusp"], SpGemmStatus::kOutOfMemory);
  EXPECT_EQ(status["ac"], SpGemmStatus::kOutOfMemory);
  EXPECT_EQ(status["rmerge"], SpGemmStatus::kOutOfMemory);
}

TEST(BaselineDevices, AllAlgorithmsRunOnEveryDevice) {
  const Csr a = gen::random_uniform(400, 400, 6, 2207);
  for (const sim::DeviceSpec& device :
       {sim::DeviceSpec::titan_v(), sim::DeviceSpec::pascal_like(),
        sim::DeviceSpec::a100_like()}) {
    for (const auto& algorithm :
         baselines::make_all_algorithms(device, sim::CostModel{})) {
      const SpGemmResult result = algorithm->multiply(a, a);
      EXPECT_TRUE(result.ok()) << algorithm->name();
    }
  }
}

TEST(BaselineDevices, BiggerDeviceIsFaster) {
  const Csr a = gen::random_uniform(20000, 20000, 12, 2211);
  SpeckConfig config;
  config.thresholds = reduced_scale_thresholds();
  Speck small(sim::DeviceSpec::pascal_like(), sim::CostModel{}, config);
  Speck big(sim::DeviceSpec::a100_like(), sim::CostModel{}, config);
  EXPECT_GT(small.multiply(a, a).seconds, big.multiply(a, a).seconds);
}

}  // namespace
}  // namespace speck

namespace speck {
namespace {

TEST(AlgorithmFactory, BuildsEveryName) {
  const Csr a = gen::random_uniform(120, 120, 4, 2301);
  const Csr expected = gustavson_spgemm(a, a);
  for (const std::string& name : baselines::algorithm_names()) {
    const auto algorithm =
        baselines::make_algorithm(name, kDevice, sim::CostModel{});
    ASSERT_NE(algorithm, nullptr) << name;
    EXPECT_EQ(algorithm->name() == "speck" ? "speck" : algorithm->name(),
              name == "speck" ? "speck" : algorithm->name());
    const SpGemmResult result = algorithm->multiply(a, a);
    ASSERT_TRUE(result.ok()) << name << ": " << result.failure_reason;
    const auto diff = compare(result.c, expected);
    EXPECT_FALSE(diff.has_value()) << name << ": " << diff->description;
  }
}

TEST(AlgorithmFactory, RejectsUnknownName) {
  EXPECT_THROW(baselines::make_algorithm("nope", kDevice, sim::CostModel{}),
               InvalidArgument);
}

}  // namespace
}  // namespace speck
