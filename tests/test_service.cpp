// Tests for the concurrent serving layer: SpeckService over a shared Speck.
//
// The service contract is (1) every response is bit-identical to the full
// pipeline (and therefore to the Gustavson reference) no matter how many
// clients race, (2) each distinct structure plans exactly once absent
// eviction, (3) admission control degrades to kResourceExhausted — never to
// an OOM or a wrong answer — and (4) the steady-state replay performs zero
// hot-path heap allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "common/alloc_counter.h"
#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/service.h"
#include "speck/speck.h"

// Counting allocator (as in bench_reuse): makes the replay path's
// zero-allocation claim observable via PassStats::hot_path_allocs.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace speck {
namespace {

/// A small corpus of distinct structures, each with fixed values so every
/// replay of a pattern must reproduce one known reference product.
std::vector<Csr> make_patterns() {
  std::vector<Csr> out;
  out.push_back(gen::banded(120, 6, 5, 11));
  out.push_back(gen::banded(96, 12, 7, 22));
  out.push_back(gen::power_law(110, 110, 6, 2.2, 40, 33));
  out.push_back(gen::power_law(140, 140, 5, 2.0, 30, 44));
  return out;
}

std::vector<Csr> make_references(const std::vector<Csr>& patterns) {
  std::vector<Csr> refs;
  for (const Csr& a : patterns) refs.push_back(gustavson_spgemm(a, a));
  return refs;
}

void expect_values_equal(std::span<const value_t> got,
                         std::span<const value_t> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << what << " at nnz index " << i;
  }
}

TEST(ServiceBasics, FirstRequestPlansSecondReplaysBothMatchReference) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  SpeckService svc(sp);
  const Csr a = gen::banded(100, 8, 6, 7);
  const Csr ref = gustavson_spgemm(a, a);

  SpeckService::Response first = svc.multiply(a, a);
  ASSERT_TRUE(first.ok()) << first.status.message;
  EXPECT_TRUE(first.planned);
  EXPECT_FALSE(first.replayed);
  auto diff = compare(first.c, ref, 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;

  SpeckService::Response second = svc.multiply(a, a);
  ASSERT_TRUE(second.ok()) << second.status.message;
  EXPECT_FALSE(second.planned);
  EXPECT_TRUE(second.replayed);
  diff = compare(second.c, ref, 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.plans_built, 1u);
  EXPECT_EQ(stats.replays, 1u);
  EXPECT_EQ(stats.full_runs, 0u);
  EXPECT_EQ(stats.cache.entries, 1u);
}

TEST(ServiceBasics, IntoVariantAgreesWithOwnedVariant) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  SpeckService svc(sp);
  const Csr a = gen::power_law(90, 90, 6, 2.1, 30, 5);

  SpeckService::Response owned = svc.multiply(a, a);  // plans
  ASSERT_TRUE(owned.ok()) << owned.status.message;

  std::vector<value_t> buf;
  SpeckService::Response into = svc.multiply_into(a, a, buf);
  ASSERT_TRUE(into.ok()) << into.status.message;
  EXPECT_TRUE(into.replayed);
  EXPECT_EQ(into.c_nnz, owned.c_nnz);
  EXPECT_EQ(into.c.nnz(), 0) << "into-variant must not materialize a Csr";
  expect_values_equal(buf, owned.c.values(), "into vs owned");
}

TEST(ServiceBasics, UnplannableStructureStillServedByFullPipeline) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  SpeckService svc(sp);
  // Empty product: zero intermediate products is planned fine — instead use
  // a mismatched-dims request to check the error path maps to kBadInput.
  const Csr a = gen::banded(32, 3, 3, 1);
  const Csr b = gen::banded(48, 3, 3, 2);
  SpeckService::Response resp = svc.multiply(a, b);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, ErrorCode::kBadInput);
}

TEST(ServiceHotPath, SteadyStateReplayHasZeroHotPathAllocs) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  SpeckService svc(sp);
  const Csr a = gen::banded(128, 8, 6, 17);

  Status st;
  std::shared_ptr<const SpeckPlan> plan = svc.plan_for(a, a, &st);
  ASSERT_NE(plan, nullptr) << st.message;

  std::vector<value_t> buf(static_cast<std::size_t>(plan->c_nnz()));
  // Warm the leased workspace / buffer once, then measure the steady state.
  const Csr& ca = a;
  ASSERT_TRUE(sp.replay_values_into(*plan, ca, ca, buf).ok());
  for (int i = 0; i < 3; ++i) {
    SpeckDiagnostics diag;
    SpGemmResult r = sp.replay_values_into(*plan, ca, ca, buf, &diag);
    ASSERT_TRUE(r.ok()) << r.failure_reason;
    EXPECT_EQ(diag.numeric.hot_path_allocs, 0u)
        << "steady-state replay allocated on iteration " << i;
  }

  // The into-variant must also retain the caller's buffer capacity: after
  // the first serve, repeat serves resize within capacity.
  std::vector<value_t> served;
  ASSERT_TRUE(svc.multiply_into(a, a, served).ok());
  const std::size_t cap = served.capacity();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(svc.multiply_into(a, a, served).ok());
    EXPECT_EQ(served.capacity(), cap) << "buffer reallocated on iteration " << i;
  }
}

TEST(ServiceStale, ConstReplayRejectsMismatchedInputsWithoutFallback) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::banded(64, 4, 4, 3);
  const Csr other = gen::banded(80, 4, 4, 9);
  SpeckPlan plan = sp.plan(a, a);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;

  const Speck& csp = sp;
  SpeckDiagnostics diag;
  SpGemmResult r = csp.multiply_with_plan(plan, other, other, &diag);
  EXPECT_EQ(r.status, SpGemmStatus::kUnsupported);
  EXPECT_NE(r.failure_reason.find("plan rejected"), std::string::npos)
      << r.failure_reason;
  EXPECT_EQ(r.c.nnz(), 0) << "const replay must not fall back to a full run";
}

TEST(ServiceStale, ConstReplayCatchesSameShapePatternSwapWhenValidating) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  sp.config().validate_inputs = true;
  // Same dims and nnz, different pattern: only the full fingerprint
  // (pattern hashes) can tell them apart.
  const Csr a(4, 4, {0, 2, 3, 4, 4}, {0, 2, 1, 3}, {1.0, 2.0, 3.0, 4.0});
  const Csr b(4, 4, {0, 1, 2, 3, 4}, {1, 2, 3, 0}, {1.0, 2.0, 3.0, 4.0});
  SpeckPlan plan = sp.plan(a, a);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;

  const Speck& csp = sp;
  SpGemmResult r = csp.multiply_with_plan(plan, b, b, nullptr);
  EXPECT_EQ(r.status, SpGemmStatus::kUnsupported);
}

TEST(ServiceAdmission, TinyBudgetRejectsWithResourceExhausted) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  ServiceConfig cfg;
  cfg.memory_budget_bytes = 64;  // nothing real fits
  SpeckService svc(sp, cfg);
  const Csr a = gen::banded(100, 8, 6, 7);

  SpeckService::Response resp = svc.multiply(a, a);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, ErrorCode::kResourceExhausted);
  EXPECT_GE(svc.stats().rejected, 1u);
  EXPECT_EQ(svc.stats().plans_built, 0u);
}

TEST(ServiceAdmission, QueueModeThrottlesInsteadOfRejecting) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::banded(100, 8, 6, 7);
  ServiceConfig cfg;
  cfg.queue_on_budget = true;
  // Exactly one plan build fits; concurrent replays must take turns.
  cfg.memory_budget_bytes = estimate_plan_bytes(a, a);
  SpeckService svc(sp, cfg);
  const Csr ref = gustavson_spgemm(a, a);

  ASSERT_TRUE(svc.multiply(a, a).ok());  // plan under budget

  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      std::vector<value_t> buf;
      for (int i = 0; i < kIters; ++i) {
        SpeckService::Response resp = svc.multiply_into(a, a, buf);
        if (!resp.ok() || buf != std::vector<value_t>(ref.values().begin(),
                                                      ref.values().end())) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc.stats().rejected, 0u);
  EXPECT_EQ(svc.budget().used(), 0u) << "all admitted bytes must be released";
}

TEST(ServiceStress, ConcurrentClientsOverSharedPatternsStayBitIdentical) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  SpeckService svc(sp);
  const std::vector<Csr> patterns = make_patterns();
  const std::vector<Csr> refs = make_references(patterns);

  constexpr int kThreads = 8;
  constexpr int kIters = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::uint64_t state = 0x9E3779B97F4A7C15ull * (t + 1);
      std::vector<value_t> buf;
      for (int i = 0; i < kIters; ++i) {
        const std::size_t p = splitmix64(state) % patterns.size();
        const Csr& a = patterns[p];
        const Csr& ref = refs[p];
        bool ok;
        if (i % 2 == 0) {
          SpeckService::Response resp = svc.multiply_into(a, a, buf);
          ok = resp.ok() && resp.c_nnz == ref.nnz() &&
               std::equal(buf.begin(), buf.end(), ref.values().begin(),
                          ref.values().end());
        } else {
          SpeckService::Response resp = svc.multiply(a, a);
          ok = resp.ok() && !compare(resp.c, ref, 0.0).has_value();
        }
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads) * kIters);
  // Default cache budget holds the whole corpus: each pattern plans exactly
  // once, everything else replays.
  EXPECT_EQ(stats.plans_built, patterns.size());
  EXPECT_EQ(stats.replays, stats.requests - stats.plans_built);
  EXPECT_EQ(stats.full_runs, 0u);
  EXPECT_EQ(stats.cache.entries, patterns.size());
  EXPECT_EQ(stats.cache.evictions, 0u);
}

TEST(ServiceStress, EvictionChurnUnderTightCacheBudgetStaysCorrect) {
  const std::vector<Csr> patterns = make_patterns();
  const std::vector<Csr> refs = make_references(patterns);

  // Budget for roughly two of the four plans, one shard so LRU churn is
  // guaranteed (own-shard eviction).
  std::size_t two_plans = 0;
  {
    Speck probe(sim::DeviceSpec::titan_v(), sim::CostModel{});
    SpeckService sizing(probe);
    for (std::size_t p = 0; p < 2; ++p) {
      Status st;
      auto plan = sizing.plan_for(patterns[p], patterns[p], &st);
      ASSERT_NE(plan, nullptr) << st.message;
      two_plans += plan->byte_size();
    }
  }

  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  ServiceConfig cfg;
  cfg.cache_shards = 1;
  cfg.cache_limit_bytes = two_plans + 128;
  SpeckService svc(sp, cfg);

  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::uint64_t state = 0xD1B54A32D192ED03ull * (t + 1);
      std::vector<value_t> buf;
      for (int i = 0; i < kIters; ++i) {
        const std::size_t p = splitmix64(state) % patterns.size();
        SpeckService::Response resp = svc.multiply_into(patterns[p],
                                                        patterns[p], buf);
        const Csr& ref = refs[p];
        const bool ok = resp.ok() && resp.c_nnz == ref.nnz() &&
                        std::equal(buf.begin(), buf.end(),
                                   ref.values().begin(), ref.values().end());
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.requests, stats.replays + stats.plans_built + stats.full_runs);
  EXPECT_GT(stats.cache.evictions, 0u) << "tight budget must churn the cache";
  EXPECT_GT(stats.plans_built, patterns.size()) << "evicted plans re-plan";
  EXPECT_LE(stats.cache.bytes, cfg.cache_limit_bytes);
}

TEST(ServiceWorkspaces, LeasesReuseLifoAndGrowUnderContention) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  SpeckService svc(sp);
  WorkspacePool& pool = svc.client_workspaces();

  KernelWorkspace* first = nullptr;
  {
    WorkspacePool::Lease lease = pool.lease();
    first = &*lease;
    lease->replay_values().resize(1024);
  }
  {
    // Sequential re-lease hands back the same warm workspace.
    WorkspacePool::Lease lease = pool.lease();
    EXPECT_EQ(&*lease, first);
    EXPECT_GE(lease->replay_values().capacity(), 1024u);
  }
  EXPECT_EQ(pool.size(), 1);

  {
    WorkspacePool::Lease a = pool.lease();
    WorkspacePool::Lease b = pool.lease();
    WorkspacePool::Lease c = pool.lease();
    EXPECT_NE(&*a, &*b);
    EXPECT_NE(&*b, &*c);
    EXPECT_NE(&*a, &*c);
  }
  EXPECT_EQ(pool.size(), 3);
}

TEST(ServiceDeadlines, ExpiredDeadlineIsRejectedAtAdmission) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  SpeckService svc(sp);
  const Csr a = gen::banded(100, 8, 6, 7);

  SpeckService::RequestOptions opts;
  opts.deadline = Deadline::at(Deadline::Clock::now());
  SpeckService::Response resp = svc.multiply(a, a, opts);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, ErrorCode::kDeadlineExceeded);
  EXPECT_GT(resp.retry_after, 0.0);
  EXPECT_EQ(svc.stats().timed_out, 1u);
  EXPECT_EQ(svc.stats().plans_built, 0u) << "no work for an expired request";
}

TEST(ServiceDeadlines, DeadlineExpiringInBudgetWaitAnswersDeadlineExceeded) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::banded(100, 8, 6, 7);
  ServiceConfig cfg;
  cfg.queue_on_budget = true;
  cfg.memory_budget_bytes = estimate_plan_bytes(a, a);
  SpeckService svc(sp, cfg);

  // Hold the whole budget so the request must queue, then let its deadline
  // lapse inside the wait.
  ASSERT_TRUE(svc.budget().try_acquire(cfg.memory_budget_bytes));
  SpeckService::RequestOptions opts;
  opts.deadline = Deadline::after_ms(25.0);
  SpeckService::Response resp = svc.multiply(a, a, opts);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, ErrorCode::kDeadlineExceeded);
  EXPECT_GT(resp.retry_after, 0.0);
  EXPECT_EQ(svc.stats().timed_out, 1u);
  svc.budget().release(cfg.memory_budget_bytes);

  // With the pressure gone the same request (fresh deadline) succeeds.
  opts.deadline = Deadline::after_ms(10000.0);
  EXPECT_TRUE(svc.multiply(a, a, opts).ok());
}

TEST(ServiceDegraded, InjectedPlanFailuresServeDegradedAndTripQuarantine) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  ServiceConfig cfg;
  cfg.faults.plan_fail_mod = 1;  // every plan build fails
  cfg.degraded_mode = true;
  cfg.quarantine_threshold = 2;
  cfg.quarantine_cooldown_ms = 10000.0;  // stays tripped for the whole test
  SpeckService svc(sp, cfg);
  const Csr a = gen::banded(100, 8, 6, 7);
  const Csr ref = gustavson_spgemm(a, a);

  // Two failing builds trip the breaker; later requests bypass the plan
  // mutex entirely. Every response is still exact.
  for (int i = 0; i < 4; ++i) {
    SpeckService::Response resp = svc.multiply(a, a);
    ASSERT_TRUE(resp.ok()) << resp.status.message;
    EXPECT_TRUE(resp.degraded);
    auto diff = compare(resp.c, ref, 0.0);
    EXPECT_FALSE(diff.has_value()) << diff->description;
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.degraded, 4u);
  EXPECT_EQ(stats.quarantine_trips, 1u);
  EXPECT_EQ(stats.plans_built, 0u);
  EXPECT_EQ(stats.cache.entries, 0u);
}

TEST(ServiceDegraded, InjectedPlanFailureWithoutDegradedModeIsStructured) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  ServiceConfig cfg;
  cfg.faults.plan_fail_mod = 1;
  SpeckService svc(sp, cfg);
  const Csr a = gen::banded(100, 8, 6, 7);

  SpeckService::Response resp = svc.multiply(a, a);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, ErrorCode::kInternal);
  EXPECT_NE(resp.status.message.find("fault injection"), std::string::npos)
      << resp.status.message;
}

TEST(ServiceDegraded, QuarantineCooldownRetriesTheBuild) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  ServiceConfig cfg;
  cfg.faults.plan_fail_mod = 1;
  cfg.quarantine_threshold = 1;  // trip on the first failure
  cfg.quarantine_cooldown_ms = 30.0;
  SpeckService svc(sp, cfg);
  const Csr a = gen::banded(100, 8, 6, 7);

  // First request fails structurally and trips the breaker.
  EXPECT_EQ(svc.multiply(a, a).status.code, ErrorCode::kInternal);
  EXPECT_EQ(svc.stats().quarantine_trips, 1u);
  // While quarantined the pattern serves degraded (even without
  // degraded_mode: the breaker exists to keep it off the plan mutex).
  SpeckService::Response during = svc.multiply(a, a);
  EXPECT_TRUE(during.ok()) << during.status.message;
  EXPECT_TRUE(during.degraded);
  // After the cooldown the build is retried — and trips again.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_EQ(svc.multiply(a, a).status.code, ErrorCode::kInternal);
  EXPECT_EQ(svc.stats().quarantine_trips, 2u);
}

TEST(ServiceHerd, ThunderingHerdOnOneFingerprintPlansExactlyOnce) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  SpeckService svc(sp);
  const Csr a = gen::banded(128, 8, 6, 17);
  const Csr ref = gustavson_spgemm(a, a);

  constexpr int kThreads = 16;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      std::vector<value_t> buf;
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      SpeckService::Response resp = svc.multiply_into(a, a, buf);
      const bool ok = resp.ok() && resp.c_nnz == ref.nnz() &&
                      std::equal(buf.begin(), buf.end(),
                                 ref.values().begin(), ref.values().end());
      if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();

  EXPECT_EQ(failures.load(), 0);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.plans_built, 1u) << "the herd must build exactly one plan";
  EXPECT_EQ(stats.cache.insertions, 1u) << "no duplicate cache inserts";
  EXPECT_EQ(stats.replays, static_cast<std::uint64_t>(kThreads) - 1);
  EXPECT_EQ(stats.full_runs, 0u);
}

TEST(ServiceChaos, EvictionStormForcesReplansButStaysCorrect) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  ServiceConfig cfg;
  cfg.faults.evict_every = 3;  // every 3rd request drops the cache
  SpeckService svc(sp, cfg);
  const Csr a = gen::banded(100, 8, 6, 7);
  const Csr ref = gustavson_spgemm(a, a);

  std::vector<value_t> buf;
  for (int i = 0; i < 10; ++i) {
    SpeckService::Response resp = svc.multiply_into(a, a, buf);
    ASSERT_TRUE(resp.ok()) << resp.status.message;
    EXPECT_EQ(resp.c_nnz, ref.nnz());
    EXPECT_TRUE(std::equal(buf.begin(), buf.end(), ref.values().begin(),
                           ref.values().end()))
        << "post-eviction rebuild diverged on iteration " << i;
  }
  const ServiceStats stats = svc.stats();
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_GT(stats.plans_built, 1u) << "storms must force replans";
  EXPECT_EQ(stats.requests, stats.replays + stats.plans_built);
}

TEST(ServiceChaos, AdmissionScaleSqueezeBindsTheBudget) {
  const Csr a = gen::banded(100, 8, 6, 7);
  // Control: the un-squeezed charge fits this budget comfortably.
  ServiceConfig roomy;
  roomy.memory_budget_bytes = 4 * estimate_plan_bytes(a, a);
  {
    Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
    SpeckService svc(sp, roomy);
    EXPECT_TRUE(svc.multiply(a, a).ok());
    EXPECT_EQ(svc.budget().used(), 0u);
  }
  // Squeeze: the same budget with an 8x inflated charge rejects.
  ServiceConfig squeezed = roomy;
  squeezed.faults.admission_bytes_scale = 8.0;
  {
    Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
    SpeckService svc(sp, squeezed);
    SpeckService::Response resp = svc.multiply(a, a);
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.status.code, ErrorCode::kResourceExhausted);
    EXPECT_EQ(svc.stats().rejected, 1u);
    EXPECT_EQ(svc.budget().used(), 0u) << "failed admission must not leak";
  }
}

TEST(ServiceChaos, InjectedPlanLatencyPlusDeadlineCancelsMidPipeline) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  ServiceConfig cfg;
  cfg.faults.plan_delay_ms = 60.0;  // burns the deadline inside the build
  SpeckService svc(sp, cfg);
  const Csr a = gen::banded(100, 8, 6, 7);

  SpeckService::RequestOptions opts;
  opts.deadline = Deadline::after_ms(20.0);
  SpeckService::Response resp = svc.multiply(a, a, opts);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(svc.stats().timed_out, 1u);
  EXPECT_EQ(svc.stats().plans_built, 0u);
  EXPECT_EQ(svc.budget().used(), 0u);
  // Cancellation says nothing about the input: no quarantine, and the next
  // unhurried request builds the plan normally.
  SpeckService::Response retry = svc.multiply(a, a);
  ASSERT_TRUE(retry.ok()) << retry.status.message;
  EXPECT_TRUE(retry.planned);
}

TEST(MemoryBudgetTest, TryAcquireReleaseAndOversizedSemantics) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.try_acquire(600));
  EXPECT_FALSE(budget.try_acquire(600));  // would exceed
  EXPECT_TRUE(budget.try_acquire(400));
  EXPECT_EQ(budget.used(), 1000u);
  budget.release(600);
  EXPECT_EQ(budget.used(), 400u);
  EXPECT_FALSE(budget.acquire(1001)) << "larger than the whole budget";
  budget.release(400);
  EXPECT_TRUE(budget.acquire(1000));
  budget.release(1000);
  EXPECT_EQ(budget.used(), 0u);
}

}  // namespace
}  // namespace speck
