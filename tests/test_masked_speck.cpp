// End-to-end tests of the output-masked fast path (Speck::multiply_masked):
// correctness against the masked Gustavson oracle, bit-identity across
// thread counts, partition counts and SIMD backends, masked plan replay,
// the transparent cache, empty-mask rows, forced spill and input
// validation. Every comparison uses tolerance 0.0 — the masked kernels,
// the oracle and the replay all add products into an implicit zero in the
// same (A-entry, B-entry) order, so equality is bitwise.
#include <gtest/gtest.h>

#include <memory>

#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/ops.h"
#include "ref/masked.h"
#include "speck/speck.h"

namespace speck {
namespace {

Speck make_speck(SpeckConfig config = {}) {
  return Speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
}

void expect_masked_exact(Speck& speck, const Csr& a, const Csr& b,
                         const Csr& mask, const std::string& label) {
  const SpGemmResult result = speck.multiply_masked(a, b, mask);
  ASSERT_TRUE(result.ok()) << label << ": " << result.failure_reason;
  const Csr expected = masked_spgemm(a, b, mask);
  const auto diff = compare(result.c, expected, 0.0);
  EXPECT_FALSE(diff.has_value()) << label << ": " << diff->description;
  EXPECT_TRUE(result.c.sorted_within_rows()) << label;
  EXPECT_TRUE(speck.last_diagnostics().masked) << label;
}

TEST(MaskedSpeck, MatchesOracleOnGeneratedMatrices) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(200, 200, 6, 3001);
  const Csr b = gen::banded(200, 10, 5, 3003);
  const Csr mask = gen::random_uniform(200, 200, 8, 3005);
  expect_masked_exact(speck, a, b, mask, "uniform x banded");

  const Csr p = gen::power_law(300, 300, 8, 1.8, 90, 3007);
  const Csr pm = gen::random_uniform(300, 300, 12, 3009);
  expect_masked_exact(speck, p, p, pm, "powerlaw");

  const Csr s = gen::skewed_rows(400, 400, 0.02, 200, 3, 3011);
  expect_masked_exact(speck, s, s, s, "skewed self-mask");
}

TEST(MaskedSpeck, TriangleMaskSelfProduct) {
  // C<A> = A*A over an adjacency pattern: the triangle-counting kernel.
  Coo coo(8, 8);
  for (index_t base : {0, 4}) {
    for (index_t i = 0; i < 4; ++i) {
      for (index_t j = 0; j < 4; ++j) {
        if (i != j) coo.add(base + i, base + j, 1.0);
      }
    }
  }
  const Csr k4s = coo.to_csr();
  Speck speck = make_speck();
  expect_masked_exact(speck, k4s, k4s, k4s, "two K4s");
  const SpGemmResult result = speck.multiply_masked(k4s, k4s, k4s);
  ASSERT_TRUE(result.ok());
  value_t sum = 0.0;
  for (const value_t v : result.c.values()) sum += v;
  EXPECT_NEAR(sum / 6.0, 8.0, 1e-12) << "two K4s hold 8 triangles";
}

/// Bit-identity grid: threads {1, 8} x partitions {1, 4} x every available
/// SIMD backend. Each cell must equal the serial oracle bitwise, which
/// makes all cells bitwise-identical to each other.
class MaskedSpeckGrid
    : public ::testing::TestWithParam<std::tuple<int, int, SimdBackend>> {};

TEST_P(MaskedSpeckGrid, BitIdenticalToOracle) {
  const auto [threads, partitions, backend] = GetParam();
  if (!simd::backend_available(backend)) {
    GTEST_SKIP() << "backend not available on this CPU";
  }
  SpeckConfig cfg;
  cfg.host_threads = threads;
  cfg.partitions = partitions;
  cfg.simd_backend = backend;
  Speck speck = make_speck(cfg);
  const Csr a = gen::power_law(500, 500, 7, 1.9, 150, 3013);
  const Csr mask = gen::random_uniform(500, 500, 10, 3015);
  expect_masked_exact(speck, a, a, mask, "grid");
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsPartitionsSimd, MaskedSpeckGrid,
    ::testing::Combine(::testing::Values(1, 8), ::testing::Values(1, 4),
                       ::testing::Values(SimdBackend::kScalar,
                                         SimdBackend::kSse,
                                         SimdBackend::kAvx2,
                                         SimdBackend::kNeon)));

TEST(MaskedSpeck, EmptyMaskRowsAndEmptyMask) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(100, 100, 5, 3017);

  // Mask with entries only in even rows: odd C rows must come back empty.
  Coo coo(100, 100);
  for (index_t r = 0; r < 100; r += 2) {
    for (index_t c = 0; c < 100; c += 7) coo.add(r, c, 1.0);
  }
  const Csr even_mask = coo.to_csr();
  expect_masked_exact(speck, a, a, even_mask, "even-row mask");
  const SpGemmResult result = speck.multiply_masked(a, a, even_mask);
  ASSERT_TRUE(result.ok());
  for (index_t r = 1; r < 100; r += 2) {
    EXPECT_EQ(result.c.row_cols(r).size(), 0u) << "row " << r;
  }

  // Fully empty mask: an empty C.
  const SpGemmResult empty = speck.multiply_masked(a, a, Csr::zeros(100, 100));
  ASSERT_TRUE(empty.ok()) << empty.failure_reason;
  EXPECT_EQ(empty.c.nnz(), 0);
}

TEST(MaskedSpeck, ForcedSpillStaysExact) {
  SpeckConfig cfg;
  cfg.faults.hash_overflow_after = 4;  // every accumulator spills early
  Speck speck = make_speck(cfg);
  const Csr a = gen::power_law(300, 300, 8, 1.8, 100, 3019);
  const Csr mask = gen::random_uniform(300, 300, 15, 3021);
  expect_masked_exact(speck, a, a, mask, "forced spill");
  EXPECT_GT(speck.last_diagnostics().numeric.global_hash_blocks, 0)
      << "the fault must actually force spills";
}

TEST(MaskedSpeck, PlanReplayBitIdentical) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(250, 250, 6, 3023);
  const Csr mask = gen::random_uniform(250, 250, 9, 3025);
  const SpeckPlan plan = speck.plan_masked(a, a, mask);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;
  EXPECT_TRUE(plan.fingerprint.masked);
  EXPECT_NE(plan.fingerprint.mask_pattern_hash, 0u);

  // Replays need the mask configured (it joins the fingerprint check).
  speck.config().mask = std::make_shared<const Csr>(mask);
  const SpGemmResult replay = speck.multiply_with_plan(plan, a, a);
  ASSERT_TRUE(replay.ok()) << replay.failure_reason;
  EXPECT_TRUE(speck.last_diagnostics().plan_used);
  EXPECT_FALSE(speck.last_diagnostics().plan_fallback);
  const auto diff = compare(replay.c, masked_spgemm(a, a, mask), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;

  // Values-only replay into a caller-owned buffer is allocation-free.
  std::vector<value_t> out(static_cast<std::size_t>(plan.c_nnz()));
  SpeckDiagnostics diag;
  const SpGemmResult values = speck.replay_values_into(plan, a, a, out, &diag);
  ASSERT_TRUE(values.ok()) << values.failure_reason;
  EXPECT_EQ(diag.numeric.hot_path_allocs, 0u)
      << "the masked values-only replay must not allocate";
  const std::span<const value_t> expected = replay.c.values();
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], expected[i]) << "value slot " << i;
  }
}

TEST(MaskedSpeck, PlanRejectedWithoutConfiguredMask) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(100, 100, 5, 3027);
  const Csr mask = gen::random_uniform(100, 100, 6, 3029);
  const SpeckPlan plan = speck.plan_masked(a, a, mask);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;
  // No config mask: the masked plan must not silently replay; the legacy
  // entry falls back to the (unmasked) full pipeline and says why.
  const SpGemmResult result = speck.multiply_with_plan(plan, a, a);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(speck.last_diagnostics().plan_fallback);
  EXPECT_FALSE(speck.last_diagnostics().plan_fallback_reason.empty());
}

TEST(MaskedSpeck, TransparentCacheHitsOnRepeat) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(200, 200, 6, 3031);
  const Csr mask = gen::random_uniform(200, 200, 8, 3033);
  const Csr expected = masked_spgemm(a, a, mask);
  // 1st sight: full run. 2nd: full run + plan build. 3rd: cache hit.
  for (int i = 0; i < 3; ++i) {
    const SpGemmResult result = speck.multiply_masked(a, a, mask);
    ASSERT_TRUE(result.ok()) << result.failure_reason;
    const auto diff = compare(result.c, expected, 0.0);
    EXPECT_FALSE(diff.has_value()) << "call " << i << ": " << diff->description;
  }
  EXPECT_TRUE(speck.last_diagnostics().plan_cache_hit)
      << "the third identical masked multiply must replay from the cache";
  EXPECT_GE(speck.plan_cache().stats().hits, 1u);
}

TEST(MaskedSpeck, MaskedAndUnmaskedPlansNeverCollide) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(150, 150, 6, 3035);
  const Csr mask = gen::random_uniform(150, 150, 4, 3037);
  // Warm the cache with the unmasked structure, then run masked: the
  // masked multiply must not replay the unmasked plan (or vice versa).
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(speck.multiply(a, a).ok());
  EXPECT_TRUE(speck.last_diagnostics().plan_cache_hit);
  const SpGemmResult masked = speck.multiply_masked(a, a, mask);
  ASSERT_TRUE(masked.ok());
  EXPECT_FALSE(speck.last_diagnostics().plan_cache_hit);
  const auto diff = compare(masked.c, masked_spgemm(a, a, mask), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(MaskedSpeck, ConfigMaskRoutesMultiply) {
  const Csr a = gen::random_uniform(120, 120, 5, 3039);
  const Csr mask = gen::random_uniform(120, 120, 7, 3041);
  SpeckConfig cfg;
  cfg.mask = std::make_shared<const Csr>(mask);
  Speck speck = make_speck(cfg);
  const SpGemmResult result = speck.multiply(a, a);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_TRUE(speck.last_diagnostics().masked);
  const auto diff = compare(result.c, masked_spgemm(a, a, mask), 0.0);
  EXPECT_FALSE(diff.has_value()) << diff->description;
}

TEST(MaskedSpeck, RejectsWrongMaskShape) {
  Speck speck = make_speck();
  const Csr a = gen::random_uniform(50, 50, 4, 3043);
  // Dimension mismatches are caught unconditionally (validate_inputs off).
  speck.config().validate_inputs = false;
  EXPECT_THROW(speck.multiply_masked(a, a, Csr::zeros(50, 49)), BadInput);
  EXPECT_THROW(speck.multiply_masked(a, a, Csr::zeros(49, 50)), BadInput);
}

TEST(MaskedSpeck, RejectsUnsortedMaskUnderValidation) {
  SpeckConfig cfg;
  cfg.validate_inputs = true;
  Speck speck = make_speck(cfg);
  const Csr a = gen::random_uniform(40, 40, 4, 3045);
  Csr mask = gen::random_uniform(40, 40, 6, 3047);
  // Swap two columns in the first row with >= 2 entries.
  for (index_t r = 0; r < mask.rows(); ++r) {
    const offset_t begin = mask.row_offsets()[r];
    const offset_t end = mask.row_offsets()[r + 1];
    if (end - begin >= 2) {
      std::swap(mask.col_indices_mutable()[static_cast<std::size_t>(begin)],
                mask.col_indices_mutable()[static_cast<std::size_t>(begin) + 1]);
      break;
    }
  }
  ASSERT_FALSE(mask.sorted_within_rows());
  EXPECT_THROW(speck.multiply_masked(a, a, mask), BadInput);
}

TEST(MaskedSpeck, EstimatedPlanningModeStaysExact) {
  // The masked pipeline ignores the planning mode (its demand bound is
  // exact by construction), but entering through a kEstimated config must
  // still produce the oracle result bitwise.
  SpeckConfig cfg;
  cfg.planning = PlanningMode::kEstimated;
  Speck speck = make_speck(cfg);
  const Csr a = gen::power_law(250, 250, 7, 1.8, 80, 3049);
  const Csr mask = gen::random_uniform(250, 250, 9, 3051);
  expect_masked_exact(speck, a, a, mask, "estimated config");
}

}  // namespace
}  // namespace speck
