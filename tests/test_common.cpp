// Unit tests for src/common: prng, bit utilities, prefix sums, sorting,
// statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/bit_utils.h"
#include "common/prefix_sum.h"
#include "common/prng.h"
#include "common/sorting.h"
#include "common/stats.h"

namespace speck {
namespace {

TEST(BitUtils, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div<std::int64_t>(1'000'000'007, 3), 333'333'336);
}

TEST(BitUtils, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(BitUtils, PrevPow2) {
  EXPECT_EQ(prev_pow2(0), 1u);
  EXPECT_EQ(prev_pow2(1), 1u);
  EXPECT_EQ(prev_pow2(3), 2u);
  EXPECT_EQ(prev_pow2(1024), 1024u);
  EXPECT_EQ(prev_pow2(1500), 1024u);
}

TEST(BitUtils, RoundPow2PicksClosest) {
  EXPECT_EQ(round_pow2(1), 1u);
  EXPECT_EQ(round_pow2(2), 2u);
  EXPECT_EQ(round_pow2(3), 4u);  // tie rounds up
  EXPECT_EQ(round_pow2(5), 4u);
  EXPECT_EQ(round_pow2(6), 8u);  // tie rounds up
  EXPECT_EQ(round_pow2(7), 8u);
  EXPECT_EQ(round_pow2(24), 32u);
  EXPECT_EQ(round_pow2(23), 16u);
}

TEST(BitUtils, Log2AndIsPow2) {
  EXPECT_EQ(log2_pow2(1), 0);
  EXPECT_EQ(log2_pow2(1024), 10);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
}

TEST(Prng, Deterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Prng, NextBelowInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Prng, NextIntInclusiveBounds) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, NormalMoments) {
  Xoshiro256 rng(11);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.1);
}

TEST(Prng, PowerLawBoundsAndSkew) {
  Xoshiro256 rng(13);
  std::int64_t max_seen = 0;
  int ones = 0;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    const auto v = rng.next_power_law(1000, 2.0);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000);
    max_seen = std::max(max_seen, v);
    ones += v == 1 ? 1 : 0;
  }
  EXPECT_GT(max_seen, 50);          // heavy tail reaches far
  EXPECT_GT(ones, kSamples / 4);    // but most mass sits at the bottom
}

TEST(Prng, SampleDistinctSortedProperties) {
  Xoshiro256 rng(17);
  for (const std::int64_t universe : {10, 100, 1000}) {
    for (const std::int64_t count : {0L, 1L, universe / 2, universe}) {
      const auto sample = sample_distinct_sorted(rng, universe, count);
      ASSERT_EQ(static_cast<std::int64_t>(sample.size()), count);
      EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
      EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) == sample.end());
      for (const auto v : sample) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, universe);
      }
    }
  }
}

TEST(PrefixSum, ExclusiveInPlace) {
  std::vector<int> v{3, 1, 4, 1, 5};
  const int total = exclusive_prefix_sum(std::span<int>(v));
  EXPECT_EQ(total, 14);
  EXPECT_EQ(v, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, InclusiveInPlace) {
  std::vector<int> v{3, 1, 4};
  const int total = inclusive_prefix_sum(std::span<int>(v));
  EXPECT_EQ(total, 8);
  EXPECT_EQ(v, (std::vector<int>{3, 4, 8}));
}

TEST(PrefixSum, EmptyInput) {
  std::vector<int> v;
  EXPECT_EQ(exclusive_prefix_sum(std::span<int>(v)), 0);
}

TEST(PrefixSum, OffsetsFromCounts) {
  const std::vector<std::int64_t> counts{2, 0, 3};
  const auto offsets = offsets_from_counts(std::span<const std::int64_t>(counts));
  EXPECT_EQ(offsets, (std::vector<std::int64_t>{0, 2, 2, 5}));
}

TEST(Sorting, RankSortPairs) {
  std::vector<std::uint32_t> keys{5, 1, 4, 1, 3};
  std::vector<double> vals{50, 10, 40, 11, 30};
  rank_sort_pairs(std::span<std::uint32_t>(keys), std::span<double>(vals));
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{1, 1, 3, 4, 5}));
  EXPECT_EQ(vals, (std::vector<double>{10, 11, 30, 40, 50}));  // stable
}

TEST(Sorting, RadixSortMatchesStdSort) {
  Xoshiro256 rng(23);
  std::vector<std::uint64_t> keys(5000);
  std::vector<int> vals(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.next_u64() >> (i % 3 == 0 ? 0 : 40);
    vals[i] = static_cast<int>(i);
  }
  auto expected_keys = keys;
  radix_sort_pairs(keys, vals);
  std::sort(expected_keys.begin(), expected_keys.end());
  EXPECT_EQ(keys, expected_keys);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] == keys[i - 1]) EXPECT_LT(vals[i - 1], vals[i]);  // stability
  }
}

TEST(Sorting, RadixSortTiny) {
  std::vector<std::uint32_t> keys{2};
  std::vector<int> vals{1};
  radix_sort_pairs(keys, vals);
  EXPECT_EQ(keys[0], 2u);
  keys.clear();
  vals.clear();
  radix_sort_pairs(keys, vals);  // empty input is a no-op
}

TEST(Sorting, RadixPassCount) {
  EXPECT_EQ(radix_pass_count<std::uint32_t>(0), 1);
  EXPECT_EQ(radix_pass_count<std::uint32_t>(255), 1);
  EXPECT_EQ(radix_pass_count<std::uint32_t>(256), 2);
  EXPECT_EQ(radix_pass_count<std::uint32_t>(1u << 27), 4);
}

TEST(Stats, Summarize) {
  const std::vector<std::int64_t> v{1, 2, 3, 4, 10};
  const SampleSummary s = summarize(std::span<const std::int64_t>(v));
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 10);
  EXPECT_EQ(s.total, 20);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_GT(s.stddev, 3.0);
}

TEST(Stats, SummarizeEmpty) {
  const std::vector<std::int64_t> v;
  const SampleSummary s = summarize(std::span<const std::int64_t>(v));
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.total, 0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v{1.0, 4.0};
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
  EXPECT_EQ(geometric_mean(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace speck

namespace speck {
namespace {

TEST(Bitonic, MatchesStdSort) {
  Xoshiro256 rng(2301);
  for (const std::size_t n : {0u, 1u, 2u, 5u, 64u, 100u, 1000u}) {
    std::vector<std::uint32_t> keys(n);
    std::vector<int> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<std::uint32_t>(rng.next_below(1000));
      vals[i] = static_cast<int>(i);
    }
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    bitonic_sort_pairs(keys, vals);
    ASSERT_EQ(keys.size(), n);
    EXPECT_EQ(keys, expected) << "n=" << n;
  }
}

TEST(Bitonic, PayloadFollowsKeys) {
  std::vector<std::uint32_t> keys{4, 1, 3, 2};
  std::vector<int> vals{40, 10, 30, 20};
  bitonic_sort_pairs(keys, vals);
  EXPECT_EQ(vals, (std::vector<int>{10, 20, 30, 40}));
}

TEST(Bitonic, CompareCount) {
  // n=8 -> 3 stages -> 8/2 * 6 = 24 compares.
  EXPECT_EQ(bitonic_compare_count(8), 24u);
  EXPECT_EQ(bitonic_compare_count(5), 24u);  // padded to 8
  EXPECT_EQ(bitonic_compare_count(2), 1u);
}

}  // namespace
}  // namespace speck
