// Byte-accounting test for cached plans: SpeckPlan::byte_size() — the
// quantity the plan-cache budget charges — must match the real heap
// footprint of the plan, measured by a size-tracking global allocator.
// Guards against the undercount class of bug where the budget admits more
// plans than the configured bytes (the pre-sharding accounting missed the
// replay program, heap slack and every string).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "gen/generators.h"
#include "speck/plan.h"
#include "speck/speck.h"

namespace {

// Live heap bytes allocated through global new, tracked with a size header
// in front of each block so delete knows what it frees.
std::atomic<std::size_t> g_live_bytes{0};
constexpr std::size_t kHeader = alignof(std::max_align_t);

std::size_t live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  void* raw = std::malloc(size + kHeader);
  if (raw == nullptr) throw std::bad_alloc();
  *static_cast<std::size_t*>(raw) = size;
  g_live_bytes.fetch_add(size, std::memory_order_relaxed);
  return static_cast<char*>(raw) + kHeader;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  void* raw = static_cast<char*>(p) - kHeader;
  g_live_bytes.fetch_sub(*static_cast<std::size_t*>(raw),
                         std::memory_order_relaxed);
  std::free(raw);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace speck {
namespace {

/// Heap bytes released when a freshly built plan is destroyed — exactly the
/// bytes the plan pinned, independent of anything the pipeline retains.
std::size_t measured_plan_heap(Speck& sp, const Csr& a, const Csr& b,
                               std::size_t* reported) {
  auto plan = std::make_unique<SpeckPlan>(sp.plan(a, b));
  EXPECT_TRUE(plan->complete) << plan->incomplete_reason;
  *reported = plan->byte_size();
  const std::size_t before = live_bytes();
  plan.reset();
  return before - live_bytes();
}

TEST(PlanBytes, ByteSizeMatchesMeasuredHeapFootprint) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr banded = gen::banded(256, 12, 9, 5);
  const Csr scale_free = gen::power_law(200, 200, 7, 2.1, 50, 9);
  (void)sp.plan(banded, banded);  // warm pools outside the measured window

  for (const Csr* m : {&banded, &scale_free}) {
    std::size_t reported = 0;
    // measured counts the heap blocks only; byte_size additionally counts
    // the SpeckPlan object itself (here on the heap via unique_ptr, so the
    // header block shows up in measured too — both sides include it).
    const std::size_t measured = measured_plan_heap(sp, *m, *m, &reported);
    ASSERT_GT(measured, 10u * 1024u) << "plan suspiciously small";
    // Capacity-based accounting: every vector charges capacity * element
    // size and every spilled string capacity + 1, which is exactly what the
    // tracking allocator saw. Allow 5% + a constant for allocator-internal
    // noise (node containers, unmeasured sub-objects).
    const std::size_t slack = measured / 20 + 512;
    EXPECT_LE(reported, measured + slack)
        << "byte_size overcounts: reported " << reported << " vs measured "
        << measured;
    EXPECT_GE(reported + slack, measured)
        << "byte_size undercounts (cache budget would over-admit): reported "
        << reported << " vs measured " << measured;
  }
}

TEST(PlanBytes, EstimateIsAnAdmissionSafeUpperBoundOnTheProgram) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const Csr a = gen::banded(192, 10, 8, 21);
  SpeckPlan plan = sp.plan(a, a);
  ASSERT_TRUE(plan.complete) << plan.incomplete_reason;

  const std::size_t estimate = estimate_plan_bytes(a, a);
  // The estimate is what admission control charges before planning; it must
  // dominate the replay program + C pattern it predicts.
  const std::size_t pattern_bytes =
      plan.c_row_offsets.capacity() * sizeof(offset_t) +
      plan.c_col_indices.capacity() * sizeof(index_t);
  EXPECT_GE(estimate, plan.program.byte_size() + pattern_bytes);
  // ...and stay within an order of magnitude of the true footprint so the
  // budget is useful, not just safe.
  EXPECT_LT(estimate, 10u * plan.byte_size());
}

}  // namespace
}  // namespace speck
