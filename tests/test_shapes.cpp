// Shape-regression tests: the paper's qualitative evaluation claims, encoded
// as assertions on a small workload subset. These guard the cost model —
// if a refactor flips who wins where, these fail before the benchmark
// binaries ever run. (EXPERIMENTS.md documents the full-corpus versions.)
#include <gtest/gtest.h>

#include <map>

#include "baselines/suite.h"
#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "speck/speck.h"

namespace speck {
namespace {

const sim::DeviceSpec kDevice = sim::DeviceSpec::titan_v();
const sim::CostModel kModel;

std::map<std::string, SpGemmResult> run_all(const Csr& a) {
  std::map<std::string, SpGemmResult> results;
  for (const auto& algorithm : baselines::make_all_algorithms(kDevice, kModel)) {
    results[algorithm->name()] = algorithm->multiply(a, a);
  }
  return results;
}

TEST(Shapes, SpeckNeverFarFromBest) {
  // Paper Fig. 7: spECK is "always close to the best performing method".
  const std::vector<Csr> workloads = {
      gen::random_uniform(5000, 5000, 8, 2001),
      gen::banded(8000, 80, 10, 2003),
      gen::stencil_2d(80, 80),
      gen::block_diagonal(6, 80, 0.8, 2005),
      gen::skewed_rows(6000, 6000, 0.01, 1024, 3, 2007),
  };
  for (const Csr& a : workloads) {
    const auto results = run_all(a);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [name, result] : results) {
      if (result.ok()) best = std::min(best, result.seconds);
    }
    ASSERT_TRUE(results.at("speck").ok());
    EXPECT_LT(results.at("speck").seconds, 5.0 * best)
        << "speck must never be >5x from the best (paper: 0.1% of matrices)";
  }
}

TEST(Shapes, SpeckBeatsEscOnHighCompaction) {
  // Paper §2: ESC sorts every intermediate product, so high-compaction
  // matrices favour hashing.
  const Csr dense_blocks = gen::block_diagonal(6, 100, 0.9, 2011);
  const auto results = run_all(dense_blocks);
  EXPECT_LT(results.at("speck").seconds * 2.0, results.at("cusp").seconds);
  EXPECT_LT(results.at("speck").seconds * 1.5, results.at("ac").seconds);
}

TEST(Shapes, SpeckHasLowestMemoryOnCommonWorkload) {
  // Paper Table 3: spECK's peak memory is the baseline every method is
  // measured against (m/m_b >= 1 for all).
  const Csr a = gen::random_uniform(4000, 4000, 12, 2013);
  const auto results = run_all(a);
  const auto speck_memory = results.at("speck").peak_memory_bytes;
  for (const char* name : {"ac", "cusp", "rmerge", "bhsparse"}) {
    ASSERT_TRUE(results.at(name).ok()) << name;
    EXPECT_GT(results.at(name).peak_memory_bytes, speck_memory) << name;
  }
}

TEST(Shapes, MklCrossoverExists) {
  // Paper Fig. 6: MKL wins tiny multiplications, GPU methods win large ones.
  const Csr tiny = gen::random_uniform(80, 80, 3, 2017);
  ASSERT_LT(count_products(tiny, tiny), 15000);
  const auto tiny_results = run_all(tiny);
  EXPECT_LT(tiny_results.at("mkl").seconds, tiny_results.at("speck").seconds);

  const Csr large = gen::random_uniform(10000, 10000, 16, 2019);
  ASSERT_GT(count_products(large, large), 1000000);
  const auto large_results = run_all(large);
  EXPECT_GT(large_results.at("mkl").seconds,
            5.0 * large_results.at("speck").seconds);
}

TEST(Shapes, NsparseSuffersOnShortBRows) {
  // Paper §6.2 (stat96v2): fixed g=32 on B rows shorter than 8 wastes
  // three quarters of nsparse's lanes; spECK adapts.
  const Csr a = gen::random_uniform(8000, 8000, 3, 2023);  // B rows of 3
  const auto results = run_all(a);
  EXPECT_LT(results.at("speck").seconds * 1.5, results.at("nsparse").seconds);
}

TEST(Shapes, GlobalHashAvoidanceViaDense) {
  // Paper Fig. 12: rows beyond the largest scratchpad map collapse the
  // hash-only variant; dense accumulation avoids the global map.
  const Csr a = gen::skewed_rows(30000, 30000, 0.0005, 12000, 3, 2029);
  SpeckConfig with_dense;
  // The modeled-time contrast below is an exact-pipeline property (the
  // estimated pipeline skips the symbolic pass whose global map collapses).
  with_dense.planning = PlanningMode::kExact;
  with_dense.thresholds = reduced_scale_thresholds();
  SpeckConfig hash_only = with_dense;
  hash_only.features.dense_accumulation = false;
  Speck dense_speck(kDevice, kModel, with_dense);
  Speck hash_speck(kDevice, kModel, hash_only);
  const double dense_seconds = dense_speck.multiply(a, a).seconds;
  const double hash_seconds = hash_speck.multiply(a, a).seconds;
  EXPECT_GT(hash_seconds, 1.5 * dense_seconds);
}

TEST(Shapes, AutoLbDecisionNearBest) {
  // Paper Fig. 14 / §6.3: the automatic decision stays within a few percent
  // of the better of always-on/always-off.
  const std::vector<Csr> workloads = {
      gen::random_uniform(1000, 1000, 4, 2031),            // small: off wins
      gen::skewed_rows(20000, 20000, 0.01, 2048, 3, 2033),  // skewed: on wins
  };
  for (const Csr& a : workloads) {
    double seconds[3];
    const GlobalLbMode modes[3] = {GlobalLbMode::kAlwaysOff,
                                   GlobalLbMode::kAlwaysOn, GlobalLbMode::kAuto};
    for (int v = 0; v < 3; ++v) {
      SpeckConfig config;
      config.thresholds = reduced_scale_thresholds();
      config.features.set_global_lb(modes[v]);
      Speck speck(kDevice, kModel, config);
      seconds[v] = speck.multiply(a, a).seconds;
    }
    EXPECT_LT(seconds[2], 1.15 * std::min(seconds[0], seconds[1]));
  }
}

TEST(Shapes, CuSparseSlowAcrossTheBoard) {
  // Paper Table 3: the generic global-hash approach trails by ~an order of
  // magnitude on medium matrices.
  const Csr a = gen::banded(10000, 100, 12, 2037);
  const auto results = run_all(a);
  EXPECT_GT(results.at("cusparse").seconds, 4.0 * results.at("speck").seconds);
}

}  // namespace
}  // namespace speck
