// Out-of-core style multiplication with bounded device memory — the paper's
// §7 future-work feature ("partial multiplications of large matrices on
// single GPUs"), demonstrated on a matrix whose full working set would
// dominate a small device.
#include <cstdio>

#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "speck/partial.h"

int main() {
  using namespace speck;
  const Csr a = gen::banded(60000, 300, 16, 5);
  const offset_t products = count_products(a, a);
  std::printf("A: %s, %lld products\n\n", a.shape_string().c_str(),
              static_cast<long long>(products));

  // Reference: the whole multiplication at once.
  Speck full(sim::DeviceSpec::titan_v(), sim::CostModel{});
  const SpGemmResult full_result = full.multiply(a, a);
  if (!full_result.ok()) {
    std::printf("full multiply failed: %s\n", full_result.failure_reason.c_str());
    return 1;
  }
  std::printf("%-28s time %8.3f ms   device peak %7.1f MB\n", "single pass:",
              full_result.seconds * 1e3,
              static_cast<double>(full_result.peak_memory_bytes) / (1024.0 * 1024.0));

  // Panelled runs with shrinking product budgets: memory drops, time grows
  // slowly (per-panel launch overhead + PCIe evacuation of finished rows).
  for (const offset_t budget : {offset_t{4} << 20, offset_t{1} << 20, offset_t{1} << 18}) {
    PartialConfig config;
    config.max_products_per_panel = budget;
    PartialSpeck partial(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
    const SpGemmResult result = partial.multiply(a, a);
    if (!result.ok()) {
      std::printf("partial multiply failed: %s\n", result.failure_reason.c_str());
      return 1;
    }
    std::printf("%3d panels (<=%8lld prod): time %8.3f ms   device peak %7.1f MB\n",
                partial.last_diagnostics().panels, static_cast<long long>(budget),
                result.seconds * 1e3,
                static_cast<double>(result.peak_memory_bytes) / (1024.0 * 1024.0));
  }
  return 0;
}
