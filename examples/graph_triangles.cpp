// Graph analytics: triangle counting via SpGEMM (the paper's second
// motivating domain). triangles(G) = sum(A .* A^2) / 6 for an undirected
// adjacency matrix A. Compares spECK against the other GPU algorithms on a
// scale-free R-MAT graph, where the skewed degree distribution stresses
// load balancing.
#include <cstdio>

#include "baselines/suite.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"

namespace {

/// Symmetrizes a directed graph and drops self-loops / weights.
speck::Csr undirected_pattern(const speck::Csr& directed) {
  speck::Coo sym(directed.rows(), directed.cols());
  for (speck::index_t r = 0; r < directed.rows(); ++r) {
    for (const speck::index_t c : directed.row_cols(r)) {
      if (c == r) continue;
      sym.add(r, c, 1.0);
      sym.add(c, r, 1.0);
    }
  }
  speck::Csr result = sym.to_csr();
  // Clamp duplicate-merged values back to 1 (pattern matrix).
  for (auto& v : result.values_mutable()) v = 1.0;
  return result;
}

double count_triangles(const speck::Csr& a, const speck::Csr& a_squared) {
  double paths = 0.0;
  for (speck::index_t r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto sq_cols = a_squared.row_cols(r);
    const auto sq_vals = a_squared.row_vals(r);
    std::size_t j = 0;
    for (const speck::index_t c : cols) {
      while (j < sq_cols.size() && sq_cols[j] < c) ++j;
      if (j < sq_cols.size() && sq_cols[j] == c) paths += sq_vals[j];
    }
  }
  return paths / 6.0;
}

}  // namespace

int main() {
  using namespace speck;
  const Csr graph = undirected_pattern(gen::rmat(14, 8, 0.45, 0.22, 0.22, 7));
  const offset_t products = count_products(graph, graph);
  std::printf("R-MAT graph: %d vertices, %lld edges, %lld products\n\n",
              graph.rows(), static_cast<long long>(graph.nnz() / 2),
              static_cast<long long>(products));
  std::printf(" %-10s %10s %10s %12s\n", "method", "time(ms)", "GFLOPS",
              "triangles");

  const auto algorithms = baselines::make_gpu_algorithms(
      sim::DeviceSpec::titan_v(), sim::CostModel{});
  for (const auto& algorithm : algorithms) {
    const SpGemmResult result = algorithm->multiply(graph, graph);
    if (!result.ok()) {
      std::printf(" %-10s %10s %10s %12s  (%s)\n", algorithm->name().c_str(), "-",
                  "-", "-", result.failure_reason.c_str());
      continue;
    }
    const double triangles = count_triangles(graph, result.c);
    std::printf(" %-10s %10.3f %10.2f %12.0f\n", algorithm->name().c_str(),
                result.seconds * 1e3, result.gflops(products), triangles);
  }
  return 0;
}
