// Markov Clustering (MCL): graph clustering driven almost entirely by
// SpGEMM. Each iteration expands the random-walk matrix (M <- M*M, the
// SpGEMM), then inflates it (element-wise power + column normalization) and
// prunes small entries. Clusters emerge as the attractor structure.
//
// MCL is one of the classic SpGEMM-bound applications (protein-family
// clustering); here it recovers planted communities in a synthetic graph.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"
#include "speck/speck.h"

namespace {

using namespace speck;

/// Planted-partition graph: dense communities, sparse inter-community edges.
Csr planted_communities(index_t communities, index_t size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const index_t n = communities * size;
  Coo coo(n, n);
  auto add_edge = [&](index_t u, index_t v) {
    coo.add(u, v, 1.0);
    coo.add(v, u, 1.0);
  };
  for (index_t c = 0; c < communities; ++c) {
    const index_t base = c * size;
    for (index_t i = 0; i < size; ++i) {
      coo.add(base + i, base + i, 1.0);  // self loop (MCL requirement)
      for (int e = 0; e < 12; ++e) {     // dense inside
        add_edge(base + i,
                 base + static_cast<index_t>(rng.next_below(
                            static_cast<std::uint64_t>(size))));
      }
    }
  }
  for (index_t e = 0; e < n / 10; ++e) {  // sparse between
    add_edge(static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n))),
             static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  return coo.to_csr();
}

/// Column-stochastic normalization.
Csr normalize_columns(const Csr& m) {
  std::vector<value_t> column_sums(static_cast<std::size_t>(m.cols()), 0.0);
  for (index_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    const auto vals = m.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      column_sums[static_cast<std::size_t>(cols[i])] += vals[i];
    }
  }
  std::vector<offset_t> offsets(m.row_offsets().begin(), m.row_offsets().end());
  std::vector<index_t> cols(m.col_indices().begin(), m.col_indices().end());
  std::vector<value_t> vals(m.values().begin(), m.values().end());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    const value_t sum = column_sums[static_cast<std::size_t>(cols[i])];
    if (sum > 0.0) vals[i] /= sum;
  }
  return Csr(m.rows(), m.cols(), std::move(offsets), std::move(cols), std::move(vals));
}

/// Inflation: element-wise power r, then renormalize and prune.
Csr inflate(const Csr& m, double r, value_t prune_threshold) {
  Coo pruned(m.rows(), m.cols());
  for (index_t row = 0; row < m.rows(); ++row) {
    const auto cols = m.row_cols(row);
    const auto vals = m.row_vals(row);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const value_t powered = std::pow(vals[i], r);
      if (powered > prune_threshold) pruned.add(row, cols[i], powered);
    }
  }
  return normalize_columns(pruned.to_csr());
}

/// Each column's attractor = its largest entry's row; count distinct ones.
std::map<index_t, int> cluster_sizes(const Csr& m) {
  std::vector<index_t> attractor(static_cast<std::size_t>(m.cols()), -1);
  std::vector<value_t> best(static_cast<std::size_t>(m.cols()), 0.0);
  for (index_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    const auto vals = m.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (vals[i] > best[static_cast<std::size_t>(cols[i])]) {
        best[static_cast<std::size_t>(cols[i])] = vals[i];
        attractor[static_cast<std::size_t>(cols[i])] = r;
      }
    }
  }
  std::map<index_t, int> sizes;
  for (const index_t a : attractor) {
    if (a >= 0) ++sizes[a];
  }
  return sizes;
}

}  // namespace

int main() {
  const index_t communities = 8, size = 80;
  Csr m = normalize_columns(planted_communities(communities, size, 33));
  std::printf("planted-partition graph: %d communities of %d, %s\n\n", communities,
              size, m.shape_string().c_str());

  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  std::printf(" iter    nnz(M)   products   SpGEMM(ms)   clusters\n");
  for (int iteration = 1; iteration <= 20; ++iteration) {
    const offset_t products = count_products(m, m);
    const SpGemmResult expanded = speck.multiply(m, m);  // expansion
    if (!expanded.ok()) {
      std::printf("expansion failed: %s\n", expanded.failure_reason.c_str());
      return 1;
    }
    m = inflate(expanded.c, 1.5, 1e-5);  // inflation + prune
    const auto sizes = cluster_sizes(m);
    std::printf("  %2d   %8lld  %9lld     %7.3f   %8zu\n", iteration,
                static_cast<long long>(m.nnz()), static_cast<long long>(products),
                expanded.seconds * 1e3, sizes.size());
    if (sizes.size() <= static_cast<std::size_t>(communities)) break;
  }

  const auto sizes = cluster_sizes(m);
  std::printf("\nrecovered %zu clusters (expected %d); sizes:", sizes.size(),
              communities);
  for (const auto& [attractor, count] : sizes) std::printf(" %d", count);
  std::printf("\n");
  return 0;
}
