// Algebraic-multigrid setup: build a hierarchy of coarse operators with the
// Galerkin triple product A_{l+1} = R_l * A_l * P_l.
//
// SpGEMM dominates AMG setup time (the paper's first motivating application,
// citing Bell et al.). This example coarsens a 2D Poisson operator through
// several levels and reports per-level SpGEMM cost.
#include <cstdio>
#include <vector>

#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "speck/speck.h"

namespace {

/// Piecewise-constant aggregation: groups of four consecutive unknowns.
speck::Csr aggregation_prolongator(speck::index_t fine_size) {
  const speck::index_t coarse = std::max<speck::index_t>(1, fine_size / 4);
  speck::Coo p(fine_size, coarse);
  for (speck::index_t i = 0; i < fine_size; ++i) {
    p.add(i, std::min<speck::index_t>(i / 4, coarse - 1), 1.0);
  }
  return p.to_csr();
}

}  // namespace

int main() {
  using namespace speck;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});

  Csr level_matrix = gen::stencil_2d(256, 256);  // 65k unknowns
  std::printf("AMG setup via Galerkin products (C = R*A*P per level)\n\n");
  std::printf(" level  unknowns     nnz      products   time(ms)  GFLOPS\n");

  int level = 0;
  double total_seconds = 0.0;
  while (level_matrix.rows() > 256) {
    const Csr p = aggregation_prolongator(level_matrix.rows());
    const Csr r = transpose(p);

    const SpGemmResult ap = speck.multiply(level_matrix, p);
    if (!ap.ok()) break;
    const SpGemmResult rap = speck.multiply(r, ap.c);
    if (!rap.ok()) break;

    const offset_t products =
        count_products(level_matrix, p) + count_products(r, ap.c);
    const double seconds = ap.seconds + rap.seconds;
    total_seconds += seconds;
    std::printf("  %2d    %8d  %8lld  %10lld   %7.3f  %6.2f\n", level,
                level_matrix.rows(), static_cast<long long>(level_matrix.nnz()),
                static_cast<long long>(products), seconds * 1e3,
                2.0 * static_cast<double>(products) / seconds * 1e-9);

    level_matrix = rap.c;
    ++level;
  }
  std::printf("\ncoarsest level: %d unknowns; total SpGEMM time %.3f ms\n",
              level_matrix.rows(), total_seconds * 1e3);
  return 0;
}
