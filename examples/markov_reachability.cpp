// Markov-chain analysis: k-step transition probabilities via repeated
// squaring of the transition matrix. Each squaring densifies the matrix,
// shifting the optimal accumulation strategy — exactly the adaptivity spECK
// provides (hash for the sparse early powers, dense for the later ones).
#include <cstdio>

#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "speck/speck.h"

namespace {

/// Normalizes rows to sum to one (a random-walk transition matrix).
speck::Csr row_stochastic(const speck::Csr& raw) {
  std::vector<speck::offset_t> offsets(raw.row_offsets().begin(),
                                       raw.row_offsets().end());
  std::vector<speck::index_t> cols(raw.col_indices().begin(),
                                   raw.col_indices().end());
  std::vector<speck::value_t> vals(raw.values().begin(), raw.values().end());
  for (speck::index_t r = 0; r < raw.rows(); ++r) {
    speck::value_t sum = 0.0;
    for (const speck::value_t v : raw.row_vals(r)) sum += v;
    if (sum == 0.0) continue;
    for (auto i = offsets[static_cast<std::size_t>(r)];
         i < offsets[static_cast<std::size_t>(r) + 1]; ++i) {
      vals[static_cast<std::size_t>(i)] /= sum;
    }
  }
  return speck::Csr(raw.rows(), raw.cols(), std::move(offsets), std::move(cols),
                    std::move(vals));
}

}  // namespace

int main() {
  using namespace speck;
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});

  Csr p = row_stochastic(gen::banded(20000, 80, 5, 11));
  std::printf("random walk on a banded graph: %s\n\n", p.shape_string().c_str());
  std::printf(" steps    nnz(P^k)  density%%  time(ms)  hash/dense/direct rows\n");

  int steps = 1;
  for (int squaring = 0; squaring < 3; ++squaring) {
    const offset_t products = count_products(p, p);
    const SpGemmResult result = speck.multiply(p, p);
    if (!result.ok()) {
      std::printf("stopped: %s\n", result.failure_reason.c_str());
      break;
    }
    steps *= 2;
    p = result.c;
    const double density = 100.0 * static_cast<double>(p.nnz()) /
                           (static_cast<double>(p.rows()) * p.cols());
    const SpeckDiagnostics& diag = speck.last_diagnostics();
    std::printf(" %5d  %10lld   %6.3f   %7.3f  %lld/%lld/%lld\n", steps,
                static_cast<long long>(p.nnz()), density, result.seconds * 1e3,
                static_cast<long long>(diag.numeric.hash_rows),
                static_cast<long long>(diag.numeric.dense_rows),
                static_cast<long long>(diag.numeric.direct_rows));
    (void)products;
  }

  // Reachability check: after k steps every state in one band neighbourhood
  // should be reachable — count the average out-degree growth.
  std::printf("\navg reachable states per row after %d steps: %.1f\n", steps,
              static_cast<double>(p.nnz()) / p.rows());
  return 0;
}
