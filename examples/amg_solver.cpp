// End-to-end algebraic multigrid solver: the paper's headline application.
//
// Setup builds the coarse hierarchy with SpGEMM (Galerkin products R*A*P,
// computed by spECK via the chain API); the solve runs V-cycles with
// weighted-Jacobi smoothing. SpGEMM setup cost and solver convergence are
// reported side by side — the reason AMG papers care about SpGEMM speed.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/ops.h"
#include "matrix/spmv.h"
#include "ref/semiring.h"
#include "speck/chain.h"
#include "speck/speck.h"

namespace {

using namespace speck;

struct Level {
  Csr a;        // operator
  Csr p;        // prolongation to this level's fine neighbour
  Csr r;        // restriction (Pᵀ)
  std::vector<value_t> inv_diag;
};

/// 2x2 grid-block aggregation: unknown (x, y) of an nx-by-ny grid joins
/// aggregate (x/2, y/2) of the (nx/2)-by-(ny/2) coarse grid — the coarse
/// problem stays a grid, so the hierarchy keeps geometric quality.
Csr aggregation_prolongator(index_t nx, index_t ny) {
  const index_t cx = std::max<index_t>(1, nx / 2);
  const index_t cy = std::max<index_t>(1, ny / 2);
  Coo p(nx * ny, cx * cy);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t aggregate =
          std::min(y / 2, cy - 1) * cx + std::min(x / 2, cx - 1);
      p.add(y * nx + x, aggregate, 1.0);
    }
  }
  return p.to_csr();
}

std::vector<value_t> inverse_diagonal(const Csr& a) {
  std::vector<value_t> inv(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == r && vals[i] != 0.0) inv[static_cast<std::size_t>(r)] = 1.0 / vals[i];
    }
  }
  return inv;
}

/// x <- x + w D^{-1} (b - A x), `sweeps` times.
void jacobi(const Level& level, std::span<const value_t> b, std::vector<value_t>& x,
            int sweeps, value_t w = 0.7) {
  std::vector<value_t> residual(x.size());
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    std::copy(b.begin(), b.end(), residual.begin());
    spmv(level.a, x, -1.0, 1.0, residual);  // r = b - A x
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += w * level.inv_diag[i] * residual[i];
    }
  }
}

void v_cycle(const std::vector<Level>& levels, std::size_t depth,
             std::span<const value_t> b, std::vector<value_t>& x) {
  const Level& level = levels[depth];
  if (depth + 1 == levels.size()) {
    jacobi(level, b, x, 40);  // "coarse solve": many smoothing sweeps
    return;
  }
  jacobi(level, b, x, 2);
  // Restrict the residual.
  std::vector<value_t> residual(b.begin(), b.end());
  spmv(level.a, x, -1.0, 1.0, residual);
  std::vector<value_t> coarse_b = spmv(levels[depth + 1].r, residual);
  std::vector<value_t> coarse_x(coarse_b.size(), 0.0);
  v_cycle(levels, depth + 1, coarse_b, coarse_x);
  // Prolongate and correct.
  const std::vector<value_t> correction = spmv(levels[depth + 1].p, coarse_x);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += correction[i];
  jacobi(level, b, x, 2);
}

double norm(std::span<const value_t> v) {
  double total = 0.0;
  for (const value_t x : v) total += x * x;
  return std::sqrt(total);
}

/// Scales row r of m by factors[r] (returns a copy).
Csr scale_rows(const Csr& m, std::span<const value_t> factors) {
  std::vector<offset_t> offsets(m.row_offsets().begin(), m.row_offsets().end());
  std::vector<index_t> cols(m.col_indices().begin(), m.col_indices().end());
  std::vector<value_t> vals(m.values().begin(), m.values().end());
  for (index_t r = 0; r < m.rows(); ++r) {
    for (offset_t i = offsets[static_cast<std::size_t>(r)];
         i < offsets[static_cast<std::size_t>(r) + 1]; ++i) {
      vals[static_cast<std::size_t>(i)] *= factors[static_cast<std::size_t>(r)];
    }
  }
  return Csr(m.rows(), m.cols(), std::move(offsets), std::move(cols), std::move(vals));
}

}  // namespace

int main() {
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});

  // Fine operator: 2D Poisson on a 192x192 grid.
  index_t nx = 192, ny = 192;
  std::vector<Level> levels;
  levels.push_back(Level{gen::stencil_2d(nx, ny), Csr(), Csr(), {}});
  levels.back().inv_diag = inverse_diagonal(levels.back().a);

  std::printf("AMG setup (Galerkin products via spECK's chain API)\n");
  double setup_seconds = 0.0;
  while (levels.back().a.rows() > 64) {
    const Csr& fine = levels.back().a;
    const Csr tentative = aggregation_prolongator(nx, ny);
    nx = std::max<index_t>(1, nx / 2);
    ny = std::max<index_t>(1, ny / 2);

    // Smoothed aggregation: P = (I - w D^-1 A) P_tent — one extra SpGEMM
    // per level, repaid by far better coarse spaces.
    const SpGemmResult ap = speck.multiply(fine, tentative);
    if (!ap.ok()) {
      std::printf("setup failed: %s\n", ap.failure_reason.c_str());
      return 1;
    }
    setup_seconds += ap.seconds;
    std::vector<value_t> damping(levels.back().inv_diag.size());
    for (std::size_t i = 0; i < damping.size(); ++i) {
      damping[i] = -0.66 * levels.back().inv_diag[i];
    }
    Csr p = semiring_add<PlusTimes>(tentative, scale_rows(ap.c, damping));
    Csr r = transpose(p);
    ChainResult galerkin = multiply_chain({r, fine, p}, speck);
    if (!galerkin.ok()) {
      std::printf("setup failed: %s\n", galerkin.failure_reason.c_str());
      return 1;
    }
    setup_seconds += galerkin.seconds;
    Level next;
    next.a = std::move(galerkin.c);
    next.p = std::move(p);
    next.r = std::move(r);
    next.inv_diag = inverse_diagonal(next.a);
    std::printf("  level %zu: %6d unknowns, %8lld nnz, SpGEMM %7.3f ms\n",
                levels.size(), next.a.rows(), static_cast<long long>(next.a.nnz()),
                galerkin.seconds * 1e3);
    levels.push_back(std::move(next));
  }
  std::printf("total simulated SpGEMM setup time: %.3f ms\n\n", setup_seconds * 1e3);

  // Solve A x = b with a random right-hand side.
  const Csr& a = levels.front().a;
  Xoshiro256 rng(99);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);
  std::vector<value_t> x(b.size(), 0.0);

  const double b_norm = norm(b);
  std::printf("V-cycle convergence (||r|| / ||b||):\n");
  double previous = 1.0;
  for (int cycle = 1; cycle <= 10; ++cycle) {
    v_cycle(levels, 0, b, x);
    std::vector<value_t> residual(b.begin(), b.end());
    spmv(a, x, -1.0, 1.0, residual);
    const double rel = norm(residual) / b_norm;
    std::printf("  cycle %2d: %.3e  (factor %.2f)\n", cycle, rel,
                previous > 0 ? rel / previous : 0.0);
    previous = rel;
    if (rel < 1e-8) break;
  }
  return 0;
}
