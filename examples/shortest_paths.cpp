// All-pairs shortest paths by min-plus matrix squaring (GraphBLAS-style,
// the paper's graph-processing motivation). D_{2k} = D_k ⊕.min+ D_k ⊕ D_k;
// after ceil(log2(n)) squarings D holds all shortest path lengths.
//
// The structural work per squaring is exactly an SpGEMM — the example also
// runs spECK on the same structure to show the simulated cost per step.
#include <cstdio>

#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/matrix_stats.h"
#include "ref/semiring.h"
#include "speck/speck.h"

namespace {

/// Builds a weighted undirected graph with a banded topology.
speck::Csr weighted_graph(speck::index_t n, std::uint64_t seed) {
  speck::Xoshiro256 rng(seed);
  speck::Coo coo(n, n);
  for (speck::index_t v = 0; v < n; ++v) {
    coo.add(v, v, 0.0);  // zero-length self paths
    for (int e = 0; e < 3; ++e) {
      const auto offset =
          static_cast<speck::index_t>(1 + rng.next_below(8));
      if (v + offset < n) {
        const speck::value_t w = rng.next_double(1.0, 10.0);
        coo.add(v, v + offset, w);
        coo.add(v + offset, v, w);
      }
    }
  }
  return coo.to_csr();
}

}  // namespace

int main() {
  using namespace speck;
  const index_t n = 3000;
  Csr dist = weighted_graph(n, 77);
  std::printf("weighted graph: %s\n\n", dist.shape_string().c_str());
  std::printf(" step   nnz(D)     reachable%%   avg dist   spECK time(ms)\n");

  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  for (int step = 1; step <= 4; ++step) {
    // Tropical squaring: D <- min(D, D min.+ D).
    const Csr squared = semiring_spgemm<MinPlus>(dist, dist);
    dist = semiring_add<MinPlus>(dist, squared);

    // The structural cost of this step, as spECK would execute it.
    const SpGemmResult structural = speck.multiply(dist, dist);

    double total = 0.0;
    offset_t finite = 0;
    for (const value_t v : dist.values()) {
      total += v;
      ++finite;
    }
    std::printf("  %2d   %8lld      %6.2f      %7.2f    %9.3f\n", step,
                static_cast<long long>(dist.nnz()),
                100.0 * static_cast<double>(dist.nnz()) /
                    (static_cast<double>(n) * n),
                total / static_cast<double>(std::max<offset_t>(finite, 1)),
                structural.ok() ? structural.seconds * 1e3 : -1.0);
  }

  // Spot check: distance from vertex 0 to its direct neighbour is the edge
  // weight (no shorter two-hop path with positive weights along the band).
  const auto cols = dist.row_cols(0);
  const auto vals = dist.row_vals(0);
  std::printf("\ndistances from vertex 0 (first 6 reachable): ");
  for (std::size_t i = 0; i < std::min<std::size_t>(cols.size(), 6); ++i) {
    std::printf("d(0,%d)=%.2f ", cols[i], vals[i]);
  }
  std::printf("\n");
  return 0;
}
