// Quickstart: multiply two sparse matrices with spECK and inspect the result.
//
// Usage: quickstart [path/to/matrix.mtx]
// Without an argument a synthetic banded matrix is used, so the example runs
// fully offline.
#include <cstdio>

#include "gen/generators.h"
#include "matrix/io_mtx.h"
#include "matrix/matrix_stats.h"
#include "speck/speck.h"

int main(int argc, char** argv) {
  using namespace speck;

  // 1. Load or synthesize the input matrix (CSR, double precision).
  Csr a = argc > 1 ? read_matrix_market_file(argv[1])
                   : gen::banded(20000, 200, 12, /*seed=*/42);
  std::printf("A: %s\n", a.shape_string().c_str());

  // 2. Create the multiplier. The device model mirrors the paper's TITAN V;
  //    all algorithmic decisions (analysis, binning, accumulator choice)
  //    run exactly as on the GPU.
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});

  // 3. C = A * A.
  const SpGemmResult result = speck.multiply(a, a);
  if (!result.ok()) {
    std::printf("multiplication failed: %s\n", result.failure_reason.c_str());
    return 1;
  }

  // 4. Inspect the result and the execution profile.
  const offset_t products = count_products(a, a);
  std::printf("C: %s\n", result.c.shape_string().c_str());
  std::printf("intermediate products : %lld\n", static_cast<long long>(products));
  std::printf("compaction factor     : %.2f\n",
              static_cast<double>(products) / static_cast<double>(result.c.nnz()));
  std::printf("simulated time        : %.3f ms  (%.2f GFLOPS)\n",
              result.seconds * 1e3, result.gflops(products));
  std::printf("peak device memory    : %.1f MB\n",
              static_cast<double>(result.peak_memory_bytes) / (1024.0 * 1024.0));
  std::printf("stage breakdown       : %s\n", result.timeline.to_string().c_str());

  const SpeckDiagnostics& diag = speck.last_diagnostics();
  std::printf("global load balancer  : symbolic=%s numeric=%s\n",
              diag.symbolic_lb_used ? "on" : "off",
              diag.numeric_lb_used ? "on" : "off");
  std::printf("numeric row methods   : hash=%lld dense=%lld direct=%lld\n",
              static_cast<long long>(diag.numeric.hash_rows),
              static_cast<long long>(diag.numeric.dense_rows),
              static_cast<long long>(diag.numeric.direct_rows));
  return 0;
}
