// speckd — concurrent SpGEMM traffic driver for the serving layer:
//
//   speckd [--threads N] [--requests N] [--patterns K] [--zipf S]
//          [--cache-mb MB] [--budget-mb MB] [--queue] [--seed N]
//          [--validate] [--check]
//
// Spawns N client threads issuing a Zipf(S)-distributed mix of K distinct
// fixed-pattern multiplies against one SpeckService (sharded plan cache,
// lock-free replay, admission control) and reports throughput, merged
// latency percentiles and the service counters as key=value lines.
//
// `--check` additionally verifies every pattern's served values against the
// Gustavson reference after the run (exit 1 on mismatch). `--budget-mb`
// enables admission control; with `--queue` over-budget requests wait for
// capacity instead of failing with kResourceExhausted.
//
// Exit codes follow the taxonomy (common/check.h): 0 ok, 1 result mismatch
// or request failure, 2 usage, 3 bad input, 4 resource exhausted (every
// request rejected), 5 internal error.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/service.h"
#include "speck/speck.h"

namespace {

using namespace speck;

void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options]\n"
      "\n"
      "options:\n"
      "  --threads N    client threads issuing requests (default 4)\n"
      "  --requests N   requests per client thread (default 500)\n"
      "  --patterns K   distinct matrix structures in the mix (default 6)\n"
      "  --zipf S       Zipf exponent of the pattern popularity (default 1.0;\n"
      "                 0 = uniform)\n"
      "  --cache-mb MB  plan-cache byte budget in MiB (default 512)\n"
      "  --budget-mb MB global admission-control budget in MiB (default off)\n"
      "  --queue        queue over-budget requests instead of rejecting\n"
      "  --seed N       traffic-schedule seed (default 42)\n"
      "  --validate     re-validate CSR invariants and full fingerprints\n"
      "  --check        verify served values against the Gustavson reference\n",
      prog);
}

/// K distinct serving-sized structures, cycling over the generator families.
std::vector<Csr> make_patterns(std::size_t count, std::uint64_t seed) {
  std::vector<Csr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t s = seed + 1000 * i;
    const auto n = static_cast<index_t>(256 + 64 * (i % 5));
    switch (i % 4) {
      case 0:
        out.push_back(gen::banded(n, 16, 10, s));
        break;
      case 1:
        out.push_back(gen::power_law(n, n, 7, 2.1, 50, s));
        break;
      case 2:
        out.push_back(gen::stencil_2d(16 + static_cast<index_t>(i), 16));
        break;
      default:
        out.push_back(gen::block_diagonal(12, 20, 0.5, s));
        break;
    }
  }
  return out;
}

std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

void emit(const char* key, double value) { std::printf("%s=%.6g\n", key, value); }
void emit_count(const char* key, std::size_t value) {
  std::printf("%s=%zu\n", key, value);
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  std::size_t requests = 500;
  std::size_t pattern_count = 6;
  double zipf_s = 1.0;
  std::size_t cache_mb = 512;
  std::size_t budget_mb = 0;
  bool queue = false;
  bool validate = false;
  bool check = false;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--patterns") == 0 && i + 1 < argc) {
      pattern_count = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--zipf") == 0 && i + 1 < argc) {
      zipf_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      cache_mb = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      budget_mb = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      queue = true;
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0], stdout);
      return 0;
    } else {
      print_usage(argv[0], stderr);
      return 2;
    }
  }
  if (threads < 1 || requests == 0 || pattern_count == 0) {
    print_usage(argv[0], stderr);
    return 2;
  }

  try {
    const std::vector<Csr> patterns = make_patterns(pattern_count, seed);

    SpeckConfig cfg;
    cfg.host_threads = 1;  // replays run serially per client thread
    cfg.plan_cache = false;  // the service owns the cache
    cfg.validate_inputs = validate;
    Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);

    ServiceConfig svc_cfg;
    svc_cfg.cache_limit_bytes = cache_mb << 20;
    svc_cfg.memory_budget_bytes = budget_mb << 20;
    svc_cfg.queue_on_budget = queue;
    SpeckService service(sp, svc_cfg);

    const std::vector<double> cdf = zipf_cdf(pattern_count, zipf_s);
    std::atomic<std::size_t> failed{0};
    std::atomic<std::size_t> resource_rejected{0};
    std::vector<std::vector<double>> lat(static_cast<std::size_t>(threads));

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 7919u);
        auto& my_lat = lat[static_cast<std::size_t>(t)];
        my_lat.reserve(requests);
        // Each client leases one workspace: its replay_values() vector is
        // the reused response buffer (zero allocations once warm).
        WorkspacePool::Lease lease = service.client_workspaces().lease();
        std::vector<value_t>& buf = lease->replay_values();
        for (std::size_t i = 0; i < requests; ++i) {
          const std::size_t p = static_cast<std::size_t>(
              std::lower_bound(cdf.begin(), cdf.end(), rng.next_double()) -
              cdf.begin());
          const auto r0 = std::chrono::steady_clock::now();
          SpeckService::Response resp =
              service.multiply_into(patterns[p], patterns[p], buf);
          my_lat.push_back(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - r0)
                               .count());
          if (!resp.ok()) {
            if (resp.status.code == ErrorCode::kResourceExhausted) {
              resource_rejected.fetch_add(1, std::memory_order_relaxed);
            } else {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& th : clients) th.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    const auto pct = [&](double q) {
      return all.empty()
                 ? 0.0
                 : all[static_cast<std::size_t>(q * (all.size() - 1))] * 1e6;
    };

    const ServiceStats stats = service.stats();
    std::printf("tool=speckd\n");
    emit_count("threads", static_cast<std::size_t>(threads));
    emit_count("patterns", pattern_count);
    emit("zipf_s", zipf_s);
    emit_count("requests", stats.requests);
    emit("wall_seconds", wall);
    emit("throughput_rps", static_cast<double>(stats.requests) / wall);
    emit("p50_us", pct(0.50));
    emit("p90_us", pct(0.90));
    emit("p99_us", pct(0.99));
    emit("max_us", all.empty() ? 0.0 : all.back() * 1e6);
    emit_count("replays", stats.replays);
    emit_count("plans_built", stats.plans_built);
    emit_count("full_runs", stats.full_runs);
    emit_count("admission_rejected", stats.rejected);
    emit_count("failed", failed.load());
    emit_count("cache_entries", stats.cache.entries);
    emit_count("cache_bytes", stats.cache.bytes);
    emit_count("cache_hits", stats.cache.hits);
    emit_count("cache_evictions", stats.cache.evictions);

    if (check) {
      std::vector<value_t> buf;
      for (std::size_t p = 0; p < patterns.size(); ++p) {
        const Csr ref = gustavson_spgemm(patterns[p], patterns[p]);
        SpeckService::Response resp =
            service.multiply_into(patterns[p], patterns[p], buf);
        const std::span<const value_t> want = ref.values();
        if (!resp.ok() || resp.c_nnz != ref.nnz() ||
            !std::equal(buf.begin(), buf.end(), want.begin(), want.end())) {
          std::fprintf(stderr, "FAIL: pattern %zu diverges from reference\n",
                       p);
          return 1;
        }
      }
      std::printf("check=pass\n");
    }

    if (failed.load() != 0) {
      std::fprintf(stderr, "%zu requests failed\n", failed.load());
      return 1;
    }
    if (stats.requests != 0 && resource_rejected.load() == stats.requests) {
      std::fprintf(stderr, "every request was rejected by admission control\n");
      return exit_code(ErrorCode::kResourceExhausted);
    }
    return 0;
  } catch (...) {
    return exit_code(status_from_current_exception().code);
  }
}
