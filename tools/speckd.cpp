// speckd — concurrent SpGEMM traffic driver for the serving layer:
//
//   speckd [--threads N] [--requests N] [--patterns K] [--zipf S]
//          [--cache-mb MB] [--budget-mb MB] [--queue] [--seed N]
//          [--max-queue N] [--max-wait-ms MS] [--deadline-ms MS]
//          [--degraded] [--fault-spec SPEC] [--chaos]
//          [--chaos-p99-factor F] [--planning MODE] [--validate] [--check]
//
// Spawns N client threads issuing a Zipf(S)-distributed mix of K distinct
// fixed-pattern multiplies against one SpeckService (sharded plan cache,
// lock-free replay, admission control) and reports throughput, merged
// latency percentiles and the service counters as key=value lines.
//
// `--check` verifies every served response against the Gustavson reference
// inside the client threads, as requests complete: on a mismatch the first
// failing request's fingerprint is recorded atomically, printed, and the
// process exits 1 — nothing is lost under concurrency. `--budget-mb`
// enables admission control; with `--queue` over-budget requests wait for
// capacity (bounded by `--max-queue` / `--max-wait-ms`) instead of failing
// with kResourceExhausted. `--deadline-ms` attaches a per-request deadline.
//
// `--chaos` runs the same schedule twice: a fault-free baseline phase, then
// a chaos phase with serving faults injected (forced plan-build failures,
// injected planning latency, admission budget squeeze, eviction storms —
// override via `--fault-spec`) under a tight budget, bounded queueing,
// degraded mode and per-request deadlines. The chaos phase gates on:
// every response either succeeds bit-identically (checked with --check) or
// carries a structured status (kDeadlineExceeded / kResourceExhausted /
// injected kInternal), and p99 latency of successful requests stays within
// `--chaos-p99-factor` (default 2.0) of the baseline p99.
//
// Exit codes follow the taxonomy (common/check.h): 0 ok, 1 result mismatch
// or request failure, 2 usage, 3 bad input, 4 resource exhausted (every
// request rejected), 5 internal error, 7 deadline exceeded.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "ref/masked.h"
#include "speck/plan_cache.h"
#include "speck/service.h"
#include "speck/speck.h"

namespace {

using namespace speck;

void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options]\n"
      "\n"
      "options:\n"
      "  --threads N          client threads issuing requests (default 4)\n"
      "  --requests N         requests per client thread (default 500)\n"
      "  --patterns K         distinct matrix structures in the mix (default 6)\n"
      "  --zipf S             Zipf exponent of the pattern popularity (default 1.0;\n"
      "                       0 = uniform)\n"
      "  --cache-mb MB        plan-cache byte budget in MiB (default 512)\n"
      "  --budget-mb MB       global admission-control budget in MiB (default off)\n"
      "  --queue              queue over-budget requests instead of rejecting\n"
      "  --max-queue N        bounded admission queue: max budget waiters\n"
      "                       (LIFO-shed-oldest on overflow; default 0 = unbounded)\n"
      "  --max-wait-ms MS     cap any single wait; over-cap requests are shed\n"
      "                       (default 0 = no cap)\n"
      "  --deadline-ms MS     per-request deadline (default 0 = none)\n"
      "  --degraded           serve pressure/quarantine misses via the degraded\n"
      "                       path instead of failing them\n"
      "  --fault-spec SPEC    serving fault spec (docs/robustness.md grammar)\n"
      "  --chaos              run a fault-free baseline phase, then a chaos phase\n"
      "                       with injected serving faults; gate statuses and p99\n"
      "  --chaos-p99-factor F chaos p99 budget as a multiple of baseline p99\n"
      "                       (default 2.0)\n"
      "  --planning MODE      plan construction mode: auto|exact|estimated\n"
      "                       (default auto). Estimated planning shrinks the\n"
      "                       serialized cold-miss build window; responses are\n"
      "                       bit-identical either way, and rows whose sampled\n"
      "                       estimate underflowed are reported as\n"
      "                       estimator_fallback_rows\n"
      "  --partitions N       two-level executor partitions for cold-miss plan\n"
      "                       builds (default 1 = flat). N > 1 also lifts the\n"
      "                       build thread pinning so builds use the process\n"
      "                       default pool (SPECK_THREADS); replays stay on the\n"
      "                       calling client thread either way. Steal and\n"
      "                       imbalance telemetry lands in partition_steals /\n"
      "                       worst_partition_imbalance\n"
      "  --masked             serve output-masked products C = (p*p) .* M\n"
      "                       against one shared band mask M (patterns are\n"
      "                       forced to a single size so M applies to all);\n"
      "                       masked plans carry the mask pattern hash in\n"
      "                       their fingerprint and replay values-only like\n"
      "                       unmasked ones. --check verifies against the\n"
      "                       masked-Gustavson oracle\n"
      "  --seed N             traffic-schedule seed (default 42)\n"
      "  --validate           re-validate CSR invariants and full fingerprints\n"
      "  --check              verify every served response against the Gustavson\n"
      "                       reference as it completes (exit 1 on mismatch,\n"
      "                       printing the failing fingerprint)\n",
      prog);
}

/// K distinct serving-sized structures, cycling over the generator families.
/// `force_n` != 0 pins every pattern to an n x n shape (masked serving needs
/// one shared mask to apply to all patterns).
std::vector<Csr> make_patterns(std::size_t count, std::uint64_t seed,
                               index_t force_n = 0) {
  std::vector<Csr> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t s = seed + 1000 * i;
    const index_t n =
        force_n != 0 ? force_n : static_cast<index_t>(256 + 64 * (i % 5));
    switch (i % 4) {
      case 0:
        out.push_back(gen::banded(n, 16, 10, s));
        break;
      case 1:
        out.push_back(gen::power_law(n, n, 7, 2.1, 50, s));
        break;
      case 2:
        out.push_back(force_n != 0
                          ? gen::banded(n, 24, 12, s + 1)
                          : gen::stencil_2d(16 + static_cast<index_t>(i), 16));
        break;
      default:
        out.push_back(force_n != 0 ? gen::power_law(n, n, 9, 1.8, 60, s + 2)
                                   : gen::block_diagonal(12, 20, 0.5, s));
        break;
    }
  }
  return out;
}

std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

void emit(const std::string& key, double value) {
  std::printf("%s=%.6g\n", key.c_str(), value);
}
void emit_count(const std::string& key, std::size_t value) {
  std::printf("%s=%zu\n", key.c_str(), value);
}

struct PhaseOptions {
  int threads = 4;
  std::size_t requests = 500;
  double deadline_ms = 0.0;  ///< 0 = no per-request deadline
  std::uint64_t seed = 42;
  bool check = false;
  /// Corrupts the first served value of client 0 before verification —
  /// proves the --check failure path reports the fingerprint and exits
  /// nonzero (used by the speckd_check_detects ctest).
  bool inject_check_mismatch = false;
};

struct PhaseResult {
  std::vector<double> all_lat;  ///< every request, seconds
  std::vector<double> ok_lat;   ///< successful requests only, seconds
  /// Successful UNQUEUED plan replays only — the pure lock-free fast path:
  /// what the chaos tail-latency gate compares. Excludes plan builds
  /// (carry injected planning latency), degraded serves (pay the reference
  /// multiply by design) and any request that blocked on the plan mutex or
  /// the budget queue (a convoy behind a faulted build is a fault casualty,
  /// and its wait is already bounded by max_queue_wait / the deadline).
  std::vector<double> replay_lat;
  std::size_t ok = 0;
  std::size_t degraded_ok = 0;          ///< subset of ok served degraded
  std::size_t deadline_exceeded = 0;    ///< kDeadlineExceeded answers
  std::size_t resource_exhausted = 0;   ///< kResourceExhausted answers
  std::size_t injected_failures = 0;    ///< kInternal from fault injection
  std::size_t unexpected_failures = 0;  ///< anything else — always a bug
  std::size_t check_failures = 0;
  bool have_bad_fingerprint = false;
  std::uint64_t first_bad_fingerprint = 0;
  double wall = 0.0;
  ServiceStats stats;
};

/// Runs one traffic phase (the whole schedule) against a fresh service.
PhaseResult run_phase(SpeckService& service, const std::vector<Csr>& patterns,
                      const std::vector<Csr>* refs,
                      const std::vector<std::uint64_t>& fingerprints,
                      const std::vector<double>& cdf,
                      const PhaseOptions& opts) {
  PhaseResult out;
  const auto threads = static_cast<std::size_t>(opts.threads);
  std::vector<PhaseResult> per_thread(threads);
  std::mutex first_bad_mutex;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      PhaseResult& mine = per_thread[t];
      Xoshiro256 rng(opts.seed + static_cast<std::uint64_t>(t) * 7919u);
      mine.all_lat.reserve(opts.requests);
      // Each client leases one workspace: its replay_values() vector is
      // the reused response buffer (zero allocations once warm).
      WorkspacePool::Lease lease = service.client_workspaces().lease();
      std::vector<value_t>& buf = lease->replay_values();
      for (std::size_t i = 0; i < opts.requests; ++i) {
        const std::size_t p = static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), rng.next_double()) -
            cdf.begin());
        SpeckService::RequestOptions req;
        if (opts.deadline_ms > 0.0) {
          req.deadline = Deadline::after_ms(opts.deadline_ms);
        }
        const auto r0 = std::chrono::steady_clock::now();
        SpeckService::Response resp =
            service.multiply_into(patterns[p], patterns[p], buf, req);
        const double lat = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - r0)
                               .count();
        mine.all_lat.push_back(lat);
        if (resp.ok()) {
          ++mine.ok;
          mine.ok_lat.push_back(lat);
          if (resp.replayed && !resp.queued) mine.replay_lat.push_back(lat);
          if (resp.degraded) ++mine.degraded_ok;
          if (refs != nullptr) {
            if (opts.inject_check_mismatch && t == 0 && i == 0 &&
                !buf.empty()) {
              buf[0] += 1.0;  // deliberate corruption; --check must catch it
            }
            const Csr& ref = (*refs)[p];
            const std::span<const value_t> want = ref.values();
            if (resp.c_nnz != ref.nnz() ||
                !std::equal(buf.begin(), buf.end(), want.begin(),
                            want.end())) {
              ++mine.check_failures;
              std::lock_guard<std::mutex> lock(first_bad_mutex);
              if (!out.have_bad_fingerprint) {
                out.have_bad_fingerprint = true;
                out.first_bad_fingerprint = fingerprints[p];
              }
            }
          }
        } else {
          switch (resp.status.code) {
            case ErrorCode::kDeadlineExceeded:
              ++mine.deadline_exceeded;
              break;
            case ErrorCode::kResourceExhausted:
              ++mine.resource_exhausted;
              break;
            case ErrorCode::kInternal:
              if (resp.status.message.find("fault injection") !=
                  std::string::npos) {
                ++mine.injected_failures;
              } else {
                ++mine.unexpected_failures;
              }
              break;
            default:
              ++mine.unexpected_failures;
              break;
          }
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  out.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();

  for (const PhaseResult& mine : per_thread) {
    out.all_lat.insert(out.all_lat.end(), mine.all_lat.begin(),
                       mine.all_lat.end());
    out.ok_lat.insert(out.ok_lat.end(), mine.ok_lat.begin(),
                      mine.ok_lat.end());
    out.replay_lat.insert(out.replay_lat.end(), mine.replay_lat.begin(),
                          mine.replay_lat.end());
    out.ok += mine.ok;
    out.degraded_ok += mine.degraded_ok;
    out.deadline_exceeded += mine.deadline_exceeded;
    out.resource_exhausted += mine.resource_exhausted;
    out.injected_failures += mine.injected_failures;
    out.unexpected_failures += mine.unexpected_failures;
    out.check_failures += mine.check_failures;
  }
  std::sort(out.all_lat.begin(), out.all_lat.end());
  std::sort(out.ok_lat.begin(), out.ok_lat.end());
  std::sort(out.replay_lat.begin(), out.replay_lat.end());
  out.stats = service.stats();
  return out;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  return sorted[static_cast<std::size_t>(q *
                                         static_cast<double>(sorted.size() - 1))];
}

/// key=value report for one phase; `prefix` is "" or "chaos_".
void emit_phase(const std::string& prefix, const PhaseResult& r) {
  emit_count(prefix + "requests", r.stats.requests);
  emit(prefix + "wall_seconds", r.wall);
  emit(prefix + "throughput_rps",
       static_cast<double>(r.stats.requests) / r.wall);
  emit(prefix + "p50_us", percentile(r.all_lat, 0.50) * 1e6);
  emit(prefix + "p90_us", percentile(r.all_lat, 0.90) * 1e6);
  emit(prefix + "p99_us", percentile(r.all_lat, 0.99) * 1e6);
  emit(prefix + "max_us", r.all_lat.empty() ? 0.0 : r.all_lat.back() * 1e6);
  emit_count(prefix + "replays", r.stats.replays);
  emit_count(prefix + "plans_built", r.stats.plans_built);
  emit_count(prefix + "full_runs", r.stats.full_runs);
  emit_count(prefix + "admission_rejected", r.stats.rejected);
  emit_count(prefix + "shed", r.stats.shed);
  emit_count(prefix + "timed_out", r.stats.timed_out);
  emit_count(prefix + "degraded", r.stats.degraded);
  emit_count(prefix + "quarantine_trips", r.stats.quarantine_trips);
  emit_count(prefix + "estimator_fallback_rows", r.stats.estimator_fallback_rows);
  emit_count(prefix + "partition_steals", r.stats.partition_steals);
  emit(prefix + "worst_partition_imbalance", r.stats.worst_partition_imbalance);
  emit_count(prefix + "deadline_exceeded", r.deadline_exceeded);
  emit_count(prefix + "resource_exhausted", r.resource_exhausted);
  emit_count(prefix + "injected_failures", r.injected_failures);
  emit_count(prefix + "failed", r.unexpected_failures);
  emit_count(prefix + "cache_entries", r.stats.cache.entries);
  emit_count(prefix + "cache_bytes", r.stats.cache.bytes);
  emit_count(prefix + "cache_hits", r.stats.cache.hits);
  emit_count(prefix + "cache_evictions", r.stats.cache.evictions);
}

/// Nonzero exit for check/unexpected failures of a phase; 0 when clean.
int gate_phase(const char* phase, const PhaseResult& r) {
  if (r.check_failures != 0) {
    std::fprintf(stderr,
                 "FAIL [%s]: %zu served responses diverge from the Gustavson "
                 "reference; first failing fingerprint 0x%016llx\n",
                 phase, r.check_failures,
                 static_cast<unsigned long long>(r.first_bad_fingerprint));
    return 1;
  }
  if (r.unexpected_failures != 0) {
    std::fprintf(stderr,
                 "FAIL [%s]: %zu requests failed with an unexpected status\n",
                 phase, r.unexpected_failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  std::size_t requests = 500;
  std::size_t pattern_count = 6;
  double zipf_s = 1.0;
  std::size_t cache_mb = 512;
  std::size_t budget_mb = 0;
  bool queue = false;
  bool validate = false;
  bool check = false;
  bool chaos = false;
  bool degraded = false;
  bool masked = false;
  bool inject_check_mismatch = false;
  std::size_t max_queue = 0;
  double max_wait_ms = 0.0;
  double deadline_ms = 0.0;
  double chaos_p99_factor = 2.0;
  PlanningMode planning = PlanningMode::kAuto;
  int partitions = 1;
  std::string fault_spec_text;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--patterns") == 0 && i + 1 < argc) {
      pattern_count = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--zipf") == 0 && i + 1 < argc) {
      zipf_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0 && i + 1 < argc) {
      cache_mb = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      budget_mb = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      queue = true;
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc) {
      max_queue = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-wait-ms") == 0 && i + 1 < argc) {
      max_wait_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--degraded") == 0) {
      degraded = true;
    } else if (std::strcmp(argv[i], "--masked") == 0) {
      masked = true;
    } else if (std::strcmp(argv[i], "--fault-spec") == 0 && i + 1 < argc) {
      fault_spec_text = argv[++i];
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--chaos-p99-factor") == 0 &&
               i + 1 < argc) {
      chaos_p99_factor = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--planning") == 0 && i + 1 < argc) {
      const auto parsed = parse_planning_mode(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "--planning: unknown mode '%s' "
                     "(expected auto|exact|estimated)\n",
                     argv[i]);
        return 3;
      }
      planning = *parsed;
    } else if (std::strcmp(argv[i], "--inject-check-mismatch") == 0) {
      inject_check_mismatch = true;  // test hook for the --check failure path
    } else if (std::strcmp(argv[i], "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--partitions") == 0 && i + 1 < argc) {
      partitions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0], stdout);
      return 0;
    } else {
      print_usage(argv[0], stderr);
      return 2;
    }
  }
  if (threads < 1 || requests == 0 || pattern_count == 0 ||
      chaos_p99_factor <= 0.0 || partitions < 1) {
    print_usage(argv[0], stderr);
    return 2;
  }

  try {
    // Masked serving shares ONE output mask across the whole mix, so every
    // pattern must have the mask's shape.
    const index_t masked_n = 320;
    const std::vector<Csr> patterns =
        make_patterns(pattern_count, seed, masked ? masked_n : 0);
    const std::vector<double> cdf = zipf_cdf(pattern_count, zipf_s);
    std::shared_ptr<const Csr> mask;
    if (masked) {
      mask = std::make_shared<const Csr>(
          gen::banded(masked_n, 32, 20, seed + 999));
    }

    SpeckConfig cfg;
    cfg.mask = mask;
    cfg.host_threads = 1;  // replays run serially per client thread
    cfg.plan_cache = false;  // the service owns the cache
    cfg.partitions = partitions;
    if (partitions > 1) {
      // The two-level executor needs the real pool to form teams; replays
      // are unaffected (they always run on the calling client thread).
      cfg.host_threads = 0;
    }
    cfg.validate_inputs = validate;
    cfg.planning = planning;

    // Per-pattern reference products and fingerprint keys, computed up
    // front so mid-run verification is a pure compare.
    std::vector<Csr> refs;
    std::vector<std::uint64_t> fingerprints;
    fingerprints.reserve(pattern_count);
    {
      Speck fp_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
      for (const Csr& p : patterns) {
        fingerprints.push_back(plan_key_hash(
            mask != nullptr
                ? plan_fingerprint_masked(p, p, *mask, fp_speck.config())
                : plan_fingerprint(p, p, fp_speck.config())));
      }
    }
    if (check) {
      refs.reserve(pattern_count);
      for (const Csr& p : patterns) {
        refs.push_back(mask != nullptr ? masked_spgemm(p, p, *mask)
                                       : gustavson_spgemm(p, p));
      }
    }
    const std::vector<Csr>* refs_ptr = check ? &refs : nullptr;

    ServiceConfig svc_cfg;
    svc_cfg.cache_limit_bytes = cache_mb << 20;
    svc_cfg.memory_budget_bytes = budget_mb << 20;
    svc_cfg.queue_on_budget = queue;
    svc_cfg.max_queued_requests = max_queue;
    svc_cfg.max_queue_wait_ms = max_wait_ms;
    svc_cfg.degraded_mode = degraded;
    if (!fault_spec_text.empty() && !chaos) {
      svc_cfg.faults = parse_fault_spec(fault_spec_text);
    }

    // Chaos service shape: the user's config hardened with a tight budget,
    // bounded queueing, degraded mode, quarantine and a deadline. The
    // baseline phase runs the SAME shape with faults off — the p99 gate
    // must compare one system with and without faults, not two different
    // services.
    ServiceConfig chaos_cfg = svc_cfg;
    PhaseOptions chaos_opts;
    if (chaos) {
      chaos_cfg.faults = parse_fault_spec(
          fault_spec_text.empty()
              ? "plan-fail-mod=3,plan-delay-ms=2,admission-scale=4,"
                "evict-every=64"
              : fault_spec_text);
      if (chaos_cfg.memory_budget_bytes == 0) {
        chaos_cfg.memory_budget_bytes = 2u << 20;  // tight: squeeze must bind
      }
      chaos_cfg.queue_on_budget = true;
      if (chaos_cfg.max_queued_requests == 0) {
        chaos_cfg.max_queued_requests = 4;
      }
      if (chaos_cfg.max_queue_wait_ms == 0.0) {
        chaos_cfg.max_queue_wait_ms = 25.0;
      }
      chaos_cfg.degraded_mode = true;
      chaos_cfg.quarantine_threshold = 2;
      chaos_cfg.quarantine_cooldown_ms = 100.0;
    }

    PhaseOptions phase_opts;
    phase_opts.threads = threads;
    phase_opts.requests = requests;
    phase_opts.deadline_ms = deadline_ms;
    phase_opts.seed = seed;
    phase_opts.check = check;
    phase_opts.inject_check_mismatch = inject_check_mismatch;
    if (chaos) {
      chaos_opts = phase_opts;
      chaos_opts.inject_check_mismatch = false;
      if (chaos_opts.deadline_ms == 0.0) chaos_opts.deadline_ms = 1000.0;
      // The baseline phase mirrors the chaos phase in everything but the
      // faults themselves.
      phase_opts.deadline_ms = chaos_opts.deadline_ms;
    }

    // Phase 1 — the configured run (with --chaos: the fault-free baseline
    // of the hardened service shape).
    ServiceConfig base_cfg = chaos ? chaos_cfg : svc_cfg;
    if (chaos) base_cfg.faults = FaultSpec{};
    Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    SpeckService service(sp, base_cfg);
    const PhaseResult base =
        run_phase(service, patterns, refs_ptr, fingerprints, cdf, phase_opts);

    std::printf("tool=speckd\n");
    emit_count("threads", static_cast<std::size_t>(threads));
    emit_count("patterns", pattern_count);
    emit_count("partitions", static_cast<std::size_t>(partitions));
    emit("zipf_s", zipf_s);
    emit_phase("", base);

    if (int rc = gate_phase("baseline", base); rc != 0) return rc;

    if (!chaos) {
      if (check) std::printf("check=pass\n");
      if (base.stats.requests != 0 &&
          base.resource_exhausted ==
              static_cast<std::size_t>(base.stats.requests)) {
        std::fprintf(stderr,
                     "every request was rejected by admission control\n");
        return exit_code(ErrorCode::kResourceExhausted);
      }
      return 0;
    }

    // Phase 2 — chaos: same schedule, fresh service, serving faults firing
    // under the hardened shape the baseline just measured.
    Speck chaos_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    SpeckService chaos_service(chaos_speck, chaos_cfg);
    const PhaseResult storm = run_phase(chaos_service, patterns, refs_ptr,
                                        fingerprints, cdf, chaos_opts);

    emit_phase("chaos_", storm);

    if (int rc = gate_phase("chaos", storm); rc != 0) return rc;

    // Tail-latency gate: p99 of non-faulted chaos requests within the
    // factor of the baseline's. "Non-faulted" means the pure lock-free
    // fast path — successful replays that never blocked (see PhaseResult::
    // replay_lat). Requests a fault DID touch are covered by the other
    // gates: their waits are bounded by max_queue_wait and the deadline,
    // and their failures must be structured. The absolute slack absorbs
    // scheduler noise: with a few hundred samples p99 is nearly the max,
    // and single-digit-ms preemption spikes show up on the fast path even
    // in fault-free runs (plan builds occupying sibling cores). 5 ms sits
    // well below the tails the gate exists to catch — a queue convoy is
    // bounded only by max_queue_wait / the deadline, tens of ms. Needs
    // enough samples on both sides to be a meaningful percentile; sparse
    // samples only warn.
    constexpr std::size_t kMinSamples = 50;
    constexpr double kAbsoluteSlackSeconds = 5e-3;
    if (base.replay_lat.size() >= kMinSamples &&
        storm.replay_lat.size() >= kMinSamples) {
      const double base_p99 = percentile(base.replay_lat, 0.99);
      const double storm_p99 = percentile(storm.replay_lat, 0.99);
      emit("chaos_replay_p99_us", storm_p99 * 1e6);
      emit("baseline_replay_p99_us", base_p99 * 1e6);
      if (base_p99 > 0.0 && storm_p99 > chaos_p99_factor * base_p99 &&
          storm_p99 - base_p99 > kAbsoluteSlackSeconds) {
        std::fprintf(stderr,
                     "FAIL [chaos]: non-faulted p99 %.1f us exceeds "
                     "%.2fx the baseline p99 %.1f us\n",
                     storm_p99 * 1e6, chaos_p99_factor, base_p99 * 1e6);
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "note: p99 gate skipped (baseline %zu / chaos %zu "
                   "successful replays; need %zu each)\n",
                   base.replay_lat.size(), storm.replay_lat.size(),
                   kMinSamples);
    }
    if (check) std::printf("check=pass\n");
    return 0;
  } catch (...) {
    return exit_code(status_from_current_exception().code);
  }
}
