// matrix_info — prints the statistics, NZ pattern and the spECK decisions
// for a Matrix Market file (or a named synthetic corpus entry):
//
//   matrix_info <path.mtx | corpus:NAME>
#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "gen/corpus.h"
#include "matrix/io_mtx.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "matrix/permute.h"
#include "speck/speck.h"

namespace {

int run(int argc, char** argv) {
  using namespace speck;
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    std::printf(
        "usage: %s <path.mtx | corpus:NAME>\n"
        "\n"
        "exit codes: 0 success, 1 runtime failure, 2 usage error,\n"
        "  3 bad input, 4 resource exhausted, 5 internal error,\n"
        "  6 unknown exception\n",
        argv[0]);
    return 0;
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path.mtx | corpus:NAME>\n", argv[0]);
    return 2;
  }

  Csr a;
  Csr b;
  const std::string spec = argv[1];
  if (spec.rfind("corpus:", 0) == 0) {
    const std::string name = spec.substr(7);
    bool found = false;
    for (auto& entry : gen::common_corpus()) {
      if (entry.name == name) {
        a = std::move(entry.a);
        b = std::move(entry.b);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown corpus entry '%s'\n", name.c_str());
      return 2;
    }
  } else {
    a = read_matrix_market_file(spec);
    b = a.rows() == a.cols() ? a : transpose(a);
  }

  const MatrixStats stats = analyze_matrix(a);
  std::printf("matrix: %s\n", a.shape_string().c_str());
  std::printf("row nnz: min=%lld avg=%.2f max=%lld stddev=%.2f\n",
              static_cast<long long>(stats.row_lengths.min), stats.row_lengths.mean,
              static_cast<long long>(stats.row_lengths.max), stats.row_lengths.stddev);
  std::printf("bandwidth: %d\n", a.rows() == a.cols() ? bandwidth(a) : -1);
  const offset_t products = count_products(a, b);
  std::printf("products (C=%s): %lld\n", a.rows() == a.cols() ? "A*A" : "A*At",
              static_cast<long long>(products));

  std::printf("\nNZ pattern:\n%s\n", ascii_spy(a, 32).c_str());

  SpeckConfig config;
  config.thresholds = reduced_scale_thresholds();
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
  const SpGemmResult result = speck.multiply(a, b);
  if (!result.ok()) {
    std::printf("spECK failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  const SpeckDiagnostics& diag = speck.last_diagnostics();
  std::printf("spECK decisions:\n");
  std::printf("  compaction factor      : %.2f\n",
              static_cast<double>(products) /
                  static_cast<double>(std::max<offset_t>(result.c.nnz(), 1)));
  std::printf("  global LB              : symbolic=%s numeric=%s\n",
              diag.symbolic_lb_used ? "on" : "off",
              diag.numeric_lb_used ? "on" : "off");
  std::printf("  numeric methods        : hash=%lld dense=%lld direct=%lld\n",
              static_cast<long long>(diag.numeric.hash_rows),
              static_cast<long long>(diag.numeric.dense_rows),
              static_cast<long long>(diag.numeric.direct_rows));
  std::printf("  hash probes (sym/num)  : %zu / %zu\n", diag.symbolic.hash_probes,
              diag.numeric.hash_probes);
  std::printf("  global-hash spills     : %d / %d\n",
              diag.symbolic.global_hash_blocks, diag.numeric.global_hash_blocks);
  std::printf("  simulated time         : %.3f ms (%.2f GFLOPS)\n",
              result.seconds * 1e3, result.gflops(products));
  std::printf("  stage shares           : %s\n", result.timeline.to_string().c_str());
  std::printf("\nlaunch trace:\n%s", speck.last_trace().to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const speck::SpeckError& e) {
    const auto* as_std = dynamic_cast<const std::exception*>(&e);
    const speck::Status status = speck::Status::error(
        e.code(), as_std != nullptr ? as_std->what() : "", e.context());
    std::fprintf(stderr, "matrix_info: %s\n", status.to_string().c_str());
    return speck::exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "matrix_info: [InternalError] %s\n", e.what());
    return speck::exit_code(speck::ErrorCode::kInternal);
  } catch (...) {
    std::fprintf(stderr, "matrix_info: unknown exception\n");
    return 6;
  }
}
