// libFuzzer entry point for the --fault-spec grammar (built only with
// -DSPECK_LIBFUZZER=ON under clang):
//
//   cmake -B build-fuzz -DSPECK_LIBFUZZER=ON \
//         -DCMAKE_CXX_COMPILER=clang++ && cmake --build build-fuzz
//   build-fuzz/tools/fuzz_faultspec_libfuzzer
//
// Contract: parse_fault_spec either returns a FaultSpec or throws BadInput —
// no other exception, crash or sanitizer report is acceptable for any byte
// string. A parsed spec must round-trip through describe() without tripping
// invariants.
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/fault_injection.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const speck::FaultSpec spec = speck::parse_fault_spec(text);
    (void)speck::describe(spec);
    (void)spec.enabled();
  } catch (const speck::BadInput&) {
    // Structured rejection — the expected outcome for malformed specs.
  }
  return 0;
}
