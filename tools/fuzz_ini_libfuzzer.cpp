// libFuzzer entry point for the runspeck config.ini parser (built only with
// -DSPECK_LIBFUZZER=ON under clang):
//
//   cmake -B build-fuzz -DSPECK_LIBFUZZER=ON \
//         -DCMAKE_CXX_COMPILER=clang++ && cmake --build build-fuzz
//   build-fuzz/tools/fuzz_ini_libfuzzer
//
// Contract: IniConfig::parse either returns a config or throws BadInput — no
// other exception, crash or sanitizer report is acceptable for any byte
// string. Accepted configs must answer typed lookups (with fallbacks) for
// the keys runspeck actually queries without tripping invariants.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/ini.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(std::string(reinterpret_cast<const char*>(data), size));
  try {
    const speck::IniConfig config = speck::IniConfig::parse(in);
    (void)config.get_bool("TrackCompleteTimes", true);
    (void)config.get_int("IterationsExecution", 5);
    (void)config.get_string("InputFile", "");
  } catch (const speck::BadInput&) {
    // Structured rejection — the expected outcome for malformed configs.
  }
  return 0;
}
