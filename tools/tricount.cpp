// tricount — triangle counting through the output-masked SpGEMM fast path:
//
//   tricount [--rmat SCALE] [--edge-factor E] [--threads N] [--partitions N]
//            [--seed N] [--iters N] [--no-corpus] [--full-compare]
//            [graph.mtx ...]
//
// For each graph the tool symmetrizes the input into an undirected
// adjacency pattern, takes its strictly-lower-triangular part L, and counts
// triangles as sum((L*L) .* L) — every triangle {i > j > k} is counted
// exactly once, at C[i][j] via the wedge through k. The mask (L itself)
// lets Speck::multiply_masked skip the symbolic pass entirely and size
// accumulators off min(products, mask row nnz), which is why the masked
// path beats multiply-then-filter (see docs/performance.md).
//
// Every count is verified against the masked-Gustavson oracle
// (masked_product_sum); `--full-compare` additionally times the naive
// full-product-then-filter pipeline and reports the masked speedup.
//
// Inputs: any .mtx paths on the command line, plus the synthetic corpus
// stand-ins (square entries only; skip with --no-corpus) and an R-MAT
// scale-free graph (--rmat 0 disables).
//
// Exit codes: 0 ok, 1 count mismatch vs the oracle, 2 usage, 3 bad input.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/io_mtx.h"
#include "ref/masked.h"
#include "speck/speck.h"

namespace {

using namespace speck;

void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options] [graph.mtx ...]\n"
      "\n"
      "Counts triangles per graph as sum((L*L) .* L) where L is the\n"
      "strictly-lower-triangular pattern of the symmetrized graph, using\n"
      "the output-masked multiply path (no symbolic pass; accumulators\n"
      "sized off the mask). Verified against the masked-Gustavson oracle.\n"
      "\n"
      "options:\n"
      "  --rmat SCALE     add an R-MAT graph with 2^SCALE vertices\n"
      "                   (default 13; 0 disables)\n"
      "  --edge-factor E  R-MAT edges per vertex (default 8)\n"
      "  --threads N      host threads (default SPECK_THREADS/auto)\n"
      "  --partitions N   two-level executor partitions (default auto)\n"
      "  --seed N         R-MAT seed (default 7)\n"
      "  --iters N        timed iterations per graph, best-of (default 3)\n"
      "  --no-corpus      skip the synthetic corpus stand-ins\n"
      "  --full-compare   also time full multiply + filter and report the\n"
      "                   masked speedup\n"
      "  --help           this message\n",
      prog);
}

/// Symmetrizes a graph into an undirected pattern: drops self-loops and
/// weights, merges duplicate edges to value 1.
Csr undirected_pattern(const Csr& directed) {
  Coo sym(directed.rows(), directed.cols());
  for (index_t r = 0; r < directed.rows(); ++r) {
    for (const index_t c : directed.row_cols(r)) {
      if (c == r) continue;
      sym.add(r, c, 1.0);
      sym.add(c, r, 1.0);
    }
  }
  Csr result = sym.to_csr();
  for (auto& v : result.values_mutable()) v = 1.0;
  return result;
}

/// Strictly-lower-triangular part (column < row), values clamped to 1.
Csr lower_triangular(const Csr& a) {
  Coo lower(a.rows(), a.cols());
  for (index_t r = 0; r < a.rows(); ++r) {
    for (const index_t c : a.row_cols(r)) {
      if (c < r) lower.add(r, c, 1.0);
    }
  }
  return lower.to_csr();
}

/// Naive post-hoc masking: sums the entries of the full product that land
/// on mask positions — what a pipeline without masked kernels has to do.
double filter_sum(const Csr& c, const Csr& mask) {
  double sum = 0.0;
  for (index_t r = 0; r < c.rows(); ++r) {
    const auto cols = c.row_cols(r);
    const auto vals = c.row_vals(r);
    const auto mask_cols = mask.row_cols(r);
    std::size_t j = 0;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      while (j < mask_cols.size() && mask_cols[j] < cols[i]) ++j;
      if (j < mask_cols.size() && mask_cols[j] == cols[i]) sum += vals[i];
    }
  }
  return sum;
}

double sum_values(const Csr& c) {
  double sum = 0.0;
  for (const value_t v : c.values()) sum += v;
  return sum;
}

struct Job {
  std::string name;
  Csr graph;  ///< undirected pattern
};

}  // namespace

int main(int argc, char** argv) {
  int rmat_scale = 13;
  index_t edge_factor = 8;
  int threads = 0;
  int partitions = 0;
  std::uint64_t seed = 7;
  int iters = 3;
  bool use_corpus = true;
  bool full_compare = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rmat") == 0 && i + 1 < argc) {
      rmat_scale = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--edge-factor") == 0 && i + 1 < argc) {
      edge_factor = static_cast<index_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--partitions") == 0 && i + 1 < argc) {
      partitions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-corpus") == 0) {
      use_corpus = false;
    } else if (std::strcmp(argv[i], "--full-compare") == 0) {
      full_compare = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(argv[0], stdout);
      return 0;
    } else if (argv[i][0] == '-') {
      print_usage(argv[0], stderr);
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (iters < 1 || rmat_scale < 0 || edge_factor < 1) {
    print_usage(argv[0], stderr);
    return 2;
  }

  try {
    std::vector<Job> jobs;
    for (const std::string& path : paths) {
      jobs.push_back({path, undirected_pattern(read_matrix_market_file(path))});
    }
    if (use_corpus) {
      for (auto& entry : gen::common_corpus()) {
        if (!entry.square) continue;  // triangles need an adjacency matrix
        jobs.push_back({entry.name, undirected_pattern(entry.a)});
      }
    }
    if (rmat_scale > 0) {
      jobs.push_back({"rmat-" + std::to_string(rmat_scale),
                      undirected_pattern(gen::rmat(rmat_scale, edge_factor,
                                                   0.45, 0.22, 0.22, seed))});
    }
    if (jobs.empty()) {
      std::fprintf(stderr, "no input graphs (all sources disabled)\n");
      return 2;
    }

    SpeckConfig cfg;
    cfg.host_threads = threads;
    cfg.partitions = partitions;
    Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);

    std::printf(" %-14s %9s %11s %11s %12s", "graph", "vertices", "edges",
                "triangles", "masked(ms)");
    if (full_compare) std::printf(" %12s %8s", "full(ms)", "speedup");
    std::printf("\n");

    bool ok = true;
    for (const Job& job : jobs) {
      const Csr lower = lower_triangular(job.graph);

      // Masked fast path: C = (L*L) .* L, triangles = sum of C's values.
      // Warm-up builds the plan; timed iterations hit the transparent
      // cache, so the steady-state number is what a pipeline sees.
      double triangles = 0.0;
      double masked_best = 1e300;
      SpGemmResult masked_result = speck.multiply_masked(lower, lower, lower);
      if (!masked_result.ok()) {
        std::fprintf(stderr, "%s: masked multiply failed: %s\n",
                     job.name.c_str(), masked_result.failure_reason.c_str());
        return 1;
      }
      for (int it = 0; it < iters; ++it) {
        const auto t0 = std::chrono::steady_clock::now();
        masked_result = speck.multiply_masked(lower, lower, lower);
        const double sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
        masked_best = std::min(masked_best, sec);
      }
      triangles = sum_values(masked_result.c);

      // Oracle: the reference masked product must count the same triangles.
      const double expected = masked_product_sum(lower, lower, lower);
      if (triangles != expected) {
        std::fprintf(stderr,
                     "%s: masked count %.0f != oracle %.0f — MISMATCH\n",
                     job.name.c_str(), triangles, expected);
        ok = false;
      }

      std::printf(" %-14s %9d %11lld %11.0f %12.3f", job.name.c_str(),
                  job.graph.rows(),
                  static_cast<long long>(job.graph.nnz() / 2), triangles,
                  masked_best * 1e3);

      if (full_compare) {
        // The naive pipeline: full (unmasked) product, then filter the
        // result down to the mask positions.
        double full_best = 1e300;
        double full_triangles = 0.0;
        for (int it = 0; it < iters; ++it) {
          const auto t0 = std::chrono::steady_clock::now();
          const SpGemmResult full = speck.multiply(lower, lower);
          if (!full.ok()) {
            std::fprintf(stderr, "%s: full multiply failed: %s\n",
                         job.name.c_str(), full.failure_reason.c_str());
            return 1;
          }
          full_triangles = filter_sum(full.c, lower);
          const double sec = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
          full_best = std::min(full_best, sec);
        }
        if (full_triangles != expected) {
          std::fprintf(stderr,
                       "%s: full+filter count %.0f != oracle %.0f — "
                       "MISMATCH\n",
                       job.name.c_str(), full_triangles, expected);
          ok = false;
        }
        std::printf(" %12.3f %7.2fx", full_best * 1e3,
                    full_best / masked_best);
      }
      std::printf("\n");
    }

    if (!ok) {
      std::fprintf(stderr, "FAIL: triangle counts diverge from the oracle\n");
      return 1;
    }
    std::printf("all counts match the masked-Gustavson oracle\n");
    return 0;
  } catch (...) {
    return exit_code(status_from_current_exception().code);
  }
}
