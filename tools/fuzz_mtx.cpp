// fuzz_mtx — deterministic mutation-based fuzz driver for the Matrix Market
// reader (and, for inputs that survive parsing, the spECK pipeline).
//
//   fuzz_mtx [--corpus DIR] [--iterations N] [--seed S] [--artifact-dir DIR]
//
// Seeds are the built-in valid documents plus every file of --corpus DIR
// (e.g. tests/data/mtx, the checked-in malformed corpus). Each iteration
// picks a seed, applies a few random mutations (bit flips, byte edits, line
// duplication/deletion, truncation, token insertion, digit perturbation) and
// feeds the result to read_matrix_market. The contract under fuzzing:
//
//   * parse succeeds       -> the CSR passes validate(); small square
//                             matrices additionally run through Speck and
//                             must match the Gustavson oracle bit-exactly
//   * parse fails          -> the error is BadInput (with context), never
//                             another exception type, a crash or UB
//
// Any contract violation writes the offending input to --artifact-dir as
// fuzz-crash-<iteration>.mtx and exits nonzero. Same seed + same iteration
// count => same byte stream of inputs, so failures reproduce exactly.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/prng.h"
#include "matrix/coo.h"
#include "matrix/io_mtx.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "ref/masked.h"
#include "speck/speck.h"

namespace {

using namespace speck;

const char* const kBuiltinSeeds[] = {
    "%%MatrixMarket matrix coordinate real general\n"
    "4 4 6\n"
    "1 1 1.5\n1 3 -2.0\n2 2 4.0\n3 1 0.25\n4 3 1.0\n4 4 -8.5\n",

    "%%MatrixMarket matrix coordinate real symmetric\n"
    "% symmetric seed with a comment\n"
    "3 3 4\n"
    "1 1 2.0\n2 1 -1.0\n3 2 0.5\n3 3 7.0\n",

    "%%MatrixMarket matrix coordinate pattern general\n"
    "5 5 5\n"
    "1 2\n2 3\n3 4\n4 5\n5 1\n",

    "%%MatrixMarket matrix coordinate integer general\n"
    "2 3 3\n"
    "1 1 3\n1 3 -4\n2 2 12\n",

    "%%MatrixMarket matrix coordinate real skew-symmetric\n"
    "3 3 2\n"
    "2 1 1.0\n3 1 -2.5\n",
};

/// A randomly generated valid document, so mutations also start from larger
/// well-formed inputs with diverse values.
std::string generated_seed(Xoshiro256& rng) {
  const auto rows = static_cast<index_t>(rng.next_int(1, 24));
  const auto cols = static_cast<index_t>(rng.next_int(1, 24));
  Coo coo(rows, cols);
  const std::int64_t nnz = rng.next_int(0, 64);
  for (std::int64_t i = 0; i < nnz; ++i) {
    coo.add(static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(rows))),
            static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols))),
            rng.next_double(-4.0, 4.0));
  }
  std::ostringstream out;
  write_matrix_market(out, coo.to_csr());
  return out.str();
}

/// Applies one random mutation in place.
void mutate(std::string& data, Xoshiro256& rng) {
  if (data.empty()) {
    data.push_back(static_cast<char>(rng.next_below(256)));
    return;
  }
  switch (rng.next_below(7)) {
    case 0: {  // flip one bit
      const auto pos = rng.next_below(data.size());
      data[pos] = static_cast<char>(data[pos] ^ (1u << rng.next_below(8)));
      break;
    }
    case 1: {  // overwrite one byte
      data[rng.next_below(data.size())] =
          static_cast<char>(rng.next_below(256));
      break;
    }
    case 2: {  // truncate
      data.resize(rng.next_below(data.size()));
      break;
    }
    case 3: {  // delete a span
      const auto begin = rng.next_below(data.size());
      const auto len = rng.next_below(data.size() - begin) + 1;
      data.erase(begin, len);
      break;
    }
    case 4: {  // duplicate a span
      const auto begin = rng.next_below(data.size());
      const auto len = std::min<std::uint64_t>(
          rng.next_below(64) + 1, data.size() - begin);
      data.insert(rng.next_below(data.size() + 1),
                  data.substr(begin, len));
      break;
    }
    case 5: {  // insert a hostile token
      static const char* const kTokens[] = {
          " -1", " 0", " 999999999999999999999", " nan", " inf", " -inf",
          " 1e308", " 0x10", " %", "\n", " \t ", " 2147483648",
      };
      const auto* token = kTokens[rng.next_below(std::size(kTokens))];
      data.insert(rng.next_below(data.size() + 1), token);
      break;
    }
    default: {  // perturb a digit
      const auto start = rng.next_below(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        const auto pos = (start + i) % data.size();
        if (data[pos] >= '0' && data[pos] <= '9') {
          data[pos] = static_cast<char>('0' + rng.next_below(10));
          break;
        }
      }
      break;
    }
  }
}

/// Collapses an input to its parser-state signature: which acceptance shape
/// or which rejection class (message with digits and quoted tokens
/// normalized away) the reader reached. Inputs mapping to a signature not
/// seen before are "interesting" and worth persisting as corpus seeds.
std::string parser_state_signature(const std::string& data) {
  std::istringstream in(data);
  Csr parsed;
  try {
    parsed = read_matrix_market(in);
  } catch (const BadInput& e) {
    std::string msg = e.what();
    // Strip the "<source>:<line>: " context prefix.
    const std::size_t ctx = msg.find(": ");
    if (ctx != std::string::npos) msg.erase(0, ctx + 2);
    // Collapse quoted tokens and digit runs, so line numbers and mutated
    // input bytes do not multiply one state into thousands. Everything from
    // the first quote on is input-token payload (which may itself contain
    // quotes, control bytes, even NULs that truncate what()) — the message
    // class is fully determined by the text before it.
    const std::size_t q0 = msg.find('\'');
    if (q0 != std::string::npos) msg.erase(q0);
    std::string norm;
    bool in_digits = false;
    for (const char c : msg) {
      if (c >= '0' && c <= '9') {
        if (!in_digits) norm += '#';
        in_digits = true;
      } else {
        norm += c;
        in_digits = false;
      }
    }
    // Messages whose tail is a raw input token collapse to their class.
    for (const char* prefix : {"unsupported field type", "unsupported symmetry"}) {
      if (norm.rfind(prefix, 0) == 0) return std::string("reject:") + prefix;
    }
    return "reject:" + norm;
  } catch (...) {
    return "error";  // contract violations are handled (and fail) elsewhere
  }
  std::string sig = "accept";
  sig += parsed.rows() == parsed.cols() ? ":square" : ":rect";
  if (parsed.rows() == 0 || parsed.cols() == 0) sig += ":degenerate";
  if (parsed.nnz() == 0) sig += ":empty";
  return sig;
}

/// Stable (FNV-1a) content address for persisted corpus entries.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The per-input contract; returns an error description on violation.
std::string check_input(const std::string& data, bool strict_duplicates) {
  Csr parsed;
  MtxOptions options;
  options.duplicates = strict_duplicates ? MtxOptions::DuplicatePolicy::kError
                                         : MtxOptions::DuplicatePolicy::kSum;
  std::istringstream in(data);
  try {
    parsed = read_matrix_market(in, options, "fuzz");
  } catch (const BadInput&) {
    return "";  // structured rejection is the expected failure mode
  } catch (const std::exception& e) {
    return std::string("non-BadInput exception from the reader: ") + e.what();
  } catch (...) {
    return "unknown exception from the reader";
  }

  try {
    parsed.validate();
    if (!parsed.sorted_within_rows()) {
      return "reader produced unsorted rows";
    }
    // Small square results also exercise the pipeline: spECK must match the
    // Gustavson oracle bit-for-bit on anything the reader accepts.
    if (parsed.rows() == parsed.cols() && parsed.rows() <= 64 &&
        parsed.nnz() <= 512) {
      Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
      speck.config().validate_inputs = true;
      const auto outcome = speck.try_multiply(parsed, parsed);
      if (!outcome.ok()) {
        return "pipeline failed on accepted input: " +
               outcome.status.to_string();
      }
      const Csr oracle = gustavson_spgemm(parsed, parsed);
      const auto diff = compare(outcome.result.c, oracle, 0.0);
      if (diff.has_value()) {
        return "pipeline result diverges from the oracle: " +
               diff->description;
      }
      // The accepted input doubles as its own output mask: anything the
      // reader lets through must also survive the masked pipeline (mask
      // validation included) and match the masked-Gustavson oracle
      // bit-for-bit.
      const SpGemmResult masked =
          speck.multiply_masked(parsed, parsed, parsed);
      if (!masked.ok()) {
        return "masked pipeline failed on accepted input: " +
               masked.failure_reason;
      }
      const auto masked_diff =
          compare(masked.c, masked_spgemm(parsed, parsed, parsed), 0.0);
      if (masked_diff.has_value()) {
        return "masked pipeline result diverges from the oracle: " +
               masked_diff->description;
      }
    }
  } catch (const std::exception& e) {
    return std::string("exception after successful parse: ") + e.what();
  } catch (...) {
    return "unknown exception after successful parse";
  }
  return "";
}

int run(int argc, char** argv) {
  std::vector<std::string> corpus_dirs;
  std::string persist_dir;
  std::string artifact_dir = ".";
  long long iterations = 2000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: %s [--corpus DIR]... [--iterations N] [--seed S]\n"
          "          [--artifact-dir DIR] [--corpus-dir DIR]\n"
          "\n"
          "Deterministic mutation fuzzer for the Matrix Market reader; see\n"
          "docs/robustness.md. Crashing inputs are written to\n"
          "<artifact-dir>/fuzz-crash-<iteration>.mtx. --corpus is repeatable.\n"
          "With --corpus-dir, inputs that reach a parser state no earlier\n"
          "input (or seed) reached are persisted there as\n"
          "state-<hash>.mtx, growing a coverage-seeking corpus across runs.\n"
          "\n"
          "exit codes: 0 all iterations upheld the contract, 1 contract\n"
          "  violation (artifact written), 2 usage error, 3 bad input,\n"
          "  4 resource exhausted, 5 internal error, 6 unknown exception\n",
          argv[0]);
      return 0;
    } else if (std::strcmp(argv[i], "--corpus") == 0) {
      corpus_dirs.emplace_back(need_value("--corpus"));
    } else if (std::strcmp(argv[i], "--corpus-dir") == 0) {
      persist_dir = need_value("--corpus-dir");
    } else if (std::strcmp(argv[i], "--artifact-dir") == 0) {
      artifact_dir = need_value("--artifact-dir");
    } else if (std::strcmp(argv[i], "--iterations") == 0) {
      iterations = std::atoll(need_value("--iterations"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }

  Xoshiro256 rng(seed);
  std::vector<std::string> seeds(std::begin(kBuiltinSeeds),
                                 std::end(kBuiltinSeeds));
  for (int i = 0; i < 4; ++i) seeds.push_back(generated_seed(rng));
  for (const std::string& corpus_dir : corpus_dirs) {
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());  // directory order is not stable
    for (const auto& path : files) {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      seeds.push_back(buffer.str());
    }
  }
  std::printf("fuzz_mtx: %zu seeds, %lld iterations, seed %llu\n", seeds.size(),
              iterations, static_cast<unsigned long long>(seed));

  // Parser states the seeds already reach are not interesting to persist.
  std::vector<std::string> seen_states;
  const auto state_is_new = [&](const std::string& sig) {
    for (const std::string& s : seen_states) {
      if (s == sig) return false;
    }
    seen_states.push_back(sig);
    return true;
  };
  if (!persist_dir.empty()) {
    for (const std::string& s : seeds) (void)state_is_new(parser_state_signature(s));
  }

  long long rejected = 0;
  long long accepted = 0;
  long long persisted = 0;
  for (long long iter = 0; iter < iterations; ++iter) {
    std::string data = seeds[rng.next_below(seeds.size())];
    const std::uint64_t mutations = rng.next_below(4) + 1;
    for (std::uint64_t m = 0; m < mutations; ++m) mutate(data, rng);

    const std::string violation = check_input(data, rng.next_below(2) == 0);
    if (!violation.empty()) {
      std::filesystem::create_directories(artifact_dir);
      const auto artifact = std::filesystem::path(artifact_dir) /
                            ("fuzz-crash-" + std::to_string(iter) + ".mtx");
      std::ofstream out(artifact, std::ios::binary);
      out.write(data.data(), static_cast<std::streamsize>(data.size()));
      std::fprintf(stderr,
                   "fuzz_mtx: iteration %lld violated the contract: %s\n"
                   "fuzz_mtx: input written to %s\n",
                   iter, violation.c_str(), artifact.c_str());
      return 1;
    }
    // Inputs reaching a new parser state become corpus seeds — both for
    // this run (mutation starts from them too) and, persisted, for the next.
    if (!persist_dir.empty() && data.size() <= 4096) {
      const std::string sig = parser_state_signature(data);
      if (state_is_new(sig)) {
        std::filesystem::create_directories(persist_dir);
        const auto path =
            std::filesystem::path(persist_dir) /
            ("state-" + std::to_string(fnv1a(data) & 0xffffffffu) + ".mtx");
        std::ofstream out(path, std::ios::binary);
        out.write(data.data(), static_cast<std::streamsize>(data.size()));
        seeds.push_back(data);
        ++persisted;
      }
    }

    // Re-parse leniently just to keep the accepted/rejected tally honest.
    std::istringstream in(data);
    try {
      (void)read_matrix_market(in);
      ++accepted;
    } catch (const BadInput&) {
      ++rejected;
    }
  }
  if (!persist_dir.empty()) {
    std::printf("fuzz_mtx: persisted %lld new-state inputs to %s\n", persisted,
                persist_dir.c_str());
  }
  std::printf("fuzz_mtx: OK — %lld accepted, %lld rejected, 0 violations\n",
              accepted, rejected);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const speck::SpeckError& e) {
    const auto* as_std = dynamic_cast<const std::exception*>(&e);
    const speck::Status status = speck::Status::error(
        e.code(), as_std != nullptr ? as_std->what() : "", e.context());
    std::fprintf(stderr, "fuzz_mtx: %s\n", status.to_string().c_str());
    return speck::exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_mtx: [InternalError] %s\n", e.what());
    return speck::exit_code(speck::ErrorCode::kInternal);
  } catch (...) {
    std::fprintf(stderr, "fuzz_mtx: unknown exception\n");
    return 6;
  }
}
