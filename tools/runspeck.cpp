// runspeck — the command-line driver matching the paper artifact's
// runspECK executable (Appendix A.2):
//
//   runspeck <path-to-matrix.mtx> [config.ini] [--threads N]
//
// `--threads N` sets the host thread pool the pipeline stages run on (the
// result and the simulated times are bit-identical for every N; only host
// wall-clock changes). Defaults to SPECK_THREADS / hardware concurrency.
//
// Recognized config.ini options (all optional, artifact-compatible names):
//   TrackCompleteTimes   = true|false   print end-to-end timing (default on)
//   TrackIndividualTimes = true|false   print the per-stage breakdown
//   CompareResult        = true|false   validate against the cuSPARSE-like
//                                       baseline, error on mismatch
//   TraceLaunches        = true|false   print the per-launch execution trace
//   IterationsWarmUp     = <n>          warm-up iterations (default 1)
//   IterationsExecution  = <n>          timed iterations (default 5)
//   InputFile            = <path>       overrides the command-line matrix
//   Threads              = <n>          host threads (--threads wins)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "baselines/cusparse_like.h"
#include "baselines/suite.h"
#include "common/ini.h"
#include "common/thread_pool.h"
#include "matrix/io_mtx.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "speck/speck.h"

int main(int argc, char** argv) {
  using namespace speck;
  // Split off the --threads flag; everything else keeps positional meaning.
  int flag_threads = 0;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      flag_threads = i + 1 < argc ? std::atoi(argv[i + 1]) : 0;
      if (flag_threads < 1) {
        std::fprintf(stderr, "--threads requires a positive integer\n");
        return 2;
      }
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) {
    std::fprintf(stderr,
                 "usage: %s <path-to-matrix.mtx> [config.ini] [--threads N]\n",
                 argv[0]);
    return 2;
  }

  IniConfig config;
  if (nargs > 2) config = IniConfig::parse_file(args[2]);
  const std::string input = config.get_string("InputFile", args[1]);
  const int threads = flag_threads > 0
                          ? flag_threads
                          : static_cast<int>(config.get_int("Threads", 0));
  if (threads > 0) set_global_thread_count(threads);
  std::printf("host threads: %d\n",
              threads > 0 ? threads : default_thread_count());
  const bool track_complete = config.get_bool("TrackCompleteTimes", true);
  const bool track_individual = config.get_bool("TrackIndividualTimes", false);
  const bool compare_result = config.get_bool("CompareResult", false);
  const bool trace_launches = config.get_bool("TraceLaunches", false);
  const auto warmup = static_cast<int>(config.get_int("IterationsWarmUp", 1));
  const auto iterations = static_cast<int>(config.get_int("IterationsExecution", 5));

  std::printf("reading %s ...\n", input.c_str());
  Csr a = read_matrix_market_file(input);
  Csr b;
  if (a.rows() == a.cols()) {
    b = a;  // C = A*A
  } else {
    std::printf("rectangular input: computing C = A*A^T\n");
    b = transpose(a);
  }
  const offset_t products = count_products(a, b);
  std::printf("A: %s, products: %lld\n", a.shape_string().c_str(),
              static_cast<long long>(products));

  const std::string algorithm_name = config.get_string("Algorithm", "speck");
  const auto algorithm = baselines::make_algorithm(
      algorithm_name, sim::DeviceSpec::titan_v(), sim::CostModel{});
  // The launch trace is a Speck-specific diagnostic.
  auto* speck_ptr = dynamic_cast<Speck*>(algorithm.get());
  std::printf("algorithm: %s\n", algorithm_name.c_str());
  for (int i = 0; i < warmup; ++i) (void)algorithm->multiply(a, b);

  double total_seconds = 0.0;
  SpGemmResult last;
  for (int i = 0; i < std::max(iterations, 1); ++i) {
    last = algorithm->multiply(a, b);
    if (!last.ok()) {
      std::fprintf(stderr, "multiplication failed: %s\n",
                   last.failure_reason.c_str());
      return 1;
    }
    total_seconds += last.seconds;
  }
  const double seconds = total_seconds / std::max(iterations, 1);

  std::printf("C: %s\n", last.c.shape_string().c_str());
  if (track_complete) {
    std::printf("simulated time: %.3f ms (%.2f GFLOPS), peak memory %.1f MB\n",
                seconds * 1e3,
                2.0 * static_cast<double>(products) / seconds * 1e-9,
                static_cast<double>(last.peak_memory_bytes) / (1024.0 * 1024.0));
  }
  if (track_individual) {
    std::printf("stage breakdown: %s\n", last.timeline.to_string().c_str());
  }
  if (trace_launches && speck_ptr != nullptr) {
    std::printf("\n%s", speck_ptr->last_trace().to_string().c_str());
  }
  if (compare_result) {
    baselines::CusparseLike reference(sim::DeviceSpec::titan_v(), sim::CostModel{});
    const SpGemmResult expected = reference.multiply(a, b);
    const auto diff = compare(last.c, expected.c);
    if (diff.has_value()) {
      std::fprintf(stderr, "ERROR: column indices do not match the reference: %s\n",
                   diff->description.c_str());
      return 1;
    }
    std::printf("result matches the cuSPARSE-like reference\n");
  }
  return 0;
}
