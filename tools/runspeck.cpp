// runspeck — the command-line driver matching the paper artifact's
// runspECK executable (Appendix A.2):
//
//   runspeck <path-to-matrix.mtx> [config.ini] [--threads N]
//            [--fault-spec SPEC] [--validate] [--simd BACKEND]
//            [--planning MODE] [--partitions N]
//
// `--threads N` sets the host thread pool the pipeline stages run on (the
// result and the simulated times are bit-identical for every N; only host
// wall-clock changes). Defaults to SPECK_THREADS / hardware concurrency.
//
// Recognized config.ini options (all optional, artifact-compatible names):
//   TrackCompleteTimes   = true|false   print end-to-end timing (default on)
//   TrackIndividualTimes = true|false   print the per-stage breakdown
//   CompareResult        = true|false   validate against the cuSPARSE-like
//                                       baseline, error on mismatch
//   TraceLaunches        = true|false   print the per-launch execution trace
//   IterationsWarmUp     = <n>          warm-up iterations (default 1)
//   IterationsExecution  = <n>          timed iterations (default 5)
//   InputFile            = <path>       overrides the command-line matrix
//   Threads              = <n>          host threads (--threads wins)
//   PlanCache            = true|false   transparent structure-reuse cache
//                                       (default on; see docs/performance.md)
//   PlanCacheLimitBytes  = <n>          plan-cache size cap in bytes
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cusparse_like.h"
#include "baselines/suite.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/ini.h"
#include "common/thread_pool.h"
#include "matrix/io_mtx.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/masked.h"
#include "speck/speck.h"

namespace {

void print_usage(const char* prog, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s <path-to-matrix.mtx> [config.ini] [options]\n"
      "\n"
      "options:\n"
      "  --threads N        host thread pool size (results are identical\n"
      "                     for every N; default SPECK_THREADS or all cores)\n"
      "  --fault-spec SPEC  deterministic fault injection; SPEC is a comma-\n"
      "                     separated list of key=value pairs:\n"
      "                       estimate-scale=<f>      scale row estimates\n"
      "                       estimate-jitter=<f>     per-row jitter in [0,1)\n"
      "                       seed=<u64>              jitter seed\n"
      "                       hash-overflow-after=<n> spill maps after n keys\n"
      "                       scratchpad-scale=<f>    shrink scratchpads (0,1]\n"
      "                       memory-budget-mb=<f>    cap simulated memory\n"
      "                       estimator-scale=<f>     scale sampled NNZ\n"
      "                                               estimates (forces the\n"
      "                                               estimated-planning\n"
      "                                               fallback when < 1)\n"
      "                     e.g. --fault-spec estimate-scale=0.25,seed=7\n"
      "  --validate         re-validate CSR invariants at the API boundary\n"
      "  --simd BACKEND     SIMD backend for the kernel hot loops:\n"
      "                     auto|scalar|sse|avx2|neon (default auto — the\n"
      "                     SPECK_SIMD env var, then CPU detection). Results\n"
      "                     are bit-identical for every backend\n"
      "  --planning MODE    plan construction mode: auto|exact|estimated\n"
      "                     (default auto — the SPECK_PLANNING env var, then\n"
      "                     exact). Estimated planning samples row products\n"
      "                     instead of running the exact symbolic pass;\n"
      "                     results are bit-identical either way\n"
      "  --partitions N     two-level executor: group the worker threads into\n"
      "                     N partition-local teams with cross-partition work\n"
      "                     stealing (default auto — the SPECK_PARTITIONS env\n"
      "                     var, then 1 = flat pool). Results are\n"
      "                     bit-identical for every N\n"
      "  --mask PATH        output-masked multiply C = (A*B) .* mask(PATH):\n"
      "                     the .mtx pattern at PATH (shape rows(A) x cols(B))\n"
      "                     restricts which C positions are computed; the\n"
      "                     symbolic pass is skipped and accumulators shrink\n"
      "                     to min(products, mask row nnz). Speck only;\n"
      "                     CompareResult checks the masked oracle instead\n"
      "  --help             this message\n"
      "\n"
      "exit codes:\n"
      "  0  success\n"
      "  1  runtime failure (multiplication failed or mismatch vs reference)\n"
      "  2  usage error\n"
      "  3  bad input (malformed matrix file, invalid flag value)\n"
      "  4  resource exhausted (size overflow, simulated memory budget)\n"
      "  5  internal error (library invariant violated)\n"
      "  6  unknown exception\n",
      prog);
}

int run(int argc, char** argv) {
  using namespace speck;
  // Split off the flags; everything else keeps positional meaning.
  int flag_threads = 0;
  int flag_partitions = 0;
  bool flag_validate = false;
  SimdBackend flag_simd = SimdBackend::kAuto;
  PlanningMode flag_planning = PlanningMode::kAuto;
  FaultSpec fault_spec;
  std::string mask_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0], stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--validate") == 0) {
      flag_validate = true;
      continue;
    }
    if (std::strcmp(argv[i], "--fault-spec") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--fault-spec requires an argument\n");
        return 2;
      }
      fault_spec = parse_fault_spec(argv[i + 1]);
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--simd") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--simd requires an argument\n");
        return 2;
      }
      const auto parsed = simd::parse_backend(argv[i + 1]);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "--simd: unknown backend '%s' "
                     "(expected auto|scalar|sse|avx2|neon)\n",
                     argv[i + 1]);
        return 3;
      }
      if (!simd::backend_available(*parsed)) {
        std::fprintf(stderr, "--simd: backend '%s' is not available on this CPU\n",
                     argv[i + 1]);
        return 3;
      }
      flag_simd = *parsed;
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--planning") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--planning requires an argument\n");
        return 2;
      }
      const auto parsed = parse_planning_mode(argv[i + 1]);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "--planning: unknown mode '%s' "
                     "(expected auto|exact|estimated)\n",
                     argv[i + 1]);
        return 3;
      }
      flag_planning = *parsed;
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--mask") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--mask requires a matrix file path\n");
        return 2;
      }
      mask_path = argv[i + 1];
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      flag_threads = i + 1 < argc ? std::atoi(argv[i + 1]) : 0;
      if (flag_threads < 1) {
        std::fprintf(stderr, "--threads requires a positive integer\n");
        return 2;
      }
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--partitions") == 0) {
      flag_partitions = i + 1 < argc ? std::atoi(argv[i + 1]) : -1;
      if (flag_partitions < 1 || flag_partitions > 256) {
        std::fprintf(stderr,
                     "--partitions requires an integer in [1, 256]\n");
        return 2;
      }
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) {
    print_usage(argv[0], stderr);
    return 2;
  }

  IniConfig config;
  if (nargs > 2) config = IniConfig::parse_file(args[2]);
  const std::string input = config.get_string("InputFile", args[1]);
  const int threads = flag_threads > 0
                          ? flag_threads
                          : static_cast<int>(config.get_int("Threads", 0));
  if (threads > 0) set_global_thread_count(threads);
  std::printf("host threads: %d\n",
              threads > 0 ? threads : default_thread_count());
  // Note which backend the hot loops will actually dispatch to; the choice
  // never affects results, only host wall time.
  std::printf("simd backend: %s (requested %s)\n",
              simd::backend_name(simd::resolve_backend(flag_simd)),
              simd::backend_name(flag_simd));
  std::printf("planning: %s (requested %s)\n",
              planning_mode_name(resolve_planning(flag_planning)),
              planning_mode_name(flag_planning));
  std::printf("partitions: %d%s\n", resolve_partitions(flag_partitions),
              flag_partitions == 0 ? " (auto)" : "");
  const bool track_complete = config.get_bool("TrackCompleteTimes", true);
  const bool track_individual = config.get_bool("TrackIndividualTimes", false);
  const bool compare_result = config.get_bool("CompareResult", false);
  const bool trace_launches = config.get_bool("TraceLaunches", false);
  const auto warmup = static_cast<int>(config.get_int("IterationsWarmUp", 1));
  const auto iterations = static_cast<int>(config.get_int("IterationsExecution", 5));

  std::printf("reading %s ...\n", input.c_str());
  Csr a = read_matrix_market_file(input);
  Csr b;
  if (a.rows() == a.cols()) {
    b = a;  // C = A*A
  } else {
    std::printf("rectangular input: computing C = A*A^T\n");
    b = transpose(a);
  }
  const offset_t products = count_products(a, b);
  std::printf("A: %s, products: %lld\n", a.shape_string().c_str(),
              static_cast<long long>(products));

  std::shared_ptr<const Csr> mask;
  if (!mask_path.empty()) {
    std::printf("reading mask %s ...\n", mask_path.c_str());
    mask = std::make_shared<const Csr>(read_matrix_market_file(mask_path));
    std::printf("mask: %s\n", mask->shape_string().c_str());
  }

  const std::string algorithm_name = config.get_string("Algorithm", "speck");
  const auto algorithm = baselines::make_algorithm(
      algorithm_name, sim::DeviceSpec::titan_v(), sim::CostModel{});
  // The launch trace, fault injection and input validation are
  // Speck-specific.
  auto* speck_ptr = dynamic_cast<Speck*>(algorithm.get());
  if (speck_ptr != nullptr) {
    speck_ptr->config().mask = mask;
    speck_ptr->config().validate_inputs = flag_validate;
    speck_ptr->config().simd_backend = flag_simd;
    speck_ptr->config().planning = flag_planning;
    speck_ptr->config().partitions = flag_partitions;
    speck_ptr->config().faults = fault_spec;
    speck_ptr->config().plan_cache = config.get_bool("PlanCache", true);
    speck_ptr->config().plan_cache_limit_bytes = static_cast<std::size_t>(
        config.get_int("PlanCacheLimitBytes",
                       static_cast<long long>(
                           speck_ptr->config().plan_cache_limit_bytes)));
    if (fault_spec.enabled()) {
      std::printf("fault injection: %s\n", describe(fault_spec).c_str());
    }
  } else if (fault_spec.enabled() || flag_validate ||
             flag_planning != PlanningMode::kAuto || flag_partitions != 0 ||
             mask != nullptr) {
    std::fprintf(stderr,
                 "--fault-spec/--validate/--planning/--partitions/--mask only "
                 "apply to Algorithm=speck (got %s)\n",
                 algorithm_name.c_str());
    return 2;
  }
  std::printf("algorithm: %s\n", algorithm_name.c_str());
  for (int i = 0; i < warmup; ++i) (void)algorithm->multiply(a, b);

  double total_seconds = 0.0;
  SpGemmResult last;
  for (int i = 0; i < std::max(iterations, 1); ++i) {
    last = algorithm->multiply(a, b);
    if (!last.ok()) {
      if (last.status == SpGemmStatus::kOutOfMemory) {
        throw ResourceExhausted(last.failure_reason, "runspeck");
      }
      std::fprintf(stderr, "multiplication failed: %s\n",
                   last.failure_reason.c_str());
      return 1;
    }
    total_seconds += last.seconds;
  }
  const double seconds = total_seconds / std::max(iterations, 1);

  std::printf("C: %s\n", last.c.shape_string().c_str());
  if (track_complete) {
    std::printf("simulated time: %.3f ms (%.2f GFLOPS), peak memory %.1f MB\n",
                seconds * 1e3,
                2.0 * static_cast<double>(products) / seconds * 1e-9,
                static_cast<double>(last.peak_memory_bytes) / (1024.0 * 1024.0));
  }
  if (track_individual) {
    std::printf("stage breakdown: %s\n", last.timeline.to_string().c_str());
  }
  if (speck_ptr != nullptr && speck_ptr->last_diagnostics().estimated_planning) {
    std::printf("estimated planning: %lld row(s) underflowed the sampled "
                "estimate and re-ran the exact fallback\n",
                static_cast<long long>(
                    speck_ptr->last_diagnostics().numeric.estimate_underflow_rows));
  }
  if (speck_ptr != nullptr &&
      speck_ptr->last_diagnostics().partition.partitions > 1) {
    const auto& part = speck_ptr->last_diagnostics().partition;
    std::printf("partitions: %d team(s), %zu stolen chunk(s), "
                "imbalance ratio %.2f\n",
                part.partitions, part.steal_count(), part.imbalance_ratio());
    std::string nodes;
    for (std::size_t t = 0; t < part.team_numa_nodes.size(); ++t) {
      if (t > 0) nodes += " ";
      nodes += part.team_numa_nodes[t] >= 0
                   ? std::to_string(part.team_numa_nodes[t])
                   : "?";
    }
    std::printf("partition numa nodes: [%s]\n", nodes.c_str());
  }
  if (speck_ptr != nullptr && speck_ptr->last_diagnostics().plan_cache_hit) {
    std::printf(
        "structure reuse: repeated iterations hit the plan cache "
        "(values-only replay; see docs/performance.md)\n");
  }
  if (trace_launches && speck_ptr != nullptr) {
    std::printf("\n%s", speck_ptr->last_trace().to_string().c_str());
  }
  if (compare_result) {
    // With --mask the product is output-masked, so the unmasked baseline
    // would spuriously mismatch; check against the masked oracle instead.
    Csr expected_c;
    if (mask != nullptr) {
      expected_c = masked_spgemm(a, b, *mask);
    } else {
      baselines::CusparseLike reference(sim::DeviceSpec::titan_v(),
                                        sim::CostModel{});
      expected_c = reference.multiply(a, b).c;
    }
    const auto diff = compare(last.c, expected_c);
    if (diff.has_value()) {
      std::fprintf(stderr, "ERROR: column indices do not match the reference: %s\n",
                   diff->description.c_str());
      return 1;
    }
    std::printf("result matches the %s reference\n",
                mask != nullptr ? "masked-Gustavson" : "cuSPARSE-like");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const speck::SpeckError& e) {
    const auto* as_std = dynamic_cast<const std::exception*>(&e);
    const speck::Status status = speck::Status::error(
        e.code(), as_std != nullptr ? as_std->what() : "", e.context());
    std::fprintf(stderr, "runspeck: %s\n", status.to_string().c_str());
    return speck::exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "runspeck: [InternalError] %s\n", e.what());
    return speck::exit_code(speck::ErrorCode::kInternal);
  } catch (...) {
    std::fprintf(stderr, "runspeck: unknown exception\n");
    return 6;
  }
}
