// make_corpus — writes the synthetic corpora to disk as Matrix Market files
// so they can be fed to runspeck or external tools.
//
//   make_corpus <output-dir> [common|eval|test]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/check.h"
#include "gen/corpus.h"
#include "matrix/io_mtx.h"

namespace {

int run(int argc, char** argv) {
  using namespace speck;
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    std::printf(
        "usage: %s <output-dir> [common|eval|test]\n"
        "\n"
        "exit codes: 0 success, 2 usage error, 3 bad input,\n"
        "  4 resource exhausted, 5 internal error, 6 unknown exception\n",
        argv[0]);
    return 0;
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output-dir> [common|eval|test]\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  const std::string which = argc > 2 ? argv[2] : "common";

  std::vector<gen::CorpusEntry> corpus;
  if (which == "common") {
    corpus = gen::common_corpus();
  } else if (which == "eval") {
    corpus = gen::evaluation_collection();
  } else if (which == "test") {
    corpus = gen::test_corpus();
  } else {
    std::fprintf(stderr, "unknown corpus '%s'\n", which.c_str());
    return 2;
  }

  std::filesystem::create_directories(dir);
  for (const auto& entry : corpus) {
    const auto path = dir / (entry.name + ".mtx");
    write_matrix_market_file(path.string(), entry.a);
    std::printf("wrote %s (%s)\n", path.c_str(), entry.a.shape_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const speck::SpeckError& e) {
    const auto* as_std = dynamic_cast<const std::exception*>(&e);
    const speck::Status status = speck::Status::error(
        e.code(), as_std != nullptr ? as_std->what() : "", e.context());
    std::fprintf(stderr, "make_corpus: %s\n", status.to_string().c_str());
    return speck::exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "make_corpus: [InternalError] %s\n", e.what());
    return speck::exit_code(speck::ErrorCode::kInternal);
  } catch (...) {
    std::fprintf(stderr, "make_corpus: unknown exception\n");
    return 6;
  }
}
