// make_corpus — writes the synthetic corpora to disk as Matrix Market files
// so they can be fed to runspeck or external tools.
//
//   make_corpus <output-dir> [common|eval|test]
#include <cstdio>
#include <filesystem>
#include <string>

#include "gen/corpus.h"
#include "matrix/io_mtx.h"

int main(int argc, char** argv) {
  using namespace speck;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output-dir> [common|eval|test]\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  const std::string which = argc > 2 ? argv[2] : "common";

  std::vector<gen::CorpusEntry> corpus;
  if (which == "common") {
    corpus = gen::common_corpus();
  } else if (which == "eval") {
    corpus = gen::evaluation_collection();
  } else if (which == "test") {
    corpus = gen::test_corpus();
  } else {
    std::fprintf(stderr, "unknown corpus '%s'\n", which.c_str());
    return 2;
  }

  std::filesystem::create_directories(dir);
  for (const auto& entry : corpus) {
    const auto path = dir / (entry.name + ".mtx");
    write_matrix_market_file(path.string(), entry.a);
    std::printf("wrote %s (%s)\n", path.c_str(), entry.a.shape_string().c_str());
  }
  return 0;
}
