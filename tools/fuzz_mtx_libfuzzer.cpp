// libFuzzer entry point for the Matrix Market reader (built only with
// -DSPECK_LIBFUZZER=ON under clang):
//
//   cmake -B build-fuzz -DSPECK_LIBFUZZER=ON \
//         -DCMAKE_CXX_COMPILER=clang++ && cmake --build build-fuzz
//   build-fuzz/tools/fuzz_mtx_libfuzzer tests/data/mtx
//
// The contract mirrors tools/fuzz_mtx: BadInput is the only acceptable
// failure mode; anything the reader accepts must pass Csr::validate().
// Coverage guidance comes from libFuzzer itself; the deterministic driver
// stays the CI workhorse because it needs no special toolchain.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/check.h"
#include "matrix/io_mtx.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const speck::Csr parsed = speck::read_matrix_market(in);
    parsed.validate();
  } catch (const speck::BadInput&) {
    // Structured rejection — the expected outcome for malformed input.
  }
  return 0;
}
