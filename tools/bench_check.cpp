// bench_check — the CI bench-regression gate:
//
//   bench_check --baseline BENCH_x.json --fresh fresh.json
//               [--metric NAME]... [--info-metric NAME]...
//               [--max-regression F] [--report FILE]
//
// Compares a fresh benchmark run (bench binary piped through bench_to_json)
// against the checked-in baseline JSON. For every `--metric` (repeatable;
// default: speedup) and every point label present in both files, the fresh
// value must not fall below baseline * (1 - max-regression); metrics are
// higher-is-better (speedups, requests/second). Top-level metrics are
// compared the same way under the label "(top)".
//
// `--info-metric` (repeatable) metrics appear in the delta table with
// status "info" but never gate and never count toward `compared` — for
// lifecycle counters (shed / timed-out / degraded) worth eyeballing in the
// report without turning them into perf floors.
//
// `--report FILE` writes a per-metric delta table (also printed to stdout)
// for upload as a CI artifact, so a red gate shows exactly which point
// moved and by how much.
//
// Exit codes: 0 all compared metrics within bounds, 1 regression detected
// or nothing compared (a gate that silently compares nothing is a broken
// gate), 2 usage or unreadable/unparseable input.
//
// The parser covers exactly the JSON subset bench_to_json emits: one object
// of scalars plus a "points" array of flat objects; strings, numbers,
// true/false/null.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Point {
  std::string label;
  std::map<std::string, double> numbers;
};

struct BenchFile {
  std::map<std::string, double> top;  ///< numeric top-level keys
  std::vector<Point> points;
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  bool parse(BenchFile* out) {
    skip_ws();
    return parse_object([&](const std::string& key) {
      if (key == "points") {
        return parse_points(out);
      }
      double value = 0.0;
      bool numeric = false;
      if (!parse_scalar(&value, &numeric)) return false;
      if (numeric) out->top[key] = value;
      return true;
    });
  }

 private:
  bool parse_points(BenchFile* out) {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    do {
      Point point;
      if (!parse_object([&](const std::string& key) {
            double value = 0.0;
            bool numeric = false;
            std::string str;
            if (!parse_scalar(&value, &numeric, &str)) return false;
            if (key == "label") {
              point.label = str;
            } else if (numeric) {
              point.numbers[key] = value;
            }
            return true;
          })) {
        return false;
      }
      out->points.push_back(std::move(point));
      skip_ws();
    } while (consume(','));
    return consume(']');
  }

  /// { "key": <value>, ... } — `field` consumes each value.
  template <typename Field>
  bool parse_object(Field field) {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    do {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!field(key)) return false;
      skip_ws();
    } while (consume(','));
    return consume('}');
  }

  /// string | number | true | false | null
  bool parse_scalar(double* value, bool* numeric, std::string* str = nullptr) {
    *numeric = false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      if (str != nullptr) *str = s;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "true", 4) == 0) {
      pos_ += 4;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "false", 5) == 0) {
      pos_ += 5;
      return true;
    }
    if (std::strncmp(text_.c_str() + pos_, "null", 4) == 0) {
      pos_ += 4;
      return true;
    }
    char* end = nullptr;
    *value = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    *numeric = true;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;
        }
      }
      out->push_back(c);
    }
    return consume('"');
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

bool load(const char* path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!Parser(buffer.str()).parse(out)) {
    std::fprintf(stderr, "bench_check: cannot parse %s\n", path);
    return false;
  }
  return true;
}

const double* find_metric(const std::map<std::string, double>& m,
                          const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? nullptr : &it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* fresh_path = nullptr;
  const char* report_path = nullptr;
  std::vector<std::string> metrics;
  std::vector<std::string> info_metrics;
  double max_regression = 0.10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fresh") == 0 && i + 1 < argc) {
      fresh_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
      metrics.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--info-metric") == 0 && i + 1 < argc) {
      info_metrics.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s --baseline FILE --fresh FILE [--metric NAME]... "
                   "[--info-metric NAME]... [--max-regression F] "
                   "[--report FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (baseline_path == nullptr || fresh_path == nullptr) {
    std::fprintf(stderr, "bench_check: --baseline and --fresh are required\n");
    return 2;
  }
  if (metrics.empty()) metrics.emplace_back("speedup");

  BenchFile baseline;
  BenchFile fresh;
  if (!load(baseline_path, &baseline) || !load(fresh_path, &fresh)) return 2;

  // label -> metrics, "(top)" for top-level scalars.
  std::vector<std::pair<std::string, const std::map<std::string, double>*>>
      base_scopes;
  base_scopes.emplace_back("(top)", &baseline.top);
  for (const Point& p : baseline.points) base_scopes.emplace_back(p.label, &p.numbers);
  std::map<std::string, const std::map<std::string, double>*> fresh_scopes;
  fresh_scopes["(top)"] = &fresh.top;
  for (const Point& p : fresh.points) fresh_scopes[p.label] = &p.numbers;

  std::ostringstream report;
  report << "bench-regression report\n"
         << "baseline: " << baseline_path << "\n"
         << "fresh:    " << fresh_path << "\n"
         << "floor:    baseline * " << 1.0 - max_regression << "\n\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %-24s %12s %12s %8s  %s\n", "point",
                "metric", "baseline", "fresh", "delta%", "status");
  report << line;

  std::size_t compared = 0;
  std::size_t regressed = 0;
  for (const auto& [label, base_metrics] : base_scopes) {
    const auto fresh_it = fresh_scopes.find(label);
    if (fresh_it == fresh_scopes.end()) continue;
    for (const std::string& metric : metrics) {
      const double* base = find_metric(*base_metrics, metric);
      const double* now = find_metric(*fresh_it->second, metric);
      if (base == nullptr || now == nullptr) continue;
      ++compared;
      const double floor = *base * (1.0 - max_regression);
      const bool ok = *now >= floor;
      if (!ok) ++regressed;
      const double delta =
          *base != 0.0 ? (*now - *base) / *base * 100.0 : 0.0;
      std::snprintf(line, sizeof(line), "%-12s %-24s %12.5g %12.5g %+8.2f  %s\n",
                    label.c_str(), metric.c_str(), *base, *now, delta,
                    ok ? "ok" : "REGRESSED");
      report << line;
    }
    // Informational metrics: shown for the record, never gated, never
    // counted — a missing info metric on either side is silently skipped so
    // older baselines keep working.
    for (const std::string& metric : info_metrics) {
      const double* base = find_metric(*base_metrics, metric);
      const double* now = find_metric(*fresh_it->second, metric);
      if (base == nullptr || now == nullptr) continue;
      const double delta =
          *base != 0.0 ? (*now - *base) / *base * 100.0 : 0.0;
      std::snprintf(line, sizeof(line), "%-12s %-24s %12.5g %12.5g %+8.2f  %s\n",
                    label.c_str(), metric.c_str(), *base, *now, delta, "info");
      report << line;
    }
  }

  report << "\ncompared=" << compared << " regressed=" << regressed << "\n";
  std::fputs(report.str().c_str(), stdout);
  if (report_path != nullptr) {
    std::ofstream out(report_path);
    out << report.str();
  }

  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_check: no metric was compared — wrong --metric or "
                 "mismatched point labels\n");
    return 1;
  }
  return regressed == 0 ? 0 : 1;
}
