// Converts the key=value lines the benchmark binaries print into JSON with a
// shared top-level schema, so perf-trajectory points (BENCH_hotpath.json,
// BENCH_reuse.json) can be checked in and diffed across commits or uploaded
// as CI artifacts:
//
//   {
//     "bench": "<name>",      <- and any other top-level key=value lines
//     ...,
//     "points": [
//       {"label": "<label>", ...},   <- one object per point=<label> group
//       ...
//     ]
//   }
//
// Usage: some_bench | bench_to_json [--out FILE]
//
// A `point=<label>` line opens a point: subsequent keys belong to it until a
// bare `point=` closes it (or another `point=<label>` opens the next one).
// Keys outside any point go to the top level. Values that parse fully as
// numbers are emitted as JSON numbers; everything else becomes a string.
// Lines without '=' are ignored, later duplicates of a key win within their
// scope, and key order follows first appearance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace {

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// An ordered key=value map (small; linear updates keep first-seen order).
struct KvList {
  std::vector<std::string> keys, values;

  void put(const std::string& key, const std::string& value) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) {
        values[i] = value;
        return;
      }
    }
    keys.push_back(key);
    values.push_back(value);
  }
};

std::string render_value(const std::string& v) {
  return is_number(v) ? v : "\"" + json_escape(v) + "\"";
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] < key=value lines\n", argv[0]);
      return 2;
    }
  }

  KvList top;
  std::vector<std::string> point_labels;
  std::vector<KvList> points;
  bool in_point = false;
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "point") {
      in_point = !value.empty();
      if (in_point) {
        point_labels.push_back(value);
        points.emplace_back();
      }
      continue;
    }
    (in_point ? points.back() : top).put(key, value);
  }

  std::string json = "{\n";
  for (std::size_t i = 0; i < top.keys.size(); ++i) {
    json += "  \"" + json_escape(top.keys[i]) + "\": ";
    json += render_value(top.values[i]) + ",\n";
  }
  json += "  \"points\": [";
  for (std::size_t p = 0; p < points.size(); ++p) {
    json += p == 0 ? "\n" : ",\n";
    json += "    {\"label\": \"" + json_escape(point_labels[p]) + "\"";
    for (std::size_t i = 0; i < points[p].keys.size(); ++i) {
      json += ",\n     \"" + json_escape(points[p].keys[i]) +
              "\": " + render_value(points[p].values[i]);
    }
    json += "}";
  }
  json += points.empty() ? "]\n" : "\n  ]\n";
  json += "}\n";

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}
