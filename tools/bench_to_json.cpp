// Converts the key=value lines the benchmark binaries print into a flat
// JSON object, so perf-trajectory points (BENCH_hotpath.json) can be checked
// in and diffed across commits or uploaded as CI artifacts.
//
// Usage: some_bench | bench_to_json [--out FILE]
//
// Values that parse fully as numbers are emitted as JSON numbers; everything
// else becomes a string. Lines without '=' are ignored, later duplicates of
// a key win, and key order follows first appearance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

namespace {

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out FILE] < key=value lines\n", argv[0]);
      return 2;
    }
  }

  std::vector<std::string> order;
  std::vector<std::string> keys, values;
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    bool replaced = false;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) {
        values[i] = value;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      keys.push_back(key);
      values.push_back(value);
    }
  }

  std::string json = "{\n";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    json += "  \"" + json_escape(keys[i]) + "\": ";
    json += is_number(values[i]) ? values[i]
                                 : "\"" + json_escape(values[i]) + "\"";
    if (i + 1 < keys.size()) json += ",";
    json += "\n";
  }
  json += "}\n";

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}
