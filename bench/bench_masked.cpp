// Masked-SpGEMM benchmark: triangle counting C = (L*L) .* L over a corpus
// of scale-free / web-crawl graphs, comparing the output-masked fast path
// (Speck::multiply_masked — no symbolic pass, accumulators sized off
// min(products, mask row nnz)) against the naive pipeline the mask
// replaces: full multiply, then filter the product down to the mask
// positions. Emitted as key=value / point= lines for tools/bench_to_json.
//
// Four hard gates back the checked-in BENCH_masked.json (CI runs
// `bench_masked --quick`):
//
//   * the masked path must beat full-multiply-then-filter by --min-speedup
//     (default 2x) in corpus wall time at one thread — the win is
//     algorithmic (symbolic + sort skipped, smaller accumulators), so it
//     must hold on any core count,
//   * every masked C must be bit-identical to the masked-Gustavson oracle,
//     and every triangle count must agree across masked / filtered / oracle,
//   * masked plan replays must be bit-identical and perform zero heap
//     allocations in their hot path (same counting operator new as
//     bench_hotpath),
//   * the transparent plan cache must replay a repeated masked product
//     (hits >= 1 on the third call).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/alloc_counter.h"
#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/coo.h"
#include "matrix/ops.h"
#include "ref/masked.h"
#include "speck/plan_cache.h"
#include "speck/speck.h"

// Counting allocator: every successful allocation bumps the thread-local
// event counter the replay snapshots around its chunk bodies.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace speck;

void emit(const char* key, double value) { std::printf("%s=%.6g\n", key, value); }
void emit_count(const char* key, std::size_t value) {
  std::printf("%s=%zu\n", key, value);
}

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Symmetrizes into an undirected pattern (no self-loops, values 1).
Csr undirected_pattern(const Csr& directed) {
  Coo sym(directed.rows(), directed.cols());
  for (index_t r = 0; r < directed.rows(); ++r) {
    for (const index_t c : directed.row_cols(r)) {
      if (c == r) continue;
      sym.add(r, c, 1.0);
      sym.add(c, r, 1.0);
    }
  }
  Csr result = sym.to_csr();
  for (auto& v : result.values_mutable()) v = 1.0;
  return result;
}

/// Strictly-lower-triangular part (column < row), values clamped to 1.
Csr lower_triangular(const Csr& a) {
  Coo lower(a.rows(), a.cols());
  for (index_t r = 0; r < a.rows(); ++r) {
    for (const index_t c : a.row_cols(r)) {
      if (c < r) lower.add(r, c, 1.0);
    }
  }
  return lower.to_csr();
}

/// Post-hoc masking — what the baseline pipeline pays after the full
/// multiply: intersect each product row with the mask row, appending the
/// surviving values to `out` (reserved once by the caller) and returning
/// their sum. Two-pointer merge, no per-row allocation.
double filter_into(const Csr& c, const Csr& mask, std::vector<value_t>& out) {
  out.clear();
  double sum = 0.0;
  for (index_t r = 0; r < c.rows(); ++r) {
    const auto cols = c.row_cols(r);
    const auto vals = c.row_vals(r);
    const auto mask_cols = mask.row_cols(r);
    std::size_t j = 0;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      while (j < mask_cols.size() && mask_cols[j] < cols[i]) ++j;
      if (j < mask_cols.size() && mask_cols[j] == cols[i]) {
        out.push_back(vals[i]);
        sum += vals[i];
      }
    }
  }
  return sum;
}

double sum_values(const Csr& c) {
  double sum = 0.0;
  for (const value_t v : c.values()) sum += v;
  return sum;
}

struct TriangleEntry {
  std::string name;
  Csr lower;  ///< strictly-lower adjacency pattern; mask == operand
};

/// The triangle corpus: the scale-free / web-crawl graph families triangle
/// counting actually runs on (skewed degree distributions are where the
/// mask pays — hub rows have huge unmasked products and tiny mask rows).
std::vector<TriangleEntry> make_triangle_corpus() {
  std::vector<TriangleEntry> out;
  const char* const graph_like[] = {"webbase", "mario002", "email-Enron",
                                    "cage13", "144"};
  for (auto& entry : gen::common_corpus()) {
    if (!entry.square) continue;
    for (const char* name : graph_like) {
      if (entry.name == name) {
        out.push_back({entry.name,
                       lower_triangular(undirected_pattern(entry.a))});
      }
    }
  }
  out.push_back({"rmat-12", lower_triangular(undirected_pattern(
                                gen::rmat(12, 8, 0.45, 0.22, 0.22, 7)))});
  out.push_back({"rmat-11", lower_triangular(undirected_pattern(
                                gen::rmat(11, 16, 0.45, 0.22, 0.22, 21)))});
  out.push_back(
      {"powerlaw-8k", lower_triangular(undirected_pattern(
                          gen::power_law(8000, 8000, 12, 2.1, 400, 33)))});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> thread_counts = {1, 8};
  std::size_t iterations = 3;
  double min_speedup = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      thread_counts = {1};
      iterations = 2;
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--iterations N] [--threads N] "
                   "[--min-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }
  if (iterations == 0) iterations = 1;

  const std::vector<TriangleEntry> corpus = make_triangle_corpus();

  // Oracle counts, computed once: every path must land on these exactly.
  std::vector<Csr> oracle(corpus.size());
  double oracle_triangles = 0.0;
  for (std::size_t e = 0; e < corpus.size(); ++e) {
    oracle[e] =
        masked_spgemm(corpus[e].lower, corpus[e].lower, corpus[e].lower);
    oracle_triangles += sum_values(oracle[e]);
  }

  std::printf("bench=masked\n");
  emit_count("corpus_graphs", corpus.size());
  emit_count("iterations", iterations);
  emit("min_speedup", min_speedup);
  emit("triangles", oracle_triangles);

  bool gate_failed = false;
  for (const int threads : thread_counts) {
    SpeckConfig cfg;
    cfg.host_threads = threads;
    cfg.plan_cache = false;  // both paths replan; the cache gets its own gate
    Speck masked_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    Speck full_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    std::printf("point=threads%d\n", threads);
    emit_count("threads", static_cast<std::size_t>(threads));

    // Warm both instances' kernel workspaces with one corpus pass so the
    // timed loops compare steady states rather than first-touch growth.
    std::size_t filter_reserve = 0;
    for (const auto& entry : corpus) {
      if (!masked_speck.multiply_masked(entry.lower, entry.lower, entry.lower)
               .ok() ||
          !full_speck.multiply(entry.lower, entry.lower).ok()) {
        std::fprintf(stderr, "warm-up multiply failed\n");
        return 2;
      }
      filter_reserve =
          std::max(filter_reserve, static_cast<std::size_t>(entry.lower.nnz()));
    }

    // Baseline: full product every iteration, then filter it down to the
    // mask positions (the deliverable a mask-less pipeline produces).
    double full_triangles = 0.0;
    std::vector<value_t> filtered;
    filtered.reserve(filter_reserve);
    const auto t_full = std::chrono::steady_clock::now();
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      full_triangles = 0.0;
      for (const auto& entry : corpus) {
        SpGemmResult r = full_speck.multiply(entry.lower, entry.lower);
        if (!r.ok()) {
          std::fprintf(stderr, "full multiply failed on %s: %s\n",
                       entry.name.c_str(), r.failure_reason.c_str());
          return 2;
        }
        full_triangles += filter_into(r.c, entry.lower, filtered);
      }
    }
    const double full_wall = now_minus(t_full);

    // Masked fast path: same deliverable straight from the masked pipeline.
    double masked_triangles = 0.0;
    bool bit_identical = true;
    const auto t_masked = std::chrono::steady_clock::now();
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      masked_triangles = 0.0;
      for (std::size_t e = 0; e < corpus.size(); ++e) {
        SpGemmResult r = masked_speck.multiply_masked(
            corpus[e].lower, corpus[e].lower, corpus[e].lower);
        if (!r.ok()) {
          std::fprintf(stderr, "masked multiply failed on %s: %s\n",
                       corpus[e].name.c_str(), r.failure_reason.c_str());
          return 2;
        }
        masked_triangles += sum_values(r.c);
        if (iter + 1 == iterations && compare(r.c, oracle[e], 0.0).has_value()) {
          std::fprintf(stderr,
                       "FAIL: masked product of %s diverges from the "
                       "masked-Gustavson oracle\n",
                       corpus[e].name.c_str());
          bit_identical = false;
        }
      }
    }
    const double masked_wall = now_minus(t_masked);

    // Replay: build each masked plan once, then run values-only replays.
    // The hot path must not allocate and every replay must stay bitwise.
    std::size_t replay_allocs = 0;
    double replay_wall = 0.0;
    {
      Speck replay_speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
      std::vector<SpeckPlan> plans;
      plans.reserve(corpus.size());
      for (const auto& entry : corpus) {
        plans.push_back(
            replay_speck.plan_masked(entry.lower, entry.lower, entry.lower));
        if (!plans.back().complete) {
          std::fprintf(stderr, "masked planning failed on %s: %s\n",
                       entry.name.c_str(),
                       plans.back().incomplete_reason.c_str());
          return 2;
        }
      }
      const auto t_replay = std::chrono::steady_clock::now();
      for (std::size_t iter = 0; iter < iterations; ++iter) {
        for (std::size_t e = 0; e < corpus.size(); ++e) {
          // multiply_with_plan checks the plan against the configured mask.
          replay_speck.config().mask =
              std::make_shared<const Csr>(corpus[e].lower);
          SpGemmResult r = replay_speck.multiply_with_plan(
              plans[e], corpus[e].lower, corpus[e].lower);
          const SpeckDiagnostics& diag = replay_speck.last_diagnostics();
          if (!r.ok() || diag.plan_fallback) {
            std::fprintf(stderr, "masked replay failed on %s: %s%s\n",
                         corpus[e].name.c_str(), r.failure_reason.c_str(),
                         diag.plan_fallback_reason.c_str());
            return 2;
          }
          replay_allocs += diag.numeric.hot_path_allocs;
          if (compare(r.c, oracle[e], 0.0).has_value()) {
            std::fprintf(stderr,
                         "FAIL: masked replay of %s is not bit-identical\n",
                         corpus[e].name.c_str());
            bit_identical = false;
          }
        }
      }
      replay_wall = now_minus(t_replay);
    }

    // Transparent cache: the third identical masked product must replay.
    std::size_t cache_hits = 0;
    {
      SpeckConfig cached_cfg = cfg;
      cached_cfg.plan_cache = true;
      Speck cached(sim::DeviceSpec::titan_v(), sim::CostModel{}, cached_cfg);
      const auto& entry = corpus.front();
      for (int i = 0; i < 3; ++i) {
        SpGemmResult r =
            cached.multiply_masked(entry.lower, entry.lower, entry.lower);
        if (!r.ok() || compare(r.c, oracle.front(), 0.0).has_value()) {
          std::fprintf(stderr, "FAIL: cached masked multiply diverged\n");
          bit_identical = false;
          break;
        }
      }
      cache_hits = cached.plan_cache().stats().hits;
    }

    const double speedup = full_wall / masked_wall;
    emit("full_filter_wall_seconds", full_wall);
    emit("masked_wall_seconds", masked_wall);
    emit("replay_wall_seconds", replay_wall);
    emit("speedup", speedup);
    emit("masked_triangles", masked_triangles);
    emit("full_triangles", full_triangles);
    emit_count("replay_hot_allocs", replay_allocs);
    emit_count("cache_hits", cache_hits);
    std::printf("point=\n");

    if (masked_triangles != oracle_triangles ||
        full_triangles != oracle_triangles) {
      std::fprintf(stderr,
                   "FAIL: triangle counts disagree (masked %.0f, filtered "
                   "%.0f, oracle %.0f)\n",
                   masked_triangles, full_triangles, oracle_triangles);
      gate_failed = true;
    }
    // The speedup gate runs at one worker: the masked win is algorithmic,
    // so a single deterministic thread is its cleanest measurement.
    if (threads == 1 && speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: masked speedup %.3f < %.3f\n", speedup,
                   min_speedup);
      gate_failed = true;
    }
    if (threads == 1 && replay_allocs != 0) {
      std::fprintf(stderr,
                   "FAIL: masked replay hot path performed %zu heap "
                   "allocations\n",
                   replay_allocs);
      gate_failed = true;
    }
    if (cache_hits == 0) {
      std::fprintf(stderr,
                   "FAIL: repeated masked product never hit the plan cache\n");
      gate_failed = true;
    }
    if (!bit_identical) gate_failed = true;
  }

  if (gate_failed) return 1;
  std::printf("gate=pass\n");
  return 0;
}
