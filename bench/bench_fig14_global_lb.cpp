// Regenerates Figure 14: global load balancer permanently off / on versus
// spECK's automatic decision, over matrices ordered by product count.
// The paper: the automatic decision stays within ~2% of the best choice and
// roughly doubles small-matrix performance versus always-on.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "speck/speck.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const auto corpus = gen::evaluation_collection();
  const sim::DeviceSpec device = sim::DeviceSpec::titan_v();
  const sim::CostModel model;

  struct Bucket {
    double off = 0.0, on = 0.0, automatic = 0.0, best = 0.0;
    int count = 0;
  };
  std::map<int, Bucket> buckets;

  double total_auto_slowdown = 0.0;
  int matrices = 0;
  for (const auto& entry : corpus) {
    double seconds[3] = {0, 0, 0};
    const GlobalLbMode modes[3] = {GlobalLbMode::kAlwaysOff, GlobalLbMode::kAlwaysOn,
                                   GlobalLbMode::kAuto};
    bool ok = true;
    for (int v = 0; v < 3; ++v) {
      SpeckConfig config;
      config.thresholds = reduced_scale_thresholds();
      Speck speck(device, model, config);
      speck.config().features.set_global_lb(modes[v]);
      const SpGemmResult result = speck.multiply(entry.a, entry.b);
      ok = ok && result.ok();
      if (!ok) break;
      seconds[v] = result.seconds;
    }
    if (!ok) continue;
    const double best = std::min({seconds[0], seconds[1], seconds[2]});
    const int bucket = static_cast<int>(
        std::floor(std::log10(std::max<double>(
            static_cast<double>(entry.products()), 100.0))));
    Bucket& b = buckets[bucket];
    b.off += seconds[0] / best;
    b.on += seconds[1] / best;
    b.automatic += seconds[2] / best;
    ++b.count;
    total_auto_slowdown += seconds[2] / std::min(seconds[0], seconds[1]);
    ++matrices;
  }

  std::printf("Figure 14: global load balancer off/on/automatic "
              "(mean slowdown to fastest, by products)\n\n");
  const std::vector<int> widths{13, 8, 11, 10, 10, 7};
  print_row({"products>=", "#mat", "always off", "always on", "automatic", ""},
            widths);
  for (const auto& [bucket, b] : buckets) {
    print_row({format_double(std::pow(10.0, bucket), 0), std::to_string(b.count),
               format_double(b.off / b.count), format_double(b.on / b.count),
               format_double(b.automatic / b.count), ""},
              widths);
  }
  std::printf("\naverage slowdown of the automatic decision vs best of on/off:"
              " %.1f%% (paper: <2%%)\n",
              100.0 * (total_auto_slowdown / std::max(matrices, 1) - 1.0));
  return 0;
}
