// Google-benchmark microbenchmarks for the host-side primitives the
// simulator and oracle are built from. These measure *real* wall-clock cost
// (unlike the report binaries, which print simulated device times) and guard
// against performance regressions in the emulation layer itself.
#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "common/sorting.h"
#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "matrix/permute.h"
#include "ref/gustavson.h"
#include "speck/dense_acc.h"
#include "speck/hash_map.h"
#include "speck/speck.h"

namespace speck {
namespace {

void BM_HashMapInsert(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  const auto fill = static_cast<std::size_t>(capacity * 2 / 3);
  Xoshiro256 rng(1);
  std::vector<key64_t> keys(fill);
  for (auto& k : keys) k = rng.next_u64() >> 1;
  for (auto _ : state) {
    DeviceHashMap map(capacity);
    for (const key64_t k : keys) map.insert_key(k);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fill));
}
BENCHMARK(BM_HashMapInsert)->Arg(1 << 10)->Arg(1 << 14);

void BM_HashMapAccumulate(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(2);
  std::vector<key64_t> keys(capacity * 2);  // ~50% duplicates
  for (auto& k : keys) k = rng.next_below(capacity) + 1;
  for (auto _ : state) {
    DeviceHashMap map(capacity * 2);
    for (const key64_t k : keys) map.accumulate(k, 1.0);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_HashMapAccumulate)->Arg(1 << 10);

void BM_RadixSortPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(3);
  std::vector<std::uint32_t> base_keys(n);
  for (auto& k : base_keys) k = static_cast<std::uint32_t>(rng.next_u64());
  std::vector<double> base_vals(n, 1.0);
  for (auto _ : state) {
    auto keys = base_keys;
    auto vals = base_vals;
    radix_sort_pairs(keys, vals);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 12)->Arg(1 << 16);

void BM_DenseAccumulateRow(benchmark::State& state) {
  const Csr b = gen::banded(4000, 200, 32, 4);
  const index_t row = 2000;
  for (auto _ : state) {
    const auto result = dense_accumulate_row(
        b, b.row_cols(row), b.row_vals(row), 1500, 2500, 4096, /*numeric=*/true);
    benchmark::DoNotOptimize(result.cols.data());
  }
}
BENCHMARK(BM_DenseAccumulateRow);

void BM_GustavsonOracle(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const Csr a = gen::random_uniform(n, n, 8, 5);
  for (auto _ : state) {
    const Csr c = gustavson_spgemm(a, a);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          count_products(a, a));
}
BENCHMARK(BM_GustavsonOracle)->Arg(1000)->Arg(4000);

void BM_SpeckSimulated(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const Csr a = gen::random_uniform(n, n, 8, 6);
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});
  for (auto _ : state) {
    const SpGemmResult result = speck.multiply(a, a);
    benchmark::DoNotOptimize(result.seconds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          count_products(a, a));
}
BENCHMARK(BM_SpeckSimulated)->Arg(1000)->Arg(4000);

void BM_Transpose(benchmark::State& state) {
  const Csr a = gen::random_uniform(10000, 10000, 8, 7);
  for (auto _ : state) {
    const Csr t = transpose(a);
    benchmark::DoNotOptimize(t.nnz());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * a.nnz());
}
BENCHMARK(BM_Transpose);

void BM_ReverseCuthillMcKee(benchmark::State& state) {
  const Csr shuffled = permute_symmetric(gen::banded(5000, 20, 6, 8),
                                         random_permutation(5000, 9));
  for (auto _ : state) {
    const Permutation p = reverse_cuthill_mckee(shuffled);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_ReverseCuthillMcKee);

}  // namespace
}  // namespace speck

BENCHMARK_MAIN();
