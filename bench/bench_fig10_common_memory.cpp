// Regenerates Figure 10: peak device-memory consumption on the common
// matrices (hash-based methods vs. ESC/merge).
#include <cstdio>

#include "bench_common.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const auto corpus = gen::common_corpus();
  const auto algorithms = baselines::make_gpu_algorithms(
      sim::DeviceSpec::titan_v(), sim::CostModel{});
  const auto measurements = run_suite(corpus, algorithms);

  std::printf("Figure 10: peak memory consumption in MB\n\n");
  std::vector<int> widths{14};
  std::vector<std::string> header{"matrix"};
  for (const auto& algorithm : algorithms) {
    header.push_back(algorithm->name());
    widths.push_back(9);
  }
  print_row(header, widths);
  for (const auto& entry : corpus) {
    std::vector<std::string> cells{entry.name};
    for (const auto& algorithm : algorithms) {
      for (const Measurement& m : measurements) {
        if (m.matrix != entry.name || m.algorithm != algorithm->name()) continue;
        cells.push_back(m.status == SpGemmStatus::kOk
                            ? format_bytes_mb(m.peak_memory_bytes)
                            : "fail");
      }
    }
    print_row(cells, widths);
  }
  return 0;
}
