#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/thread_pool.h"
#include "matrix/matrix_stats.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"

namespace speck::bench {

std::vector<Measurement> run_suite(
    const std::vector<gen::CorpusEntry>& corpus,
    const std::vector<std::unique_ptr<SpGemmAlgorithm>>& algorithms,
    bool verify) {
  std::vector<Measurement> out;
  for (const gen::CorpusEntry& entry : corpus) {
    const offset_t products = entry.products();
    const Csr oracle = verify ? gustavson_spgemm(entry.a, entry.b) : Csr();
    for (const auto& algorithm : algorithms) {
      Measurement m;
      m.algorithm = algorithm->name();
      m.matrix = entry.name;
      m.products = products;
      SpGemmResult result = algorithm->multiply(entry.a, entry.b);
      m.status = result.status;
      if (result.ok()) {
        m.seconds = result.seconds;
        m.gflops = result.gflops(products);
        m.peak_memory_bytes = result.peak_memory_bytes;
        m.timeline = result.timeline;
        if (verify) {
          const auto diff = compare(result.c, oracle);
          SPECK_REQUIRE(!diff.has_value(), "algorithm " + m.algorithm +
                                               " produced a wrong result on " +
                                               m.matrix + ": " + diff->description);
        }
      }
      out.push_back(std::move(m));
    }
  }
  return out;
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    os << ' ';
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) > width) cell.resize(static_cast<std::size_t>(width));
    os << cell;
    for (int pad = static_cast<int>(cell.size()); pad < width; ++pad) os << ' ';
  }
  std::puts(os.str().c_str());
}

std::string format_double(double v, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

std::string format_bytes_mb(std::size_t bytes) {
  return format_double(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

int apply_thread_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads") {
      const int threads = i + 1 < argc ? std::atoi(argv[i + 1]) : 0;
      SPECK_REQUIRE(threads >= 1, "--threads requires a positive integer");
      set_global_thread_count(threads);
      return threads;
    }
  }
  return default_thread_count();
}

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

std::map<std::string, double> best_seconds_per_matrix(
    const std::vector<Measurement>& measurements) {
  std::map<std::string, double> best;
  for (const Measurement& m : measurements) {
    if (m.status != SpGemmStatus::kOk) continue;
    auto [it, inserted] = best.emplace(m.matrix, m.seconds);
    if (!inserted) it->second = std::min(it->second, m.seconds);
  }
  return best;
}

}  // namespace speck::bench

namespace speck::bench {

void write_csv(const std::string& path, const std::vector<Measurement>& measurements) {
  std::ofstream out(path);
  SPECK_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  out << "algorithm,matrix,products,status,seconds,gflops,peak_memory_bytes\n";
  for (const Measurement& m : measurements) {
    out << m.algorithm << ',' << m.matrix << ',' << m.products << ','
        << (m.status == SpGemmStatus::kOk
                ? "ok"
                : m.status == SpGemmStatus::kOutOfMemory ? "oom" : "unsupported")
        << ',' << m.seconds << ',' << m.gflops << ',' << m.peak_memory_bytes
        << '\n';
  }
}

}  // namespace speck::bench

namespace speck::bench {

std::string ascii_chart(const std::vector<std::string>& series_names,
                        const std::vector<std::vector<double>>& series,
                        int height, bool log_scale) {
  SPECK_REQUIRE(series_names.size() == series.size(),
                "one name per series required");
  SPECK_REQUIRE(height >= 2, "chart height must be at least 2");
  static constexpr char kSymbols[] = "*o+x#@%&";
  std::size_t width = 0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    width = std::max(width, s.size());
    for (const double v : s) {
      if (v <= 0.0 && log_scale) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (width == 0 || !(lo < hi)) return "(no data)\n";
  const auto scale = [&](double v) {
    if (log_scale) {
      return (std::log(v) - std::log(lo)) / (std::log(hi) - std::log(lo));
    }
    return (v - lo) / (hi - lo);
  };

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(width * 2, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char symbol = kSymbols[si % (sizeof(kSymbols) - 1)];
    for (std::size_t x = 0; x < series[si].size(); ++x) {
      const double v = series[si][x];
      if (v <= 0.0 && log_scale) continue;
      const auto y = static_cast<std::size_t>(
          std::clamp(scale(v), 0.0, 1.0) * (height - 1) + 0.5);
      grid[static_cast<std::size_t>(height - 1) - y][x * 2] = symbol;
    }
  }

  std::ostringstream os;
  os << format_double(hi, 2) << " +" << '\n';
  for (const auto& line : grid) os << "  |" << line << '\n';
  os << format_double(lo, 2) << " +" << std::string(width * 2, '-') << '\n';
  os << "   legend:";
  for (std::size_t si = 0; si < series_names.size(); ++si) {
    os << ' ' << kSymbols[si % (sizeof(kSymbols) - 1)] << '=' << series_names[si];
  }
  os << '\n';
  return os.str();
}

}  // namespace speck::bench
