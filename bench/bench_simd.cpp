// SIMD backend benchmark: the full pipeline on the common corpus with the
// scalar reference backend vs the best vector backend the CPU offers,
// emitted as key=value / point= lines for tools/bench_to_json.
//
// Two hard gates back the checked-in BENCH_simd.json (CI runs
// `bench_simd --quick`):
//
//   * the vector backend must reach --min-speedup (default 1.25x) corpus
//     wall-time speedup over scalar at one thread,
//   * every vector-backend C must be bit-identical to the scalar one
//     (CSR bytes and simulated seconds — the backend may only change host
//     wall time).
//
// On a machine whose best backend *is* scalar (no SSE/AVX2/NEON) the
// speedup gate is skipped: there is nothing to compare.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/simd.h"
#include "gen/corpus.h"
#include "matrix/ops.h"
#include "speck/speck.h"

namespace {

using namespace speck;

void emit(const char* key, double value) { std::printf("%s=%.6g\n", key, value); }
void emit_count(const char* key, std::size_t value) {
  std::printf("%s=%zu\n", key, value);
}

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One timed corpus sweep: `iterations` full multiplies per entry. Returns
/// wall seconds; fills `cs` with the last iteration's outputs and sums the
/// first iteration's simulated seconds into `sim_seconds`. Callers repeat
/// the sweep and keep the minimum: the interleaved min-of-repeats is robust
/// against one-sided load spikes on shared CI machines.
double timed_sweep(Speck& sp, const std::vector<gen::CorpusEntry>& corpus,
                   std::size_t iterations, std::vector<Csr>& cs,
                   double& sim_seconds) {
  cs.resize(corpus.size());
  sim_seconds = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    for (std::size_t e = 0; e < corpus.size(); ++e) {
      SpGemmResult r = sp.multiply(corpus[e].a, corpus[e].b);
      if (!r.ok()) {
        std::fprintf(stderr, "multiply failed on %s: %s\n",
                     corpus[e].name.c_str(), r.failure_reason.c_str());
        std::exit(2);
      }
      if (iter == 0) sim_seconds += r.seconds;
      if (iter + 1 == iterations) cs[e] = std::move(r.c);
    }
  }
  return now_minus(t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> thread_counts = {1, 8};
  std::size_t iterations = 3;
  double min_speedup = 1.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      thread_counts = {1};
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--iterations N] [--threads N] "
                   "[--min-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }

  const SimdBackend vector_backend = simd::detected_backend();
  const auto corpus = gen::common_corpus();
  std::printf("bench=simd\n");
  emit_count("corpus_matrices", corpus.size());
  emit_count("iterations", iterations);
  emit("min_speedup", min_speedup);
  std::printf("vector_backend=%s\n", simd::backend_name(vector_backend));
  if (vector_backend == SimdBackend::kScalar) {
    std::printf("gate=skipped (no vector backend on this CPU)\n");
    return 0;
  }

  bool gate_failed = false;
  for (const int threads : thread_counts) {
    SpeckConfig cfg;
    cfg.host_threads = threads;
    cfg.plan_cache = false;  // every multiply runs the full pipeline
    cfg.simd_backend = SimdBackend::kScalar;
    Speck scalar_sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    cfg.simd_backend = vector_backend;
    Speck vector_sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    std::printf("point=threads%d\n", threads);
    emit_count("threads", static_cast<std::size_t>(threads));

    // One untimed corpus pass per instance warms the kernel workspaces, so
    // the timed sweeps compare steady states rather than first-touch growth.
    for (const auto& entry : corpus) {
      if (!scalar_sp.multiply(entry.a, entry.b).ok() ||
          !vector_sp.multiply(entry.a, entry.b).ok()) {
        std::fprintf(stderr, "warm-up multiply failed\n");
        return 2;
      }
    }

    // Alternate the two backends' sweeps and keep each one's fastest run:
    // interleaving exposes both to the same machine noise, and the minimum
    // is the best estimate of the undisturbed wall time.
    constexpr std::size_t kRepeats = 4;
    std::vector<Csr> scalar_c, vector_c;
    double scalar_sim = 0.0, vector_sim = 0.0;
    double scalar_wall = 0.0, vector_wall = 0.0;
    for (std::size_t rep = 0; rep < kRepeats; ++rep) {
      const double s =
          timed_sweep(scalar_sp, corpus, iterations, scalar_c, scalar_sim);
      const double v =
          timed_sweep(vector_sp, corpus, iterations, vector_c, vector_sim);
      scalar_wall = rep == 0 ? s : std::min(scalar_wall, s);
      vector_wall = rep == 0 ? v : std::min(vector_wall, v);
    }

    bool bit_identical = true;
    for (std::size_t e = 0; e < corpus.size(); ++e) {
      if (compare(vector_c[e], scalar_c[e], 0.0).has_value()) {
        std::fprintf(stderr, "FAIL: %s differs between backends\n",
                     corpus[e].name.c_str());
        bit_identical = false;
      }
    }
    if (scalar_sim != vector_sim) {
      std::fprintf(stderr,
                   "FAIL: simulated seconds differ between backends "
                   "(%.9g vs %.9g)\n",
                   scalar_sim, vector_sim);
      bit_identical = false;
    }

    const double speedup = scalar_wall / vector_wall;
    emit("scalar_wall_seconds", scalar_wall);
    emit("vector_wall_seconds", vector_wall);
    emit("speedup", speedup);
    emit("sim_seconds", scalar_sim);
    emit_count("bit_identical", bit_identical ? 1 : 0);
    std::printf("point=\n");

    // The speedup gate runs at one worker; multi-worker points are reported
    // for the trajectory (thread-pool overhead dilutes per-loop gains).
    if (threads == 1 && speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: simd speedup %.3f < %.3f\n", speedup,
                   min_speedup);
      gate_failed = true;
    }
    if (!bit_identical) gate_failed = true;
  }

  if (gate_failed) return 1;
  std::printf("gate=pass\n");
  return 0;
}
