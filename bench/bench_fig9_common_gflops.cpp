// Regenerates Figure 9: GFLOPS achieved by every method on the common
// matrices.
#include <cstdio>

#include "bench_common.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const auto corpus = gen::common_corpus();
  const auto algorithms = baselines::make_gpu_algorithms(
      sim::DeviceSpec::titan_v(), sim::CostModel{});
  const auto measurements = run_suite(corpus, algorithms);

  std::printf("Figure 9: GFLOPS on the common matrices\n\n");
  std::vector<int> widths{14};
  std::vector<std::string> header{"matrix"};
  for (const auto& algorithm : algorithms) {
    header.push_back(algorithm->name());
    widths.push_back(9);
  }
  print_row(header, widths);
  for (const auto& entry : corpus) {
    std::vector<std::string> cells{entry.name};
    for (const auto& algorithm : algorithms) {
      bool found = false;
      for (const Measurement& m : measurements) {
        if (m.matrix != entry.name || m.algorithm != algorithm->name()) continue;
        cells.push_back(m.status == SpGemmStatus::kOk ? format_double(m.gflops, 2)
                                                      : "fail");
        found = true;
      }
      if (!found) cells.push_back("-");
    }
    print_row(cells, widths);
  }

  // Paper's qualitative claim: spECK is best or close to best everywhere.
  const auto best = best_seconds_per_matrix(measurements);
  std::printf("\nspECK slowdown to fastest per matrix:\n");
  for (const Measurement& m : measurements) {
    if (m.algorithm != "speck" || m.status != SpGemmStatus::kOk) continue;
    std::printf("  %-14s %.2fx\n", m.matrix.c_str(), m.seconds / best.at(m.matrix));
  }
  return 0;
}
