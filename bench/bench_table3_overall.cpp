// Regenerates Table 3: overall statistics of every algorithm across the
// evaluation collection — #best, #best (>15k products), #invalid, average
// time, relative peak memory, average relative time, and the number of
// matrices where a method is more than 5x slower than the best.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"

using namespace speck;
using namespace speck::bench;

namespace {

struct AlgoStats {
  int best = 0;
  int best_over_15k = 0;
  int invalid = 0;
  double time_sum = 0.0;        // over the common completed subset
  int time_count = 0;
  double mem_ratio_sum = 0.0;   // vs speck, common subset
  double mem_ratio_sum_15k = 0.0;
  int mem_count = 0;
  int mem_count_15k = 0;
  double rel_time_sum = 0.0;    // vs per-matrix best
  int rel_count = 0;
  double rel_time_sum_15k = 0.0;
  int rel_count_15k = 0;
  int over_5x = 0;
  int over_5x_15k = 0;
};

}  // namespace

int main(int argc, char** argv) {
  // Host parallelism: --threads N (default SPECK_THREADS / hardware). The
  // measured *simulated* times are bit-identical at any thread count; only
  // the host wall-clock below changes.
  const int threads = apply_thread_flag(argc, argv);
  const auto corpus = gen::evaluation_collection();
  const auto algorithms = baselines::make_all_algorithms(
      sim::DeviceSpec::titan_v(), sim::CostModel{});
  std::vector<Measurement> measurements;
  const double parallel_wall = wall_seconds(
      [&] { measurements = run_suite(corpus, algorithms); });
  // Optional raw-data export: bench_table3_overall --csv <path>
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") write_csv(argv[i + 1], measurements);
  }

  // Index measurements per matrix.
  std::map<std::string, std::vector<const Measurement*>> by_matrix;
  std::map<std::string, offset_t> products;
  for (const Measurement& m : measurements) {
    by_matrix[m.matrix].push_back(&m);
    products[m.matrix] = m.products;
  }

  // The paper's "†" subset: matrices completed by all GPU approaches except
  // KokkosKernels; used for t_avg and the memory ratios.
  std::map<std::string, bool> in_common_subset;
  std::map<std::string, std::size_t> speck_memory;
  for (const auto& [matrix, rows] : by_matrix) {
    bool all_ok = true;
    for (const Measurement* m : rows) {
      if (m->algorithm == "kokkos" || m->algorithm == "mkl") continue;
      all_ok = all_ok && m->status == SpGemmStatus::kOk;
      if (m->algorithm == "speck") speck_memory[matrix] = m->peak_memory_bytes;
    }
    in_common_subset[matrix] = all_ok;
  }

  std::map<std::string, AlgoStats> stats;
  for (const auto& [matrix, rows] : by_matrix) {
    double best = 0.0;
    bool first = true;
    for (const Measurement* m : rows) {
      if (m->status != SpGemmStatus::kOk) continue;
      best = first ? m->seconds : std::min(best, m->seconds);
      first = false;
    }
    const bool over_15k = products[matrix] > 15000;
    for (const Measurement* m : rows) {
      AlgoStats& s = stats[m->algorithm];
      if (m->status != SpGemmStatus::kOk) {
        ++s.invalid;
        continue;
      }
      if (m->seconds <= best * (1.0 + 1e-12)) {
        ++s.best;
        if (over_15k) ++s.best_over_15k;
      }
      const double rel = m->seconds / best;
      s.rel_time_sum += rel;
      ++s.rel_count;
      if (rel > 5.0) ++s.over_5x;
      if (over_15k) {
        s.rel_time_sum_15k += rel;
        ++s.rel_count_15k;
        if (rel > 5.0) ++s.over_5x_15k;
      }
      if (in_common_subset[matrix] && m->algorithm != "kokkos") {
        s.time_sum += m->seconds;
        ++s.time_count;
        if (speck_memory.count(matrix) != 0 && m->algorithm != "mkl") {
          const double ratio = static_cast<double>(m->peak_memory_bytes) /
                               static_cast<double>(speck_memory[matrix]);
          s.mem_ratio_sum += ratio;
          ++s.mem_count;
          if (over_15k) {
            s.mem_ratio_sum_15k += ratio;
            ++s.mem_count_15k;
          }
        }
      }
    }
  }

  std::printf("Table 3: overall statistics over %zu matrices\n", corpus.size());
  std::printf("(t_avg and m/m_b over the subset completed by all GPU methods"
              " except kokkos; * = matrices with >15k products)\n\n");
  const std::vector<int> widths{10, 7, 8, 6, 10, 8, 9, 8, 8, 6, 7};
  print_row({"method", "#best", "#best*", "#inv", "t_avg(ms)", "m/m_b", "m/m_b*",
             "t/t_b", "t/t_b*", "#5x", "#5x*"},
            widths);
  for (const auto& algorithm : algorithms) {
    const AlgoStats& s = stats[algorithm->name()];
    print_row(
        {algorithm->name(), std::to_string(s.best), std::to_string(s.best_over_15k),
         std::to_string(s.invalid),
         s.time_count ? format_double(s.time_sum / s.time_count * 1e3) : "-",
         s.mem_count ? format_double(s.mem_ratio_sum / s.mem_count) : "-",
         s.mem_count_15k ? format_double(s.mem_ratio_sum_15k / s.mem_count_15k) : "-",
         s.rel_count ? format_double(s.rel_time_sum / s.rel_count) : "-",
         s.rel_count_15k ? format_double(s.rel_time_sum_15k / s.rel_count_15k) : "-",
         std::to_string(s.over_5x), std::to_string(s.over_5x_15k)},
        widths);
  }

  // Host-side scaling report: the identical suite (verification included,
  // as above — a fair comparison) pinned to one thread.
  set_global_thread_count(1);
  const double serial_wall =
      wall_seconds([&] { (void)run_suite(corpus, algorithms); });
  set_global_thread_count(threads);
  std::printf("\nhost wall-clock: %.2fs at %d thread(s) vs %.2fs serial"
              " (speedup %.2fx; simulated results identical)\n",
              parallel_wall, threads, serial_wall, serial_wall / parallel_wall);
  return 0;
}
