// Ablation: NZ locality and ordering. spECK's binning deliberately preserves
// the input row order because "matrices often show internal structures, e.g.
// diagonal-like patterns or local clustering" (paper §4.2). This experiment
// quantifies that: the same matrix is multiplied in its natural (banded)
// order, after a random symmetric permutation (locality destroyed), and
// after reverse Cuthill-McKee restores the band.
#include <cstdio>

#include "bench_common.h"
#include "gen/generators.h"
#include "matrix/permute.h"
#include "speck/speck.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const Csr natural = gen::banded(100000, 120, 12, 901);
  const Csr shuffled = permute_symmetric(natural, random_permutation(100000, 903));
  const Csr restored = permute_symmetric(shuffled, reverse_cuthill_mckee(shuffled));

  struct Variant {
    const char* name;
    const Csr* matrix;
  };
  const Variant variants[] = {{"natural (banded)", &natural},
                              {"randomly permuted", &shuffled},
                              {"RCM reordered", &restored}};

  std::printf("Ablation: NZ locality (same matrix, three orderings)\n\n");
  std::printf("bandwidth: natural=%d shuffled=%d rcm=%d\n\n", bandwidth(natural),
              bandwidth(shuffled), bandwidth(restored));
  const std::vector<int> widths{20, 12, 12, 14};
  print_row({"ordering", "speck(ms)", "ac(ms)", "nsparse(ms)"}, widths);

  const sim::DeviceSpec device = sim::DeviceSpec::titan_v();
  const sim::CostModel model;
  for (const Variant& variant : variants) {
    const auto algorithms = baselines::make_gpu_algorithms(device, model);
    double speck_ms = 0, ac_ms = 0, nsparse_ms = 0;
    for (const auto& algorithm : algorithms) {
      const std::string name = algorithm->name();
      if (name != "speck" && name != "ac" && name != "nsparse") continue;
      const SpGemmResult result = algorithm->multiply(*variant.matrix, *variant.matrix);
      SPECK_REQUIRE(result.ok(), "locality run failed");
      if (name == "speck") speck_ms = result.seconds * 1e3;
      if (name == "ac") ac_ms = result.seconds * 1e3;
      if (name == "nsparse") nsparse_ms = result.seconds * 1e3;
    }
    print_row({variant.name, format_double(speck_ms, 3), format_double(ac_ms, 3),
               format_double(nsparse_ms, 3)},
              widths);
  }
  std::printf("\n(spECK is the ordering-sensitive method: its ordered binning turns"
              " neighbouring rows' overlapping B accesses into cache hits, which a"
              " random permutation destroys; RCM recovers part of the band and part"
              " of the win. AC/nsparse stream or work row-at-a-time and are"
              " order-insensitive.)\n");
  return 0;
}
