// Regenerates Figure 8: non-zero patterns of the common matrices, rendered
// as ASCII spy plots.
#include <cstdio>

#include "bench_common.h"
#include "matrix/matrix_stats.h"

using namespace speck;

int main() {
  for (const auto& entry : gen::common_corpus()) {
    std::printf("=== %s (%s) ===\n", entry.name.c_str(),
                entry.a.shape_string().c_str());
    std::printf("%s\n", ascii_spy(entry.a, 32).c_str());
  }
  return 0;
}
