// Diagnostic companion to Table 3: prints, for every matrix in the
// evaluation collection, which algorithm was fastest and spECK's distance
// to it. Not a paper artifact, but the quickest way to see where each
// algorithm family wins.
#include <cstdio>
#include <map>
#include "bench_common.h"
using namespace speck; using namespace speck::bench;
int main(){
  auto corpus = gen::evaluation_collection();
  auto algos = baselines::make_all_algorithms(sim::DeviceSpec::titan_v(), sim::CostModel{});
  auto ms = run_suite(corpus, algos, false);
  std::map<std::string, std::pair<std::string,double>> best;
  std::map<std::string, double> speck_t;
  for (auto& m : ms){
    if (m.status != SpGemmStatus::kOk) continue;
    auto it = best.find(m.matrix);
    if (it==best.end() || m.seconds < it->second.second) best[m.matrix]={m.algorithm,m.seconds};
    if (m.algorithm=="speck") speck_t[m.matrix]=m.seconds;
  }
  for (auto& [mat, w] : best)
    std::printf("%-28s %-10s speck/best=%.2f\n", mat.c_str(), w.first.c_str(), speck_t[mat]/w.second);
}
