// NUMA scale-out trajectory: the two-level partitioned executor (partition-
// local worker teams + cross-partition work stealing) swept over 1 -> 4
// partitions on the common corpus and on a skewed power-law corpus, emitted
// as key=value lines for tools/bench_to_json.
//
// Gates (docs/performance.md "NUMA scale-out"):
//  * bit-identity, always: CSR bytes, simulated seconds and every PassStats
//    counter are identical at every (partitions, threads, steal)
//    combination — the partitioned executor commits in plan order and chunk
//    boundaries depend only on (n, chunk).
//  * zero-allocation, always: steady-state block bodies allocate nothing
//    with partition-local workspace pools (counting operator new below).
//  * parallel efficiency and the power-law stealing win, >= 8 hardware
//    cores only: on fewer cores the partition teams collapse onto the same
//    physical threads and the comparison measures oversubscription noise.
//    CI additionally gates the checked-in BENCH_scaleout.json via
//    tools/bench_check.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_counter.h"
#include "gen/corpus.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "speck/speck.h"

// Counting allocator: makes PassStats::hot_path_allocs live in this binary
// (see common/alloc_counter.h). Frees are uncounted on purpose.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace speck;

void emit(const std::string& key, double value) {
  std::printf("%s=%.6g\n", key.c_str(), value);
}
void emit_count(const std::string& key, std::size_t value) {
  std::printf("%s=%zu\n", key.c_str(), value);
}

/// The stealing stress corpus: heavy head rows concentrate the product
/// volume in the first partitions, so balanced-by-weight boundaries leave
/// light teams idle unless they steal.
std::vector<gen::CorpusEntry> power_law_corpus() {
  std::vector<gen::CorpusEntry> out;
  const struct {
    const char* name;
    index_t n;
    index_t avg;
    double alpha;
    index_t max_nnz;
    std::uint64_t seed;
  } shapes[] = {
      {"pl-skew22", 1400, 10, 2.2, 350, 9100},
      {"pl-skew19", 1200, 12, 1.9, 300, 9200},
      {"pl-skew25", 1600, 8, 2.5, 400, 9300},
  };
  for (const auto& s : shapes) {
    gen::CorpusEntry e;
    e.name = s.name;
    e.a = gen::power_law(s.n, s.n, s.avg, s.alpha, s.max_nnz, s.seed);
    e.b = e.a;
    out.push_back(std::move(e));
  }
  return out;
}

SpeckConfig make_config(int threads, int partitions, bool steal) {
  SpeckConfig cfg;
  cfg.plan_cache = false;  // measure the full pipeline every pass
  cfg.host_threads = threads;
  cfg.partitions = partitions;
  cfg.partition_steal = steal;
  return cfg;
}

struct EntryResult {
  Csr c;
  double sim_seconds = 0.0;
  SpeckDiagnostics diag;
};

struct CorpusRun {
  std::vector<EntryResult> entries;
  double wall_seconds = 0.0;  ///< per timed pass (averaged over reps)
  std::size_t steals = 0;     ///< summed over timed passes
  double imbalance = 0.0;     ///< worst over timed passes
  std::size_t hot_allocs = 0; ///< block-body allocations in timed passes
};

/// One warm-up pass, then `reps` timed passes over the corpus.
CorpusRun run_corpus(const SpeckConfig& cfg,
                     const std::vector<gen::CorpusEntry>& corpus,
                     std::size_t reps) {
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  CorpusRun run;
  for (const auto& entry : corpus) {  // warm-up: workspaces fill here
    const SpGemmResult r = sp.multiply(entry.a, entry.b);
    if (!r.ok()) {
      std::fprintf(stderr, "multiply failed on %s: %s\n", entry.name.c_str(),
                   r.failure_reason.c_str());
      std::exit(2);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < reps; ++p) {
    for (const auto& entry : corpus) {
      SpGemmResult r = sp.multiply(entry.a, entry.b);
      if (!r.ok()) {
        std::fprintf(stderr, "multiply failed on %s: %s\n", entry.name.c_str(),
                     r.failure_reason.c_str());
        std::exit(2);
      }
      const SpeckDiagnostics& diag = sp.last_diagnostics();
      run.steals += diag.partition.steal_count();
      run.imbalance = std::max(run.imbalance, diag.partition.imbalance_ratio());
      run.hot_allocs +=
          diag.symbolic.hot_path_allocs + diag.numeric.hot_path_allocs;
      if (p == 0) {
        run.entries.push_back(
            EntryResult{std::move(r.c), r.seconds, diag});
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  run.wall_seconds = std::chrono::duration<double>(t1 - t0).count() /
                     static_cast<double>(reps);
  return run;
}

bool stats_equal(const PassStats& a, const PassStats& b) {
  return a.seconds == b.seconds && a.direct_rows == b.direct_rows &&
         a.dense_rows == b.dense_rows && a.hash_rows == b.hash_rows &&
         a.global_hash_blocks == b.global_hash_blocks &&
         a.global_pool_bytes == b.global_pool_bytes &&
         a.hash_probes == b.hash_probes &&
         a.moved_entries == b.moved_entries &&
         a.global_inserts == b.global_inserts;
}

/// Bitwise CSR + counter identity of `got` against the serial flat
/// baseline. Returns false (and reports) on any divergence.
bool check_identity(const std::vector<gen::CorpusEntry>& corpus,
                    const CorpusRun& baseline, const CorpusRun& got,
                    const std::string& what) {
  bool ok = true;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const EntryResult& w = baseline.entries[i];
    const EntryResult& g = got.entries[i];
    const auto diff = compare(g.c, w.c, 0.0);  // bitwise
    if (diff.has_value()) {
      std::fprintf(stderr, "FAIL: %s: %s: %s\n", what.c_str(),
                   corpus[i].name.c_str(), diff->description.c_str());
      ok = false;
    }
    if (g.sim_seconds != w.sim_seconds ||
        !stats_equal(g.diag.symbolic, w.diag.symbolic) ||
        !stats_equal(g.diag.numeric, w.diag.numeric)) {
      std::fprintf(stderr, "FAIL: %s: %s: pass counters diverged\n",
                   what.c_str(), corpus[i].name.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 3;
  int threads = 8;
  double min_efficiency = 0.70;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      reps = 1;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-efficiency") == 0 && i + 1 < argc) {
      min_efficiency = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--reps N] [--threads N] "
                   "[--min-efficiency F]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const bool perf_gates_bind = cores >= 8;
  auto common = gen::common_corpus();
  if (quick) {
    // Keep the smoke run under the ctest timeout: the three largest
    // common-corpus entries dominate the pass and add nothing to the gate.
    if (common.size() > 6) common.resize(6);
  }
  const auto powerlaw = power_law_corpus();

  std::printf("bench=scaleout\n");
  emit_count("cores", cores);
  emit_count("threads", static_cast<std::size_t>(threads));
  emit_count("reps", reps);
  emit_count("perf_gates_bind", perf_gates_bind ? 1 : 0);

  bool gate_failed = false;

  // Serial flat baselines: the bit-identity reference and the numerator of
  // the parallel-efficiency metric.
  const CorpusRun common_serial =
      run_corpus(make_config(1, 1, true), common, reps);
  const CorpusRun pl_serial =
      run_corpus(make_config(1, 1, true), powerlaw, reps);
  emit("common_serial_wall_seconds", common_serial.wall_seconds);
  emit("powerlaw_serial_wall_seconds", pl_serial.wall_seconds);

  // Bit-identity sweep: always on, every combination, both corpora.
  for (const int partitions : {1, 2, 4}) {
    for (const bool steal : {false, true}) {
      for (const int t : {1, threads}) {
        const std::string what = "partitions=" + std::to_string(partitions) +
                                 " threads=" + std::to_string(t) +
                                 (steal ? " steal" : " no-steal");
        const CorpusRun c =
            run_corpus(make_config(t, partitions, steal), common, 1);
        if (!check_identity(common, common_serial, c, "common " + what)) {
          gate_failed = true;
        }
        const CorpusRun p =
            run_corpus(make_config(t, partitions, steal), powerlaw, 1);
        if (!check_identity(powerlaw, pl_serial, p, "powerlaw " + what)) {
          gate_failed = true;
        }
      }
    }
  }

  // Zero-allocation gate: one worker (deterministic warm-up coverage),
  // partitioned workspace pools.
  {
    const CorpusRun steady =
        run_corpus(make_config(1, 4, true), common, std::max<std::size_t>(reps, 2));
    emit_count("steady_state_allocs_total_p4", steady.hot_allocs);
    if (steady.hot_allocs != 0) {
      std::fprintf(stderr,
                   "FAIL: steady-state block bodies allocated with "
                   "partition-local workspace pools\n");
      gate_failed = true;
    }
  }

  // Scale-out sweep: wall-clock, steal and imbalance telemetry per
  // (corpus, partitions) at the swept thread count.
  double common_p4_wall = 0.0;
  double pl_p1_wall = 0.0;
  double pl_p4_wall = 0.0;
  for (const int partitions : {1, 2, 4}) {
    const CorpusRun c =
        run_corpus(make_config(threads, partitions, true), common, reps);
    std::printf("point=common_p%d\n", partitions);
    emit_count("partitions", static_cast<std::size_t>(partitions));
    emit("wall_seconds", c.wall_seconds);
    emit_count("steals", c.steals);
    emit("worst_imbalance", c.imbalance);
    emit("speedup_vs_serial", common_serial.wall_seconds / c.wall_seconds);
    std::printf("point=\n");
    if (partitions == 4) common_p4_wall = c.wall_seconds;

    const CorpusRun p =
        run_corpus(make_config(threads, partitions, true), powerlaw, reps);
    std::printf("point=powerlaw_p%d\n", partitions);
    emit_count("partitions", static_cast<std::size_t>(partitions));
    emit("wall_seconds", p.wall_seconds);
    emit_count("steals", p.steals);
    emit("worst_imbalance", p.imbalance);
    emit("speedup_vs_serial", pl_serial.wall_seconds / p.wall_seconds);
    std::printf("point=\n");
    if (partitions == 1) pl_p1_wall = p.wall_seconds;
    if (partitions == 4) pl_p4_wall = p.wall_seconds;
  }

  // Headline metrics: parallel efficiency of the 4-partition executor on
  // the common corpus (serial flat wall / (threads x partitioned wall)) and
  // the stealing win on the power-law corpus at the same thread count.
  const double efficiency =
      common_serial.wall_seconds /
      (static_cast<double>(threads) * common_p4_wall);
  const double pl_speedup = pl_p1_wall / pl_p4_wall;
  emit("parallel_efficiency_p4", efficiency);
  emit("powerlaw_p4_speedup_vs_p1", pl_speedup);

  if (perf_gates_bind) {
    if (efficiency < min_efficiency) {
      std::fprintf(stderr,
                   "FAIL: parallel efficiency %.3f below the %.2f floor at 4 "
                   "partitions\n",
                   efficiency, min_efficiency);
      gate_failed = true;
    }
    if (pl_p4_wall >= pl_p1_wall) {
      std::fprintf(stderr,
                   "FAIL: 4-partition power-law wall %.4fs not better than "
                   "1-partition %.4fs (stealing win)\n",
                   pl_p4_wall, pl_p1_wall);
      gate_failed = true;
    }
  }

  if (gate_failed) return 1;
  std::printf("gate=pass\n");
  return 0;
}
