// Hot-path perf-trajectory benchmark: end-to-end common-corpus wall-clock,
// ns per simulated block, and heap allocations per block (steady state and
// warm-up), emitted as key=value lines for tools/bench_to_json.
//
// This binary installs a counting operator new so the passes' per-block
// allocation accounting (PassStats::hot_path_allocs, see
// common/alloc_counter.h) is live. The steady-state gate is hard: after one
// warm-up pass over the corpus, every further multiply must execute its
// block bodies without a single heap allocation, or the benchmark exits
// nonzero. CI runs `bench_hotpath --quick` as a regression gate.
//
// Results are bit-identical at every thread count; only wall-clock varies.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/alloc_counter.h"
#include "gen/corpus.h"
#include "speck/speck.h"

// Counting allocator: every successful allocation bumps the thread-local
// event counter the kernel passes snapshot around block bodies. Frees are
// not counted — the gate is about allocations, and in a steady state they
// pair up anyway.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace speck;

struct RunStats {
  double wall_seconds = 0.0;     ///< per full corpus pass (averaged)
  double sim_seconds = 0.0;      ///< summed simulated seconds, one pass
  std::size_t blocks = 0;        ///< simulated blocks, one pass
  std::size_t hot_allocs = 0;    ///< block-body allocations over all passes
  std::size_t passes = 0;
};

/// Runs `passes` full corpus passes on `sp`, accumulating wall-clock,
/// per-block allocation counts and block totals.
RunStats run_corpus(Speck& sp, const std::vector<gen::CorpusEntry>& corpus,
                    std::size_t passes) {
  RunStats stats;
  stats.passes = passes;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < passes; ++p) {
    for (const auto& entry : corpus) {
      const SpGemmResult result = sp.multiply(entry.a, entry.b);
      if (!result.ok()) {
        std::fprintf(stderr, "multiply failed on %s: %s\n", entry.name.c_str(),
                     result.failure_reason.c_str());
        std::exit(2);
      }
      const SpeckDiagnostics& diag = sp.last_diagnostics();
      stats.hot_allocs +=
          diag.symbolic.hot_path_allocs + diag.numeric.hot_path_allocs;
      if (p == 0) {
        stats.sim_seconds += result.seconds;
        stats.blocks += static_cast<std::size_t>(diag.symbolic_blocks) +
                        static_cast<std::size_t>(diag.numeric_blocks);
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count() /
                       static_cast<double>(passes);
  return stats;
}

void emit(const char* key, double value) { std::printf("%s=%.6g\n", key, value); }
void emit_count(const std::string& key, std::size_t value) {
  std::printf("%s=%zu\n", key.c_str(), value);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> thread_counts = {1, 8};
  std::size_t reps = 5;
  // Pre-change serial corpus wall-clock recorded on the reference machine
  // (see docs/performance.md); 0 disables the speedup line.
  double baseline_seconds = 1.7970;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      thread_counts = {1};
      reps = 1;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--baseline-seconds") == 0 && i + 1 < argc) {
      baseline_seconds = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--reps N] [--threads N] "
                   "[--baseline-seconds S]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto corpus = gen::common_corpus();
  std::printf("bench=hotpath\n");
  emit_count("corpus_matrices", corpus.size());
  emit_count("reps", reps);
  emit("baseline_wall_seconds", baseline_seconds);

  bool gate_failed = false;
  for (const int threads : thread_counts) {
    SpeckConfig cfg;
    cfg.host_threads = threads;
    Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    std::printf("point=threads%d\n", threads);
    emit_count("threads", static_cast<std::size_t>(threads));

    // Cold pass: workspaces fill up — allocations are expected here and
    // recorded as the warm-up cost. With multiple workers the block-to-worker
    // assignment is scheduling-dependent, so a worker may first meet the
    // largest block only in a later pass; growth is monotone, so warming
    // until one full pass is allocation-free converges in a few passes.
    const RunStats warmup = run_corpus(sp, corpus, 1);
    emit_count("blocks_per_pass", warmup.blocks);
    emit("warmup_allocs_per_block", static_cast<double>(warmup.hot_allocs) /
                                        static_cast<double>(warmup.blocks));
    if (threads > 1) {
      for (int extra = 0; extra < 10; ++extra) {
        if (run_corpus(sp, corpus, 1).hot_allocs == 0) break;
      }
    }

    // Steady state: same instance, warm workspaces.
    const RunStats steady = run_corpus(sp, corpus, reps);
    const double allocs_per_block =
        static_cast<double>(steady.hot_allocs) /
        static_cast<double>(steady.blocks * steady.passes);
    emit("corpus_wall_seconds", steady.wall_seconds);
    emit("sim_seconds", steady.sim_seconds);
    emit("ns_per_block",
         steady.wall_seconds * 1e9 / static_cast<double>(steady.blocks));
    emit("steady_state_allocs_per_block", allocs_per_block);
    emit_count("steady_state_allocs_total", steady.hot_allocs);
    if (threads == 1 && baseline_seconds > 0.0) {
      emit("speedup_vs_baseline", baseline_seconds / steady.wall_seconds);
    }
    std::printf("point=\n");
    // The hard gate runs at one worker, where warm-up deterministically
    // covers every (workspace, block) pairing yet all code paths execute;
    // multi-worker runs are reported for the trajectory.
    if (threads == 1 && steady.hot_allocs != 0) gate_failed = true;
  }

  if (gate_failed) {
    std::fprintf(stderr,
                 "FAIL: steady-state block bodies performed heap allocations "
                 "(the zero-allocation hot-path gate)\n");
    return 1;
  }
  std::printf("gate=pass\n");
  return 0;
}
