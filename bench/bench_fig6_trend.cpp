// Regenerates Figure 6 (GFLOPS over matrices ordered by product count,
// bucketed) and, with --per-matrix, the appendix Figure 15 listing.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

#include "bench_common.h"
#include "common/stats.h"

using namespace speck;
using namespace speck::bench;

int main(int argc, char** argv) {
  const bool per_matrix = argc > 1 && std::strcmp(argv[1], "--per-matrix") == 0;
  const auto corpus = gen::evaluation_collection();
  const auto algorithms = baselines::make_all_algorithms(
      sim::DeviceSpec::titan_v(), sim::CostModel{});
  auto measurements = run_suite(corpus, algorithms);

  // Failed runs are replaced by the slowest valid timing for the matrix
  // (the paper's Fig. 6 convention).
  std::map<std::string, double> slowest;
  for (const Measurement& m : measurements) {
    if (m.status != SpGemmStatus::kOk) continue;
    auto [it, inserted] = slowest.emplace(m.matrix, m.seconds);
    if (!inserted) it->second = std::max(it->second, m.seconds);
  }
  for (Measurement& m : measurements) {
    if (m.status == SpGemmStatus::kOk || slowest.count(m.matrix) == 0) continue;
    m.seconds = slowest[m.matrix];
    m.gflops = 2.0 * static_cast<double>(m.products) / m.seconds * 1e-9;
  }

  if (per_matrix) {
    std::printf("Figure 15: GFLOPS per matrix (ordered by products)\n\n");
    std::vector<std::pair<offset_t, std::string>> order;
    for (const auto& entry : corpus) order.emplace_back(entry.products(), entry.name);
    std::sort(order.begin(), order.end());
    print_row({"matrix", "products", "cu", "ac", "nsp", "rm", "bh", "cusp", "speck",
               "kk", "mkl"},
              {24, 10, 7, 7, 7, 7, 7, 7, 7, 7, 7});
    for (const auto& [products, matrix] : order) {
      std::vector<std::string> cells{matrix, std::to_string(products)};
      for (const auto& algorithm : algorithms) {
        double gflops = 0.0;
        for (const Measurement& m : measurements) {
          if (m.matrix == matrix && m.algorithm == algorithm->name()) gflops = m.gflops;
        }
        cells.push_back(format_double(gflops, 2));
      }
      print_row(cells, {24, 10, 7, 7, 7, 7, 7, 7, 7, 7, 7});
    }
    return 0;
  }

  // Bucket by log10(products): the trend plot's x-axis.
  std::printf("Figure 6: GFLOPS trend over product count (geometric mean per "
              "bucket)\n\n");
  std::map<int, std::map<std::string, std::vector<double>>> buckets;
  for (const Measurement& m : measurements) {
    if (m.gflops <= 0.0) continue;
    const int bucket = static_cast<int>(std::floor(
        std::log10(std::max<double>(static_cast<double>(m.products), 10.0)) * 2.0));
    buckets[bucket][m.algorithm].push_back(m.gflops);
  }
  std::vector<std::string> header{"products>="};
  for (const auto& algorithm : algorithms) header.push_back(algorithm->name());
  const std::vector<int> widths{11, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  print_row(header, widths);
  for (const auto& [bucket, per_algo] : buckets) {
    const double lo = std::pow(10.0, bucket / 2.0);
    std::vector<std::string> cells{format_double(lo, 0)};
    for (const auto& algorithm : algorithms) {
      const auto it = per_algo.find(algorithm->name());
      if (it == per_algo.end() || it->second.empty()) {
        cells.push_back("-");
      } else {
        cells.push_back(format_double(geometric_mean(it->second), 2));
      }
    }
    print_row(cells, widths);
  }
  // Terminal rendering of the trend for the four most telling series.
  {
    std::vector<std::string> names{"speck", "ac", "nsparse", "mkl"};
    std::vector<std::vector<double>> series(names.size());
    for (const auto& [bucket, per_algo] : buckets) {
      for (std::size_t si = 0; si < names.size(); ++si) {
        const auto it = per_algo.find(names[si]);
        series[si].push_back(it == per_algo.end() || it->second.empty()
                                 ? 0.0
                                 : geometric_mean(it->second));
      }
    }
    std::printf("\nGFLOPS trend (log scale, x = product bucket):\n%s",
                ascii_chart(names, series).c_str());
  }

  std::printf("\nCrossover check (paper: GPU beats MKL above ~15k products):\n");
  for (const auto& [bucket, per_algo] : buckets) {
    const auto speck_it = per_algo.find("speck");
    const auto mkl_it = per_algo.find("mkl");
    if (speck_it == per_algo.end() || mkl_it == per_algo.end()) continue;
    const double speck_mean = geometric_mean(speck_it->second);
    const double mkl_mean = geometric_mean(mkl_it->second);
    std::printf("  products >= %-10.0f speck/mkl = %.2f\n", std::pow(10.0, bucket / 2.0),
                speck_mean / mkl_mean);
  }
  return 0;
}
