// Regenerates Figure 11: the share of each pipeline stage in spECK's
// execution time on the common matrices.
#include <cstdio>

#include "bench_common.h"
#include "speck/speck.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const auto corpus = gen::common_corpus();
  SpeckConfig config;
  config.thresholds = reduced_scale_thresholds();
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);

  std::printf("Figure 11: spECK stage shares (%% of total time)\n\n");
  const std::vector<int> widths{14, 10, 11, 13, 10, 12, 9};
  print_row({"matrix", "analytics", "symb. load", "symb. SpGEMM", "num. load",
             "num. SpGEMM", "sorting"},
            widths);
  for (const auto& entry : corpus) {
    const SpGemmResult result = speck.multiply(entry.a, entry.b);
    if (!result.ok()) {
      std::printf(" %-14s failed: %s\n", entry.name.c_str(),
                  result.failure_reason.c_str());
      continue;
    }
    const auto share = [&](sim::Stage stage) {
      return format_double(100.0 * result.timeline.share(stage), 1);
    };
    print_row({entry.name, share(sim::Stage::kAnalysis),
               share(sim::Stage::kSymbolicLoadBalance), share(sim::Stage::kSymbolic),
               share(sim::Stage::kNumericLoadBalance), share(sim::Stage::kNumeric),
               share(sim::Stage::kSorting)},
              widths);
  }
  std::printf("\n(paper: numeric SpGEMM dominates; analysis <10%% in most cases;"
              " sorting up to 40%%)\n");
  return 0;
}
