// Extension: device-generation sensitivity. The paper's artifact (Appendix
// A.1) configures per-device scratchpad limits: Volta's 96 KB opt-in yields
// six kernel configurations, pre-Volta devices five. This benchmark runs the
// common corpus on both device models and reports spECK's adaptation.
#include <cstdio>

#include "bench_common.h"
#include "speck/speck.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const sim::DeviceSpec volta = sim::DeviceSpec::titan_v();
  const sim::DeviceSpec pascal = sim::DeviceSpec::pascal_like();
  const sim::CostModel model;

  std::printf("spECK across device generations (volta: %zu configs, pascal: %zu)\n\n",
              kernel_configs(volta).size(), kernel_configs(pascal).size());
  const std::vector<int> widths{14, 13, 13, 14, 14};
  print_row({"matrix", "volta GFLOPS", "pascal GFLOPS", "volta dense", "pascal dense"},
            widths);
  for (const auto& entry : gen::common_corpus()) {
    const offset_t products = entry.products();
    double gflops[2] = {0, 0};
    offset_t dense_rows[2] = {0, 0};
    int variant = 0;
    for (const sim::DeviceSpec& device : {volta, pascal}) {
      SpeckConfig config;
      config.thresholds = reduced_scale_thresholds();
      Speck speck(device, model, config);
      const SpGemmResult result = speck.multiply(entry.a, entry.b);
      SPECK_REQUIRE(result.ok(), "device run failed");
      gflops[variant] = result.gflops(products);
      dense_rows[variant] = speck.last_diagnostics().numeric.dense_rows;
      ++variant;
    }
    print_row({entry.name, format_double(gflops[0], 2), format_double(gflops[1], 2),
               std::to_string(dense_rows[0]), std::to_string(dense_rows[1])},
              widths);
  }
  std::printf("\n(the smaller Pascal-class device loses the 96 KB configuration:"
              " fewer SMs and smaller hash maps, same decisions otherwise)\n");
  return 0;
}
