// Extension benchmark (paper §7 future work): multi-GPU scaling with
// replicated vs shared (row-partitioned) B storage.
#include <cstdio>

#include "bench_common.h"
#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "speck/multi_gpu.h"

using namespace speck;
using namespace speck::bench;

int main() {
  struct Workload {
    const char* name;
    Csr a;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"banded (local refs)", gen::banded(60000, 500, 16, 301)});
  workloads.push_back({"uniform (remote refs)", gen::random_uniform(30000, 30000, 16, 303)});

  std::printf("Multi-GPU spECK scaling (extension; simulated)\n\n");
  const std::vector<int> widths{22, 6, 12, 12, 10, 9};
  print_row({"matrix", "gpus", "replicated", "shared B", "remote%", "eff."},
            widths);
  for (const auto& workload : workloads) {
    for (const int gpus : {1, 2, 4, 8}) {
      MultiGpuConfig replicated;
      replicated.gpus = gpus;
      replicated.replicate_b = true;
      MultiGpuSpeck rep(sim::DeviceSpec::titan_v(), sim::CostModel{}, replicated);
      const SpGemmResult rep_result = rep.multiply(workload.a, workload.a);
      SPECK_REQUIRE(rep_result.ok(), "multigpu run failed");

      MultiGpuConfig shared = replicated;
      shared.replicate_b = false;
      MultiGpuSpeck shr(sim::DeviceSpec::titan_v(), sim::CostModel{}, shared);
      const SpGemmResult shr_result = shr.multiply(workload.a, workload.a);
      SPECK_REQUIRE(shr_result.ok(), "multigpu run failed");

      print_row({workload.name, std::to_string(gpus),
                 format_double(rep_result.seconds * 1e3, 3) + "ms",
                 format_double(shr_result.seconds * 1e3, 3) + "ms",
                 format_double(shr.last_diagnostics().remote_reference_fraction * 100.0, 1),
                 format_double(rep.last_diagnostics().parallel_efficiency, 2)},
                widths);
    }
  }
  std::printf("\n(banded matrices keep references on the owning device, so shared"
              " storage is nearly free;\n uniform matrices pay interconnect"
              " bandwidth for ~ (G-1)/G of their references)\n");
  return 0;
}
