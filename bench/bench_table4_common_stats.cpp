// Regenerates Table 4: statistics of the common-matrix corpus (rows,
// columns, NNZ of A, intermediate products, NNZ of C).
#include <cstdio>

#include "bench_common.h"
#include "matrix/matrix_stats.h"
#include "ref/gustavson.h"

using namespace speck;
using namespace speck::bench;

int main() {
  std::printf("Table 4: common-matrix corpus statistics\n");
  std::printf("(synthetic stand-ins; paper values are the full-scale originals)\n\n");
  const std::vector<int> widths{14, 9, 9, 10, 12, 10, 11};
  print_row({"matrix", "rows", "cols", "nnz(A)", "products", "nnz(C)", "compaction"},
            widths);
  for (const auto& entry : gen::common_corpus()) {
    const offset_t products = entry.products();
    const auto c_row_nnz = gustavson_symbolic(entry.a, entry.b);
    offset_t c_nnz = 0;
    for (const index_t nnz : c_row_nnz) c_nnz += nnz;
    print_row({entry.name, std::to_string(entry.a.rows()),
               std::to_string(entry.a.cols()), std::to_string(entry.a.nnz()),
               std::to_string(products), std::to_string(c_nnz),
               format_double(static_cast<double>(products) /
                             static_cast<double>(std::max<offset_t>(c_nnz, 1)))},
              widths);
  }
  return 0;
}
