// Estimated-planning benchmark: plan() cost under exact vs estimated
// planning on the common corpus, emitted as key=value / point= lines for
// tools/bench_to_json.
//
// Estimated planning (docs/performance.md "Estimated planning") keeps the
// cheap exact row analysis but replaces the O(products) symbolic pass with a
// sampled per-row NNZ estimator;
// rows whose estimate underflows at numeric time re-run through the exact
// fallback, so the result is bit-identical either way. Three hard gates back
// the checked-in BENCH_planning.json (CI runs `bench_planning --quick`):
//
//   * plan() wall time under estimated planning must be at least
//     --min-speedup (default 2x) faster than exact planning at one thread,
//   * every estimated-mode C must be bit-identical to the exact pipeline's —
//     at every measured thread count, and again with fault injection
//     (estimator-scale) shrinking the estimates so the fallback machinery
//     carries the run,
//   * the honest-estimate fallback rate (underflowed rows / planned rows)
//     must stay under --max-fallback-rate (default 0.25); the rate is also
//     emitted as fallback_rate= for bench_check --info-metric.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gen/corpus.h"
#include "matrix/ops.h"
#include "speck/speck.h"

namespace {

using namespace speck;

void emit(const char* key, double value) { std::printf("%s=%.6g\n", key, value); }
void emit_count(const char* key, std::size_t value) {
  std::printf("%s=%zu\n", key, value);
}

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> thread_counts = {1, 8};
  std::size_t iterations = 5;
  double min_speedup = 2.0;
  double max_fallback_rate = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      thread_counts = {1};
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-fallback-rate") == 0 &&
               i + 1 < argc) {
      max_fallback_rate = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--iterations N] [--threads N] "
                   "[--min-speedup X] [--max-fallback-rate F]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto corpus = gen::common_corpus();
  std::printf("bench=planning\n");
  emit_count("corpus_matrices", corpus.size());
  emit_count("iterations", iterations);
  emit("min_speedup", min_speedup);
  emit("max_fallback_rate", max_fallback_rate);

  bool gate_failed = false;
  for (const int threads : thread_counts) {
    SpeckConfig cfg;
    cfg.host_threads = threads;
    cfg.plan_cache = false;  // every plan() must really build
    cfg.planning = PlanningMode::kExact;
    Speck exact(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    cfg.planning = PlanningMode::kEstimated;
    Speck estimated(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    std::printf("point=threads%d\n", threads);
    emit_count("threads", static_cast<std::size_t>(threads));

    // Warm both instances' kernel workspaces so the timed loops compare
    // steady states rather than first-touch buffer growth.
    for (const auto& entry : corpus) {
      if (!exact.multiply(entry.a, entry.b).ok() ||
          !estimated.multiply(entry.a, entry.b).ok()) {
        std::fprintf(stderr, "warm-up multiply failed\n");
        return 2;
      }
    }

    // Exact planning: the full pipeline (analysis + symbolic + numeric)
    // behind every plan() call.
    const auto t_exact = std::chrono::steady_clock::now();
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      for (const auto& entry : corpus) {
        const SpeckPlan p = exact.plan(entry.a, entry.b);
        if (!p.complete) {
          std::fprintf(stderr, "exact planning failed on %s: %s\n",
                       entry.name.c_str(), p.incomplete_reason.c_str());
          return 2;
        }
      }
    }
    const double exact_wall = now_minus(t_exact);

    // Estimated planning: sampled estimator, no symbolic pass; count the
    // rows that underflowed their estimate and re-ran the exact fallback.
    std::size_t fallback_rows = 0;
    std::size_t planned_rows = 0;
    const auto t_est = std::chrono::steady_clock::now();
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      for (const auto& entry : corpus) {
        const SpeckPlan p = estimated.plan(entry.a, entry.b);
        if (!p.complete) {
          std::fprintf(stderr, "estimated planning failed on %s: %s\n",
                       entry.name.c_str(), p.incomplete_reason.c_str());
          return 2;
        }
        fallback_rows += static_cast<std::size_t>(
            estimated.last_diagnostics().numeric.estimate_underflow_rows);
        planned_rows += static_cast<std::size_t>(entry.a.rows());
      }
    }
    const double est_wall = now_minus(t_est);
    const double speedup = exact_wall / est_wall;
    const double fallback_rate =
        planned_rows == 0
            ? 0.0
            : static_cast<double>(fallback_rows) /
                  static_cast<double>(planned_rows);

    // Bit-identity: the estimated pipeline must reproduce the exact C
    // everywhere — first with honest estimates, then with fault injection
    // scaling the sampled estimates down so the fallback path carries most
    // rows (the plan self-corrects; only wall time may change).
    bool bit_identical = true;
    std::size_t forced_fallback_rows = 0;
    SpeckConfig forced_cfg = cfg;
    forced_cfg.faults.estimator_scale = 0.25;
    Speck forced(sim::DeviceSpec::titan_v(), sim::CostModel{}, forced_cfg);
    for (const auto& entry : corpus) {
      const SpGemmResult want = exact.multiply(entry.a, entry.b);
      const SpGemmResult honest = estimated.multiply(entry.a, entry.b);
      const SpGemmResult fallback = forced.multiply(entry.a, entry.b);
      if (!want.ok() || !honest.ok() || !fallback.ok()) {
        std::fprintf(stderr, "verification multiply failed on %s\n",
                     entry.name.c_str());
        return 2;
      }
      forced_fallback_rows += static_cast<std::size_t>(
          forced.last_diagnostics().numeric.estimate_underflow_rows);
      if (compare(honest.c, want.c, 0.0).has_value()) {
        std::fprintf(stderr, "FAIL: estimated C for %s is not bit-identical\n",
                     entry.name.c_str());
        bit_identical = false;
      }
      if (compare(fallback.c, want.c, 0.0).has_value()) {
        std::fprintf(stderr,
                     "FAIL: forced-fallback C for %s is not bit-identical\n",
                     entry.name.c_str());
        bit_identical = false;
      }
    }

    emit("exact_plan_wall_seconds", exact_wall);
    emit("estimated_plan_wall_seconds", est_wall);
    emit("plan_speedup", speedup);
    emit("fallback_rate", fallback_rate);
    emit_count("fallback_rows", fallback_rows);
    emit_count("planned_rows", planned_rows);
    emit_count("forced_fallback_rows", forced_fallback_rows);
    std::printf("point=\n");

    // Speedup and fallback gates bind at one worker (deterministic steady
    // state); multi-worker points are reported for the trajectory.
    // Bit-identity gates everywhere.
    if (threads == 1 && speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: plan speedup %.3f < %.3f\n", speedup,
                   min_speedup);
      gate_failed = true;
    }
    if (threads == 1 && fallback_rate > max_fallback_rate) {
      std::fprintf(stderr, "FAIL: fallback rate %.4f > %.4f\n", fallback_rate,
                   max_fallback_rate);
      gate_failed = true;
    }
    if (forced_fallback_rows == 0) {
      std::fprintf(stderr,
                   "FAIL: estimator-scale=0.25 forced no fallback rows — the "
                   "fault path is not exercising the fallback machinery\n");
      gate_failed = true;
    }
    if (!bit_identical) gate_failed = true;
  }

  if (gate_failed) return 1;
  std::printf("gate=pass\n");
  return 0;
}
