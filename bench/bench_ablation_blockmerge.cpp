// Ablation benchmark for Algorithm 2 (block merge): with merging disabled,
// every small row occupies its own under-filled block, wasting scratchpad
// and thread slots (paper §4.2 "Binning" / Fig. 3).
#include <cstdio>

#include "bench_common.h"
#include "gen/generators.h"
#include "speck/speck.h"

using namespace speck;
using namespace speck::bench;

int main() {
  std::printf("Ablation: Algorithm 2 block merge on/off (global LB forced on)\n\n");
  const std::vector<int> widths{24, 10, 10, 9, 13, 13};
  print_row({"matrix", "merge(ms)", "none(ms)", "speedup", "blocks(merge)",
             "blocks(none)"},
            widths);

  std::uint64_t seed = 7000;
  struct Workload {
    std::string name;
    Csr a;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"tiny rows d2", gen::random_uniform(40000, 40000, 2, ++seed)});
  workloads.push_back({"mesh 2d", gen::stencil_2d(220, 220)});
  workloads.push_back({"banded d4", gen::banded(40000, 50, 4, ++seed)});
  workloads.push_back({"skewed", gen::skewed_rows(20000, 20000, 0.01, 1024, 3, ++seed)});
  workloads.push_back({"medium d16", gen::random_uniform(8000, 8000, 16, ++seed)});

  for (const auto& workload : workloads) {
    double seconds[2] = {0, 0};
    int blocks[2] = {0, 0};
    for (int variant = 0; variant < 2; ++variant) {
      SpeckConfig config;
      config.thresholds = reduced_scale_thresholds();
      config.features.set_global_lb(GlobalLbMode::kAlwaysOn);
      config.features.block_merge = variant == 0;
      Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{}, config);
      const SpGemmResult result = speck.multiply(workload.a, workload.a);
      SPECK_REQUIRE(result.ok(), "ablation run failed");
      seconds[variant] = result.seconds;
      blocks[variant] = speck.last_diagnostics().numeric_blocks;
    }
    print_row({workload.name, format_double(seconds[0] * 1e3, 3),
               format_double(seconds[1] * 1e3, 3),
               format_double(seconds[1] / seconds[0]),
               std::to_string(blocks[0]), std::to_string(blocks[1])},
              widths);
  }
  std::printf("\n(merging packs up to 32 small rows per block: fewer blocks,"
              " amortized extraction scans)\n");
  return 0;
}
