// Regenerates Figure 12: hash-only vs. +dense accumulation vs. +direct
// referencing, over matrices ordered by the maximum NNZ per row of C.
// The paper reports up to 60% gains from dense accumulation (sort
// avoidance) and up to 40x for rows exceeding the largest scratchpad map
// (global-memory hash avoidance, e.g. matrix 208bit).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "gen/generators.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

using namespace speck;
using namespace speck::bench;

namespace {

/// Workload with growing maximum output-row length: skewed matrices whose
/// heavy rows produce ever longer C rows, plus single-entry-row matrices
/// for the direct path.
std::vector<gen::CorpusEntry> workload() {
  std::vector<gen::CorpusEntry> entries;
  std::uint64_t seed = 5000;
  for (const index_t heavy : {512, 1024, 2048, 4096, 8192, 16384}) {
    gen::CorpusEntry e;
    e.name = "maxrow_" + std::to_string(heavy);
    e.a = gen::skewed_rows(4000, 40000, 0.004, heavy, 4, ++seed);
    // Make the matrix square-multipliable: widen to 40000 rows.
    e.a = gen::skewed_rows(40000, 40000, 0.0004, heavy, 3, ++seed);
    e.b = e.a;
    entries.push_back(std::move(e));
  }
  for (const double single : {0.95, 0.6}) {
    gen::CorpusEntry e;
    e.name = "single_" + std::to_string(static_cast<int>(single * 100));
    e.a = gen::single_entry_mix(30000, 30000, single, 12, ++seed);
    e.b = e.a;
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

int main() {
  const auto entries = workload();
  const sim::DeviceSpec device = sim::DeviceSpec::titan_v();
  const sim::CostModel model;

  struct Variant {
    const char* name;
    bool dense;
    bool direct;
  };
  const Variant variants[] = {{"hash", false, false},
                              {"hash+dense", true, false},
                              {"hash+dense+direct", true, true}};

  std::printf("Figure 12: accumulator ablation (slowdown to fastest variant)\n\n");
  const std::vector<int> widths{16, 12, 10, 13, 19};
  print_row({"matrix", "maxNNZ(C)", "hash", "hash+dense", "hash+dense+direct"},
            widths);
  for (const auto& entry : entries) {
    const auto c_row_nnz = gustavson_symbolic(entry.a, entry.b);
    const index_t max_c =
        *std::max_element(c_row_nnz.begin(), c_row_nnz.end());
    double seconds[3] = {0, 0, 0};
    for (int v = 0; v < 3; ++v) {
      SpeckConfig config;
      config.thresholds = reduced_scale_thresholds();
      Speck speck(device, model, config);
      speck.config().features.dense_accumulation = variants[v].dense;
      speck.config().features.direct_rows = variants[v].direct;
      const SpGemmResult result = speck.multiply(entry.a, entry.b);
      SPECK_REQUIRE(result.ok(), "ablation run failed");
      seconds[v] = result.seconds;
    }
    const double best = std::min({seconds[0], seconds[1], seconds[2]});
    print_row({entry.name, std::to_string(max_c),
               format_double(seconds[0] / best), format_double(seconds[1] / best),
               format_double(seconds[2] / best)},
              widths);
  }
  std::printf("\n(paper: dense accumulation gains grow with the longest row;"
              " direct referencing helps single-entry-row matrices)\n");
  return 0;
}
