// Concurrent-serving benchmark: N client threads issuing a Zipf-distributed
// mix of fixed-pattern multiplies against one shared Speck, comparing the
// mutex-serialized legacy replay (every request takes one global lock around
// Speck::multiply_with_plan) with SpeckService's lock-free replay path
// (multiply_into + leased client workspaces). Emitted as key=value / point=
// lines for tools/bench_to_json; backs the checked-in BENCH_service.json.
//
// Hard gates (CI runs `bench_service --quick`):
//
//   * every served result must be bit-identical to the Gustavson reference
//     for its pattern (always enforced),
//   * the steady-state replay must perform zero hot-path heap allocations
//     (always enforced, measured single-threaded via the same counting
//     operator new as bench_reuse),
//   * service throughput must reach --min-speedup (default 3x) over the
//     serialized baseline at 8 client threads — enforced only when the
//     machine has >= 8 hardware cores, since on fewer cores both sides
//     timeshare the same CPUs and the ratio measures the scheduler, not
//     the lock structure (reported unconditionally for the trajectory).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "common/alloc_counter.h"
#include "common/prng.h"
#include "gen/generators.h"
#include "matrix/ops.h"
#include "ref/gustavson.h"
#include "speck/service.h"
#include "speck/speck.h"

// Counting allocator: every successful allocation bumps the thread-local
// event counter the replay snapshots around its op loop.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace speck;

void emit(const char* key, double value) { std::printf("%s=%.6g\n", key, value); }
void emit_count(const char* key, std::size_t value) {
  std::printf("%s=%zu\n", key, value);
}

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The serving pattern mix: distinct structures of serving-sized matrices.
std::vector<Csr> make_patterns() {
  std::vector<Csr> out;
  out.push_back(gen::banded(512, 16, 10, 11));
  out.push_back(gen::banded(384, 24, 12, 22));
  out.push_back(gen::power_law(400, 400, 8, 2.2, 60, 33));
  out.push_back(gen::power_law(512, 512, 6, 2.0, 40, 44));
  out.push_back(gen::stencil_2d(24, 24));
  out.push_back(gen::block_diagonal(16, 24, 0.5, 55));
  return out;
}

/// CDF of a Zipf(s) distribution over `n` ranks.
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::size_t zipf_pick(const std::vector<double>& cdf, double u) {
  return static_cast<std::size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

/// Per-request pattern schedule, identical for both sides of the comparison.
std::vector<std::vector<std::size_t>> make_schedules(int threads,
                                                     std::size_t requests,
                                                     std::size_t patterns,
                                                     double zipf_s,
                                                     std::uint64_t seed) {
  const std::vector<double> cdf = zipf_cdf(patterns, zipf_s);
  std::vector<std::vector<std::size_t>> schedules(
      static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 7919u);
    auto& schedule = schedules[static_cast<std::size_t>(t)];
    schedule.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      schedule.push_back(zipf_pick(cdf, rng.next_double()));
    }
  }
  return schedules;
}

struct LatencyReport {
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

LatencyReport merge_latencies(std::vector<std::vector<double>>& per_thread) {
  std::vector<double> all;
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LatencyReport rep;
  if (all.empty()) return rep;
  auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(q * (all.size() - 1));
    return all[idx] * 1e6;
  };
  rep.p50_us = at(0.50);
  rep.p90_us = at(0.90);
  rep.p99_us = at(0.99);
  rep.max_us = all.back() * 1e6;
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> thread_counts = {1, 2, 8};
  std::size_t requests = 400;  // per client thread
  double zipf_s = 1.0;
  double min_speedup = 3.0;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      thread_counts = {1, 8};
      requests = 150;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--zipf") == 0 && i + 1 < argc) {
      zipf_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads N] [--requests N] "
                   "[--zipf S] [--min-speedup X] [--seed N]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const std::vector<Csr> patterns = make_patterns();
  std::vector<Csr> refs;
  for (const Csr& a : patterns) refs.push_back(gustavson_spgemm(a, a));

  std::printf("bench=service\n");
  emit_count("cores", cores);
  emit_count("patterns", patterns.size());
  emit_count("requests_per_thread", requests);
  emit("zipf_s", zipf_s);
  emit("min_speedup", min_speedup);

  SpeckConfig cfg;
  cfg.host_threads = 1;  // replay runs serially per client; no nested pools
  cfg.plan_cache = false;
  Speck sp(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
  SpeckService service(sp);

  // Plan every pattern up front: both sides of the comparison measure pure
  // replay throughput, which is the serving steady state.
  std::vector<std::shared_ptr<const SpeckPlan>> plans;
  for (const Csr& a : patterns) {
    Status st;
    std::shared_ptr<const SpeckPlan> plan = service.plan_for(a, a, &st);
    if (plan == nullptr) {
      std::fprintf(stderr, "planning failed: %s\n", st.message.c_str());
      return 2;
    }
    plans.push_back(std::move(plan));
  }

  // Gate 1 (always): the steady-state replay is allocation-free,
  // live-counted inside the replay kernel at one thread.
  std::size_t hot_allocs = 0;
  {
    std::vector<value_t> buf;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      buf.resize(static_cast<std::size_t>(plans[p]->c_nnz()));
      // warm-up, then measured
      (void)sp.replay_values_into(*plans[p], patterns[p], patterns[p], buf);
      SpeckDiagnostics diag;
      SpGemmResult r = sp.replay_values_into(*plans[p], patterns[p],
                                             patterns[p], buf, &diag);
      if (!r.ok()) {
        std::fprintf(stderr, "replay failed: %s\n", r.failure_reason.c_str());
        return 2;
      }
      hot_allocs += diag.numeric.hot_path_allocs;
    }
  }
  emit_count("replay_hot_allocs", hot_allocs);

  // Gate 2 (always): every pattern's served values are bit-identical to the
  // Gustavson reference.
  bool bit_identical = true;
  {
    std::vector<value_t> buf;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      SpeckService::Response resp =
          service.multiply_into(patterns[p], patterns[p], buf);
      const std::span<const value_t> want = refs[p].values();
      if (!resp.ok() || resp.c_nnz != refs[p].nnz() ||
          !std::equal(buf.begin(), buf.end(), want.begin(), want.end())) {
        std::fprintf(stderr, "FAIL: pattern %zu served values diverge\n", p);
        bit_identical = false;
      }
    }
  }

  bool gate_failed = !bit_identical || hot_allocs != 0;
  if (hot_allocs != 0) {
    std::fprintf(stderr, "FAIL: replay hot path performed %zu allocations\n",
                 hot_allocs);
  }

  std::mutex legacy_mutex;  // the baseline's single global lock
  for (const int threads : thread_counts) {
    const auto schedules = make_schedules(threads, requests,
                                          patterns.size(), zipf_s, seed);
    std::printf("point=threads%d\n", threads);
    emit_count("threads", static_cast<std::size_t>(threads));

    // Baseline: mutex-serialized legacy replay. Every client takes the one
    // lock because the legacy entry point mutates Speck member state.
    std::atomic<std::size_t> errors{0};
    std::vector<std::vector<double>> lat(
        static_cast<std::size_t>(threads));
    auto run_clients = [&](auto&& body) {
      std::vector<std::thread> clients;
      const auto t0 = std::chrono::steady_clock::now();
      for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] { body(t); });
      }
      for (auto& th : clients) th.join();
      return now_minus(t0);
    };

    for (auto& v : lat) {
      v.clear();
      v.reserve(requests);
    }
    const double serialized_wall = run_clients([&](int t) {
      auto& my_lat = lat[static_cast<std::size_t>(t)];
      for (const std::size_t p : schedules[static_cast<std::size_t>(t)]) {
        const auto r0 = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lock(legacy_mutex);
        SpGemmResult r =
            sp.multiply_with_plan(*plans[p], patterns[p], patterns[p]);
        if (!r.ok()) errors.fetch_add(1, std::memory_order_relaxed);
        my_lat.push_back(now_minus(r0));
      }
    });
    const LatencyReport serialized_lat = merge_latencies(lat);

    for (auto& v : lat) {
      v.clear();
      v.reserve(requests);
    }
    const double service_wall = run_clients([&](int t) {
      auto& my_lat = lat[static_cast<std::size_t>(t)];
      WorkspacePool::Lease lease = service.client_workspaces().lease();
      std::vector<value_t>& buf = lease->replay_values();
      for (const std::size_t p : schedules[static_cast<std::size_t>(t)]) {
        const auto r0 = std::chrono::steady_clock::now();
        SpeckService::Response resp =
            service.multiply_into(patterns[p], patterns[p], buf);
        if (!resp.ok()) errors.fetch_add(1, std::memory_order_relaxed);
        my_lat.push_back(now_minus(r0));
      }
    });
    const LatencyReport service_lat = merge_latencies(lat);

    if (errors.load() != 0) {
      std::fprintf(stderr, "FAIL: %zu requests errored\n", errors.load());
      gate_failed = true;
    }

    const double total =
        static_cast<double>(requests) * static_cast<double>(threads);
    const double speedup = serialized_wall / service_wall;
    emit("serialized_wall_seconds", serialized_wall);
    emit("service_wall_seconds", service_wall);
    emit("serialized_rps", total / serialized_wall);
    emit("service_rps", total / service_wall);
    emit("speedup", speedup);
    emit("serialized_p50_us", serialized_lat.p50_us);
    emit("serialized_p99_us", serialized_lat.p99_us);
    emit("service_p50_us", service_lat.p50_us);
    emit("service_p90_us", service_lat.p90_us);
    emit("service_p99_us", service_lat.p99_us);
    emit("service_max_us", service_lat.max_us);
    std::printf("point=\n");

    if (threads >= 8 && cores >= 8 && speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: service speedup %.3f < %.3f at %d threads "
                   "(%u cores)\n",
                   speedup, min_speedup, threads, cores);
      gate_failed = true;
    }
  }

  const ServiceStats stats = service.stats();
  emit_count("service_requests", stats.requests);
  emit_count("service_replays", stats.replays);
  emit_count("plans_built", stats.plans_built);
  emit_count("admission_rejected", stats.rejected);
  // Lifecycle counters (informational: no deadlines/faults are configured
  // here, so all three must stay 0 — bench_check reports them without
  // gating via --info-metric).
  emit_count("service_shed", stats.shed);
  emit_count("service_timed_out", stats.timed_out);
  emit_count("service_degraded", stats.degraded);
  emit_count("cache_entries", stats.cache.entries);
  emit_count("cache_bytes", stats.cache.bytes);
  if (stats.rejected != 0) {
    std::fprintf(stderr, "FAIL: %llu requests rejected with no budget set\n",
                 static_cast<unsigned long long>(stats.rejected));
    gate_failed = true;
  }

  if (gate_failed) return 1;
  std::printf("gate=pass\n");
  return 0;
}
