// Regenerates Table 2: auto-tunes the global load-balancing thresholds by
// line search with inverse 3-fold cross validation (train on one fold,
// evaluate on the other two), then averages the per-fold parameters.
#include <cstdio>

#include "bench_common.h"
#include "speck/tuner.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const auto corpus = gen::evaluation_collection();
  Speck speck(sim::DeviceSpec::titan_v(), sim::CostModel{});

  std::printf("Collecting tuning samples (4 load-balancer combinations per "
              "matrix, %zu matrices)...\n", corpus.size());
  std::vector<TuningSample> samples;
  samples.reserve(corpus.size());
  for (const auto& entry : corpus) {
    samples.push_back(measure_tuning_sample(speck, entry.a, entry.b));
  }

  const auto folds = k_folds(samples.size(), 3, /*seed=*/2020);
  std::printf("\nInverse 3-fold cross validation (train on 1/3, evaluate on "
              "2/3):\n");
  for (std::size_t f = 0; f < folds.size(); ++f) {
    std::vector<TuningSample> train, eval;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const bool in_fold =
          std::find(folds[f].begin(), folds[f].end(), i) != folds[f].end();
      (in_fold ? train : eval).push_back(samples[i]);
    }
    const TuningResult tuned = tune_thresholds(train);
    const double eval_loss = tuning_loss(eval, tuned.thresholds);
    std::printf("  fold %zu: train slowdown %.2f%%, eval slowdown %.2f%%\n", f,
                100.0 * (tuned.mean_slowdown - 1.0), 100.0 * (eval_loss - 1.0));
  }

  // Final parameters: tuned over the full sample set. (The paper averages
  // its fold parameters because they converge within 10%; our corpus is two
  // orders of magnitude smaller, so the folds disagree and full-set tuning
  // is the robust equivalent.)
  const TuningResult final_tuned = tune_thresholds(samples);
  const SpeckThresholds& averaged = final_tuned.thresholds;
  const double final_loss = tuning_loss(samples, averaged);
  int best_picks = 0;
  for (const TuningSample& s : samples) {
    const bool sym = lb_decision(s.symbolic_decision, averaged.symbolic,
                                 averaged.symbolic_large);
    const bool num =
        lb_decision(s.numeric_decision, averaged.numeric, averaged.numeric_large);
    double best = s.seconds[0][0];
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) best = std::min(best, s.seconds[i][j]);
    }
    if (s.seconds[sym ? 1 : 0][num ? 1 : 0] <= best * (1.0 + 1e-12)) ++best_picks;
  }

  std::printf("\nTable 2: averaged auto-tuned thresholds\n\n");
  const std::vector<int> widths{10, 14, 9, 16, 9};
  print_row({"", "m_max/m_avg", "rows_C", "m_max/m_avg*", "rows_C*"}, widths);
  print_row({"Symbolic", format_double(averaged.symbolic.ratio, 1),
             std::to_string(averaged.symbolic.min_rows),
             format_double(averaged.symbolic_large.ratio, 1),
             std::to_string(averaged.symbolic_large.min_rows)},
            widths);
  print_row({"Numeric", format_double(averaged.numeric.ratio, 1),
             std::to_string(averaged.numeric.min_rows),
             format_double(averaged.numeric_large.ratio, 1),
             std::to_string(averaged.numeric_large.min_rows)},
            widths);
  std::printf("\n(paper: symbolic 39.2 / 28000, * 6.0 / 5431; numeric 10.5 / 23006,"
              " * 1.3 / 1238)\n");
  std::printf("final slowdown with averaged parameters: %.2f%% (paper: 1.7%%);"
              " fastest combination selected for %.0f%% of matrices (paper: 85%%)\n",
              100.0 * (final_loss - 1.0),
              100.0 * best_picks / static_cast<double>(samples.size()));
  return 0;
}
