// Shared helpers for the benchmark/report binaries: each binary regenerates
// one of the paper's tables or figures (DESIGN.md §4) as formatted text.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baselines/suite.h"
#include "gen/corpus.h"
#include "ref/spgemm_api.h"

namespace speck::bench {

/// One algorithm's measurement on one corpus entry.
struct Measurement {
  std::string algorithm;
  std::string matrix;
  offset_t products = 0;
  SpGemmStatus status = SpGemmStatus::kOk;
  double seconds = 0.0;
  double gflops = 0.0;
  std::size_t peak_memory_bytes = 0;
  sim::StageTimeline timeline;
};

/// Runs every algorithm on every corpus entry. Results are verified against
/// the exact oracle once per matrix (any mismatch aborts — benchmarks must
/// not report wrong results).
std::vector<Measurement> run_suite(
    const std::vector<gen::CorpusEntry>& corpus,
    const std::vector<std::unique_ptr<SpGemmAlgorithm>>& algorithms,
    bool verify = true);

/// Fixed-width table printing.
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);
std::string format_double(double v, int precision = 2);
std::string format_bytes_mb(std::size_t bytes);

/// Per-matrix best time among OK measurements; key = matrix name.
std::map<std::string, double> best_seconds_per_matrix(
    const std::vector<Measurement>& measurements);

/// Handles the `--threads N` flag shared by the benchmark binaries: resizes
/// the process-wide host thread pool and returns the thread count now in
/// effect (the SPECK_THREADS/hardware default when the flag is absent).
/// Results are bit-identical for every thread count; only host wall-clock
/// changes.
int apply_thread_flag(int argc, char** argv);

/// Host wall-clock of `fn()` in seconds (monotonic clock).
double wall_seconds(const std::function<void()>& fn);

}  // namespace speck::bench

namespace speck::bench {

/// Writes the raw measurements as CSV (one row per algorithm x matrix) for
/// downstream plotting: algorithm,matrix,products,status,seconds,gflops,
/// peak_memory_bytes.
void write_csv(const std::string& path, const std::vector<Measurement>& measurements);

}  // namespace speck::bench

namespace speck::bench {

/// Renders series as a fixed-height ASCII line chart (one symbol per
/// series, x = sample index, optional log-scaled y). Used to draw the
/// trend figures in the terminal.
std::string ascii_chart(const std::vector<std::string>& series_names,
                        const std::vector<std::vector<double>>& series,
                        int height = 16, bool log_scale = true);

}  // namespace speck::bench
