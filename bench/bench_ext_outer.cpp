// Extension: row-wise vs column-driven (outer-product) SpGEMM across
// compaction factors. Outer-product formulations touch every intermediate
// product twice (expand + merge), so they fall behind row-wise hashing as
// compaction grows — the same argument the paper makes against global ESC,
// amplified.
#include <cstdio>

#include "baselines/esc_cusp.h"
#include "baselines/outer_product.h"
#include "bench_common.h"
#include "gen/generators.h"
#include "matrix/matrix_stats.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const sim::DeviceSpec device = sim::DeviceSpec::titan_v();
  const sim::CostModel model;
  SpeckConfig config;
  config.thresholds = reduced_scale_thresholds();
  Speck speck(device, model, config);
  baselines::OuterProduct outer(device, model);
  baselines::EscCusp cusp(device, model);

  std::printf("Row-wise vs column-driven SpGEMM across compaction (extension)\n\n");
  const std::vector<int> widths{20, 11, 11, 11, 11, 12};
  print_row({"matrix", "compaction", "speck(ms)", "outer(ms)", "cusp(ms)",
             "outer mem(MB)"},
            widths);

  std::uint64_t seed = 8100;
  struct Workload {
    std::string name;
    Csr a;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"uniform d4 (low)", gen::random_uniform(20000, 20000, 4, ++seed)});
  workloads.push_back({"grid2d (med)", gen::stencil_2d(150, 150)});
  workloads.push_back({"denseband (high)", gen::banded(8000, 24, 32, ++seed)});
  workloads.push_back({"blockdiag (extreme)", gen::block_diagonal(8, 100, 0.9, ++seed)});

  for (const auto& workload : workloads) {
    const offset_t products = count_products(workload.a, workload.a);
    const auto c_nnz = [&] {
      offset_t total = 0;
      for (const index_t nnz : gustavson_symbolic(workload.a, workload.a)) total += nnz;
      return total;
    }();
    const SpGemmResult speck_result = speck.multiply(workload.a, workload.a);
    const SpGemmResult outer_result = outer.multiply(workload.a, workload.a);
    const SpGemmResult cusp_result = cusp.multiply(workload.a, workload.a);
    SPECK_REQUIRE(speck_result.ok() && outer_result.ok() && cusp_result.ok(),
                  "extension run failed");
    print_row({workload.name,
               format_double(static_cast<double>(products) /
                             static_cast<double>(std::max<offset_t>(c_nnz, 1))),
               format_double(speck_result.seconds * 1e3, 3),
               format_double(outer_result.seconds * 1e3, 3),
               format_double(cusp_result.seconds * 1e3, 3),
               format_bytes_mb(outer_result.peak_memory_bytes)},
              widths);
  }
  std::printf("\n(row-wise hashing pulls away as compaction grows; the outer"
              " formulation pays expand+sort on every product regardless)\n");
  return 0;
}
