// Regenerates Figure 13: dynamic selection of g (threads per row of B)
// versus the fixed g=32 nsparse uses, over matrices ordered by the average
// NNZ per row of C. The paper shows up to 8x speedups away from the
// g=32 sweet spot (~300 NZ per output row).
#include <cstdio>

#include "bench_common.h"
#include "gen/generators.h"
#include "ref/gustavson.h"
#include "speck/speck.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const sim::DeviceSpec device = sim::DeviceSpec::titan_v();
  const sim::CostModel model;

  std::printf("Figure 13: dynamic local load balancing vs fixed g=32\n\n");
  const std::vector<int> widths{20, 12, 10, 10, 9};
  print_row({"matrix", "avgNNZ(C)", "dynamic", "fixed32", "speedup"}, widths);

  std::uint64_t seed = 6000;
  const auto run_pair = [&](const std::string& name, const Csr& a, const Csr& b) {
    const auto c_row_nnz = gustavson_symbolic(a, b);
    offset_t c_nnz = 0;
    for (const index_t nnz : c_row_nnz) c_nnz += nnz;
    double seconds[2] = {0, 0};
    for (int variant = 0; variant < 2; ++variant) {
      SpeckConfig config;
      config.thresholds = reduced_scale_thresholds();
      Speck speck(device, model, config);
      speck.config().features.dynamic_group_size = variant == 0;
      const SpGemmResult result = speck.multiply(a, b);
      SPECK_REQUIRE(result.ok(), "fig13 run failed");
      seconds[variant] = result.seconds;
    }
    print_row({name, format_double(static_cast<double>(c_nnz) / a.rows(), 1),
               format_double(seconds[0] * 1e3, 3), format_double(seconds[1] * 1e3, 3),
               format_double(seconds[1] / seconds[0])},
              widths);
  };

  // Left of the sweet spot: short rows of B, where g=32 leaves most lanes
  // idle. Then through the sweet spot with uniform matrices.
  for (const index_t deg : {1, 2, 4, 8, 16, 32, 64}) {
    const index_t rows = std::max<index_t>(2000, 200000 / (deg * deg));
    const Csr a = gen::random_uniform(rows, rows, deg, ++seed);
    run_pair("uniform_d" + std::to_string(deg), a, a);
  }
  // Right of the sweet spot: rows of A with few references to *long* rows
  // of B — fixed g=32 activates only nnz_a groups per block and leaves the
  // rest of the block idle while each group crawls through thousands of
  // elements (rectangular C = A*B, B rows of growing length).
  for (const index_t b_row_len : {400, 1200, 3200}) {
    const index_t inner = 256;
    const Csr a = gen::random_uniform(1500, inner, 4, ++seed);
    const Csr b = gen::random_uniform(inner, 100000, b_row_len, ++seed);
    run_pair("fatB_L" + std::to_string(b_row_len), a, b);
  }
  std::printf("\n(paper: fixed g=32 is competitive only near ~300 NZ/row of C;"
              " dynamic g wins on both ends, up to 8x)\n");
  return 0;
}
