// Structure-reuse benchmark: repeated multiplies with a fixed sparsity
// pattern, comparing the full pipeline (replanning every iteration) against
// Speck::plan + Speck::multiply_with_plan (plan once, replay values-only),
// emitted as key=value / point= lines for tools/bench_to_json.
//
// The loop mirrors the iterative-application pattern the plan cache targets
// (AMG cycles, Newton steps): `--iterations` multiplies per corpus entry,
// values fixed, pattern fixed. Three hard gates back the checked-in
// BENCH_reuse.json (CI runs `bench_reuse --quick`):
//
//   * end-to-end speedup of the reuse path (planning included) must reach
//     --min-speedup (default 3x) at one thread,
//   * every replayed C must be bit-identical to the full pipeline's,
//   * the replay hot path must perform zero heap allocations (live-counted
//     via the same counting operator new as bench_hotpath).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/alloc_counter.h"
#include "gen/corpus.h"
#include "matrix/ops.h"
#include "speck/speck.h"

// Counting allocator: every successful allocation bumps the thread-local
// event counter the replay snapshots around its chunk bodies.
void* operator new(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  ++speck::detail::thread_alloc_events;
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace speck;

void emit(const char* key, double value) { std::printf("%s=%.6g\n", key, value); }
void emit_count(const char* key, std::size_t value) {
  std::printf("%s=%zu\n", key, value);
}

double now_minus(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> thread_counts = {1, 8};
  std::size_t iterations = 10;
  double min_speedup = 3.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      thread_counts = {1};
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--iterations N] [--threads N] "
                   "[--min-speedup X]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto corpus = gen::common_corpus();
  std::printf("bench=reuse\n");
  emit_count("corpus_matrices", corpus.size());
  emit_count("iterations", iterations);
  emit("min_speedup", min_speedup);

  bool gate_failed = false;
  for (const int threads : thread_counts) {
    SpeckConfig cfg;
    cfg.host_threads = threads;
    cfg.plan_cache = false;  // both paths are explicit; no transparent cache
    Speck full(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    Speck reuse(sim::DeviceSpec::titan_v(), sim::CostModel{}, cfg);
    std::printf("point=threads%d\n", threads);
    emit_count("threads", static_cast<std::size_t>(threads));

    // Warm both instances' kernel workspaces with one full corpus pass, so
    // the timed loops compare steady states rather than first-touch growth.
    for (const auto& entry : corpus) {
      if (!full.multiply(entry.a, entry.b).ok() ||
          !reuse.multiply(entry.a, entry.b).ok()) {
        std::fprintf(stderr, "warm-up multiply failed\n");
        return 2;
      }
    }

    // Baseline: replan every iteration (the full pipeline each time).
    double full_sim = 0.0;
    std::vector<Csr> full_c(corpus.size());
    const auto t_full = std::chrono::steady_clock::now();
    for (std::size_t iter = 0; iter < iterations; ++iter) {
      for (std::size_t e = 0; e < corpus.size(); ++e) {
        SpGemmResult r = full.multiply(corpus[e].a, corpus[e].b);
        if (!r.ok()) {
          std::fprintf(stderr, "full multiply failed on %s: %s\n",
                       corpus[e].name.c_str(), r.failure_reason.c_str());
          return 2;
        }
        if (iter == 0) full_sim += r.seconds;
        if (iter + 1 == iterations) full_c[e] = std::move(r.c);
      }
    }
    const double full_wall = now_minus(t_full);

    // Reuse: plan once per entry (timed — the speedup is end-to-end), then
    // run the values-only replay for every iteration.
    double plan_wall = 0.0;
    double reuse_sim = 0.0;
    std::size_t plan_bytes = 0;
    std::size_t replay_allocs = 0;
    bool bit_identical = true;
    const auto t_reuse = std::chrono::steady_clock::now();
    {
      std::vector<SpeckPlan> plans;
      plans.reserve(corpus.size());
      const auto t_plan = std::chrono::steady_clock::now();
      for (const auto& entry : corpus) {
        plans.push_back(reuse.plan(entry.a, entry.b));
        if (!plans.back().complete) {
          std::fprintf(stderr, "planning failed on %s: %s\n",
                       entry.name.c_str(),
                       plans.back().incomplete_reason.c_str());
          return 2;
        }
        plan_bytes += plans.back().byte_size();
      }
      plan_wall = now_minus(t_plan);
      for (std::size_t iter = 0; iter < iterations; ++iter) {
        for (std::size_t e = 0; e < corpus.size(); ++e) {
          SpGemmResult r =
              reuse.multiply_with_plan(plans[e], corpus[e].a, corpus[e].b);
          const SpeckDiagnostics& diag = reuse.last_diagnostics();
          if (!r.ok() || diag.plan_fallback) {
            std::fprintf(stderr, "replay failed on %s: %s%s\n",
                         corpus[e].name.c_str(), r.failure_reason.c_str(),
                         diag.plan_fallback_reason.c_str());
            return 2;
          }
          replay_allocs += diag.numeric.hot_path_allocs;
          if (iter == 0) reuse_sim += r.seconds;
          if (iter + 1 == iterations &&
              compare(r.c, full_c[e], 0.0).has_value()) {
            std::fprintf(stderr, "FAIL: replay of %s is not bit-identical\n",
                         corpus[e].name.c_str());
            bit_identical = false;
          }
        }
      }
    }
    const double reuse_wall = now_minus(t_reuse);

    const double speedup = full_wall / reuse_wall;
    emit("full_wall_seconds", full_wall);
    emit("plan_wall_seconds", plan_wall);
    emit("reuse_wall_seconds", reuse_wall);
    emit("speedup", speedup);
    emit("full_sim_seconds", full_sim);
    emit("reuse_sim_seconds", reuse_sim);
    emit("sim_speedup", full_sim / reuse_sim);
    emit_count("plan_bytes", plan_bytes);
    emit_count("replay_hot_allocs", replay_allocs);
    std::printf("point=\n");

    // Gates run at one worker (deterministic steady state); multi-worker
    // points are reported for the trajectory.
    if (threads == 1 && speedup < min_speedup) {
      std::fprintf(stderr, "FAIL: reuse speedup %.3f < %.3f\n", speedup,
                   min_speedup);
      gate_failed = true;
    }
    if (threads == 1 && replay_allocs != 0) {
      std::fprintf(stderr,
                   "FAIL: replay hot path performed %zu heap allocations\n",
                   replay_allocs);
      gate_failed = true;
    }
    if (!bit_identical) gate_failed = true;
  }

  if (gate_failed) return 1;
  std::printf("gate=pass\n");
  return 0;
}
