// Regenerates Figure 7: the slowdown of every method relative to the
// per-matrix fastest, over all matrices with >15k products — summarized as
// percentiles plus the share of matrices slower than 5x (quoted in §6.1).
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "common/stats.h"

using namespace speck;
using namespace speck::bench;

int main() {
  const auto corpus = gen::evaluation_collection();
  const auto algorithms = baselines::make_all_algorithms(
      sim::DeviceSpec::titan_v(), sim::CostModel{});
  const auto measurements = run_suite(corpus, algorithms);
  const auto best = best_seconds_per_matrix(measurements);

  std::map<std::string, std::vector<double>> slowdowns;
  std::map<std::string, int> failures;
  for (const Measurement& m : measurements) {
    if (m.products <= 15000) continue;
    if (m.status != SpGemmStatus::kOk) {
      ++failures[m.algorithm];
      continue;
    }
    slowdowns[m.algorithm].push_back(m.seconds / best.at(m.matrix));
  }

  std::printf("Figure 7: slowdown to fastest per matrix (>15k products)\n\n");
  const std::vector<int> widths{10, 8, 8, 8, 8, 8, 9, 7};
  print_row({"method", "p25", "median", "p75", "p95", "max", ">5x(%)", "#fail"},
            widths);
  for (const auto& algorithm : algorithms) {
    const auto it = slowdowns.find(algorithm->name());
    if (it == slowdowns.end() || it->second.empty()) continue;
    std::vector<double> values = it->second;
    const double over5 =
        100.0 *
        static_cast<double>(std::count_if(values.begin(), values.end(),
                                          [](double v) { return v > 5.0; })) /
        static_cast<double>(values.size());
    print_row({algorithm->name(), format_double(percentile(values, 25)),
               format_double(percentile(values, 50)),
               format_double(percentile(values, 75)),
               format_double(percentile(values, 95)),
               format_double(*std::max_element(values.begin(), values.end())),
               format_double(over5, 1),
               std::to_string(failures[algorithm->name()])},
              widths);
  }
  std::printf("\n(paper: speck 0.1%% over 5x; ac 3.8%%, nsparse 9.0%%, rmerge 36.9%%,"
              " cusparse 50.1%%, bhsparse 77.6%%, kokkos 89.3%%)\n");
  return 0;
}
