#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "common/check.h"

#ifdef __linux__
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace speck {
namespace {

/// True while the current thread executes chunks of some pool's job; nested
/// parallel_for calls detect this and run inline.
thread_local bool t_inside_worker = false;

/// NUMA node the calling thread is currently running on, or -1 when the
/// platform cannot say. The raw syscall avoids a glibc >= 2.29 dependency.
int current_numa_node() {
#ifdef __linux__
  unsigned cpu = 0;
  unsigned node = 0;
  if (syscall(SYS_getcpu, &cpu, &node, nullptr) == 0) {
    return static_cast<int>(node);
  }
#endif
  return -1;
}

}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("SPECK_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 1024) {
      return static_cast<int>(value);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads)
    : thread_count_(threads == 0 ? default_thread_count() : threads) {
  SPECK_REQUIRE(thread_count_ >= 1, "thread count must be >= 1 (or 0 for default)");
  workers_.reserve(static_cast<std::size_t>(thread_count_) - 1);
  for (int w = 1; w < thread_count_; ++w) {
    workers_.emplace_back(&ThreadPool::worker_loop, this, w);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_serial(std::size_t n, std::size_t chunk, const RangeFn& fn) {
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    fn(begin, std::min(n, begin + chunk), 0);
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk, const RangeFn& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t total_chunks = (n + chunk - 1) / chunk;
  // The serial path runs the exact same chunk sequence in ascending order;
  // since chunk boundaries never depend on the thread count, both paths
  // produce identical per-slot results.
  if (thread_count_ == 1 || total_chunks == 1 || t_inside_worker) {
    run_serial(n, chunk, fn);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->chunk = chunk;
  job->total_chunks = total_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks(*job, /*worker=*/0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return job->chunks_done.load(std::memory_order_acquire) == job->total_chunks;
  });
  job_.reset();
  const std::exception_ptr error = job->error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_chunks(Job& job, int worker) {
  t_inside_worker = true;
  for (;;) {
    const std::size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.total_chunks) break;
    const std::size_t begin = c * job.chunk;
    const std::size_t end = std::min(job.n, begin + job.chunk);
    try {
      (*job.fn)(begin, end, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.total_chunks) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
  t_inside_worker = false;
}

std::vector<std::size_t> partition_weights_balanced(
    std::span<const std::uint64_t> weights, int parts) {
  SPECK_REQUIRE(parts >= 1, "partition count must be >= 1");
  std::vector<std::size_t> boundaries(static_cast<std::size_t>(parts) + 1, 0);
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  std::size_t cursor = 0;
  std::uint64_t running = 0;
  for (int p = 0; p < parts; ++p) {
    boundaries[static_cast<std::size_t>(p)] = cursor;
    if (p == parts - 1) break;  // last partition takes everything left
    const std::uint64_t target =
        total / static_cast<std::uint64_t>(parts) * static_cast<std::uint64_t>(p + 1) +
        total % static_cast<std::uint64_t>(parts) * static_cast<std::uint64_t>(p + 1) /
            static_cast<std::uint64_t>(parts);
    while (cursor < weights.size() && running < target) {
      running += weights[cursor];
      ++cursor;
    }
  }
  boundaries[static_cast<std::size_t>(parts)] = weights.size();
  return boundaries;
}

void ThreadPool::partitioned_for(std::size_t n, std::size_t chunk,
                                 std::span<const std::size_t> part_begin_chunk,
                                 bool steal, const PartitionRangeFn& fn,
                                 PartitionedRunDiag* diag) {
  SPECK_REQUIRE(part_begin_chunk.size() >= 2,
                "partitioned_for needs at least one partition");
  const int parts = static_cast<int>(part_begin_chunk.size()) - 1;
  if (chunk == 0) chunk = 1;
  const std::size_t total_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  SPECK_REQUIRE(part_begin_chunk.front() == 0 &&
                    part_begin_chunk.back() == total_chunks,
                "partition boundaries must cover [0, total_chunks]");
  for (int p = 0; p < parts; ++p) {
    SPECK_REQUIRE(part_begin_chunk[static_cast<std::size_t>(p)] <=
                      part_begin_chunk[static_cast<std::size_t>(p) + 1],
                  "partition boundaries must be non-decreasing");
  }
  if (diag != nullptr) {
    diag->team_chunks.assign(static_cast<std::size_t>(parts), 0);
    diag->team_steals.assign(static_cast<std::size_t>(parts), 0);
    diag->team_seconds.assign(static_cast<std::size_t>(parts), 0.0);
    diag->team_numa_nodes.assign(static_cast<std::size_t>(parts), -1);
  }
  if (total_chunks == 0) return;

  const auto run_range = [&](std::size_t c, int team, int slot) {
    const std::size_t begin = c * chunk;
    fn(begin, std::min(n, begin + chunk), team, slot);
  };

  // Serial path: ascending chunk order within each partition, partitions in
  // order — the exact sequence every schedule's per-slot results must match.
  // Chunks run as their owning team (slot 0) so team-local resources see the
  // same mapping a fully-staffed run would use.
  if (thread_count_ == 1 || total_chunks == 1 || t_inside_worker) {
    for (int p = 0; p < parts; ++p) {
      const auto start = std::chrono::steady_clock::now();
      const std::size_t begin = part_begin_chunk[static_cast<std::size_t>(p)];
      const std::size_t end = part_begin_chunk[static_cast<std::size_t>(p) + 1];
      for (std::size_t c = begin; c < end; ++c) run_range(c, p, 0);
      if (diag != nullptr) {
        diag->team_chunks[static_cast<std::size_t>(p)] = end - begin;
        diag->team_seconds[static_cast<std::size_t>(p)] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        // All teams ran on the calling thread; report its node for each.
        diag->team_numa_nodes[static_cast<std::size_t>(p)] =
            current_numa_node();
      }
    }
    return;
  }

  const int lanes = thread_count_;
  // Partition-local cursors: a claim is fetch_add + bound check, so every
  // chunk is claimed exactly once no matter how many lanes race on it.
  // Losing claims push a cursor past its bound; the clamp below treats
  // that as "empty".
  std::vector<std::atomic<std::size_t>> cursor(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    cursor[static_cast<std::size_t>(p)].store(
        part_begin_chunk[static_cast<std::size_t>(p)],
        std::memory_order_relaxed);
  }
  const auto remaining = [&](int p) -> std::size_t {
    const std::size_t end = part_begin_chunk[static_cast<std::size_t>(p) + 1];
    const std::size_t cur =
        cursor[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
    return cur >= end ? 0 : end - cur;
  };
  const auto try_claim = [&](int p) -> std::size_t {
    const std::size_t end = part_begin_chunk[static_cast<std::size_t>(p) + 1];
    const std::size_t c = cursor[static_cast<std::size_t>(p)].fetch_add(
        1, std::memory_order_relaxed);
    return c < end ? c : total_chunks;  // total_chunks = "partition empty"
  };

  struct LaneStat {
    std::size_t chunks = 0;
    std::size_t steals = 0;
    double seconds = 0.0;
    int numa_node = -1;
  };
  std::vector<LaneStat> lane_stats(static_cast<std::size_t>(lanes));

  // One pool worker per lane. An exception from `fn` propagates out of the
  // lane body into parallel_for's first-error capture; the dead lane's
  // unclaimed chunks are picked up by the other lanes' help loops, so the
  // run stays work-conserving (all chunks execute, first error rethrown).
  parallel_for(
      static_cast<std::size_t>(lanes), 1,
      [&](std::size_t lane_begin, std::size_t, int) {
        const int lane = static_cast<int>(lane_begin);
        const int team = partition_team_of_lane(lane, lanes, parts);
        const int slot = lane - partition_team_first_lane(team, lanes, parts);
        const auto start = std::chrono::steady_clock::now();
        LaneStat& st = lane_stats[static_cast<std::size_t>(lane)];
        // Drain the home partition first.
        for (;;) {
          const std::size_t c = try_claim(team);
          if (c == total_chunks) break;
          run_range(c, team, slot);
          ++st.chunks;
        }
        // Then help other partitions until everything is drained. Steal
        // mode targets the most-loaded victim (whole chunks at a time);
        // no-steal mode helps in ascending cyclic order. Both loops only
        // differ in victim choice — completion never depends on the flag.
        for (;;) {
          int victim = -1;
          if (steal) {
            std::size_t best = 0;
            for (int p = 0; p < parts; ++p) {
              if (p == team) continue;
              const std::size_t left = remaining(p);
              if (left > best) {
                best = left;
                victim = p;
              }
            }
          } else {
            for (int k = 1; k < parts; ++k) {
              const int p = (team + k) % parts;
              if (remaining(p) > 0) {
                victim = p;
                break;
              }
            }
          }
          if (victim < 0) break;
          const std::size_t c = try_claim(victim);
          if (c == total_chunks) continue;  // lost the race; rescan victims
          run_range(c, team, slot);
          ++st.chunks;
          ++st.steals;
        }
        st.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        st.numa_node = current_numa_node();
      });

  if (diag != nullptr) {
    for (int lane = 0; lane < lanes; ++lane) {
      const int team = partition_team_of_lane(lane, lanes, parts);
      const LaneStat& st = lane_stats[static_cast<std::size_t>(lane)];
      diag->team_chunks[static_cast<std::size_t>(team)] += st.chunks;
      diag->team_steals[static_cast<std::size_t>(team)] += st.steals;
      diag->team_seconds[static_cast<std::size_t>(team)] =
          std::max(diag->team_seconds[static_cast<std::size_t>(team)], st.seconds);
      if (st.numa_node >= 0) {
        diag->team_numa_nodes[static_cast<std::size_t>(team)] = st.numa_node;
      }
    }
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    // A fresh Job object per generation means a straggler holding an old
    // job only ever sees its exhausted cursor and exits immediately — no
    // counter reuse, no ABA.
    if (job) run_chunks(*job, worker);
  }
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_global_thread_count(int threads) {
  SPECK_REQUIRE(threads >= 0, "thread count must be >= 0 (0 = default)");
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(threads);
}

ThreadPool& serial_pool() {
  // With thread_count() == 1 every parallel_for short-circuits to the
  // lock-free serial path, so concurrent use from many threads is safe.
  static ThreadPool pool(1);
  return pool;
}

}  // namespace speck
