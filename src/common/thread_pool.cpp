#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/check.h"

namespace speck {
namespace {

/// True while the current thread executes chunks of some pool's job; nested
/// parallel_for calls detect this and run inline.
thread_local bool t_inside_worker = false;

}  // namespace

int default_thread_count() {
  if (const char* env = std::getenv("SPECK_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 1024) {
      return static_cast<int>(value);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads)
    : thread_count_(threads == 0 ? default_thread_count() : threads) {
  SPECK_REQUIRE(thread_count_ >= 1, "thread count must be >= 1 (or 0 for default)");
  workers_.reserve(static_cast<std::size_t>(thread_count_) - 1);
  for (int w = 1; w < thread_count_; ++w) {
    workers_.emplace_back(&ThreadPool::worker_loop, this, w);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_serial(std::size_t n, std::size_t chunk, const RangeFn& fn) {
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    fn(begin, std::min(n, begin + chunk), 0);
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk, const RangeFn& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t total_chunks = (n + chunk - 1) / chunk;
  // The serial path runs the exact same chunk sequence in ascending order;
  // since chunk boundaries never depend on the thread count, both paths
  // produce identical per-slot results.
  if (thread_count_ == 1 || total_chunks == 1 || t_inside_worker) {
    run_serial(n, chunk, fn);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->chunk = chunk;
  job->total_chunks = total_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks(*job, /*worker=*/0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return job->chunks_done.load(std::memory_order_acquire) == job->total_chunks;
  });
  job_.reset();
  const std::exception_ptr error = job->error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_chunks(Job& job, int worker) {
  t_inside_worker = true;
  for (;;) {
    const std::size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.total_chunks) break;
    const std::size_t begin = c * job.chunk;
    const std::size_t end = std::min(job.n, begin + job.chunk);
    try {
      (*job.fn)(begin, end, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.total_chunks) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
  t_inside_worker = false;
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    // A fresh Job object per generation means a straggler holding an old
    // job only ever sees its exhausted cursor and exits immediately — no
    // counter reuse, no ABA.
    if (job) run_chunks(*job, worker);
  }
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

void set_global_thread_count(int threads) {
  SPECK_REQUIRE(threads >= 0, "thread count must be >= 0 (0 = default)");
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(threads);
}

ThreadPool& serial_pool() {
  // With thread_count() == 1 every parallel_for short-circuits to the
  // lock-free serial path, so concurrent use from many threads is safe.
  static ThreadPool pool(1);
  return pool;
}

}  // namespace speck
