// A std::vector whose resize() default-initializes new elements instead of
// value-initializing (zeroing) them.
//
// The replay program's op arrays are tens to hundreds of megabytes and every
// element is written by the build pass before it is ever read; letting
// vector::resize memset them first walks the freshly mapped pages twice —
// once for the (serial) zero fill, once for the real fill — which shows up
// as a large, pure-overhead slice of plan() capture time. Only use this for
// buffers that are provably write-before-read; a skipped zero on a buffer
// that *is* read first becomes an uninitialized-memory bug.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace speck {

template <typename T, typename Base = std::allocator<T>>
class DefaultInitAllocator : public Base {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<
        U, typename std::allocator_traits<Base>::template rebind_alloc<U>>;
  };

  using Base::Base;

  // Value-initialization requests (resize's fill of new elements) become
  // default-initialization: a no-op for trivially constructible T.
  template <typename U>
  void construct(U* ptr) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }
  // Everything else (copy/move construction, emplace with args) is
  // forwarded unchanged to the base allocator.
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    std::allocator_traits<Base>::construct(static_cast<Base&>(*this), ptr,
                                           std::forward<Args>(args)...);
  }
};

template <typename T>
using UninitVector = std::vector<T, DefaultInitAllocator<T>>;

}  // namespace speck
