// Lightweight runtime checking used at API boundaries.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace speck {

/// Thrown when a precondition on user input is violated.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": internal invariant `" << expr << "` violated";
  if (!msg.empty()) os << ": " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace speck

/// Validates a user-facing precondition; throws speck::InvalidArgument.
#define SPECK_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) ::speck::detail::throw_invalid(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validates an internal invariant; throws speck::InternalError.
#define SPECK_ASSERT(expr, msg)                                           \
  do {                                                                    \
    if (!(expr)) ::speck::detail::throw_internal(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
