// Lightweight runtime checking used at API boundaries, plus the structured
// error taxonomy the library reports failures through.
//
// Four error classes span every failure mode (docs/robustness.md):
//   BadInput           — the caller handed us something malformed
//   ResourceExhausted  — a (simulated) resource limit was hit
//   InternalError      — a library invariant broke (a bug in speck itself)
//   DeadlineExceeded   — a request's deadline expired before completion
//                        (class lives in common/deadline.h with the
//                        Deadline/CancelToken machinery)
// Each derives from the matching standard exception (so existing
// catch(std::exception&) sites keep working) *and* from the SpeckError
// mixin carrying a machine-readable code plus an optional context string
// (file:line of a parser, the failing allocation site, ...).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace speck {

/// Machine-readable error class. Stable values: tools map these to exit
/// codes, so renumbering is a breaking change.
enum class ErrorCode {
  kOk = 0,
  kBadInput = 1,
  kResourceExhausted = 2,
  kInternal = 3,
  kDeadlineExceeded = 4,
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kBadInput: return "BadInput";
    case ErrorCode::kResourceExhausted: return "ResourceExhausted";
    case ErrorCode::kInternal: return "InternalError";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "?";
}

/// Process exit code for an error class (tools/*): 0 ok, 3 bad input,
/// 4 resource exhausted, 5 internal error, 7 deadline exceeded. 1 (runtime
/// failure such as a result mismatch) and 2 (usage error) remain tool-level
/// conventions; 6 is reserved for exceptions outside the taxonomy.
inline int exit_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kBadInput: return 3;
    case ErrorCode::kResourceExhausted: return 4;
    case ErrorCode::kInternal: return 5;
    case ErrorCode::kDeadlineExceeded: return 7;
  }
  return 6;
}

/// Mixin carried by every speck exception: the error class plus an optional
/// context string locating the failure (e.g. "matrix.mtx:17").
class SpeckError {
 public:
  virtual ~SpeckError() = default;
  virtual ErrorCode code() const = 0;
  const std::string& context() const { return context_; }

 protected:
  SpeckError() = default;
  explicit SpeckError(std::string context) : context_(std::move(context)) {}

 private:
  std::string context_;
};

/// Thrown when a precondition on user input is violated.
class BadInput : public std::invalid_argument, public SpeckError {
 public:
  explicit BadInput(const std::string& msg, std::string context = "")
      : std::invalid_argument(msg), SpeckError(std::move(context)) {}
  ErrorCode code() const override { return ErrorCode::kBadInput; }
};

/// Historical name of BadInput; kept as the spelling used at check sites.
using InvalidArgument = BadInput;

/// Thrown when a (simulated) resource limit is exceeded: size arithmetic
/// that would overflow, allocation budgets, device memory.
class ResourceExhausted : public std::runtime_error, public SpeckError {
 public:
  explicit ResourceExhausted(const std::string& msg, std::string context = "")
      : std::runtime_error(msg), SpeckError(std::move(context)) {}
  ErrorCode code() const override { return ErrorCode::kResourceExhausted; }
};

/// Thrown when an internal invariant is violated (a library bug).
class InternalError : public std::logic_error, public SpeckError {
 public:
  explicit InternalError(const std::string& msg, std::string context = "")
      : std::logic_error(msg), SpeckError(std::move(context)) {}
  ErrorCode code() const override { return ErrorCode::kInternal; }
};

/// Value-type result status for the non-throwing API surface
/// (speck::try_multiply): an error code plus the human-readable message and
/// context of the exception it was built from.
struct Status {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
  std::string context;

  bool ok() const { return code == ErrorCode::kOk; }

  static Status success() { return Status{}; }

  static Status error(ErrorCode error_code, std::string msg,
                      std::string ctx = "") {
    return Status{error_code, std::move(msg), std::move(ctx)};
  }

  /// "[BadInput] missing banner (bad.mtx:1)" — one line, for diagnostics.
  std::string to_string() const {
    std::string out = "[";
    out += error_code_name(code);
    out += "]";
    if (!message.empty()) {
      out += " ";
      out += message;
    }
    if (!context.empty()) {
      out += " (";
      out += context;
      out += ")";
    }
    return out;
  }
};

/// Builds a Status from an in-flight exception. Call inside a catch block;
/// exceptions outside the taxonomy map to kInternal.
inline Status status_from_current_exception() noexcept {
  try {
    throw;
  } catch (const SpeckError& e) {
    const auto* as_std = dynamic_cast<const std::exception*>(&e);
    return Status::error(e.code(), as_std != nullptr ? as_std->what() : "",
                         e.context());
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal, e.what());
  } catch (...) {
    return Status::error(ErrorCode::kInternal, "unknown exception");
  }
}

namespace detail {
[[noreturn]] inline void throw_invalid(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw BadInput(os.str());
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": internal invariant `" << expr << "` violated";
  if (!msg.empty()) os << ": " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace speck

/// Validates a user-facing precondition; throws speck::BadInput.
#define SPECK_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) ::speck::detail::throw_invalid(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validates an internal invariant; throws speck::InternalError.
#define SPECK_ASSERT(expr, msg)                                           \
  do {                                                                    \
    if (!(expr)) ::speck::detail::throw_internal(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
