// Thread-local heap-allocation event counter — the hook behind the
// zero-allocation hot-path guarantee.
//
// The library itself never counts anything: `thread_alloc_events` only moves
// when a binary (bench_hotpath, test_workspace) overrides the global
// operator new/delete to bump it. The symbolic/numeric passes snapshot the
// counter around every block body and accumulate the delta into
// `PassStats::hot_path_allocs`, so "allocations per block" is measured over
// exactly the per-block hot path — not over per-multiply setup such as
// output buffers or launch bookkeeping. In binaries without the override the
// counter stays 0 and the accounting is free apart from two thread-local
// reads per block.
#pragma once

#include <cstddef>

namespace speck::detail {

/// Heap allocations observed on the current thread. Incremented by binaries
/// that install a counting operator new; read by the kernel passes.
extern thread_local std::size_t thread_alloc_events;

inline std::size_t alloc_events_now() { return thread_alloc_events; }

}  // namespace speck::detail
