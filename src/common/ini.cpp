#include "common/ini.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace speck {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

IniConfig IniConfig::parse(std::istream& in) {
  IniConfig config;
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    line = trim(line);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      SPECK_REQUIRE(line.back() == ']',
                    "malformed section header on line " + std::to_string(line_number));
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    SPECK_REQUIRE(eq != std::string::npos,
                  "expected key=value on line " + std::to_string(line_number));
    std::string key = trim(line.substr(0, eq));
    SPECK_REQUIRE(!key.empty(), "empty key on line " + std::to_string(line_number));
    if (!section.empty()) key = section + "." + key;
    config.values_[key] = trim(line.substr(eq + 1));
  }
  return config;
}

IniConfig IniConfig::parse_file(const std::string& path) {
  std::ifstream in(path);
  SPECK_REQUIRE(in.good(), "cannot open config file: " + path);
  return parse(in);
}

std::string IniConfig::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool IniConfig::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = lower(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw InvalidArgument("cannot parse boolean value '" + it->second + "' for key " + key);
}

long long IniConfig::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::istringstream parse(it->second);
  long long value = 0;
  parse >> value;
  SPECK_REQUIRE(!parse.fail(), "cannot parse integer value for key " + key);
  return value;
}

double IniConfig::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::istringstream parse(it->second);
  double value = 0.0;
  parse >> value;
  SPECK_REQUIRE(!parse.fail(), "cannot parse floating-point value for key " + key);
  return value;
}

}  // namespace speck
