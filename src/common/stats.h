// Descriptive statistics helpers used by the analysis stages and benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace speck {

/// Summary of a sample of non-negative integer quantities (row lengths,
/// product counts, ...).
struct SampleSummary {
  std::int64_t count = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t total = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

SampleSummary summarize(std::span<const std::int64_t> values);
SampleSummary summarize(std::span<const std::int32_t> values);

/// p in [0,100]; nearest-rank percentile of an *unsorted* sample.
double percentile(std::vector<double> values, double p);

/// Geometric mean of strictly positive values; returns 0 for empty input.
double geometric_mean(std::span<const double> values);

}  // namespace speck
