// Request deadlines and cooperative cancellation for the serving layer.
//
// A Deadline is a point on the steady clock (default: infinite — never
// expires). SpeckService checks it at admission, inside the budget wait
// (MemoryBudget::acquire_until), at plan-mutex acquisition and — through a
// CancelToken threaded into Speck's pass loop — between pipeline phases, so
// an expired request returns kDeadlineExceeded instead of hanging or
// burning the planning mutex on work nobody will read (docs/service.md
// "Failure semantics").
//
// Cancellation is cooperative and exception-based: CancelToken::check
// throws DeadlineExceeded on the coordinating thread at phase boundaries.
// It never interrupts a running kernel — phases are short, and throwing
// from pool workers would corrupt the pipeline's invariants.
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "common/check.h"

namespace speck {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default-constructed == infinite (never expires).
  Deadline() = default;

  static Deadline infinite() { return Deadline(); }

  /// Absolute deadline at `tp` on the steady clock.
  static Deadline at(Clock::time_point tp) {
    Deadline d;
    d.tp_ = tp;
    return d;
  }

  /// Budget-relative deadline: `budget` from now.
  static Deadline after(Clock::duration budget) {
    return at(Clock::now() + budget);
  }

  /// Budget-relative deadline in (possibly fractional) milliseconds.
  static Deadline after_ms(double ms) {
    return after(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms)));
  }

  bool is_infinite() const { return tp_ == Clock::time_point::max(); }
  bool expired() const { return !is_infinite() && Clock::now() >= tp_; }
  Clock::time_point time() const { return tp_; }

  /// Remaining budget: zero once expired, Clock::duration::max() when
  /// infinite (never use `now + remaining()` on an infinite deadline — it
  /// overflows; branch on is_infinite() instead).
  Clock::duration remaining() const {
    if (is_infinite()) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= tp_ ? Clock::duration::zero() : tp_ - now;
  }

  /// The earlier of the two (used to cap a deadline-bounded wait by
  /// max_queue_wait).
  static Deadline sooner(const Deadline& a, const Deadline& b) {
    return a.tp_ < b.tp_ ? a : b;
  }

 private:
  Clock::time_point tp_ = Clock::time_point::max();
};

/// Thrown when a request's deadline expires (or it is cancelled) before the
/// work completes. Maps to ErrorCode::kDeadlineExceeded; the context names
/// the pipeline phase that observed the expiry.
class DeadlineExceeded : public std::runtime_error, public SpeckError {
 public:
  explicit DeadlineExceeded(const std::string& msg, std::string context = "")
      : std::runtime_error(msg), SpeckError(std::move(context)) {}
  ErrorCode code() const override { return ErrorCode::kDeadlineExceeded; }
};

/// Cooperative cancellation handle passed by value into the pipeline: a
/// deadline plus an optional external flag (not owned; must outlive the
/// token). Copyable, const-queryable from any thread.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline,
                       const std::atomic<bool>* cancel_flag = nullptr)
      : deadline_(deadline), cancel_flag_(cancel_flag) {}

  const Deadline& deadline() const { return deadline_; }

  bool cancelled() const {
    if (cancel_flag_ != nullptr &&
        cancel_flag_->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline_.expired();
  }

  /// Phase-boundary poll: throws DeadlineExceeded naming `phase` when the
  /// token is cancelled or expired. Called on the coordinating thread only.
  void check(const char* phase) const {
    if (cancelled()) {
      throw DeadlineExceeded(
          std::string("request cancelled before phase completed: ") + phase,
          phase);
    }
  }

 private:
  Deadline deadline_;
  const std::atomic<bool>* cancel_flag_ = nullptr;
};

}  // namespace speck
