#include "common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace speck::simd {

bool backend_available(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAuto:
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kSse:
#if defined(SPECK_SIMD_X86)
      // SSE2 is part of the x86-64 baseline; on 32-bit x86 ask the CPU.
#if defined(__x86_64__)
      return true;
#else
      return __builtin_cpu_supports("sse2") != 0;
#endif
#else
      return false;
#endif
    case SimdBackend::kAvx2:
#if defined(SPECK_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdBackend::kNeon:
#if defined(SPECK_SIMD_NEON)
      return true;  // NEON is mandatory on aarch64
#else
      return false;
#endif
  }
  return false;
}

SimdBackend detected_backend() {
  if (backend_available(SimdBackend::kAvx2)) return SimdBackend::kAvx2;
  if (backend_available(SimdBackend::kSse)) return SimdBackend::kSse;
  if (backend_available(SimdBackend::kNeon)) return SimdBackend::kNeon;
  return SimdBackend::kScalar;
}

std::optional<SimdBackend> parse_backend(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "auto") return SimdBackend::kAuto;
  if (lower == "scalar") return SimdBackend::kScalar;
  if (lower == "sse") return SimdBackend::kSse;
  if (lower == "avx2") return SimdBackend::kAvx2;
  if (lower == "neon") return SimdBackend::kNeon;
  return std::nullopt;
}

const char* backend_name(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kAuto: return "auto";
    case SimdBackend::kScalar: return "scalar";
    case SimdBackend::kSse: return "sse";
    case SimdBackend::kAvx2: return "avx2";
    case SimdBackend::kNeon: return "neon";
  }
  return "?";
}

SimdBackend resolve_backend(SimdBackend choice) {
  if (choice != SimdBackend::kAuto) {
    SPECK_REQUIRE(backend_available(choice),
                  std::string("SIMD backend '") + backend_name(choice) +
                      "' is not available on this CPU");
    return choice;
  }
  if (const char* env = std::getenv("SPECK_SIMD")) {
    const std::optional<SimdBackend> parsed = parse_backend(env);
    if (parsed.has_value() && *parsed != SimdBackend::kAuto &&
        backend_available(*parsed)) {
      return *parsed;
    }
    if (parsed.has_value() && *parsed == SimdBackend::kAuto) {
      return detected_backend();
    }
    // Invalid or unavailable request from the environment: warn once and
    // fall back to detection rather than aborting the process.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "speck: ignoring SPECK_SIMD='%s' (unknown or unavailable "
                   "backend; using '%s')\n",
                   env, backend_name(detected_backend()));
    }
  }
  return detected_backend();
}

}  // namespace speck::simd
