// Deterministic fault injection for the spECK pipeline.
//
// spECK's correctness story rests on graceful degradation: when the cheap
// row analysis under-estimates, scratchpad hash maps spill to the global
// fallback; when it over-estimates, rows land in needlessly large kernels.
// Those paths are hard to hit organically on well-formed corpora, so tests
// drive them on demand through a FaultSpec: scale the estimates, force hash
// overflows, shrink the simulated scratchpad, cap the memory budget. Every
// fault only perturbs *simulated* resources and planning inputs — the
// numeric CSR output must stay bit-identical to the exact oracle (or fail
// with a typed error); tests assert exactly that.
//
// All injector queries are pure functions of the spec (per-row jitter uses
// stateless splitmix64 hashing of (seed, row)), so results are identical at
// any host thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace speck {

/// What to inject. Default-constructed == no faults (`enabled()` false).
/// Built programmatically or parsed from the `--fault-spec` grammar
/// (see parse_fault_spec).
struct FaultSpec {
  /// Multiplies every per-row product estimate fed to binning/method
  /// selection. <1 under-estimates (forces hash overflow + spill paths),
  /// >1 over-estimates (forces mis-binning into large kernels).
  double estimate_scale = 1.0;
  /// Adds a deterministic per-row multiplicative jitter in
  /// [1-jitter, 1+jitter], seeded by `seed` (0 = off).
  double estimate_jitter = 0.0;
  /// Seed for the per-row jitter hash.
  std::uint64_t seed = 0;
  /// Forces every scratchpad hash accumulator to spill to the global map
  /// once it holds this many entries (0 = off). Per-accumulator, hence
  /// deterministic under parallel block execution.
  std::int64_t hash_overflow_after = 0;
  /// Multiplies every simulated scratchpad capacity (hash slots, dense
  /// window columns); must be in (0, 1]. Shrinks what binning assumed.
  double scratchpad_scale = 1.0;
  /// Caps the simulated device memory (0 = off). Exercises the structured
  /// out-of-memory paths of Speck::multiply.
  std::size_t memory_budget_bytes = 0;
  /// Multiplies the sampled per-row NNZ estimates of estimated planning
  /// (docs/performance.md "Estimated planning"); <1 forces estimate
  /// underflow and the per-row numeric fallback. Distinct from
  /// estimate_scale so exact-mode binning faults and estimator faults
  /// compose independently.
  double estimator_scale = 1.0;

  // --- Serving-layer faults (consumed by SpeckService via
  // ServiceConfig::faults; the pipeline-side FaultInjector ignores them, and
  // they do not enter the planning-config hash — they never change what a
  // plan computes, only how the service treats the request around it).

  /// Forces the service's plan build to fail (structured InternalError) for
  /// every fingerprint whose 64-bit key hash is divisible by this value
  /// (0 = off). Deterministic per pattern, so quarantine trips reproduce.
  std::uint64_t plan_fail_mod = 0;
  /// Injected planning latency in milliseconds, slept inside the service's
  /// plan-build critical section (0 = off). Stresses deadlines and the
  /// plan-mutex convoy.
  double plan_delay_ms = 0.0;
  /// Multiplies every admission-control byte charge (must be >= 1; 1 = off):
  /// a deterministic budget squeeze that drives shedding/queueing without
  /// changing real memory use.
  double admission_bytes_scale = 1.0;
  /// Every Nth service request evicts the entire plan cache before lookup
  /// (0 = off): an eviction storm forcing replan churn under traffic.
  std::uint64_t evict_every = 0;

  /// True when any field differs from its no-fault default.
  bool enabled() const;
};

/// Throws BadInput when a field is outside its documented domain.
void validate(const FaultSpec& spec);

/// Parses the --fault-spec grammar: comma-separated key=value pairs,
///   estimate-scale=<float>     estimate-jitter=<float>   seed=<uint>
///   hash-overflow-after=<int>  scratchpad-scale=<float>  memory-budget-mb=<float>
///   estimator-scale=<float>    plan-fail-mod=<uint>      plan-delay-ms=<float>
///   admission-scale=<float>    evict-every=<uint>
/// e.g. "estimate-scale=0.25,hash-overflow-after=16". Unknown keys,
/// malformed numbers and out-of-domain values throw BadInput (context
/// names the offending pair).
FaultSpec parse_fault_spec(const std::string& text);

/// One-line human-readable rendering of the active faults.
std::string describe(const FaultSpec& spec);

/// Stateless view over a validated FaultSpec answering the pipeline's
/// injection queries. Thread-safe (const, no mutable state).
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// Scaled (and jittered) per-row estimate; clamped to >= 0.
  offset_t scale_estimate(index_t row, offset_t estimate) const;

  /// Sampled-estimator NNZ estimate under the estimator-scale fault;
  /// clamped to >= 0. Identity when the fault is off.
  offset_t scale_sampled_estimate(offset_t estimate) const;

  /// Scaled scratchpad capacity; clamped to >= 1 slot.
  std::size_t scratchpad_capacity(std::size_t capacity) const;

  /// True when an accumulator holding `entries_held` entries must spill.
  bool force_hash_overflow(std::size_t entries_held) const;

  /// Device memory visible to the memory tracker under the budget cap.
  std::size_t cap_memory(std::size_t device_bytes) const;

 private:
  FaultSpec spec_;
};

}  // namespace speck
