#include "common/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/check.h"
#include "common/prng.h"

namespace speck {

bool FaultSpec::enabled() const {
  return estimate_scale != 1.0 || estimate_jitter != 0.0 ||
         hash_overflow_after != 0 || scratchpad_scale != 1.0 ||
         memory_budget_bytes != 0 || estimator_scale != 1.0 ||
         plan_fail_mod != 0 || plan_delay_ms != 0.0 ||
         admission_bytes_scale != 1.0 || evict_every != 0;
}

void validate(const FaultSpec& spec) {
  SPECK_REQUIRE(spec.estimate_scale > 0.0 && std::isfinite(spec.estimate_scale),
                "estimate-scale must be a positive finite number");
  SPECK_REQUIRE(spec.estimate_jitter >= 0.0 && spec.estimate_jitter < 1.0,
                "estimate-jitter must be in [0, 1)");
  SPECK_REQUIRE(spec.hash_overflow_after >= 0,
                "hash-overflow-after must be >= 0 (0 = off)");
  SPECK_REQUIRE(spec.scratchpad_scale > 0.0 && spec.scratchpad_scale <= 1.0,
                "scratchpad-scale must be in (0, 1]");
  SPECK_REQUIRE(spec.estimator_scale > 0.0 && std::isfinite(spec.estimator_scale),
                "estimator-scale must be a positive finite number");
  SPECK_REQUIRE(spec.plan_delay_ms >= 0.0 && std::isfinite(spec.plan_delay_ms),
                "plan-delay-ms must be a finite number >= 0");
  SPECK_REQUIRE(spec.admission_bytes_scale >= 1.0 &&
                    std::isfinite(spec.admission_bytes_scale),
                "admission-scale must be a finite number >= 1");
}

namespace {

double parse_double(const std::string& pair, const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !std::isfinite(parsed)) {
    throw BadInput("fault-spec: cannot parse number '" + value + "'", pair);
  }
  return parsed;
}

std::int64_t parse_int(const std::string& pair, const std::string& value) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw BadInput("fault-spec: cannot parse integer '" + value + "'", pair);
  }
  return parsed;
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = std::min(text.find(',', begin), text.size());
    const std::string pair = text.substr(begin, end - begin);
    begin = end + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      throw BadInput("fault-spec: expected key=value", pair);
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "estimate-scale") {
      spec.estimate_scale = parse_double(pair, value);
    } else if (key == "estimate-jitter") {
      spec.estimate_jitter = parse_double(pair, value);
    } else if (key == "seed") {
      const std::int64_t seed = parse_int(pair, value);
      if (seed < 0) throw BadInput("fault-spec: seed must be >= 0", pair);
      spec.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "hash-overflow-after") {
      spec.hash_overflow_after = parse_int(pair, value);
    } else if (key == "scratchpad-scale") {
      spec.scratchpad_scale = parse_double(pair, value);
    } else if (key == "memory-budget-mb") {
      const double mb = parse_double(pair, value);
      if (mb <= 0.0) throw BadInput("fault-spec: memory-budget-mb must be > 0", pair);
      spec.memory_budget_bytes = static_cast<std::size_t>(mb * 1024.0 * 1024.0);
    } else if (key == "estimator-scale") {
      spec.estimator_scale = parse_double(pair, value);
    } else if (key == "plan-fail-mod") {
      const std::int64_t mod = parse_int(pair, value);
      if (mod < 0) throw BadInput("fault-spec: plan-fail-mod must be >= 0", pair);
      spec.plan_fail_mod = static_cast<std::uint64_t>(mod);
    } else if (key == "plan-delay-ms") {
      spec.plan_delay_ms = parse_double(pair, value);
    } else if (key == "admission-scale") {
      spec.admission_bytes_scale = parse_double(pair, value);
    } else if (key == "evict-every") {
      const std::int64_t every = parse_int(pair, value);
      if (every < 0) throw BadInput("fault-spec: evict-every must be >= 0", pair);
      spec.evict_every = static_cast<std::uint64_t>(every);
    } else {
      throw BadInput("fault-spec: unknown key '" + key + "'", pair);
    }
  }
  validate(spec);
  return spec;
}

std::string describe(const FaultSpec& spec) {
  if (!spec.enabled()) return "faults: none";
  std::string out = "faults:";
  if (spec.estimate_scale != 1.0) {
    out += " estimate-scale=" + std::to_string(spec.estimate_scale);
  }
  if (spec.estimate_jitter != 0.0) {
    out += " estimate-jitter=" + std::to_string(spec.estimate_jitter) +
           " seed=" + std::to_string(spec.seed);
  }
  if (spec.hash_overflow_after != 0) {
    out += " hash-overflow-after=" + std::to_string(spec.hash_overflow_after);
  }
  if (spec.scratchpad_scale != 1.0) {
    out += " scratchpad-scale=" + std::to_string(spec.scratchpad_scale);
  }
  if (spec.memory_budget_bytes != 0) {
    out += " memory-budget-mb=" +
           std::to_string(static_cast<double>(spec.memory_budget_bytes) /
                          (1024.0 * 1024.0));
  }
  if (spec.estimator_scale != 1.0) {
    out += " estimator-scale=" + std::to_string(spec.estimator_scale);
  }
  if (spec.plan_fail_mod != 0) {
    out += " plan-fail-mod=" + std::to_string(spec.plan_fail_mod);
  }
  if (spec.plan_delay_ms != 0.0) {
    out += " plan-delay-ms=" + std::to_string(spec.plan_delay_ms);
  }
  if (spec.admission_bytes_scale != 1.0) {
    out += " admission-scale=" + std::to_string(spec.admission_bytes_scale);
  }
  if (spec.evict_every != 0) {
    out += " evict-every=" + std::to_string(spec.evict_every);
  }
  return out;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) { validate(spec_); }

offset_t FaultInjector::scale_estimate(index_t row, offset_t estimate) const {
  double factor = spec_.estimate_scale;
  if (spec_.estimate_jitter != 0.0) {
    // Stateless per-row hash: identical for any thread count or visit order.
    std::uint64_t state = spec_.seed ^ (0x9E3779B97F4A7C15ull +
                                        static_cast<std::uint64_t>(row));
    const double unit = static_cast<double>(splitmix64(state) >> 11) *
                        (1.0 / static_cast<double>(std::uint64_t{1} << 53));
    factor *= 1.0 + spec_.estimate_jitter * (2.0 * unit - 1.0);
  }
  const double scaled = static_cast<double>(estimate) * factor;
  if (scaled <= 0.0) return 0;
  if (scaled >= static_cast<double>(std::numeric_limits<offset_t>::max())) {
    return std::numeric_limits<offset_t>::max();
  }
  return static_cast<offset_t>(scaled);
}

offset_t FaultInjector::scale_sampled_estimate(offset_t estimate) const {
  if (spec_.estimator_scale == 1.0) return estimate;
  const double scaled =
      static_cast<double>(estimate) * spec_.estimator_scale;
  if (scaled <= 0.0) return 0;
  if (scaled >= static_cast<double>(std::numeric_limits<offset_t>::max())) {
    return std::numeric_limits<offset_t>::max();
  }
  return static_cast<offset_t>(scaled);
}

std::size_t FaultInjector::scratchpad_capacity(std::size_t capacity) const {
  if (spec_.scratchpad_scale == 1.0) return capacity;
  const auto scaled = static_cast<std::size_t>(
      static_cast<double>(capacity) * spec_.scratchpad_scale);
  return std::max<std::size_t>(1, scaled);
}

bool FaultInjector::force_hash_overflow(std::size_t entries_held) const {
  return spec_.hash_overflow_after > 0 &&
         entries_held >= static_cast<std::size_t>(spec_.hash_overflow_after);
}

std::size_t FaultInjector::cap_memory(std::size_t device_bytes) const {
  if (spec_.memory_budget_bytes == 0) return device_bytes;
  return std::min(device_bytes, spec_.memory_budget_bytes);
}

}  // namespace speck
