// Host thread pool for the spECK pipeline.
//
// All host-side parallelism in this repository goes through this pool. The
// design is deliberately work-stealing-free: a `parallel_for` splits the
// index range [0, n) into fixed-size chunks whose boundaries depend only on
// `n` and the chunk size — never on the thread count — and workers claim
// chunks from a single atomic cursor. Because every chunk computes into its
// own preallocated slot (no atomics on results, no reduction races), the
// output of a correctly-written loop body is bit-identical at 1, 2 or 64
// threads. `deterministic_reduce` builds on the same property: per-chunk
// partials are combined serially in chunk order, so floating-point sums are
// reproducible across thread counts.
//
// Thread count resolution order: explicit constructor argument, then the
// `SPECK_THREADS` environment variable, then hardware concurrency. The
// process-wide pool (`global_pool`) can be resized with
// `set_global_thread_count` (used by the `--threads` flag of the tools and
// benchmarks); `SpeckConfig::host_threads` overrides it per algorithm
// instance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace speck {

class ThreadPool {
 public:
  /// Loop body: invoked once per chunk with the half-open index range
  /// [begin, end) and the id of the executing worker in
  /// [0, thread_count()). At most one chunk runs on a given worker id at a
  /// time, so per-worker scratch indexed by `worker` needs no locking.
  using RangeFn = std::function<void(std::size_t begin, std::size_t end, int worker)>;

  /// `threads` == 0 resolves via SPECK_THREADS / hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return thread_count_; }

  /// Runs `fn` over [0, n) in chunks of `chunk` indices. Chunk boundaries
  /// are `[i*chunk, min(n, (i+1)*chunk))` — a pure function of `n` and
  /// `chunk`, so results written per-index or per-chunk are independent of
  /// the thread count. The calling thread participates as worker 0. The
  /// first exception thrown by a chunk is rethrown here after all chunks
  /// finish. Nested calls from inside a worker run the loop inline (the
  /// pipeline never needs nested parallelism; this keeps it safe anyway).
  void parallel_for(std::size_t n, std::size_t chunk, const RangeFn& fn);

 private:
  struct Job {
    const RangeFn* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::size_t total_chunks = 0;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> chunks_done{0};
    std::exception_ptr error;  // first failure; guarded by the pool mutex
  };

  void worker_loop(int worker);
  void run_chunks(Job& job, int worker);
  void run_serial(std::size_t n, std::size_t chunk, const RangeFn& fn);

  int thread_count_;
  std::vector<std::thread> workers_;  // thread_count_ - 1 helper threads

  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals a new job / shutdown
  std::condition_variable done_cv_;  // signals job completion
  std::shared_ptr<Job> job_;         // guarded by mutex_
  std::uint64_t generation_ = 0;     // guarded by mutex_
  bool shutdown_ = false;            // guarded by mutex_
};

/// SPECK_THREADS if set to a positive integer, else hardware concurrency
/// (at least 1).
int default_thread_count();

/// The process-wide pool, lazily created with default_thread_count().
ThreadPool& global_pool();

/// Replaces the process-wide pool with one of `threads` threads (0 resets
/// to the default). Not safe while a parallel_for on the old pool runs;
/// call at startup or between runs (the --threads flag does).
void set_global_thread_count(int threads);

/// Resolves a pool pointer: the argument if non-null, else the global pool.
inline ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_pool();
}

/// A process-wide single-threaded pool that is safe to share between
/// concurrently-running callers: with one thread, parallel_for always takes
/// the serial path on the calling thread — no mutex, no job slot, no shared
/// state — so N service threads can all pass this pool to replay kernels at
/// once. (The multi-threaded global_pool() has a single job slot and must
/// not be driven from more than one external thread at a time.)
ThreadPool& serial_pool();

/// Deterministic map-reduce: `per_chunk(begin, end)` computes one partial
/// per fixed chunk (in parallel), then the partials are combined with
/// `combine(acc, partial)` serially in ascending chunk order. The result is
/// identical for every thread count, including floating-point reductions.
template <typename T, typename ChunkFn, typename CombineFn>
T deterministic_reduce(ThreadPool& pool, std::size_t n, std::size_t chunk,
                       T identity, const ChunkFn& per_chunk,
                       const CombineFn& combine) {
  if (chunk == 0) chunk = 1;
  const std::size_t chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  std::vector<T> partials(chunks, identity);
  pool.parallel_for(n, chunk, [&](std::size_t begin, std::size_t end, int) {
    partials[begin / chunk] = per_chunk(begin, end);
  });
  T out = identity;
  for (const T& partial : partials) out = combine(out, partial);
  return out;
}

}  // namespace speck
