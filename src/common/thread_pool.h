// Host thread pool for the spECK pipeline.
//
// All host-side parallelism in this repository goes through this pool. The
// design is deliberately work-stealing-free: a `parallel_for` splits the
// index range [0, n) into fixed-size chunks whose boundaries depend only on
// `n` and the chunk size — never on the thread count — and workers claim
// chunks from a single atomic cursor. Because every chunk computes into its
// own preallocated slot (no atomics on results, no reduction races), the
// output of a correctly-written loop body is bit-identical at 1, 2 or 64
// threads. `deterministic_reduce` builds on the same property: per-chunk
// partials are combined serially in chunk order, so floating-point sums are
// reproducible across thread counts.
//
// Thread count resolution order: explicit constructor argument, then the
// `SPECK_THREADS` environment variable, then hardware concurrency. The
// process-wide pool (`global_pool`) can be resized with
// `set_global_thread_count` (used by the `--threads` flag of the tools and
// benchmarks); `SpeckConfig::host_threads` overrides it per algorithm
// instance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace speck {

/// Telemetry from one partitioned_for run. Everything here is
/// schedule-dependent by construction (wall-clock seconds, which team's
/// lanes claimed which chunks): it must never feed bit-identity-gated
/// counters. `team_chunks[t]` counts chunks executed by team t's lanes,
/// `team_steals[t]` the subset claimed from a foreign partition, and
/// `team_seconds[t]` the longest lane wall time in team t.
struct PartitionedRunDiag {
  std::vector<std::size_t> team_chunks;
  std::vector<std::size_t> team_steals;
  std::vector<double> team_seconds;
  /// NUMA node each team's lanes observed themselves on (getcpu) when their
  /// run finished; -1 when unknown (non-Linux host, or a team whose lanes
  /// never ran). Pure telemetry — the OS may migrate threads at any time.
  std::vector<int> team_numa_nodes;
};

/// Team of `lane` when `lanes` pool workers split into `parts` teams:
/// contiguous lane ranges, sizes differing by at most one. With
/// lanes < parts some teams own no lane; their partitions drain through
/// the help/steal path.
constexpr int partition_team_of_lane(int lane, int lanes, int parts) {
  return static_cast<int>(static_cast<long long>(lane) * parts / lanes);
}

/// First lane belonging to `team` under the same mapping.
constexpr int partition_team_first_lane(int team, int lanes, int parts) {
  return static_cast<int>((static_cast<long long>(team) * lanes + parts - 1) /
                          parts);
}

/// Number of lanes assigned to `team` (may be 0 when lanes < parts).
constexpr int partition_team_lanes(int team, int lanes, int parts) {
  return partition_team_first_lane(team + 1, lanes, parts) -
         partition_team_first_lane(team, lanes, parts);
}

/// Greedy prefix cuts over per-item weights: returns `parts + 1` boundaries
/// with boundaries[p] <= boundaries[p+1], covering [0, weights.size()).
/// Partition p is cut as soon as the running weight reaches
/// total * (p + 1) / parts, so each prefix overshoots its proportional
/// share by less than one item's weight (the balance bound: at most one
/// max-weight item of imbalance per cut). Same algorithm as
/// partition_rows_balanced (speck/multi_gpu.h), operating in chunk space
/// for partitioned_for. Pure function of (weights, parts).
std::vector<std::size_t> partition_weights_balanced(
    std::span<const std::uint64_t> weights, int parts);

class ThreadPool {
 public:
  /// Loop body: invoked once per chunk with the half-open index range
  /// [begin, end) and the id of the executing worker in
  /// [0, thread_count()). At most one chunk runs on a given worker id at a
  /// time, so per-worker scratch indexed by `worker` needs no locking.
  using RangeFn = std::function<void(std::size_t begin, std::size_t end, int worker)>;

  /// `threads` == 0 resolves via SPECK_THREADS / hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return thread_count_; }

  /// Runs `fn` over [0, n) in chunks of `chunk` indices. Chunk boundaries
  /// are `[i*chunk, min(n, (i+1)*chunk))` — a pure function of `n` and
  /// `chunk`, so results written per-index or per-chunk are independent of
  /// the thread count. The calling thread participates as worker 0. The
  /// first exception thrown by a chunk is rethrown here after all chunks
  /// finish. Nested calls from inside a worker run the loop inline (the
  /// pipeline never needs nested parallelism; this keeps it safe anyway).
  void parallel_for(std::size_t n, std::size_t chunk, const RangeFn& fn);

  /// Loop body for partitioned_for: the half-open index range plus the
  /// executing team in [0, parts) and the lane's slot within that team.
  /// At most one chunk runs on a given (team, slot) pair at a time, so
  /// team-local scratch indexed by slot needs no locking. Stolen chunks
  /// still run with the thief's own (team, slot) — which workspace
  /// executes a chunk never influences results.
  using PartitionRangeFn = std::function<void(
      std::size_t begin, std::size_t end, int team, int slot)>;

  /// Two-level variant of parallel_for (docs/performance.md "NUMA
  /// scale-out"): `part_begin_chunk` holds `parts + 1` boundaries in chunk
  /// space (chunk c covers indices [c*chunk, min(n, (c+1)*chunk))) and the
  /// pool's workers split into `parts` teams. Each team drains its own
  /// partition through a partition-local cursor first; a team that
  /// finishes then claims chunks from other partitions — from the
  /// most-loaded remaining partition when `steal` is true, in ascending
  /// cyclic order otherwise. Both modes are work-conserving: every chunk
  /// is executed exactly once at any thread count, partition count and
  /// steal schedule. Chunk boundaries remain the same pure function of
  /// (n, chunk) as parallel_for, so correctly-written bodies (one output
  /// slot per chunk/index) stay bit-identical regardless of who executes
  /// what; only `diag` (when non-null) observes the schedule. The first
  /// exception thrown by a chunk is rethrown after all lanes finish.
  void partitioned_for(std::size_t n, std::size_t chunk,
                       std::span<const std::size_t> part_begin_chunk,
                       bool steal, const PartitionRangeFn& fn,
                       PartitionedRunDiag* diag = nullptr);

 private:
  struct Job {
    const RangeFn* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::size_t total_chunks = 0;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> chunks_done{0};
    std::exception_ptr error;  // first failure; guarded by the pool mutex
  };

  void worker_loop(int worker);
  void run_chunks(Job& job, int worker);
  void run_serial(std::size_t n, std::size_t chunk, const RangeFn& fn);

  int thread_count_;
  std::vector<std::thread> workers_;  // thread_count_ - 1 helper threads

  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals a new job / shutdown
  std::condition_variable done_cv_;  // signals job completion
  std::shared_ptr<Job> job_;         // guarded by mutex_
  std::uint64_t generation_ = 0;     // guarded by mutex_
  bool shutdown_ = false;            // guarded by mutex_
};

/// SPECK_THREADS if set to a positive integer, else hardware concurrency
/// (at least 1).
int default_thread_count();

/// The process-wide pool, lazily created with default_thread_count().
ThreadPool& global_pool();

/// Replaces the process-wide pool with one of `threads` threads (0 resets
/// to the default). Not safe while a parallel_for on the old pool runs;
/// call at startup or between runs (the --threads flag does).
void set_global_thread_count(int threads);

/// Resolves a pool pointer: the argument if non-null, else the global pool.
inline ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_pool();
}

/// A process-wide single-threaded pool that is safe to share between
/// concurrently-running callers: with one thread, parallel_for always takes
/// the serial path on the calling thread — no mutex, no job slot, no shared
/// state — so N service threads can all pass this pool to replay kernels at
/// once. (The multi-threaded global_pool() has a single job slot and must
/// not be driven from more than one external thread at a time.)
ThreadPool& serial_pool();

/// Deterministic map-reduce: `per_chunk(begin, end)` computes one partial
/// per fixed chunk (in parallel), then the partials are combined with
/// `combine(acc, partial)` serially in ascending chunk order. The result is
/// identical for every thread count, including floating-point reductions.
template <typename T, typename ChunkFn, typename CombineFn>
T deterministic_reduce(ThreadPool& pool, std::size_t n, std::size_t chunk,
                       T identity, const ChunkFn& per_chunk,
                       const CombineFn& combine) {
  if (chunk == 0) chunk = 1;
  const std::size_t chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  std::vector<T> partials(chunks, identity);
  pool.parallel_for(n, chunk, [&](std::size_t begin, std::size_t end, int) {
    partials[begin / chunk] = per_chunk(begin, end);
  });
  T out = identity;
  for (const T& partial : partials) out = combine(out, partial);
  return out;
}

}  // namespace speck
