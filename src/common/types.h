// Fundamental scalar types shared across the library.
#pragma once

#include <cstdint>
#include <cstddef>

namespace speck {

/// Column/row index type. CSR matrices with up to ~2 billion rows/columns.
using index_t = std::int32_t;

/// Offset type for row pointers and element counts (products can exceed 2^31).
using offset_t = std::int64_t;

/// Numeric value type. The paper evaluates in double precision.
using value_t = double;

/// 32-bit compound hash key: 5 bits local row | 27 bits column (paper §4.3).
using key32_t = std::uint32_t;

/// 64-bit fallback key for matrices with more than 2^27 columns.
using key64_t = std::uint64_t;

/// Number of columns above which 32-bit compound keys no longer fit.
inline constexpr index_t kMaxColumns32Bit = index_t{1} << 27;

}  // namespace speck
