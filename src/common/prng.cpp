#include "common/prng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace speck {

double Xoshiro256::next_normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = next_double(-1.0, 1.0);
    v = next_double(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

std::int64_t Xoshiro256::next_power_law(std::int64_t max_value, double alpha) {
  SPECK_ASSERT(max_value >= 1, "power law needs max_value >= 1");
  SPECK_ASSERT(alpha > 1.0, "power law needs alpha > 1");
  // Inverse-CDF sampling of a continuous Pareto truncated at max_value.
  const double u = next_double();
  const double one_minus_alpha = 1.0 - alpha;
  const double max_term = std::pow(static_cast<double>(max_value), one_minus_alpha);
  const double x = std::pow(1.0 - u * (1.0 - max_term), 1.0 / one_minus_alpha);
  const auto result = static_cast<std::int64_t>(x);
  return std::clamp<std::int64_t>(result, 1, max_value);
}

std::vector<std::int64_t> sample_distinct_sorted(Xoshiro256& rng, std::int64_t universe,
                                                 std::int64_t count) {
  SPECK_REQUIRE(count <= universe, "cannot sample more distinct values than universe");
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count > universe / 2) {
    // Dense regime: reservoir-style selection over the whole universe.
    std::int64_t remaining = count;
    for (std::int64_t v = 0; v < universe && remaining > 0; ++v) {
      const std::int64_t left = universe - v;
      if (rng.next_below(static_cast<std::uint64_t>(left)) <
          static_cast<std::uint64_t>(remaining)) {
        out.push_back(v);
        --remaining;
      }
    }
    return out;
  }
  // Sparse regime: Floyd's algorithm.
  std::unordered_set<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(count) * 2);
  for (std::int64_t j = universe - count; j < universe; ++j) {
    const auto t = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace speck
