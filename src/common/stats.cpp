#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace speck {
namespace {

template <typename T>
SampleSummary summarize_impl(std::span<const T> values) {
  SampleSummary s;
  s.count = static_cast<std::int64_t>(values.size());
  if (values.empty()) return s;
  s.min = values.front();
  s.max = values.front();
  for (const T v : values) {
    s.min = std::min<std::int64_t>(s.min, v);
    s.max = std::max<std::int64_t>(s.max, v);
    s.total += v;
  }
  s.mean = static_cast<double>(s.total) / static_cast<double>(s.count);
  double var = 0.0;
  for (const T v : values) {
    const double d = static_cast<double>(v) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

}  // namespace

SampleSummary summarize(std::span<const std::int64_t> values) {
  return summarize_impl(values);
}

SampleSummary summarize(std::span<const std::int32_t> values) {
  return summarize_impl(values);
}

double percentile(std::vector<double> values, double p) {
  SPECK_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    SPECK_REQUIRE(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace speck
