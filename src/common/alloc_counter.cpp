#include "common/alloc_counter.h"

namespace speck::detail {

thread_local std::size_t thread_alloc_events = 0;

}  // namespace speck::detail
