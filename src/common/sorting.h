// Sorting primitives mirroring the device-side sorts used by spECK.
//
// The numeric pass sorts hash-map contents three different ways depending on
// the kernel size (paper §4.3 "Numeric SpGEMM"):
//   * rank sort in scratchpad for the three smallest kernels (O(n^2) work but
//     fully parallel and allocation-free on the device),
//   * device radix sort for medium kernels,
//   * no sort at all for dense accumulation (already ordered).
// The host implementations below are exact; kernels charge the corresponding
// simulated cost.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/bit_utils.h"
#include "common/check.h"
#include "common/simd.h"

namespace speck {

/// Rank sort (counting ranks by comparisons). Sorts `keys` and applies the
/// same permutation to `values`. Equals the scratchpad sort used by the three
/// smallest spECK kernels.
template <typename K, typename V>
void rank_sort_pairs(std::span<K> keys, std::span<V> values) {
  SPECK_ASSERT(keys.size() == values.size(), "rank_sort_pairs size mismatch");
  const std::size_t n = keys.size();
  std::vector<std::size_t> rank(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (keys[j] < keys[i] || (keys[j] == keys[i] && j < i)) ++rank[i];
    }
  }
  std::vector<K> sorted_keys(n);
  std::vector<V> sorted_values(n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_keys[rank[i]] = keys[i];
    sorted_values[rank[i]] = values[i];
  }
  std::copy(sorted_keys.begin(), sorted_keys.end(), keys.begin());
  std::copy(sorted_values.begin(), sorted_values.end(), values.begin());
}

/// Least-significant-digit radix sort on unsigned keys with a payload,
/// 8 bits per pass. Stable. Mirrors the CUB-style device radix sort used
/// for the larger spECK kernels and by the ESC baselines.
///
/// `simd` only enables software prefetch of the scatter destinations (the
/// permute loop's stores are data-dependent and defeat the hardware
/// prefetcher); the permutation — and therefore the sorted output — is
/// identical on every backend.
template <typename K, typename V>
void radix_sort_pairs(std::vector<K>& keys, std::vector<V>& values,
                      SimdBackend simd = SimdBackend::kScalar) {
  static_assert(std::is_unsigned_v<K>, "radix sort requires unsigned keys");
  SPECK_ASSERT(keys.size() == values.size(), "radix_sort_pairs size mismatch");
  const std::size_t n = keys.size();
  if (n < 2) return;

  K max_key = 0;
  for (const K k : keys) max_key = std::max(max_key, k);

  std::vector<K> key_buffer(n);
  std::vector<V> value_buffer(n);
  constexpr int kBits = 8;
  constexpr std::size_t kBuckets = std::size_t{1} << kBits;
  std::size_t histogram[kBuckets];
  const bool prefetch_scatter = simd != SimdBackend::kScalar;
  constexpr std::size_t kPrefetchDistance = 8;

  for (int shift = 0; shift < static_cast<int>(sizeof(K) * 8); shift += kBits) {
    if (shift > 0 && (max_key >> shift) == 0) break;
    std::fill(std::begin(histogram), std::end(histogram), 0);
    for (std::size_t i = 0; i < n; ++i) ++histogram[(keys[i] >> shift) & (kBuckets - 1)];
    // Histogram -> bucket offsets: vectorized exclusive scan (bit-identical
    // to the scalar running-sum it replaced; integer adds in fixed order).
    static_assert(sizeof(std::size_t) == sizeof(std::uint64_t));
    simd::exclusive_scan_u64(reinterpret_cast<std::uint64_t*>(histogram),
                             kBuckets, simd);
    for (std::size_t i = 0; i < n; ++i) {
      if (prefetch_scatter && i + kPrefetchDistance < n) {
        // The upcoming element's destination cursor is known now; touch the
        // target lines so the stores below hit warm cache.
        const std::size_t ahead_bucket =
            (keys[i + kPrefetchDistance] >> shift) & (kBuckets - 1);
        simd::prefetch(key_buffer.data() + histogram[ahead_bucket]);
        simd::prefetch(value_buffer.data() + histogram[ahead_bucket]);
      }
      const std::size_t bucket = (keys[i] >> shift) & (kBuckets - 1);
      key_buffer[histogram[bucket]] = keys[i];
      value_buffer[histogram[bucket]] = values[i];
      ++histogram[bucket];
    }
    keys.swap(key_buffer);
    values.swap(value_buffer);
  }
}

/// Number of radix passes the device sort would execute for the given key
/// range; used by the cost model.
template <typename K>
int radix_pass_count(K max_key) {
  int passes = 1;
  while ((max_key >>= 8) != 0) ++passes;
  return passes;
}

}  // namespace speck

namespace speck {

/// Bitonic sort of key/value pairs, padded internally to a power of two —
/// the in-kernel sort nsparse and bhSPARSE use. O(n log^2 n) compare
/// operations; `bitonic_compare_count(n)` reports how many, for cost models.
template <typename K, typename V>
void bitonic_sort_pairs(std::vector<K>& keys, std::vector<V>& values) {
  SPECK_ASSERT(keys.size() == values.size(), "bitonic_sort_pairs size mismatch");
  const std::size_t n = keys.size();
  if (n < 2) return;
  const auto padded = static_cast<std::size_t>(next_pow2(n));
  const K max_key = std::numeric_limits<K>::max();
  keys.resize(padded, max_key);
  values.resize(padded, V{});

  for (std::size_t stage = 2; stage <= padded; stage *= 2) {
    for (std::size_t stride = stage / 2; stride >= 1; stride /= 2) {
      for (std::size_t i = 0; i < padded; ++i) {
        const std::size_t partner = i ^ stride;
        if (partner <= i) continue;
        const bool ascending = (i & stage) == 0;
        if ((keys[i] > keys[partner]) == ascending) {
          std::swap(keys[i], keys[partner]);
          std::swap(values[i], values[partner]);
        }
      }
    }
  }
  keys.resize(n);
  values.resize(n);
}

/// Compare operations a bitonic network of (padded) size n executes.
inline std::size_t bitonic_compare_count(std::size_t n) {
  const auto padded = static_cast<std::size_t>(next_pow2(std::max<std::size_t>(n, 2)));
  const auto stages = static_cast<std::size_t>(log2_pow2(padded));
  return padded / 2 * stages * (stages + 1) / 2;
}

}  // namespace speck
