// Minimal INI-style configuration reader for the runspeck tool, mirroring
// the config.ini the paper's artifact ships (Appendix A.2).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

namespace speck {

/// Flat key=value configuration. Section headers ([name]) are accepted and
/// flattened to "section.key". Lines starting with '#' or ';' are comments.
class IniConfig {
 public:
  IniConfig() = default;

  static IniConfig parse(std::istream& in);
  static IniConfig parse_file(const std::string& path);

  bool contains(const std::string& key) const { return values_.count(key) != 0; }

  std::string get_string(const std::string& key, const std::string& fallback) const;
  /// Accepts true/false/yes/no/on/off/1/0 (case-insensitive).
  bool get_bool(const std::string& key, bool fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  void set(const std::string& key, const std::string& value) { values_[key] = value; }

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace speck
