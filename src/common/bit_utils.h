// Small bit-twiddling helpers used by load balancers and hash sizing.
#pragma once

#include <bit>
#include <cstdint>

#include "common/check.h"

namespace speck {

/// Integer ceiling division for non-negative operands.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Smallest power of two >= v (v >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  return std::bit_ceil(v == 0 ? std::uint64_t{1} : v);
}

/// Largest power of two <= v (v >= 1).
constexpr std::uint64_t prev_pow2(std::uint64_t v) {
  return v == 0 ? 1 : std::bit_floor(v);
}

/// Rounds v to the *closest* power of two; ties round up.
/// Used when rounding the local load-balancing group size g (paper §4.3).
constexpr std::uint64_t round_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  const std::uint64_t lo = std::bit_floor(v);
  const std::uint64_t hi = lo << 1;
  return (v - lo < hi - v) ? lo : hi;
}

/// log2 of a power of two.
constexpr int log2_pow2(std::uint64_t v) {
  return std::countr_zero(v == 0 ? std::uint64_t{1} : v);
}

/// True if v is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && std::has_single_bit(v); }

}  // namespace speck
