// Overflow-checked size arithmetic for user-controlled quantities.
//
// CSR/COO construction multiplies and adds sizes that come straight from
// input files (rows, cols, nnz). On 32/64-bit boundaries those products can
// wrap silently and turn a structured rejection into UB downstream. Every
// size computation fed by untrusted input goes through these helpers:
// `checked_cast` rejects narrowing that changes the value (BadInput, the
// value itself is wrong for the target), `checked_add`/`checked_mul` reject
// wrap-around (ResourceExhausted, the quantity is simply too large).
#pragma once

#include <limits>
#include <string>
#include <type_traits>

#include "common/check.h"

namespace speck {

/// Converts between integer types, throwing BadInput when the value does
/// not survive the round trip (negative into unsigned, too large, ...).
template <typename To, typename From>
constexpr To checked_cast(From value) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_cast is for integer types");
  const To result = static_cast<To>(value);
  const bool value_negative = std::is_signed_v<From> && value < From{0};
  const bool result_negative = std::is_signed_v<To> && result < To{0};
  if (static_cast<From>(result) != value || value_negative != result_negative) {
    throw BadInput("checked_cast: value " + std::to_string(value) +
                   " does not fit the target integer type");
  }
  return result;
}

/// a + b, throwing ResourceExhausted on overflow.
template <typename T>
constexpr T checked_add(T a, T b) {
  static_assert(std::is_integral_v<T>, "checked_add is for integer types");
  T result{};
  if (__builtin_add_overflow(a, b, &result)) {
    throw ResourceExhausted("checked_add: " + std::to_string(a) + " + " +
                            std::to_string(b) + " overflows");
  }
  return result;
}

/// a * b, throwing ResourceExhausted on overflow.
template <typename T>
constexpr T checked_mul(T a, T b) {
  static_assert(std::is_integral_v<T>, "checked_mul is for integer types");
  T result{};
  if (__builtin_mul_overflow(a, b, &result)) {
    throw ResourceExhausted("checked_mul: " + std::to_string(a) + " * " +
                            std::to_string(b) + " overflows");
  }
  return result;
}

}  // namespace speck
