// Prefix-sum primitives.
//
// On the GPU these are the building blocks for binning (paper §4.2), CSR row
// offset construction and output compaction. The host implementations are
// sequential; the simulated cost of the parallel version is charged by the
// kernels that use them.
#pragma once

#include <span>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "common/simd.h"

namespace speck {

/// In-place exclusive prefix sum. Returns the total (sum of all inputs).
template <typename T>
T exclusive_prefix_sum(std::span<T> data) {
  T running{};
  for (auto& v : data) {
    const T next = running + v;
    v = running;
    running = next;
  }
  return running;
}

/// In-place inclusive prefix sum. Returns the total.
template <typename T>
T inclusive_prefix_sum(std::span<T> data) {
  T running{};
  for (auto& v : data) {
    running += v;
    v = running;
  }
  return running;
}

/// Out-of-place exclusive prefix sum with an extra trailing total element,
/// i.e. the classic CSR offsets layout: out.size() == in.size() + 1.
template <typename T>
std::vector<T> offsets_from_counts(std::span<const T> counts) {
  std::vector<T> offsets(counts.size() + 1);
  T running{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = running;
    running += counts[i];
  }
  offsets[counts.size()] = running;
  return offsets;
}

// ---------------------------------------------------------------------------
// Backend-dispatched overloads. For 64-bit integral element types these run
// the vector scans from common/simd.h (bit-identical — integer addition is
// associative); anything else falls back to the scalar templates above.
// Accessing a signed 64-bit object through the corresponding unsigned type
// is well-defined ([basic.lval]); two's-complement addition is the same
// bit-level operation either way. `backend` must be resolved (never kAuto).
// ---------------------------------------------------------------------------

template <typename T>
inline constexpr bool is_scan64_v =
    std::is_integral_v<T> && sizeof(T) == sizeof(std::uint64_t);

/// In-place exclusive prefix sum, vectorized for 64-bit integers.
template <typename T>
T exclusive_prefix_sum(std::span<T> data, SimdBackend backend) {
  if constexpr (is_scan64_v<T>) {
    return static_cast<T>(simd::exclusive_scan_u64(
        reinterpret_cast<std::uint64_t*>(data.data()), data.size(), backend));
  } else {
    (void)backend;
    return exclusive_prefix_sum(data);
  }
}

/// In-place inclusive prefix sum, vectorized for 64-bit integers.
template <typename T>
T inclusive_prefix_sum(std::span<T> data, SimdBackend backend) {
  if constexpr (is_scan64_v<T>) {
    return static_cast<T>(simd::inclusive_scan_u64(
        reinterpret_cast<std::uint64_t*>(data.data()), data.size(), backend));
  } else {
    (void)backend;
    return inclusive_prefix_sum(data);
  }
}

}  // namespace speck
