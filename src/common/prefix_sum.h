// Prefix-sum primitives.
//
// On the GPU these are the building blocks for binning (paper §4.2), CSR row
// offset construction and output compaction. The host implementations are
// sequential; the simulated cost of the parallel version is charged by the
// kernels that use them.
#pragma once

#include <span>
#include <vector>

#include "common/check.h"

namespace speck {

/// In-place exclusive prefix sum. Returns the total (sum of all inputs).
template <typename T>
T exclusive_prefix_sum(std::span<T> data) {
  T running{};
  for (auto& v : data) {
    const T next = running + v;
    v = running;
    running = next;
  }
  return running;
}

/// In-place inclusive prefix sum. Returns the total.
template <typename T>
T inclusive_prefix_sum(std::span<T> data) {
  T running{};
  for (auto& v : data) {
    running += v;
    v = running;
  }
  return running;
}

/// Out-of-place exclusive prefix sum with an extra trailing total element,
/// i.e. the classic CSR offsets layout: out.size() == in.size() + 1.
template <typename T>
std::vector<T> offsets_from_counts(std::span<const T> counts) {
  std::vector<T> offsets(counts.size() + 1);
  T running{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = running;
    running += counts[i];
  }
  offsets[counts.size()] = running;
  return offsets;
}

}  // namespace speck
