// Deterministic pseudo-random number generation for matrix synthesis and tests.
//
// We intentionally avoid <random> engines for the hot generator paths: their
// distributions are not guaranteed to be reproducible across standard library
// implementations, and reproducible corpora are required so that benchmark
// tables are stable across machines.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace speck {

/// SplitMix64: used for seeding and cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit generator with a tiny state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x5eC4u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound > 0. Uses Lemire's multiply-shift reduction.
  std::uint64_t next_below(std::uint64_t bound) {
    SPECK_ASSERT(bound > 0, "next_below requires positive bound");
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    SPECK_ASSERT(lo <= hi, "next_int requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method.
  double next_normal();

  /// Power-law distributed integer in [1, max_value] with exponent alpha > 1.
  /// Used to synthesize scale-free row-degree distributions.
  std::int64_t next_power_law(std::int64_t max_value, double alpha);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Samples `count` distinct values from [0, universe) in increasing order.
/// Floyd's algorithm followed by a sort; O(count log count).
std::vector<std::int64_t> sample_distinct_sorted(Xoshiro256& rng, std::int64_t universe,
                                                 std::int64_t count);

}  // namespace speck
