// Portable SIMD layer for the host-side kernel hot loops.
//
// The simulated kernels spend their host time in three loop shapes: hash-map
// probing (one control byte per slot), dense-window occupancy scans (one byte
// per column), and gather-heavy sweeps over B rows. This header provides the
// small fixed-width primitives those loops build on — 16-wide control-byte
// group matches, 32-wide nonzero-byte scans, software prefetch — with
// AVX2/SSE2/NEON implementations and a scalar reference, selected by a
// runtime-dispatched `SimdBackend` value.
//
// Dispatch rules (docs/performance.md "SIMD backends"):
//   * `SpeckConfig::simd_backend` wins when it is not kAuto,
//   * else the `SPECK_SIMD` environment variable (scalar|sse|avx2|neon|auto),
//   * else the best backend the CPU supports (`detected_backend()`).
//
// Determinism contract: every primitive is a pure bit-level function with a
// scalar reference implementation, and every caller is written so that the
// backend only changes *how* a stop position or byte mask is computed, never
// *which* position or mask results. CSR bytes, simulated seconds and all
// PassStats counters are therefore bit-identical across backends — enforced
// by tests/test_simd.cpp under ASan/UBSan/TSan.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SPECK_SIMD_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define SPECK_SIMD_NEON 1
#endif

namespace speck {

/// Backend selector. kAuto is a *request* (resolve via env/CPU detection);
/// the kernels only ever see resolved values (never kAuto).
enum class SimdBackend { kAuto, kScalar, kSse, kAvx2, kNeon };

namespace simd {

/// Control-byte group width shared by the group-probing hash maps.
inline constexpr std::size_t kGroupWidth = 16;

/// Byte-scan chunk width used by nonzero_mask32 (dense occupancy windows).
inline constexpr std::size_t kChunkWidth = 32;

/// True when the running CPU (and compiler target) can execute `backend`.
/// kAuto and kScalar are always available.
bool backend_available(SimdBackend backend);

/// Best available backend on this CPU: avx2 > sse > neon > scalar.
SimdBackend detected_backend();

/// Parses "auto" | "scalar" | "sse" | "avx2" | "neon" (case-insensitive).
std::optional<SimdBackend> parse_backend(std::string_view name);

/// Human-readable backend name ("auto", "scalar", "sse", "avx2", "neon").
const char* backend_name(SimdBackend backend);

/// Resolves a request to a concrete backend: a non-kAuto `choice` is used
/// verbatim (throws InvalidArgument when the CPU lacks it); kAuto consults
/// the SPECK_SIMD environment variable, then `detected_backend()`. An
/// unparsable or unavailable SPECK_SIMD value falls back to detection (with
/// a one-time stderr notice) so a stale environment never aborts a run.
SimdBackend resolve_backend(SimdBackend choice);

// ---------------------------------------------------------------------------
// Primitives. Each has a scalar reference; the dispatching wrapper takes the
// resolved backend as an argument so callers hoist the choice out of loops.
// ---------------------------------------------------------------------------

/// Bit i of the result is set iff group[i] == tag (16 lanes).
inline std::uint32_t match_mask16_scalar(const std::uint8_t* group,
                                         std::uint8_t tag) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    mask |= static_cast<std::uint32_t>(group[i] == tag) << i;
  }
  return mask;
}

/// Tag-match and empty-match masks of one control group, derived from a
/// single 16-byte load (the probe loops need both on every group).
struct GroupMasks {
  std::uint32_t tag_mask;    ///< bit i set iff group[i] == tag
  std::uint32_t empty_mask;  ///< bit i set iff group[i] == empty
};

inline GroupMasks group_masks16_scalar(const std::uint8_t* group,
                                       std::uint8_t tag, std::uint8_t empty) {
  GroupMasks m{0, 0};
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    m.tag_mask |= static_cast<std::uint32_t>(group[i] == tag) << i;
    m.empty_mask |= static_cast<std::uint32_t>(group[i] == empty) << i;
  }
  return m;
}

/// Bit i of the result is set iff group[i] < 0x80 — i.e. the slot holds a
/// 7-bit tag (occupied). Empty (0x80) and sentinel (0xFF) control bytes both
/// carry the high bit, so one sign-bit mask separates occupied from free.
inline std::uint32_t occupied_mask16_scalar(const std::uint8_t* group) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < kGroupWidth; ++i) {
    mask |= static_cast<std::uint32_t>(group[i] < 0x80) << i;
  }
  return mask;
}

/// Bit i of the result is set iff p[i] != 0 (32 lanes).
inline std::uint32_t nonzero_mask32_scalar(const std::uint8_t* p) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    mask |= static_cast<std::uint32_t>(p[i] != 0) << i;
  }
  return mask;
}

#if defined(SPECK_SIMD_X86)
// SSE2 is part of the x86-64 baseline, so these build without special flags.
inline std::uint32_t match_mask16_sse(const std::uint8_t* group,
                                      std::uint8_t tag) {
  const __m128i g =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  const __m128i t = _mm_set1_epi8(static_cast<char>(tag));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(g, t)));
}

inline GroupMasks group_masks16_sse(const std::uint8_t* group, std::uint8_t tag,
                                    std::uint8_t empty) {
  const __m128i g =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  const auto tag_mask = static_cast<std::uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(g, _mm_set1_epi8(static_cast<char>(tag)))));
  const auto empty_mask = static_cast<std::uint32_t>(_mm_movemask_epi8(
      _mm_cmpeq_epi8(g, _mm_set1_epi8(static_cast<char>(empty)))));
  return GroupMasks{tag_mask, empty_mask};
}

inline std::uint32_t occupied_mask16_sse(const std::uint8_t* group) {
  const __m128i g =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
  // movemask collects the sign bits: set for empty/sentinel, clear for tags.
  return static_cast<std::uint32_t>(_mm_movemask_epi8(g)) ^ 0xFFFFu;
}

inline std::uint32_t nonzero_mask32_sse(const std::uint8_t* p) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  const auto zlo = static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(lo, zero)));
  const auto zhi = static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(hi, zero)));
  return ~(zlo | (zhi << 16));
}

// AVX2 variants carry a function-level target attribute so this header
// compiles without -mavx2; resolve_backend() guarantees they only run on
// CPUs that support them.
[[gnu::target("avx2")]] inline std::uint32_t nonzero_mask32_avx2(
    const std::uint8_t* p) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const auto zeros = static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, _mm256_setzero_si256())));
  return ~zeros;
}
#endif  // SPECK_SIMD_X86

#if defined(SPECK_SIMD_NEON)
inline std::uint32_t match_mask16_neon(const std::uint8_t* group,
                                       std::uint8_t tag) {
  const uint8x16_t eq = vceqq_u8(vld1q_u8(group), vdupq_n_u8(tag));
  // Narrow each byte lane to one bit: AND with per-lane bit weights, then
  // pairwise-add down to two bytes of mask.
  const uint8x16_t weights = {1, 2, 4, 8, 16, 32, 64, 128,
                              1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t bits = vandq_u8(eq, weights);
  const uint8x8_t lo = vget_low_u8(bits);
  const uint8x8_t hi = vget_high_u8(bits);
  return static_cast<std::uint32_t>(vaddv_u8(lo)) |
         (static_cast<std::uint32_t>(vaddv_u8(hi)) << 8);
}

inline GroupMasks group_masks16_neon(const std::uint8_t* group,
                                     std::uint8_t tag, std::uint8_t empty) {
  const uint8x16_t g = vld1q_u8(group);
  const uint8x16_t weights = {1, 2, 4, 8, 16, 32, 64, 128,
                              1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t tag_bits = vandq_u8(vceqq_u8(g, vdupq_n_u8(tag)), weights);
  const uint8x16_t empty_bits =
      vandq_u8(vceqq_u8(g, vdupq_n_u8(empty)), weights);
  const auto tag_mask =
      static_cast<std::uint32_t>(vaddv_u8(vget_low_u8(tag_bits))) |
      (static_cast<std::uint32_t>(vaddv_u8(vget_high_u8(tag_bits))) << 8);
  const auto empty_mask =
      static_cast<std::uint32_t>(vaddv_u8(vget_low_u8(empty_bits))) |
      (static_cast<std::uint32_t>(vaddv_u8(vget_high_u8(empty_bits))) << 8);
  return GroupMasks{tag_mask, empty_mask};
}

inline std::uint32_t occupied_mask16_neon(const std::uint8_t* group) {
  const uint8x16_t occ = vcltq_u8(vld1q_u8(group), vdupq_n_u8(0x80));
  const uint8x16_t weights = {1, 2, 4, 8, 16, 32, 64, 128,
                              1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t bits = vandq_u8(occ, weights);
  return static_cast<std::uint32_t>(vaddv_u8(vget_low_u8(bits))) |
         (static_cast<std::uint32_t>(vaddv_u8(vget_high_u8(bits))) << 8);
}

inline std::uint32_t nonzero_mask32_neon(const std::uint8_t* p) {
  const uint8x16_t zero = vdupq_n_u8(0);
  const uint8x16_t nz_lo = vmvnq_u8(vceqq_u8(vld1q_u8(p), zero));
  const uint8x16_t nz_hi = vmvnq_u8(vceqq_u8(vld1q_u8(p + 16), zero));
  const uint8x16_t weights = {1, 2, 4, 8, 16, 32, 64, 128,
                              1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t blo = vandq_u8(nz_lo, weights);
  const uint8x16_t bhi = vandq_u8(nz_hi, weights);
  return static_cast<std::uint32_t>(vaddv_u8(vget_low_u8(blo))) |
         (static_cast<std::uint32_t>(vaddv_u8(vget_high_u8(blo))) << 8) |
         (static_cast<std::uint32_t>(vaddv_u8(vget_low_u8(bhi))) << 16) |
         (static_cast<std::uint32_t>(vaddv_u8(vget_high_u8(bhi))) << 24);
}
#endif  // SPECK_SIMD_NEON

/// Dispatching 16-lane control-byte match. `backend` must be resolved.
inline std::uint32_t match_mask16(const std::uint8_t* group, std::uint8_t tag,
                                  SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend != SimdBackend::kScalar) return match_mask16_sse(group, tag);
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar) return match_mask16_neon(group, tag);
#else
  (void)backend;
#endif
  return match_mask16_scalar(group, tag);
}

/// Dispatching single-load tag+empty group match. `backend` must be resolved.
inline GroupMasks group_masks16(const std::uint8_t* group, std::uint8_t tag,
                                std::uint8_t empty, SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend != SimdBackend::kScalar)
    return group_masks16_sse(group, tag, empty);
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar)
    return group_masks16_neon(group, tag, empty);
#else
  (void)backend;
#endif
  return group_masks16_scalar(group, tag, empty);
}

/// Dispatching 16-lane occupied-slot mask. `backend` must be resolved.
inline std::uint32_t occupied_mask16(const std::uint8_t* group,
                                     SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend != SimdBackend::kScalar) return occupied_mask16_sse(group);
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar) return occupied_mask16_neon(group);
#else
  (void)backend;
#endif
  return occupied_mask16_scalar(group);
}

/// Dispatching 32-lane nonzero-byte scan. `backend` must be resolved.
inline std::uint32_t nonzero_mask32(const std::uint8_t* p, SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend == SimdBackend::kAvx2) return nonzero_mask32_avx2(p);
  if (backend != SimdBackend::kScalar) return nonzero_mask32_sse(p);
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar) return nonzero_mask32_neon(p);
#else
  (void)backend;
#endif
  return nonzero_mask32_scalar(p);
}

// ---------------------------------------------------------------------------
// Integer prefix scans: CSR row-offset construction and counting-sort
// histogram offsets. 64-bit lanes (offset_t and std::size_t histograms are
// both 8 bytes); integer addition is associative, so every backend is
// bit-identical to the scalar reference by construction.
// ---------------------------------------------------------------------------

/// In-place inclusive prefix sum over 64-bit words; returns the total.
inline std::uint64_t inclusive_scan_u64_scalar(std::uint64_t* data,
                                               std::size_t n) {
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    running += data[i];
    data[i] = running;
  }
  return running;
}

/// In-place exclusive prefix sum over 64-bit words; returns the total.
inline std::uint64_t exclusive_scan_u64_scalar(std::uint64_t* data,
                                               std::size_t n) {
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = data[i];
    data[i] = running;
    running += v;
  }
  return running;
}

#if defined(SPECK_SIMD_X86)
inline std::uint64_t inclusive_scan_u64_sse(std::uint64_t* data,
                                            std::size_t n) {
  __m128i carry = _mm_setzero_si128();  // running total in both lanes
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    v = _mm_add_epi64(v, _mm_slli_si128(v, 8));  // [v0, v0+v1]
    v = _mm_add_epi64(v, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(data + i), v);
    carry = _mm_shuffle_epi32(v, _MM_SHUFFLE(3, 2, 3, 2));  // high lane -> both
  }
  auto running = static_cast<std::uint64_t>(_mm_cvtsi128_si64(carry));
  for (; i < n; ++i) {
    running += data[i];
    data[i] = running;
  }
  return running;
}

inline std::uint64_t exclusive_scan_u64_sse(std::uint64_t* data,
                                            std::size_t n) {
  __m128i carry = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i incl = _mm_add_epi64(v, _mm_slli_si128(v, 8));  // [v0, v0+v1]
    const __m128i excl =
        _mm_add_epi64(_mm_slli_si128(incl, 8), carry);  // [run, run+v0]
    _mm_storeu_si128(reinterpret_cast<__m128i*>(data + i), excl);
    const __m128i total = _mm_add_epi64(incl, carry);
    carry = _mm_shuffle_epi32(total, _MM_SHUFFLE(3, 2, 3, 2));
  }
  auto running = static_cast<std::uint64_t>(_mm_cvtsi128_si64(carry));
  for (; i < n; ++i) {
    const std::uint64_t v = data[i];
    data[i] = running;
    running += v;
  }
  return running;
}

[[gnu::target("avx2")]] inline std::uint64_t inclusive_scan_u64_avx2(
    std::uint64_t* data, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i carry = zero;  // running total in all four lanes
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    // Within-128-bit-lane scan: [v0, v0+v1, v2, v2+v3] ...
    const __m256i step = _mm256_add_epi64(v, _mm256_slli_si256(v, 8));
    // ... then carry v0+v1 into the upper half for the full in-vector scan.
    const __m256i upper = _mm256_blend_epi32(
        zero, _mm256_permute4x64_epi64(step, _MM_SHUFFLE(1, 1, 1, 1)), 0xF0);
    const __m256i incl =
        _mm256_add_epi64(_mm256_add_epi64(step, upper), carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i), incl);
    carry = _mm256_permute4x64_epi64(incl, _MM_SHUFFLE(3, 3, 3, 3));
  }
  auto running =
      static_cast<std::uint64_t>(_mm256_extract_epi64(carry, 0));
  for (; i < n; ++i) {
    running += data[i];
    data[i] = running;
  }
  return running;
}

[[gnu::target("avx2")]] inline std::uint64_t exclusive_scan_u64_avx2(
    std::uint64_t* data, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i carry = zero;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i step = _mm256_add_epi64(v, _mm256_slli_si256(v, 8));
    const __m256i upper = _mm256_blend_epi32(
        zero, _mm256_permute4x64_epi64(step, _MM_SHUFFLE(1, 1, 1, 1)), 0xF0);
    const __m256i incl = _mm256_add_epi64(step, upper);
    // Shift one lane up (crossing the 128-bit boundary), zero lane 0.
    const __m256i shifted = _mm256_blend_epi32(
        zero, _mm256_permute4x64_epi64(incl, _MM_SHUFFLE(2, 1, 0, 0)), 0xFC);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i),
                        _mm256_add_epi64(shifted, carry));
    carry = _mm256_permute4x64_epi64(_mm256_add_epi64(incl, carry),
                                     _MM_SHUFFLE(3, 3, 3, 3));
  }
  auto running =
      static_cast<std::uint64_t>(_mm256_extract_epi64(carry, 0));
  for (; i < n; ++i) {
    const std::uint64_t v = data[i];
    data[i] = running;
    running += v;
  }
  return running;
}
#endif  // SPECK_SIMD_X86

#if defined(SPECK_SIMD_NEON)
inline std::uint64_t inclusive_scan_u64_neon(std::uint64_t* data,
                                             std::size_t n) {
  const uint64x2_t zero = vdupq_n_u64(0);
  uint64x2_t carry = zero;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vld1q_u64(data + i);
    v = vaddq_u64(v, vextq_u64(zero, v, 1));  // [v0, v0+v1]
    v = vaddq_u64(v, carry);
    vst1q_u64(data + i, v);
    carry = vdupq_laneq_u64(v, 1);
  }
  std::uint64_t running = vgetq_lane_u64(carry, 0);
  for (; i < n; ++i) {
    running += data[i];
    data[i] = running;
  }
  return running;
}

inline std::uint64_t exclusive_scan_u64_neon(std::uint64_t* data,
                                             std::size_t n) {
  const uint64x2_t zero = vdupq_n_u64(0);
  uint64x2_t carry = zero;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(data + i);
    const uint64x2_t incl = vaddq_u64(v, vextq_u64(zero, v, 1));
    vst1q_u64(data + i, vaddq_u64(vextq_u64(zero, incl, 1), carry));
    carry = vdupq_laneq_u64(vaddq_u64(incl, carry), 1);
  }
  std::uint64_t running = vgetq_lane_u64(carry, 0);
  for (; i < n; ++i) {
    const std::uint64_t v = data[i];
    data[i] = running;
    running += v;
  }
  return running;
}
#endif  // SPECK_SIMD_NEON

/// Dispatching in-place inclusive 64-bit prefix sum; returns the total.
/// `backend` must be resolved.
inline std::uint64_t inclusive_scan_u64(std::uint64_t* data, std::size_t n,
                                        SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend == SimdBackend::kAvx2) return inclusive_scan_u64_avx2(data, n);
  if (backend != SimdBackend::kScalar) return inclusive_scan_u64_sse(data, n);
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar) return inclusive_scan_u64_neon(data, n);
#else
  (void)backend;
#endif
  return inclusive_scan_u64_scalar(data, n);
}

/// Dispatching in-place exclusive 64-bit prefix sum; returns the total.
/// `backend` must be resolved.
inline std::uint64_t exclusive_scan_u64(std::uint64_t* data, std::size_t n,
                                        SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend == SimdBackend::kAvx2) return exclusive_scan_u64_avx2(data, n);
  if (backend != SimdBackend::kScalar) return exclusive_scan_u64_sse(data, n);
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar) return exclusive_scan_u64_neon(data, n);
#else
  (void)backend;
#endif
  return exclusive_scan_u64_scalar(data, n);
}

// ---------------------------------------------------------------------------
// Widening copy: int32 -> int64, the CSR row-offset staging step (per-row
// nnz counts are index_t, offsets are offset_t). Sign extension is exact,
// so every backend is bit-identical to the scalar reference.
// ---------------------------------------------------------------------------

/// dst[i] = (int64) src[i] for i in [0, n); dst must not alias src.
inline void widen_i32_to_i64_scalar(const std::int32_t* src, std::int64_t* dst,
                                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<std::int64_t>(src[i]);
}

#if defined(SPECK_SIMD_X86)
inline void widen_i32_to_i64_sse(const std::int32_t* src, std::int64_t* dst,
                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // SSE2 sign extension: replicate the sign bit, then interleave.
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i sign = _mm_srai_epi32(v, 31);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_unpacklo_epi32(v, sign));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 2),
                     _mm_unpackhi_epi32(v, sign));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::int64_t>(src[i]);
}

[[gnu::target("avx2")]] inline void widen_i32_to_i64_avx2(
    const std::int32_t* src, std::int64_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_cvtepi32_epi64(v));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::int64_t>(src[i]);
}
#endif  // SPECK_SIMD_X86

#if defined(SPECK_SIMD_NEON)
inline void widen_i32_to_i64_neon(const std::int32_t* src, std::int64_t* dst,
                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4_t v = vld1q_s32(src + i);
    vst1q_s64(dst + i, vmovl_s32(vget_low_s32(v)));
    vst1q_s64(dst + i + 2, vmovl_s32(vget_high_s32(v)));
  }
  for (; i < n; ++i) dst[i] = static_cast<std::int64_t>(src[i]);
}
#endif  // SPECK_SIMD_NEON

/// Dispatching widening copy int32 -> int64. `backend` must be resolved.
inline void widen_i32_to_i64(const std::int32_t* src, std::int64_t* dst,
                             std::size_t n, SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend == SimdBackend::kAvx2) return widen_i32_to_i64_avx2(src, dst, n);
  if (backend != SimdBackend::kScalar) return widen_i32_to_i64_sse(src, dst, n);
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar) return widen_i32_to_i64_neon(src, dst, n);
#else
  (void)backend;
#endif
  return widen_i32_to_i64_scalar(src, dst, n);
}

// ---------------------------------------------------------------------------
// Elementwise 64-bit add: merging striped counting-sort histograms (the
// stripes break the store-to-load dependency carried through a single
// histogram when consecutive entries hit the same bucket). Integer addition
// is associative and the merge order is fixed, so every backend is
// bit-identical to the scalar reference.
// ---------------------------------------------------------------------------

/// dst[i] += src[i] for i in [0, n).
inline void add_u64_scalar(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

#if defined(SPECK_SIMD_X86)
inline void add_u64_sse(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_add_epi64(a, b));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

[[gnu::target("avx2")]] inline void add_u64_avx2(std::uint64_t* dst,
                                                 const std::uint64_t* src,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(a, b));
  }
  for (; i < n; ++i) dst[i] += src[i];
}
#endif  // SPECK_SIMD_X86

#if defined(SPECK_SIMD_NEON)
inline void add_u64_neon(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vaddq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}
#endif  // SPECK_SIMD_NEON

/// Dispatching elementwise 64-bit add. `backend` must be resolved.
inline void add_u64(std::uint64_t* dst, const std::uint64_t* src, std::size_t n,
                    SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend == SimdBackend::kAvx2) return add_u64_avx2(dst, src, n);
  if (backend != SimdBackend::kScalar) return add_u64_sse(dst, src, n);
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar) return add_u64_neon(dst, src, n);
#else
  (void)backend;
#endif
  return add_u64_scalar(dst, src, n);
}

// ---------------------------------------------------------------------------
// Masked dense-window gather: the extraction step of the masked SpGEMM dense
// path. A dense accumulation window covers columns [base, base + window); for
// each mask column cols[i] inside that range the primitive reads the window
// cell idx = cols[i] - base and emits
//   out_touched[i] = occupied[idx] != 0
//   out_vals[i]    = touched ? window_vals[idx] : 0.0
// Both outputs are pure element copies/zeroes — no arithmetic — so every
// backend is bit-identical to the scalar reference by construction. The AVX2
// variant gathers occupancy bytes four at a time with a scale-1 dword gather,
// which reads up to 3 bytes past occupied[window - 1]; callers must pad the
// occupancy buffer accordingly (kMaskedGatherPad bytes suffice).
// ---------------------------------------------------------------------------

/// Extra readable bytes required past the end of the occupancy window.
inline constexpr std::size_t kMaskedGatherPad = 3;

inline void masked_window_gather_scalar(const std::int32_t* cols, std::size_t n,
                                        std::int32_t base,
                                        const double* window_vals,
                                        const std::uint8_t* occupied,
                                        double* out_vals,
                                        std::uint8_t* out_touched) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(cols[i] - base);
    const bool occ = occupied[idx] != 0;
    out_touched[i] = occ ? 1 : 0;
    out_vals[i] = occ ? window_vals[idx] : 0.0;
  }
}

#if defined(SPECK_SIMD_X86)
inline void masked_window_gather_sse(const std::int32_t* cols, std::size_t n,
                                     std::int32_t base,
                                     const double* window_vals,
                                     const std::uint8_t* occupied,
                                     double* out_vals,
                                     std::uint8_t* out_touched) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // SSE2 has no gather instruction; two scalar element loads feed one
    // vector mask-and-store per pair.
    const auto i0 = static_cast<std::size_t>(cols[i] - base);
    const auto i1 = static_cast<std::size_t>(cols[i + 1] - base);
    const bool o0 = occupied[i0] != 0;
    const bool o1 = occupied[i1] != 0;
    const __m128d v = _mm_set_pd(window_vals[i1], window_vals[i0]);
    const __m128i keep = _mm_set_epi64x(o1 ? -1 : 0, o0 ? -1 : 0);
    _mm_storeu_pd(out_vals + i, _mm_and_pd(v, _mm_castsi128_pd(keep)));
    out_touched[i] = o0 ? 1 : 0;
    out_touched[i + 1] = o1 ? 1 : 0;
  }
  for (; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(cols[i] - base);
    const bool occ = occupied[idx] != 0;
    out_touched[i] = occ ? 1 : 0;
    out_vals[i] = occ ? window_vals[idx] : 0.0;
  }
}

[[gnu::target("avx2")]] inline void masked_window_gather_avx2(
    const std::int32_t* cols, std::size_t n, std::int32_t base,
    const double* window_vals, const std::uint8_t* occupied, double* out_vals,
    std::uint8_t* out_touched) {
  const __m128i vbase = _mm_set1_epi32(base);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx = _mm_sub_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + i)), vbase);
    const __m256d v = _mm256_i32gather_pd(window_vals, idx, 8);
    // Scale-1 dword gather of the occupancy bytes (low byte per lane); the
    // caller's kMaskedGatherPad padding keeps the tail lanes in bounds.
    const __m128i occ4 = _mm_and_si128(
        _mm_i32gather_epi32(reinterpret_cast<const int*>(occupied), idx, 1),
        _mm_set1_epi32(0xFF));
    const __m128i occ_mask = _mm_cmpgt_epi32(occ4, _mm_setzero_si128());
    const __m256d keep = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(occ_mask));
    _mm256_storeu_pd(out_vals + i, _mm256_and_pd(v, keep));
    const int bits = _mm_movemask_ps(_mm_castsi128_ps(occ_mask));
    out_touched[i] = static_cast<std::uint8_t>(bits & 1);
    out_touched[i + 1] = static_cast<std::uint8_t>((bits >> 1) & 1);
    out_touched[i + 2] = static_cast<std::uint8_t>((bits >> 2) & 1);
    out_touched[i + 3] = static_cast<std::uint8_t>((bits >> 3) & 1);
  }
  for (; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(cols[i] - base);
    const bool occ = occupied[idx] != 0;
    out_touched[i] = occ ? 1 : 0;
    out_vals[i] = occ ? window_vals[idx] : 0.0;
  }
}
#endif  // SPECK_SIMD_X86

#if defined(SPECK_SIMD_NEON)
inline void masked_window_gather_neon(const std::int32_t* cols, std::size_t n,
                                      std::int32_t base,
                                      const double* window_vals,
                                      const std::uint8_t* occupied,
                                      double* out_vals,
                                      std::uint8_t* out_touched) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // NEON has no gather either; lane-wise loads feed one masked store.
    const auto i0 = static_cast<std::size_t>(cols[i] - base);
    const auto i1 = static_cast<std::size_t>(cols[i + 1] - base);
    const bool o0 = occupied[i0] != 0;
    const bool o1 = occupied[i1] != 0;
    const float64x2_t v =
        vsetq_lane_f64(window_vals[i1], vdupq_n_f64(window_vals[i0]), 1);
    const uint64x2_t keep = vsetq_lane_u64(
        o1 ? ~0ull : 0, vdupq_n_u64(o0 ? ~0ull : 0), 1);
    vst1q_f64(out_vals + i, vreinterpretq_f64_u64(vandq_u64(
                                vreinterpretq_u64_f64(v), keep)));
    out_touched[i] = o0 ? 1 : 0;
    out_touched[i + 1] = o1 ? 1 : 0;
  }
  for (; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(cols[i] - base);
    const bool occ = occupied[idx] != 0;
    out_touched[i] = occ ? 1 : 0;
    out_vals[i] = occ ? window_vals[idx] : 0.0;
  }
}
#endif  // SPECK_SIMD_NEON

/// Dispatching masked dense-window gather. `backend` must be resolved. The
/// occupancy buffer needs kMaskedGatherPad readable bytes of tail padding.
inline void masked_window_gather(const std::int32_t* cols, std::size_t n,
                                 std::int32_t base, const double* window_vals,
                                 const std::uint8_t* occupied, double* out_vals,
                                 std::uint8_t* out_touched,
                                 SimdBackend backend) {
#if defined(SPECK_SIMD_X86)
  if (backend == SimdBackend::kAvx2) {
    return masked_window_gather_avx2(cols, n, base, window_vals, occupied,
                                     out_vals, out_touched);
  }
  if (backend != SimdBackend::kScalar) {
    return masked_window_gather_sse(cols, n, base, window_vals, occupied,
                                    out_vals, out_touched);
  }
#elif defined(SPECK_SIMD_NEON)
  if (backend != SimdBackend::kScalar) {
    return masked_window_gather_neon(cols, n, base, window_vals, occupied,
                                     out_vals, out_touched);
  }
#else
  (void)backend;
#endif
  return masked_window_gather_scalar(cols, n, base, window_vals, occupied,
                                     out_vals, out_touched);
}

/// Software prefetch into the read cache hierarchy. Callers gate this on
/// `backend != kScalar` — prefetch never changes results, but keeping the
/// scalar path prefetch-free keeps it the plain reference implementation.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

/// Index of the lowest set bit; `mask` must be nonzero.
inline unsigned lowest_bit(std::uint32_t mask) {
  return static_cast<unsigned>(std::countr_zero(mask));
}

}  // namespace simd
}  // namespace speck
