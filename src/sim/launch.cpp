#include "sim/launch.h"

#include <algorithm>

#include "common/check.h"

namespace speck::sim {

int blocks_resident_per_sm(const DeviceSpec& device, int threads,
                           std::size_t scratchpad_bytes) {
  SPECK_REQUIRE(threads >= 1 && threads <= device.max_threads_per_block,
                "block thread count out of device range");
  int by_threads = device.max_threads_per_sm / std::max(threads, device.warp_size);
  int by_smem = scratchpad_bytes == 0
                    ? device.max_blocks_per_sm
                    : static_cast<int>(device.scratchpad_per_sm / scratchpad_bytes);
  return std::max(1, std::min({by_threads, by_smem, device.max_blocks_per_sm}));
}

double occupancy_efficiency(const DeviceSpec& device, int resident_threads) {
  const double ratio = static_cast<double>(resident_threads) /
                       static_cast<double>(device.full_throughput_threads);
  return std::clamp(ratio, 0.25, 1.0);
}

BlockCost Launch::make_block(int threads, std::size_t scratchpad_bytes) const {
  SPECK_REQUIRE(threads >= 1 && threads <= device_.max_threads_per_block,
                "threads per block exceeds device limit");
  SPECK_REQUIRE(scratchpad_bytes <= device_.dynamic_scratchpad_per_block,
                "scratchpad request exceeds device limit");
  return BlockCost(threads, scratchpad_bytes, model_);
}

void Launch::add(const BlockCost& block) {
  blocks_.push_back(BlockRecord{block.cycles(), block.threads(), block.scratchpad_bytes()});
}

LaunchResult Launch::finish() const {
  LaunchResult result;
  result.name = name_;
  result.blocks = static_cast<int>(blocks_.size());
  if (blocks_.empty()) {
    result.seconds = model_.kernel_launch_overhead_us * 1e-6;
    return result;
  }

  result.threads_per_block = blocks_.front().threads;
  result.scratchpad_per_block = blocks_.front().scratchpad;

  // Greedy dispatch in block order to the least-loaded SM: CUDA dispatches
  // waves of blocks to SMs as they drain, which this approximates while
  // preserving the in-order locality spECK's binning relies on.
  std::vector<double> sm_load(static_cast<std::size_t>(device_.num_sms), 0.0);
  std::size_t next_sm = 0;
  for (const BlockRecord& b : blocks_) {
    const int resident = blocks_resident_per_sm(device_, b.threads, b.scratchpad);
    const double eff =
        occupancy_efficiency(device_, std::min(resident * b.threads,
                                                device_.max_threads_per_sm));
    // Round-robin with a min-load fallback keeps dispatch O(blocks).
    std::size_t target = next_sm;
    next_sm = (next_sm + 1) % sm_load.size();
    if (sm_load[target] > 1.5 * sm_load[next_sm]) {
      target = static_cast<std::size_t>(
          std::min_element(sm_load.begin(), sm_load.end()) - sm_load.begin());
    }
    sm_load[target] += b.cycles / eff;
  }
  result.makespan_cycles = *std::max_element(sm_load.begin(), sm_load.end());

  const BlockRecord& first = blocks_.front();
  result.resident_blocks_per_sm =
      blocks_resident_per_sm(device_, first.threads, first.scratchpad);
  result.efficiency = occupancy_efficiency(
      device_, std::min(result.resident_blocks_per_sm * first.threads,
                         device_.max_threads_per_sm));
  result.seconds = result.makespan_cycles / (device_.clock_ghz * 1e9) +
                   model_.kernel_launch_overhead_us * 1e-6;
  return result;
}

}  // namespace speck::sim
