#include "sim/launch.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

namespace speck::sim {
namespace {

/// Below this block count the per-block weight computation stays serial:
/// the work is two divisions per block and the pool hand-off would dominate.
constexpr std::size_t kParallelFinishThreshold = 2048;
constexpr std::size_t kFinishChunk = 512;

}  // namespace

int blocks_resident_per_sm(const DeviceSpec& device, int threads,
                           std::size_t scratchpad_bytes) {
  SPECK_REQUIRE(threads >= 1 && threads <= device.max_threads_per_block,
                "block thread count out of device range");
  int by_threads = device.max_threads_per_sm / std::max(threads, device.warp_size);
  int by_smem = scratchpad_bytes == 0
                    ? device.max_blocks_per_sm
                    : static_cast<int>(device.scratchpad_per_sm / scratchpad_bytes);
  return std::max(1, std::min({by_threads, by_smem, device.max_blocks_per_sm}));
}

double occupancy_efficiency(const DeviceSpec& device, int resident_threads) {
  const double ratio = static_cast<double>(resident_threads) /
                       static_cast<double>(device.full_throughput_threads);
  return std::clamp(ratio, 0.25, 1.0);
}

BlockCost Launch::make_block(int threads, std::size_t scratchpad_bytes) const {
  SPECK_REQUIRE(threads >= 1 && threads <= device_.max_threads_per_block,
                "threads per block exceeds device limit");
  SPECK_REQUIRE(scratchpad_bytes <= device_.dynamic_scratchpad_per_block,
                "scratchpad request exceeds device limit");
  return BlockCost(threads, scratchpad_bytes, model_);
}

void Launch::add(const BlockCost& block) {
  blocks_.push_back(BlockRecord{block.cycles(), block.threads(), block.scratchpad_bytes()});
}

LaunchResult Launch::finish() const {
  LaunchResult result;
  result.name = name_;
  result.blocks = static_cast<int>(blocks_.size());
  if (blocks_.empty()) {
    // Empty launch: only the host-side overhead; the first-block summary
    // fields keep their zero defaults (there is no block to describe).
    result.seconds = model_.kernel_launch_overhead_us * 1e-6;
    return result;
  }

  const BlockRecord& first = blocks_.front();
  result.threads_per_block = first.threads;
  result.scratchpad_per_block = first.scratchpad;
  for (const BlockRecord& b : blocks_) {
    if (b.threads != first.threads || b.scratchpad != first.scratchpad) {
      result.heterogeneous = true;
      break;
    }
  }

  // Per-block effective cycles (cycles inflated by that block's own
  // occupancy). Blocks are independent here, so large launches compute the
  // weights through the host thread pool; each weight lands in its own slot
  // and the result is identical to the serial loop for any thread count.
  std::vector<double> weight(blocks_.size(), 0.0);
  const auto compute_weights = [&](std::size_t begin, std::size_t end, int) {
    for (std::size_t i = begin; i < end; ++i) {
      const BlockRecord& b = blocks_[i];
      const int resident = blocks_resident_per_sm(device_, b.threads, b.scratchpad);
      const double eff =
          occupancy_efficiency(device_, std::min(resident * b.threads,
                                                  device_.max_threads_per_sm));
      weight[i] = b.cycles / eff;
    }
  };
  if (blocks_.size() >= kParallelFinishThreshold) {
    global_pool().parallel_for(blocks_.size(), kFinishChunk, compute_weights);
  } else {
    compute_weights(0, blocks_.size(), 0);
  }

  // Greedy dispatch in block order to the least-loaded SM: CUDA dispatches
  // waves of blocks to SMs as they drain, which this approximates while
  // preserving the in-order locality spECK's binning relies on. This part
  // is inherently sequential (each placement depends on the loads so far)
  // but is O(blocks) cheap once the weights are precomputed.
  std::vector<double> sm_load(static_cast<std::size_t>(device_.num_sms), 0.0);
  std::size_t next_sm = 0;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    // Round-robin with a min-load fallback keeps dispatch O(blocks).
    std::size_t target = next_sm;
    next_sm = (next_sm + 1) % sm_load.size();
    if (sm_load[target] > 1.5 * sm_load[next_sm]) {
      target = static_cast<std::size_t>(
          std::min_element(sm_load.begin(), sm_load.end()) - sm_load.begin());
    }
    sm_load[target] += weight[i];
  }
  result.makespan_cycles = *std::max_element(sm_load.begin(), sm_load.end());

  result.resident_blocks_per_sm =
      blocks_resident_per_sm(device_, first.threads, first.scratchpad);
  result.efficiency = occupancy_efficiency(
      device_, std::min(result.resident_blocks_per_sm * first.threads,
                         device_.max_threads_per_sm));
  result.seconds = result.makespan_cycles / (device_.clock_ghz * 1e9) +
                   model_.kernel_launch_overhead_us * 1e-6;
  return result;
}

}  // namespace speck::sim
