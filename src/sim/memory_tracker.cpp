#include "sim/memory_tracker.h"

// Header-only implementation; this translation unit anchors the library.
