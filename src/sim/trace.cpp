#include "sim/trace.h"

#include <cstdio>
#include <sstream>

namespace speck::sim {

int LaunchTrace::total_blocks() const {
  int total = 0;
  for (const LaunchResult& launch : launches_) total += launch.blocks;
  return total;
}

double LaunchTrace::total_seconds() const {
  double total = 0.0;
  for (const LaunchResult& launch : launches_) total += launch.seconds;
  return total;
}

std::string LaunchTrace::to_string() const {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-24s %8s %8s %10s %6s %10s\n", "launch",
                "blocks", "threads", "smem(KB)", "occ", "time(us)");
  os << line;
  for (const LaunchResult& launch : launches_) {
    std::snprintf(line, sizeof(line), "%-24s %8d %8d %10.1f %6d %10.2f\n",
                  launch.name.c_str(), launch.blocks, launch.threads_per_block,
                  static_cast<double>(launch.scratchpad_per_block) / 1024.0,
                  launch.resident_blocks_per_sm, launch.seconds * 1e6);
    os << line;
  }
  return os.str();
}

}  // namespace speck::sim
