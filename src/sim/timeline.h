// Per-stage time accounting for a simulated SpGEMM execution (drives Fig. 11).
#pragma once

#include <array>
#include <string>

namespace speck::sim {

/// Pipeline stages as reported by the paper's Figure 11.
enum class Stage {
  kAnalysis = 0,
  kSymbolicLoadBalance,
  kSymbolic,
  kNumericLoadBalance,
  kNumeric,
  kSorting,
  kOther,
};

inline constexpr int kStageCount = 7;

const char* stage_name(Stage s);

/// Accumulates simulated seconds per stage.
class StageTimeline {
 public:
  void add(Stage stage, double seconds) {
    seconds_[static_cast<std::size_t>(stage)] += seconds;
  }

  double seconds(Stage stage) const {
    return seconds_[static_cast<std::size_t>(stage)];
  }

  double total_seconds() const {
    double total = 0.0;
    for (const double s : seconds_) total += s;
    return total;
  }

  /// Fraction of the total spent in `stage`; 0 when nothing recorded.
  double share(Stage stage) const {
    const double total = total_seconds();
    return total > 0.0 ? seconds(stage) / total : 0.0;
  }

  std::string to_string() const;

 private:
  std::array<double, kStageCount> seconds_{};
};

}  // namespace speck::sim
