// Simulated GPU device description.
//
// The paper evaluates on an NVIDIA TITAN V (Volta): 80 SMs, 96 KB scratchpad
// per SM with a 48 KB static per-block limit and an opt-in 96 KB dynamic
// limit (which halves occupancy), 1024 threads per block maximum. We model
// those resource limits faithfully because spECK's kernel configurations are
// derived from them (paper §4.2 "Configuration").
#pragma once

#include <cstddef>

namespace speck::sim {

struct DeviceSpec {
  int num_sms = 80;
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  /// Scratchpad ("shared memory") available on one SM.
  std::size_t scratchpad_per_sm = 96 * 1024;
  /// Per-block static scratchpad limit (spECK_STATIC_MEM_PER_BLOCK).
  std::size_t static_scratchpad_per_block = 48 * 1024;
  /// Per-block opt-in dynamic limit (spECK_DYNAMIC_MEM_PER_BLOCK on Volta).
  std::size_t dynamic_scratchpad_per_block = 96 * 1024;
  /// Last-level cache capacity; repeated gathers from a working set that
  /// fits here cost a fraction of a DRAM transaction.
  std::size_t l2_cache_bytes = std::size_t{4608} * 1024;
  /// Relative cost of an L2 hit vs. a DRAM transaction.
  double l2_hit_cost = 0.5;
  /// Core clock; converts modeled cycles into seconds.
  double clock_ghz = 1.2;
  /// Device memory capacity (12 GB on TITAN V); multiplications whose
  /// working set exceeds this are rejected like the paper's OOM failures.
  std::size_t global_memory_bytes = std::size_t{12} * 1024 * 1024 * 1024;
  /// Threads an SM must keep resident for full latency hiding. Below this
  /// the effective throughput of resident blocks degrades.
  int full_throughput_threads = 1024;

  /// The device used throughout the paper's evaluation.
  static DeviceSpec titan_v();

  /// A smaller Pascal-like device (no 96 KB opt-in) used in tests to
  /// exercise the configuration logic under different limits.
  static DeviceSpec pascal_like();

  /// An Ampere-class device: more SMs, a larger scratchpad opt-in (164 KB)
  /// and a bigger L2 — exercises the configuration ladder upwards.
  static DeviceSpec a100_like();
};

/// Average cost factor for transactions against a working set of the given
/// size that is re-read many times (row gathers from B): 1.0 when the set
/// far exceeds the L2, l2_hit_cost when it fits entirely.
double reuse_cache_factor(const DeviceSpec& device, std::size_t working_set_bytes);

}  // namespace speck::sim
