// Execution trace: the sequence of simulated kernel launches of one
// multiplication, with per-launch statistics. Drives runspeck's trace mode
// and the occupancy assertions in the tests.
#pragma once

#include <string>
#include <vector>

#include "sim/launch.h"

namespace speck::sim {

/// Ordered record of every launch in one simulated operation.
class LaunchTrace {
 public:
  void clear() { launches_.clear(); }
  void record(LaunchResult result) { launches_.push_back(std::move(result)); }

  const std::vector<LaunchResult>& launches() const { return launches_; }
  bool empty() const { return launches_.empty(); }

  /// Total blocks across all launches.
  int total_blocks() const;
  /// Sum of launch seconds (>= makespan of any single launch).
  double total_seconds() const;

  /// Multi-line human-readable table.
  std::string to_string() const;

 private:
  std::vector<LaunchResult> launches_;
};

}  // namespace speck::sim
