// Per-block cycle cost accounting.
//
// Kernels in this repository compute exact results on the host while charging
// modeled device cycles to a BlockCost. The convention is:
//
//   * `issued(ops)` takes the number of *issued thread-operations*, i.e.
//     including lanes that are masked out or idle. A group of g threads
//     sweeping a row of length L charges ceil(L/g)*g issued ops — this is
//     what makes load-imbalance visible in the model (paper §3.2, Fig. 13).
//   * memory charges count 128-byte transactions: a coalesced sweep of W
//     contiguous words charges ~W/32 transactions, a scattered access
//     charges one transaction per word (paper's coalescing argument).
//   * scratchpad ops and atomics are charged per operation; hash-probe
//     chains and atomic conflicts charge every probe.
//
// The Launch/scheduler layer (launch.h) converts block totals into seconds
// using SM throughput numbers and occupancy.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bit_utils.h"

namespace speck::sim {

/// Throughput/latency constants. Defaults approximate a Volta-class SM; the
/// exact values only scale absolute times, not the relative behaviour the
/// benchmarks reproduce.
struct CostModel {
  /// Issued thread-operations an SM retires per cycle (4 schedulers x 32).
  double issue_width = 128.0;
  /// Cycles one 128-byte global-memory transaction occupies of an SM's
  /// share of device bandwidth (all SMs saturated).
  double cycles_per_global_transaction = 20.0;
  /// Scratchpad ops an SM services per cycle.
  double smem_ops_per_cycle = 32.0;
  /// Scratchpad atomics serviced per cycle (no conflicts).
  double smem_atomics_per_cycle = 8.0;
  /// Cycles per global-memory atomic.
  double cycles_per_global_atomic = 30.0;
  /// Fixed cycles per block (scheduling, prologue, final sync). Kept low:
  /// prologues of co-resident blocks overlap on a real SM.
  double block_overhead_cycles = 200.0;
  /// Host-side launch overhead per kernel, microseconds.
  double kernel_launch_overhead_us = 4.0;
  /// Fixed host-side overhead per device memory allocation, microseconds.
  double allocation_overhead_us = 8.0;
};

/// Cycle accumulator for one simulated thread block.
class BlockCost {
 public:
  BlockCost(int threads, std::size_t scratchpad_bytes, const CostModel& model)
      : threads_(threads), scratchpad_bytes_(scratchpad_bytes), model_(&model) {}

  int threads() const { return threads_; }
  std::size_t scratchpad_bytes() const { return scratchpad_bytes_; }

  /// Issued thread-operations (including idle lanes), weight = relative
  /// instruction cost of the operation.
  void issued(double ops, double weight = 1.0) {
    cycles_ += ops * weight / model_->issue_width;
  }

  /// A lockstep phase in which the block's slowest group runs `iterations`
  /// sequential steps: every thread occupies an issue slot for all of them.
  void lockstep(double iterations, double weight = 1.0) {
    issued(iterations * threads_, weight);
  }

  /// Coalesced global access of `words` contiguous 32-bit words.
  void global_coalesced(std::size_t words) {
    transactions_ += static_cast<double>(ceil_div<std::size_t>(words * 4, 128));
  }

  /// Coalesced global access of `words` contiguous 64-bit words.
  void global_coalesced64(std::size_t words) {
    transactions_ += static_cast<double>(ceil_div<std::size_t>(words * 8, 128));
  }

  /// Scattered global access: one transaction per word.
  void global_scattered(std::size_t words) {
    transactions_ += static_cast<double>(words);
  }

  /// Global access of `words` 32-bit words spread over `segments` distinct
  /// contiguous regions (e.g. g threads each streaming a different B row).
  /// Each segment boundary costs one extra 32-byte *sector* (a quarter
  /// transaction) — the granularity Volta-class memory systems fetch at.
  /// `cache_factor` discounts gathers from a reused working set that fits
  /// the L2 (see sim::reuse_cache_factor).
  void global_segmented(std::size_t words, std::size_t segments,
                        double cache_factor = 1.0) {
    const std::size_t full = ceil_div<std::size_t>(words * 4, 128);
    transactions_ += cache_factor * (static_cast<double>(full) +
                                     0.25 * static_cast<double>(segments));
  }

  void smem(double ops) { smem_ops_ += ops; }
  void smem_atomic(double ops, double avg_probe_or_conflicts = 1.0) {
    smem_atomic_ops_ += ops * avg_probe_or_conflicts;
  }
  void global_atomic(double ops) { global_atomic_ops_ += ops; }

  /// Total modeled cycles for this block.
  double cycles() const {
    return model_->block_overhead_cycles + cycles_ +
           transactions_ * model_->cycles_per_global_transaction +
           smem_ops_ / model_->smem_ops_per_cycle +
           smem_atomic_ops_ / model_->smem_atomics_per_cycle +
           global_atomic_ops_ * model_->cycles_per_global_atomic;
  }

  double global_transactions() const { return transactions_; }

 private:
  int threads_;
  std::size_t scratchpad_bytes_;
  const CostModel* model_;
  double cycles_ = 0.0;
  double transactions_ = 0.0;
  double smem_ops_ = 0.0;
  double smem_atomic_ops_ = 0.0;
  double global_atomic_ops_ = 0.0;
};

}  // namespace speck::sim
