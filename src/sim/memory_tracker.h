// Device-memory accounting (drives the paper's peak-memory comparisons,
// Table 3 m/m_b rows and Fig. 10).
#pragma once

#include <cstddef>

#include "common/check.h"

namespace speck::sim {

/// Tracks simulated device allocations. Algorithms report every temporary
/// buffer and the output matrix; the tracker records the running peak.
class MemoryTracker {
 public:
  explicit MemoryTracker(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Records an allocation; returns false when the device would be out of
  /// memory (the paper excludes matrices no method can multiply; individual
  /// methods report failure).
  [[nodiscard]] bool allocate(std::size_t bytes) {
    if (current_ + bytes > capacity_) return false;
    current_ += bytes;
    peak_ = current_ > peak_ ? current_ : peak_;
    ++allocation_count_;
    return true;
  }

  void release(std::size_t bytes) {
    SPECK_ASSERT(bytes <= current_, "releasing more device memory than allocated");
    current_ -= bytes;
  }

  std::size_t current_bytes() const { return current_; }
  std::size_t peak_bytes() const { return peak_; }
  std::size_t capacity_bytes() const { return capacity_; }
  int allocation_count() const { return allocation_count_; }

 private:
  std::size_t capacity_;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  int allocation_count_ = 0;
};

/// RAII helper: releases its bytes on destruction.
class ScopedAllocation {
 public:
  ScopedAllocation() = default;
  ScopedAllocation(MemoryTracker& tracker, std::size_t bytes)
      : tracker_(&tracker), bytes_(bytes) {}
  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;
  ScopedAllocation(ScopedAllocation&& other) noexcept { *this = std::move(other); }
  ScopedAllocation& operator=(ScopedAllocation&& other) noexcept {
    reset();
    tracker_ = other.tracker_;
    bytes_ = other.bytes_;
    other.tracker_ = nullptr;
    other.bytes_ = 0;
    return *this;
  }
  ~ScopedAllocation() { reset(); }

  void reset() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemoryTracker* tracker_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace speck::sim
