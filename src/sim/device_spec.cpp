#include "sim/device_spec.h"

#include <algorithm>

namespace speck::sim {

double reuse_cache_factor(const DeviceSpec& device, std::size_t working_set_bytes) {
  const double ratio = static_cast<double>(working_set_bytes) /
                       static_cast<double>(device.l2_cache_bytes);
  return std::clamp(ratio, device.l2_hit_cost, 1.0);
}

DeviceSpec DeviceSpec::titan_v() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::pascal_like() {
  DeviceSpec d;
  d.num_sms = 28;
  d.scratchpad_per_sm = 96 * 1024;
  d.static_scratchpad_per_block = 48 * 1024;
  d.dynamic_scratchpad_per_block = 48 * 1024;  // no Volta opt-in
  d.clock_ghz = 1.4;
  d.global_memory_bytes = std::size_t{11} * 1024 * 1024 * 1024;
  return d;
}

DeviceSpec DeviceSpec::a100_like() {
  DeviceSpec d;
  d.num_sms = 108;
  d.scratchpad_per_sm = 164 * 1024;
  d.static_scratchpad_per_block = 48 * 1024;
  d.dynamic_scratchpad_per_block = 160 * 1024;
  d.l2_cache_bytes = std::size_t{40} * 1024 * 1024;
  d.clock_ghz = 1.41;
  d.global_memory_bytes = std::size_t{40} * 1024 * 1024 * 1024;
  return d;
}

}  // namespace speck::sim
