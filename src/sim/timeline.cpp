#include "sim/timeline.h"

#include <sstream>

namespace speck::sim {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kAnalysis: return "analysis";
    case Stage::kSymbolicLoadBalance: return "symb. load";
    case Stage::kSymbolic: return "symb. SpGEMM";
    case Stage::kNumericLoadBalance: return "num. load";
    case Stage::kNumeric: return "num. SpGEMM";
    case Stage::kSorting: return "sorting";
    case Stage::kOther: return "other";
  }
  return "unknown";
}

std::string StageTimeline::to_string() const {
  std::ostringstream os;
  for (int i = 0; i < kStageCount; ++i) {
    const auto stage = static_cast<Stage>(i);
    if (seconds(stage) <= 0.0) continue;
    os << stage_name(stage) << '=' << seconds(stage) * 1e3 << "ms ";
  }
  return os.str();
}

}  // namespace speck::sim
