// Kernel launch simulation: collects per-block costs and schedules the grid
// onto the device's SMs to obtain a makespan.
#pragma once

#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sim/device_spec.h"

namespace speck::sim {

/// Result of simulating one kernel launch.
struct LaunchResult {
  std::string name;
  int blocks = 0;
  /// Shape of the launch's *first* block. When `heterogeneous` is set the
  /// launch mixed block shapes (spECK merges small rows into shared blocks;
  /// baselines vary); the makespan accounts for every block's own occupancy,
  /// but these three summary fields describe only the first block.
  int threads_per_block = 0;
  std::size_t scratchpad_per_block = 0;
  /// Blocks resident per SM given the resource limits (occupancy).
  int resident_blocks_per_sm = 0;
  /// Fraction of full throughput achieved at that occupancy.
  double efficiency = 1.0;
  /// True when the launch contained blocks of differing shapes.
  bool heterogeneous = false;
  double makespan_cycles = 0.0;
  double seconds = 0.0;  ///< makespan + launch overhead
};

/// Accumulates blocks of one simulated kernel launch. Blocks may use
/// heterogeneous thread counts / scratchpad sizes (spECK merges small rows
/// into shared blocks but still launches per-bin kernels; baselines vary).
class Launch {
 public:
  Launch(std::string name, const DeviceSpec& device, const CostModel& model)
      : name_(std::move(name)), device_(device), model_(model) {}

  const CostModel& model() const { return model_; }
  const DeviceSpec& device() const { return device_; }

  /// Creates a cost accumulator for one block. `threads` must not exceed
  /// the device block limit; `scratchpad_bytes` must fit the dynamic limit.
  BlockCost make_block(int threads, std::size_t scratchpad_bytes) const;

  /// Commits a finished block.
  void add(const BlockCost& block);

  int block_count() const { return static_cast<int>(blocks_.size()); }

  /// Schedules all committed blocks and returns the launch statistics.
  /// An empty launch costs only the kernel launch overhead.
  LaunchResult finish() const;

 private:
  struct BlockRecord {
    double cycles;
    int threads;
    std::size_t scratchpad;
  };

  std::string name_;
  DeviceSpec device_;
  CostModel model_;
  std::vector<BlockRecord> blocks_;
};

/// Occupancy: how many blocks with the given resources fit on one SM.
int blocks_resident_per_sm(const DeviceSpec& device, int threads,
                           std::size_t scratchpad_bytes);

/// Throughput efficiency at the given number of resident threads per SM.
double occupancy_efficiency(const DeviceSpec& device, int resident_threads);

}  // namespace speck::sim
