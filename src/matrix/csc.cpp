#include "matrix/csc.h"

#include "common/checked_math.h"

namespace speck {

Csc::Csc(index_t rows, index_t cols, std::vector<offset_t> col_offsets,
         std::vector<index_t> row_indices, std::vector<value_t> values)
    : rows_(rows),
      cols_(cols),
      col_offsets_(std::move(col_offsets)),
      row_indices_(std::move(row_indices)),
      values_(std::move(values)) {
  validate();
}

void Csc::validate() const {
  SPECK_REQUIRE(rows_ >= 0 && cols_ >= 0, "matrix dimensions must be non-negative");
  SPECK_REQUIRE(col_offsets_.size() ==
                    checked_add<std::size_t>(checked_cast<std::size_t>(cols_), 1),
                "col_offsets must have cols+1 entries");
  SPECK_REQUIRE(row_indices_.size() == values_.size(),
                "row_indices and values must have equal length");
  SPECK_REQUIRE(col_offsets_.front() == 0, "col_offsets must start at 0");
  SPECK_REQUIRE(col_offsets_.back() ==
                    checked_cast<offset_t>(row_indices_.size()),
                "col_offsets must end at nnz");
  for (std::size_t c = 0; c < col_offsets_.size() - 1; ++c) {
    SPECK_REQUIRE(col_offsets_[c] <= col_offsets_[c + 1],
                  "col_offsets must be non-decreasing");
  }
  for (const index_t r : row_indices_) {
    SPECK_REQUIRE(r >= 0 && r < rows_, "row index out of range");
  }
}

Csc csr_to_csc(const Csr& a) {
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.cols()) + 1, 0);
  for (const index_t c : a.col_indices()) ++offsets[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<index_t> rows(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<offset_t> cursor(offsets.begin(), offsets.end() - 1);
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto row_cols = a.row_cols(r);
    const auto row_vals = a.row_vals(r);
    for (std::size_t i = 0; i < row_cols.size(); ++i) {
      const auto slot =
          static_cast<std::size_t>(cursor[static_cast<std::size_t>(row_cols[i])]++);
      rows[slot] = r;
      vals[slot] = row_vals[i];
    }
  }
  return Csc(a.rows(), a.cols(), std::move(offsets), std::move(rows), std::move(vals));
}

Csr csc_to_csr(const Csc& a) {
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (const index_t r : a.row_indices()) ++offsets[static_cast<std::size_t>(r) + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<index_t> cols(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<offset_t> cursor(offsets.begin(), offsets.end() - 1);
  for (index_t c = 0; c < a.cols(); ++c) {
    const auto col_rows = a.col_rows(c);
    const auto col_vals = a.col_vals(c);
    for (std::size_t i = 0; i < col_rows.size(); ++i) {
      const auto slot =
          static_cast<std::size_t>(cursor[static_cast<std::size_t>(col_rows[i])]++);
      cols[slot] = c;
      vals[slot] = col_vals[i];
    }
  }
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols), std::move(vals));
}

}  // namespace speck
