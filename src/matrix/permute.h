// Row/column permutations and bandwidth-reducing reordering.
//
// Matrix ordering controls the NZ locality that spECK's binning exploits
// (paper §4.2: binning keeps neighbouring rows together because "matrices
// often show internal structures"). These utilities let experiments destroy
// (random permutation) or restore (reverse Cuthill-McKee) that locality.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "matrix/csr.h"

namespace speck {

/// permutation[i] = new position of row/column i. Must be a bijection.
using Permutation = std::vector<index_t>;

/// Validates that p is a permutation of [0, n).
bool is_permutation(std::span<const index_t> p);

/// Inverse permutation: result[p[i]] = i.
Permutation invert_permutation(std::span<const index_t> p);

/// Uniformly random permutation of [0, n).
Permutation random_permutation(index_t n, std::uint64_t seed);

/// B[p[i], j] = A[i, j].
Csr permute_rows(const Csr& a, std::span<const index_t> p);

/// B[i, p[j]] = A[i, j] (rows stay sorted).
Csr permute_cols(const Csr& a, std::span<const index_t> p);

/// Symmetric permutation B = P A Pᵀ for square A.
Csr permute_symmetric(const Csr& a, std::span<const index_t> p);

/// Reverse Cuthill-McKee ordering of a square matrix's structure
/// (treated as an undirected graph A|Aᵀ). Returns the permutation that
/// clusters the NZ pattern around the diagonal; components are processed
/// from lowest-degree seed vertices.
Permutation reverse_cuthill_mckee(const Csr& a);

/// Structural bandwidth: max |i - j| over the non-zeros.
index_t bandwidth(const Csr& a);

}  // namespace speck
