// Compressed Sparse Row matrix container.
//
// CSR is the input/output format of the paper: values and column indices
// stored row-major / column-minor, with a row-offsets array of size rows+1.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace speck {

/// Owning CSR matrix. Column indices within a row are sorted ascending
/// (the CSR specification the paper holds all methods to, and the property
/// KokkosKernels-like baselines are allowed to violate for their output).
class Csr {
 public:
  Csr() : row_offsets_(1, 0) {}

  /// Takes ownership of pre-built arrays. Validates structure:
  /// offsets monotone, indices in range. Sortedness is NOT required here;
  /// use `sorted_within_rows()` / `sort_rows()` as needed.
  Csr(index_t rows, index_t cols, std::vector<offset_t> row_offsets,
      std::vector<index_t> col_indices, std::vector<value_t> values);

  /// Empty matrix of the given shape (no non-zeros).
  static Csr zeros(index_t rows, index_t cols);

  /// Identity matrix of size n.
  static Csr identity(index_t n);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const { return static_cast<offset_t>(col_indices_.size()); }

  std::span<const offset_t> row_offsets() const { return row_offsets_; }
  std::span<const index_t> col_indices() const { return col_indices_; }
  std::span<const value_t> values() const { return values_; }

  std::span<index_t> col_indices_mutable() { return col_indices_; }
  std::span<value_t> values_mutable() { return values_; }

  /// Length of row r.
  index_t row_length(index_t r) const {
    return static_cast<index_t>(row_offsets_[static_cast<std::size_t>(r) + 1] -
                                row_offsets_[static_cast<std::size_t>(r)]);
  }

  /// Column indices of row r.
  std::span<const index_t> row_cols(index_t r) const {
    return std::span<const index_t>(col_indices_)
        .subspan(static_cast<std::size_t>(row_offsets_[static_cast<std::size_t>(r)]),
                 static_cast<std::size_t>(row_length(r)));
  }

  /// Values of row r.
  std::span<const value_t> row_vals(index_t r) const {
    return std::span<const value_t>(values_)
        .subspan(static_cast<std::size_t>(row_offsets_[static_cast<std::size_t>(r)]),
                 static_cast<std::size_t>(row_length(r)));
  }

  /// Re-checks every structural invariant (offsets monotone and consistent
  /// with nnz, column indices in range). The constructor establishes these;
  /// this re-validates matrices whose arrays were mutated afterwards
  /// (col_indices_mutable) or that cross an API boundary with
  /// `SpeckConfig::validate_inputs` on. Throws BadInput on violation.
  void validate() const;

  /// True if every row's column indices are strictly increasing.
  bool sorted_within_rows() const;

  /// Sorts every row by column index (stable w.r.t. values). Duplicate
  /// column indices within a row are NOT merged; see `coalesced()`.
  void sort_rows();

  /// True if sorted and free of duplicate column indices within each row.
  bool coalesced() const;

  /// Bytes consumed by the three arrays (as they would be on the device).
  std::size_t byte_size() const {
    return row_offsets_.size() * sizeof(offset_t) +
           col_indices_.size() * sizeof(index_t) + values_.size() * sizeof(value_t);
  }

  /// Human-readable one-line description, e.g. "4096x4096, nnz=81920".
  std::string shape_string() const;

  /// Moves the backing arrays out into the given vectors (replacing their
  /// contents) and resets *this to an empty 0x0 matrix. Lets a caller that
  /// only needs the arrays (e.g. a plan capturing the C pattern of a result
  /// the caller discards) take them without the O(nnz) copy.
  void take_arrays(std::vector<offset_t>& row_offsets,
                   std::vector<index_t>& col_indices,
                   std::vector<value_t>& values) {
    row_offsets = std::move(row_offsets_);
    col_indices = std::move(col_indices_);
    values = std::move(values_);
    rows_ = 0;
    cols_ = 0;
    row_offsets_.assign(1, 0);
    col_indices_.clear();
    values_.clear();
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> row_offsets_;
  std::vector<index_t> col_indices_;
  std::vector<value_t> values_;
};

}  // namespace speck
