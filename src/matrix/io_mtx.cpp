#include "matrix/io_mtx.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "matrix/coo.h"

namespace speck {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  SPECK_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty matrix market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  SPECK_REQUIRE(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  SPECK_REQUIRE(lower(object) == "matrix", "only 'matrix' objects supported");
  SPECK_REQUIRE(lower(format) == "coordinate", "only coordinate format supported");
  field = lower(field);
  symmetry = lower(symmetry);
  SPECK_REQUIRE(field == "real" || field == "integer" || field == "pattern",
                "unsupported field type: " + field);
  SPECK_REQUIRE(symmetry == "general" || symmetry == "symmetric" ||
                    symmetry == "skew-symmetric",
                "unsupported symmetry: " + symmetry);

  // Skip comments.
  do {
    SPECK_REQUIRE(static_cast<bool>(std::getline(in, line)), "truncated matrix market file");
  } while (!line.empty() && line[0] == '%');

  std::istringstream size_line(line);
  long long rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  SPECK_REQUIRE(rows >= 0 && cols >= 0 && entries >= 0, "bad size line");

  Coo coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.reserve(static_cast<std::size_t>(entries) * (symmetry == "general" ? 1 : 2));
  const bool pattern = field == "pattern";
  for (long long i = 0; i < entries; ++i) {
    SPECK_REQUIRE(static_cast<bool>(std::getline(in, line)), "truncated entry list");
    std::istringstream entry(line);
    long long r = 0, c = 0;
    double v = 1.0;
    entry >> r >> c;
    if (!pattern) entry >> v;
    SPECK_REQUIRE(r >= 1 && r <= rows && c >= 1 && c <= cols, "entry out of range");
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    coo.add(ri, ci, v);
    if (symmetry != "general" && ri != ci) {
      coo.add(ci, ri, symmetry == "skew-symmetric" ? -v : v);
    }
  }
  return coo.to_csr();
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  SPECK_REQUIRE(in.good(), "cannot open matrix market file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (index_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    const auto vals = m.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      out << (r + 1) << ' ' << (cols[i] + 1) << ' ' << vals[i] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr& m) {
  std::ofstream out(path);
  SPECK_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, m);
}

}  // namespace speck
