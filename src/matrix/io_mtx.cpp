#include "matrix/io_mtx.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <unordered_set>
#include <vector>

#include "common/checked_math.h"
#include "matrix/coo.h"

namespace speck {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Tracks the source name and current line so every rejection carries
/// "<source>:<line>" context.
struct LineReader {
  std::istream& in;
  const std::string& source;
  long line_number = 0;

  bool next(std::string& line) {
    if (!std::getline(in, line)) return false;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    return true;
  }

  std::string context() const {
    return source + ":" + std::to_string(line_number);
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw BadInput(context() + ": " + msg, context());
  }
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    const std::size_t begin = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

bool blank(const std::string& line) { return tokenize(line).empty(); }

/// Strict integer parse: the whole token must be a decimal integer.
long long parse_integer(const LineReader& reader, const std::string& token,
                        const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    reader.fail(std::string(what) + " '" + token + "' is not an integer");
  }
  if (errno == ERANGE) {
    reader.fail(std::string(what) + " '" + token + "' is out of range");
  }
  return value;
}

/// Strict value parse: the whole token must be a finite number (the MM
/// real/integer fields; NaN/Inf would silently poison every accumulation).
double parse_value(const LineReader& reader, const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    reader.fail("value '" + token + "' is not a number");
  }
  if (!std::isfinite(value)) {
    reader.fail("value '" + token + "' is not finite");
  }
  return value;
}

}  // namespace

Csr read_matrix_market(std::istream& in, const MtxOptions& options,
                       const std::string& source_name) {
  LineReader reader{in, source_name};
  std::string line;

  // Banner: "%%MatrixMarket object format field symmetry", nothing after.
  if (!reader.next(line)) reader.fail("empty matrix market stream");
  const std::vector<std::string> banner = tokenize(line);
  if (banner.size() != 5 || banner[0] != "%%MatrixMarket") {
    reader.fail("missing or malformed %%MatrixMarket banner");
  }
  if (lower(banner[1]) != "matrix") reader.fail("only 'matrix' objects supported");
  if (lower(banner[2]) != "coordinate") {
    reader.fail("only coordinate format supported");
  }
  const std::string field = lower(banner[3]);
  const std::string symmetry = lower(banner[4]);
  if (field != "real" && field != "integer" && field != "pattern") {
    reader.fail("unsupported field type: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric" &&
      symmetry != "skew-symmetric") {
    reader.fail("unsupported symmetry: " + symmetry);
  }

  // Comments (and blank lines) up to the size line.
  do {
    if (!reader.next(line)) reader.fail("truncated file: missing size line");
  } while ((!line.empty() && line[0] == '%') || blank(line));

  // Size line: exactly "rows cols entries", all non-negative, in index range.
  const std::vector<std::string> size_tokens = tokenize(line);
  if (size_tokens.size() != 3) {
    reader.fail("size line must be 'rows cols entries'");
  }
  const long long rows_ll = parse_integer(reader, size_tokens[0], "row count");
  const long long cols_ll = parse_integer(reader, size_tokens[1], "column count");
  const long long entries = parse_integer(reader, size_tokens[2], "entry count");
  if (rows_ll < 0 || cols_ll < 0 || entries < 0) {
    reader.fail("size line values must be non-negative");
  }
  index_t rows = 0;
  index_t cols = 0;
  try {
    rows = checked_cast<index_t>(rows_ll);
    cols = checked_cast<index_t>(cols_ll);
  } catch (const BadInput&) {
    reader.fail("matrix dimensions exceed the supported index range");
  }

  Coo coo(rows, cols);
  // Mirrored symmetric entries can double the count; checked so a huge
  // `entries` claim cannot wrap the reservation size. The reservation itself
  // is clamped: it is only a hint, and a lying size line must not be able to
  // force a giant up-front allocation (a truncated entry list is rejected
  // with BadInput after the lines that do exist are consumed).
  constexpr std::size_t kMaxReserve = std::size_t{1} << 20;
  try {
    coo.reserve(std::min(
        kMaxReserve, checked_mul<std::size_t>(static_cast<std::size_t>(entries),
                                              symmetry == "general" ? 1 : 2)));
  } catch (const ResourceExhausted&) {
    reader.fail("entry count overflows the addressable size");
  }

  const bool pattern = field == "pattern";
  const bool check_duplicates =
      options.duplicates == MtxOptions::DuplicatePolicy::kError;
  std::unordered_set<std::uint64_t> seen;
  if (check_duplicates) {
    seen.reserve(std::min(kMaxReserve, static_cast<std::size_t>(entries)));
  }

  for (long long i = 0; i < entries; ++i) {
    if (!reader.next(line)) {
      reader.fail("truncated entry list: expected " + std::to_string(entries) +
                  " entries, got " + std::to_string(i));
    }
    const std::vector<std::string> tokens = tokenize(line);
    const std::size_t expected = pattern ? 2 : 3;
    if (tokens.size() != expected) {
      reader.fail("entry line must have " + std::to_string(expected) +
                  " fields, got " + std::to_string(tokens.size()));
    }
    const long long r = parse_integer(reader, tokens[0], "row index");
    const long long c = parse_integer(reader, tokens[1], "column index");
    const double v = pattern ? 1.0 : parse_value(reader, tokens[2]);
    if (r < 1 || r > rows_ll) {
      reader.fail("row index " + std::to_string(r) + " outside [1, " +
                  std::to_string(rows_ll) + "]");
    }
    if (c < 1 || c > cols_ll) {
      reader.fail("column index " + std::to_string(c) + " outside [1, " +
                  std::to_string(cols_ll) + "]");
    }
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    if (check_duplicates &&
        !seen.insert((static_cast<std::uint64_t>(static_cast<std::uint32_t>(ri))
                      << 32) |
                     static_cast<std::uint32_t>(ci))
             .second) {
      reader.fail("duplicate entry (" + std::to_string(r) + ", " +
                  std::to_string(c) + ")");
    }
    coo.add(ri, ci, v);
    if (symmetry != "general" && ri != ci) {
      coo.add(ci, ri, symmetry == "skew-symmetric" ? -v : v);
    }
  }

  // Anything but blank lines after the declared entries means the size line
  // lied about the count — reject rather than silently drop data.
  while (reader.next(line)) {
    if (!blank(line)) {
      reader.fail("unexpected content after the declared " +
                  std::to_string(entries) + " entries");
    }
  }
  return coo.to_csr();
}

Csr read_matrix_market(std::istream& in) {
  return read_matrix_market(in, MtxOptions{});
}

Csr read_matrix_market_file(const std::string& path, const MtxOptions& options) {
  std::ifstream in(path);
  SPECK_REQUIRE(in.good(), "cannot open matrix market file: " + path);
  return read_matrix_market(in, options, path);
}

void write_matrix_market(std::ostream& out, const Csr& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (index_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    const auto vals = m.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      out << (r + 1) << ' ' << (cols[i] + 1) << ' ' << vals[i] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr& m) {
  std::ofstream out(path);
  SPECK_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, m);
}

}  // namespace speck
