// Offline matrix statistics used by the corpus builder and benchmark tables
// (Table 4). These are *host-side* diagnostics; the device-side lightweight
// row analysis lives in speck/row_analysis.h.
#pragma once

#include <string>

#include "common/stats.h"
#include "matrix/csr.h"

namespace speck {

struct MatrixStats {
  index_t rows = 0;
  index_t cols = 0;
  offset_t nnz = 0;
  SampleSummary row_lengths;     ///< NNZ per row distribution
  offset_t products = 0;         ///< intermediate products of A*A (or A*Bᵀ)
  double avg_row_length = 0.0;
};

/// Statistics of a single matrix.
MatrixStats analyze_matrix(const Csr& a);

/// Number of intermediate products of the multiplication a*b
/// (sum over nz(A) of the referenced B row length).
offset_t count_products(const Csr& a, const Csr& b);

/// ASCII "spy plot" of the non-zero pattern on a grid of the given size;
/// used to regenerate Figure 8 in text form.
std::string ascii_spy(const Csr& a, int grid = 32);

}  // namespace speck
