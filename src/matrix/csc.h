// Compressed Sparse Column matrix. Needed by column-driven algorithms
// (outer-product SpGEMM) and useful as a transpose-free column view.
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.h"

namespace speck {

/// Owning CSC matrix: values stored column-major, row indices sorted within
/// each column.
class Csc {
 public:
  Csc() : col_offsets_(1, 0) {}

  Csc(index_t rows, index_t cols, std::vector<offset_t> col_offsets,
      std::vector<index_t> row_indices, std::vector<value_t> values);

  /// Re-checks every structural invariant (offsets monotone and consistent
  /// with nnz, row indices in range). Throws BadInput on violation.
  void validate() const;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const { return static_cast<offset_t>(row_indices_.size()); }

  std::span<const offset_t> col_offsets() const { return col_offsets_; }
  std::span<const index_t> row_indices() const { return row_indices_; }
  std::span<const value_t> values() const { return values_; }

  index_t col_length(index_t c) const {
    return static_cast<index_t>(col_offsets_[static_cast<std::size_t>(c) + 1] -
                                col_offsets_[static_cast<std::size_t>(c)]);
  }
  std::span<const index_t> col_rows(index_t c) const {
    return std::span<const index_t>(row_indices_)
        .subspan(static_cast<std::size_t>(col_offsets_[static_cast<std::size_t>(c)]),
                 static_cast<std::size_t>(col_length(c)));
  }
  std::span<const value_t> col_vals(index_t c) const {
    return std::span<const value_t>(values_)
        .subspan(static_cast<std::size_t>(col_offsets_[static_cast<std::size_t>(c)]),
                 static_cast<std::size_t>(col_length(c)));
  }

  std::size_t byte_size() const {
    return col_offsets_.size() * sizeof(offset_t) +
           row_indices_.size() * sizeof(index_t) + values_.size() * sizeof(value_t);
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> col_offsets_;
  std::vector<index_t> row_indices_;
  std::vector<value_t> values_;
};

/// O(nnz) format conversions. Round-trip exact.
Csc csr_to_csc(const Csr& a);
Csr csc_to_csr(const Csc& a);

}  // namespace speck
