// Matrix Market (.mtx) reader/writer.
//
// The paper's artifact ships an .mtx reader for SuiteSparse inputs; we provide
// the same so real matrices can be dropped in when available, while the
// synthetic corpus covers offline runs.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csr.h"

namespace speck {

/// Reads a Matrix Market file. Supports:
///   * coordinate format, real / integer / pattern fields
///   * general / symmetric / skew-symmetric symmetry
/// Pattern entries get value 1.0. Symmetric entries are mirrored.
/// Throws InvalidArgument on malformed input.
Csr read_matrix_market(std::istream& in);
Csr read_matrix_market_file(const std::string& path);

/// Writes coordinate/real/general Matrix Market.
void write_matrix_market(std::ostream& out, const Csr& m);
void write_matrix_market_file(const std::string& path, const Csr& m);

}  // namespace speck
