// Matrix Market (.mtx) reader/writer.
//
// The paper's artifact ships an .mtx reader for SuiteSparse inputs; we provide
// the same so real matrices can be dropped in when available, while the
// synthetic corpus covers offline runs.
//
// The reader is hardened for untrusted input: every banner/size/entry line is
// strictly validated (token counts, integer ranges, NaN/Inf values, truncated
// files) and violations throw BadInput carrying "<source>:<line>" context —
// never UB or a silent wrong matrix. tools/fuzz_mtx drives it with mutated
// inputs; tests/data/mtx holds the malformed seed corpus.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csr.h"

namespace speck {

/// Reader policy knobs.
struct MtxOptions {
  /// What to do when a file lists the same (row, col) coordinate twice.
  /// kSum is the conventional lenient policy (duplicates accumulate);
  /// kError rejects the file — what the fuzz corpus tests use.
  enum class DuplicatePolicy { kSum, kError };
  DuplicatePolicy duplicates = DuplicatePolicy::kSum;
};

/// Reads a Matrix Market stream. Supports:
///   * coordinate format, real / integer / pattern fields
///   * general / symmetric / skew-symmetric symmetry
/// Pattern entries get value 1.0. Symmetric entries are mirrored.
/// Throws BadInput on malformed input, with `source_name`:<line> context.
Csr read_matrix_market(std::istream& in, const MtxOptions& options,
                       const std::string& source_name = "<mtx>");
Csr read_matrix_market(std::istream& in);
Csr read_matrix_market_file(const std::string& path,
                            const MtxOptions& options = {});

/// Writes coordinate/real/general Matrix Market.
void write_matrix_market(std::ostream& out, const Csr& m);
void write_matrix_market_file(const std::string& path, const Csr& m);

}  // namespace speck
