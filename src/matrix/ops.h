// Structural operations on CSR matrices: transpose, comparison, conversion.
#pragma once

#include <optional>
#include <string>

#include "matrix/csr.h"

namespace speck {

/// Transpose. O(nnz). Output rows are sorted by construction.
Csr transpose(const Csr& a);

/// Result of comparing two CSR matrices.
struct CsrDifference {
  std::string description;  ///< first detected mismatch, human-readable
};

/// Compares structure exactly and values within `tolerance` (relative to
/// the larger magnitude, with an absolute floor). Both inputs must be
/// sorted within rows. Returns nullopt when equal.
std::optional<CsrDifference> compare(const Csr& a, const Csr& b,
                                     double tolerance = 1e-9);

/// Extracts the dense form (row-major). Only for small matrices in tests.
std::vector<value_t> to_dense(const Csr& a);

/// Builds a CSR from a dense row-major array, dropping exact zeros.
Csr from_dense(index_t rows, index_t cols, std::span<const value_t> dense);

/// Scales all values by s (returns a copy).
Csr scaled(const Csr& a, value_t s);

}  // namespace speck
