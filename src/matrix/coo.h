// Coordinate-format triplet builder; the assembly format for generators and
// the Matrix Market reader.
#pragma once

#include <vector>

#include "common/types.h"
#include "matrix/csr.h"

namespace speck {

/// Mutable triplet list. Duplicates allowed until `to_csr` merges them.
class Coo {
 public:
  Coo(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    SPECK_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t entry_count() const { return row_ids_.size(); }

  void reserve(std::size_t n) {
    row_ids_.reserve(n);
    col_ids_.reserve(n);
    values_.reserve(n);
  }

  /// Appends one entry. Bounds-checked.
  void add(index_t row, index_t col, value_t value);

  /// Re-checks every entry against the matrix shape (add() enforces this
  /// incrementally; validate() covers triplets that arrive wholesale, e.g.
  /// via future bulk setters) and the parallel-array lengths. Throws
  /// BadInput on violation.
  void validate() const;

  /// Converts to CSR: sorts by (row, col) and sums duplicate coordinates.
  Csr to_csr() const;

 private:
  index_t rows_;
  index_t cols_;
  std::vector<index_t> row_ids_;
  std::vector<index_t> col_ids_;
  std::vector<value_t> values_;
};

}  // namespace speck
