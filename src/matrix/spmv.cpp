#include "matrix/spmv.h"

namespace speck {

std::vector<value_t> spmv(const Csr& a, std::span<const value_t> x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0);
  spmv(a, x, 1.0, 0.0, y);
  return y;
}

void spmv(const Csr& a, std::span<const value_t> x, value_t alpha, value_t beta,
          std::span<value_t> y) {
  SPECK_REQUIRE(x.size() == static_cast<std::size_t>(a.cols()),
                "x must have cols(A) entries");
  SPECK_REQUIRE(y.size() == static_cast<std::size_t>(a.rows()),
                "y must have rows(A) entries");
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    value_t dot = 0.0;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      dot += vals[i] * x[static_cast<std::size_t>(cols[i])];
    }
    y[static_cast<std::size_t>(r)] = alpha * dot + beta * y[static_cast<std::size_t>(r)];
  }
}

}  // namespace speck
