#include "matrix/ops.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/checked_math.h"
#include "matrix/coo.h"

namespace speck {

Csr transpose(const Csr& a) {
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.cols()) + 1, 0);
  for (const index_t c : a.col_indices()) ++offsets[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<index_t> cols(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<offset_t> cursor(offsets.begin(), offsets.end() - 1);
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto row_cols = a.row_cols(r);
    const auto row_vals = a.row_vals(r);
    for (std::size_t i = 0; i < row_cols.size(); ++i) {
      const auto slot = static_cast<std::size_t>(cursor[static_cast<std::size_t>(row_cols[i])]++);
      cols[slot] = r;
      vals[slot] = row_vals[i];
    }
  }
  return Csr(a.cols(), a.rows(), std::move(offsets), std::move(cols), std::move(vals));
}

std::optional<CsrDifference> compare(const Csr& a, const Csr& b, double tolerance) {
  std::ostringstream os;
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    os << "shape mismatch: " << a.shape_string() << " vs " << b.shape_string();
    return CsrDifference{os.str()};
  }
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto ac = a.row_cols(r);
    const auto bc = b.row_cols(r);
    if (ac.size() != bc.size()) {
      os << "row " << r << " length mismatch: " << ac.size() << " vs " << bc.size();
      return CsrDifference{os.str()};
    }
    const auto av = a.row_vals(r);
    const auto bv = b.row_vals(r);
    for (std::size_t i = 0; i < ac.size(); ++i) {
      if (ac[i] != bc[i]) {
        os << "row " << r << " entry " << i << " column mismatch: " << ac[i] << " vs "
           << bc[i];
        return CsrDifference{os.str()};
      }
      const double scale = std::max({std::abs(av[i]), std::abs(bv[i]), 1.0});
      if (std::abs(av[i] - bv[i]) > tolerance * scale) {
        os << "row " << r << " col " << ac[i] << " value mismatch: " << av[i] << " vs "
           << bv[i];
        return CsrDifference{os.str()};
      }
    }
  }
  return std::nullopt;
}

std::vector<value_t> to_dense(const Csr& a) {
  // rows*cols is quadratic in user input; checked so a huge sparse shape
  // raises ResourceExhausted instead of wrapping the allocation size.
  std::vector<value_t> dense(checked_mul(checked_cast<std::size_t>(a.rows()),
                                         checked_cast<std::size_t>(a.cols())),
                             0.0);
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      dense[static_cast<std::size_t>(r) * static_cast<std::size_t>(a.cols()) +
            static_cast<std::size_t>(cols[i])] += vals[i];
    }
  }
  return dense;
}

Csr from_dense(index_t rows, index_t cols, std::span<const value_t> dense) {
  SPECK_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  SPECK_REQUIRE(dense.size() == checked_mul(checked_cast<std::size_t>(rows),
                                            checked_cast<std::size_t>(cols)),
                "dense array size must equal rows*cols");
  Coo coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      const value_t v =
          dense[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(c)];
      if (v != 0.0) coo.add(r, c, v);
    }
  }
  return coo.to_csr();
}

Csr scaled(const Csr& a, value_t s) {
  std::vector<offset_t> offsets(a.row_offsets().begin(), a.row_offsets().end());
  std::vector<index_t> cols(a.col_indices().begin(), a.col_indices().end());
  std::vector<value_t> vals(a.values().begin(), a.values().end());
  for (auto& v : vals) v *= s;
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols), std::move(vals));
}

}  // namespace speck
