#include "matrix/matrix_stats.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace speck {

offset_t count_products(const Csr& a, const Csr& b) {
  SPECK_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  offset_t products = 0;
  const auto b_offsets = b.row_offsets();
  for (const index_t k : a.col_indices()) {
    products += b_offsets[static_cast<std::size_t>(k) + 1] -
                b_offsets[static_cast<std::size_t>(k)];
  }
  return products;
}

MatrixStats analyze_matrix(const Csr& a) {
  MatrixStats s;
  s.rows = a.rows();
  s.cols = a.cols();
  s.nnz = a.nnz();
  std::vector<std::int64_t> lengths(static_cast<std::size_t>(a.rows()));
  for (index_t r = 0; r < a.rows(); ++r) lengths[static_cast<std::size_t>(r)] = a.row_length(r);
  s.row_lengths = summarize(std::span<const std::int64_t>(lengths));
  s.avg_row_length = s.row_lengths.mean;
  if (a.rows() == a.cols()) {
    s.products = count_products(a, a);
  }
  return s;
}

std::string ascii_spy(const Csr& a, int grid) {
  SPECK_REQUIRE(grid > 0, "grid must be positive");
  const int h = std::min<index_t>(grid, std::max<index_t>(a.rows(), 1));
  const int w = std::min<index_t>(grid, std::max<index_t>(a.cols(), 1));
  std::vector<int> cells(static_cast<std::size_t>(h) * static_cast<std::size_t>(w), 0);
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto gr = static_cast<std::size_t>(
        static_cast<std::int64_t>(r) * h / std::max<index_t>(a.rows(), 1));
    for (const index_t c : a.row_cols(r)) {
      const auto gc = static_cast<std::size_t>(
          static_cast<std::int64_t>(c) * w / std::max<index_t>(a.cols(), 1));
      ++cells[gr * static_cast<std::size_t>(w) + gc];
    }
  }
  const int max_count = *std::max_element(cells.begin(), cells.end());
  static constexpr char kShades[] = " .:-=+*#%@";
  std::ostringstream os;
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      const int v = cells[static_cast<std::size_t>(r) * static_cast<std::size_t>(w) +
                          static_cast<std::size_t>(c)];
      const int shade =
          max_count == 0 ? 0 : 1 + v * 8 / std::max(max_count, 1);
      os << kShades[v == 0 ? 0 : std::min(shade, 9)];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace speck
