#include "matrix/coo.h"

#include <algorithm>
#include <numeric>

#include "common/checked_math.h"

namespace speck {

void Coo::add(index_t row, index_t col, value_t value) {
  SPECK_REQUIRE(row >= 0 && row < rows_, "COO row index out of range");
  SPECK_REQUIRE(col >= 0 && col < cols_, "COO column index out of range");
  row_ids_.push_back(row);
  col_ids_.push_back(col);
  values_.push_back(value);
}

void Coo::validate() const {
  SPECK_REQUIRE(row_ids_.size() == col_ids_.size() &&
                    col_ids_.size() == values_.size(),
                "COO parallel arrays must have equal length");
  for (const index_t r : row_ids_) {
    SPECK_REQUIRE(r >= 0 && r < rows_, "COO row index out of range");
  }
  for (const index_t c : col_ids_) {
    SPECK_REQUIRE(c >= 0 && c < cols_, "COO column index out of range");
  }
}

Csr Coo::to_csr() const {
  const std::size_t n = row_ids_.size();
  // rows_ + 1 offsets; checked so a pathological shape cannot wrap the
  // allocation size on its way in from user-controlled headers.
  const std::size_t offset_count =
      checked_add<std::size_t>(checked_cast<std::size_t>(rows_), 1);
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (row_ids_[a] != row_ids_[b]) return row_ids_[a] < row_ids_[b];
    return col_ids_[a] < col_ids_[b];
  });

  std::vector<offset_t> offsets(offset_count, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  cols.reserve(n);
  vals.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = perm[i];
    if (!cols.empty() && !vals.empty() && i > 0) {
      const std::size_t prev = perm[i - 1];
      if (row_ids_[p] == row_ids_[prev] && col_ids_[p] == col_ids_[prev]) {
        vals.back() += values_[p];  // merge duplicate coordinate
        continue;
      }
    }
    cols.push_back(col_ids_[p]);
    vals.push_back(values_[p]);
    ++offsets[static_cast<std::size_t>(row_ids_[p]) + 1];
  }
  for (std::size_t r = 1; r < offsets.size(); ++r) offsets[r] += offsets[r - 1];
  return Csr(rows_, cols_, std::move(offsets), std::move(cols), std::move(vals));
}

}  // namespace speck
