#include "matrix/coo.h"

#include <algorithm>
#include <numeric>

namespace speck {

void Coo::add(index_t row, index_t col, value_t value) {
  SPECK_REQUIRE(row >= 0 && row < rows_, "COO row index out of range");
  SPECK_REQUIRE(col >= 0 && col < cols_, "COO column index out of range");
  row_ids_.push_back(row);
  col_ids_.push_back(col);
  values_.push_back(value);
}

Csr Coo::to_csr() const {
  const std::size_t n = row_ids_.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (row_ids_[a] != row_ids_[b]) return row_ids_[a] < row_ids_[b];
    return col_ids_[a] < col_ids_[b];
  });

  std::vector<offset_t> offsets(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  cols.reserve(n);
  vals.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = perm[i];
    if (!cols.empty() && !vals.empty() && i > 0) {
      const std::size_t prev = perm[i - 1];
      if (row_ids_[p] == row_ids_[prev] && col_ids_[p] == col_ids_[prev]) {
        vals.back() += values_[p];  // merge duplicate coordinate
        continue;
      }
    }
    cols.push_back(col_ids_[p]);
    vals.push_back(values_[p]);
    ++offsets[static_cast<std::size_t>(row_ids_[p]) + 1];
  }
  for (std::size_t r = 1; r < offsets.size(); ++r) offsets[r] += offsets[r - 1];
  return Csr(rows_, cols_, std::move(offsets), std::move(cols), std::move(vals));
}

}  // namespace speck
