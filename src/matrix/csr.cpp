#include "matrix/csr.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/checked_math.h"

namespace speck {

Csr::Csr(index_t rows, index_t cols, std::vector<offset_t> row_offsets,
         std::vector<index_t> col_indices, std::vector<value_t> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_indices_(std::move(col_indices)),
      values_(std::move(values)) {
  validate();
}

void Csr::validate() const {
  SPECK_REQUIRE(rows_ >= 0 && cols_ >= 0, "matrix dimensions must be non-negative");
  SPECK_REQUIRE(row_offsets_.size() ==
                    checked_add<std::size_t>(checked_cast<std::size_t>(rows_), 1),
                "row_offsets must have rows+1 entries");
  SPECK_REQUIRE(col_indices_.size() == values_.size(),
                "col_indices and values must have equal length");
  SPECK_REQUIRE(row_offsets_.front() == 0, "row_offsets must start at 0");
  SPECK_REQUIRE(row_offsets_.back() ==
                    checked_cast<offset_t>(col_indices_.size()),
                "row_offsets must end at nnz");
  for (std::size_t r = 0; r < row_offsets_.size() - 1; ++r) {
    SPECK_REQUIRE(row_offsets_[r] <= row_offsets_[r + 1],
                  "row_offsets must be non-decreasing");
  }
  for (const index_t c : col_indices_) {
    SPECK_REQUIRE(c >= 0 && c < cols_, "column index out of range");
  }
}

Csr Csr::zeros(index_t rows, index_t cols) {
  return Csr(rows, cols, std::vector<offset_t>(static_cast<std::size_t>(rows) + 1, 0),
             {}, {});
}

Csr Csr::identity(index_t n) {
  std::vector<offset_t> offsets(static_cast<std::size_t>(n) + 1);
  std::iota(offsets.begin(), offsets.end(), offset_t{0});
  std::vector<index_t> cols(static_cast<std::size_t>(n));
  std::iota(cols.begin(), cols.end(), index_t{0});
  std::vector<value_t> vals(static_cast<std::size_t>(n), 1.0);
  return Csr(n, n, std::move(offsets), std::move(cols), std::move(vals));
}

bool Csr::sorted_within_rows() const {
  for (index_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    for (std::size_t i = 1; i < cols.size(); ++i) {
      if (cols[i] <= cols[i - 1]) return false;
    }
  }
  return true;
}

void Csr::sort_rows() {
  std::vector<std::size_t> perm;
  for (index_t r = 0; r < rows_; ++r) {
    const auto begin = static_cast<std::size_t>(row_offsets_[static_cast<std::size_t>(r)]);
    const auto len = static_cast<std::size_t>(row_length(r));
    if (len < 2) continue;
    perm.resize(len);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return col_indices_[begin + a] < col_indices_[begin + b];
    });
    std::vector<index_t> sorted_cols(len);
    std::vector<value_t> sorted_vals(len);
    for (std::size_t i = 0; i < len; ++i) {
      sorted_cols[i] = col_indices_[begin + perm[i]];
      sorted_vals[i] = values_[begin + perm[i]];
    }
    std::copy(sorted_cols.begin(), sorted_cols.end(), col_indices_.begin() + begin);
    std::copy(sorted_vals.begin(), sorted_vals.end(), values_.begin() + begin);
  }
}

bool Csr::coalesced() const {
  for (index_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    for (std::size_t i = 1; i < cols.size(); ++i) {
      if (cols[i] <= cols[i - 1]) return false;
    }
  }
  return true;
}

std::string Csr::shape_string() const {
  std::ostringstream os;
  os << rows_ << 'x' << cols_ << ", nnz=" << nnz();
  return os.str();
}

}  // namespace speck
