#include "matrix/permute.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/prng.h"
#include "matrix/coo.h"
#include "matrix/ops.h"

namespace speck {

bool is_permutation(std::span<const index_t> p) {
  std::vector<bool> seen(p.size(), false);
  for (const index_t v : p) {
    if (v < 0 || static_cast<std::size_t>(v) >= p.size() ||
        seen[static_cast<std::size_t>(v)]) {
      return false;
    }
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

Permutation invert_permutation(std::span<const index_t> p) {
  SPECK_REQUIRE(is_permutation(p), "input is not a permutation");
  Permutation inverse(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    inverse[static_cast<std::size_t>(p[i])] = static_cast<index_t>(i);
  }
  return inverse;
}

Permutation random_permutation(index_t n, std::uint64_t seed) {
  Permutation p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  Xoshiro256 rng(seed);
  for (std::size_t i = p.size(); i > 1; --i) {
    std::swap(p[i - 1], p[rng.next_below(i)]);
  }
  return p;
}

Csr permute_rows(const Csr& a, std::span<const index_t> p) {
  SPECK_REQUIRE(p.size() == static_cast<std::size_t>(a.rows()),
                "permutation size must equal rows");
  SPECK_REQUIRE(is_permutation(p), "input is not a permutation");
  const Permutation inverse = invert_permutation(p);
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> cols;
  cols.reserve(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vals;
  vals.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t new_row = 0; new_row < a.rows(); ++new_row) {
    const index_t old_row = inverse[static_cast<std::size_t>(new_row)];
    const auto row_cols = a.row_cols(old_row);
    const auto row_vals = a.row_vals(old_row);
    cols.insert(cols.end(), row_cols.begin(), row_cols.end());
    vals.insert(vals.end(), row_vals.begin(), row_vals.end());
    offsets[static_cast<std::size_t>(new_row) + 1] =
        static_cast<offset_t>(cols.size());
  }
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols), std::move(vals));
}

Csr permute_cols(const Csr& a, std::span<const index_t> p) {
  SPECK_REQUIRE(p.size() == static_cast<std::size_t>(a.cols()),
                "permutation size must equal cols");
  SPECK_REQUIRE(is_permutation(p), "input is not a permutation");
  Coo coo(a.rows(), a.cols());
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto row_cols = a.row_cols(r);
    const auto row_vals = a.row_vals(r);
    for (std::size_t i = 0; i < row_cols.size(); ++i) {
      coo.add(r, p[static_cast<std::size_t>(row_cols[i])], row_vals[i]);
    }
  }
  return coo.to_csr();
}

Csr permute_symmetric(const Csr& a, std::span<const index_t> p) {
  SPECK_REQUIRE(a.rows() == a.cols(), "symmetric permutation needs a square matrix");
  return permute_cols(permute_rows(a, p), p);
}

Permutation reverse_cuthill_mckee(const Csr& a) {
  SPECK_REQUIRE(a.rows() == a.cols(), "RCM needs a square matrix");
  const index_t n = a.rows();
  // Symmetrize the structure: adjacency = pattern of A | Aᵀ, no self loops.
  const Csr at = transpose(a);
  std::vector<std::vector<index_t>> adjacency(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r) {
    for (const index_t c : a.row_cols(r)) {
      if (c != r) adjacency[static_cast<std::size_t>(r)].push_back(c);
    }
    for (const index_t c : at.row_cols(r)) {
      if (c != r) adjacency[static_cast<std::size_t>(r)].push_back(c);
    }
    auto& neighbours = adjacency[static_cast<std::size_t>(r)];
    std::sort(neighbours.begin(), neighbours.end());
    neighbours.erase(std::unique(neighbours.begin(), neighbours.end()),
                     neighbours.end());
  }
  const auto degree = [&](index_t v) {
    return static_cast<index_t>(adjacency[static_cast<std::size_t>(v)].size());
  };

  std::vector<index_t> order;  // Cuthill-McKee visitation order
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);

  // Seed each component from its minimum-degree unvisited vertex.
  std::vector<index_t> by_degree(static_cast<std::size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), index_t{0});
  std::sort(by_degree.begin(), by_degree.end(),
            [&](index_t x, index_t y) { return degree(x) < degree(y); });

  std::queue<index_t> frontier;
  std::vector<index_t> neighbour_buffer;
  for (const index_t seed : by_degree) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    visited[static_cast<std::size_t>(seed)] = true;
    frontier.push(seed);
    while (!frontier.empty()) {
      const index_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      neighbour_buffer.clear();
      for (const index_t w : adjacency[static_cast<std::size_t>(v)]) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          neighbour_buffer.push_back(w);
        }
      }
      std::sort(neighbour_buffer.begin(), neighbour_buffer.end(),
                [&](index_t x, index_t y) { return degree(x) < degree(y); });
      for (const index_t w : neighbour_buffer) frontier.push(w);
    }
  }

  // Reverse ordering; permutation maps old index -> new position.
  Permutation p(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < order.size(); ++i) {
    p[static_cast<std::size_t>(order[i])] = static_cast<index_t>(n - 1 - i);
  }
  return p;
}

index_t bandwidth(const Csr& a) {
  index_t band = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (const index_t c : a.row_cols(r)) {
      band = std::max(band, static_cast<index_t>(std::abs(r - c)));
    }
  }
  return band;
}

}  // namespace speck
