// Sparse matrix-vector product. Used by the application examples (power
// iterations, residual checks) and by tests as an independent consistency
// probe for SpGEMM: (A*B)*x == A*(B*x).
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.h"

namespace speck {

/// y = A*x. x.size() == cols, returns vector of size rows.
std::vector<value_t> spmv(const Csr& a, std::span<const value_t> x);

/// y = alpha*A*x + beta*y (in place on y).
void spmv(const Csr& a, std::span<const value_t> x, value_t alpha, value_t beta,
          std::span<value_t> y);

}  // namespace speck
