#include "speck/workspace.h"

#include "common/check.h"

namespace speck {

void WorkspacePool::ensure(int workers) {
  SPECK_REQUIRE(workers >= 1, "workspace pool needs at least one worker");
  while (slots_.size() < static_cast<std::size_t>(workers)) {
    slots_.push_back(std::make_unique<KernelWorkspace>());
  }
}

WorkspacePool::Lease WorkspacePool::lease() {
  std::lock_guard<std::mutex> lock(lease_mutex_);
  if (!idle_.empty()) {
    KernelWorkspace* ws = idle_.back();
    idle_.pop_back();
    return Lease(this, ws);
  }
  slots_.push_back(std::make_unique<KernelWorkspace>());
  return Lease(this, slots_.back().get());
}

void WorkspacePool::release(KernelWorkspace* ws) {
  std::lock_guard<std::mutex> lock(lease_mutex_);
  idle_.push_back(ws);
}

}  // namespace speck
