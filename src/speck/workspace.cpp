#include "speck/workspace.h"

#include <algorithm>

#include "common/check.h"

namespace speck {

void WorkspacePool::ensure(int workers) {
  SPECK_REQUIRE(workers >= 1, "workspace pool needs at least one worker");
  while (slots_.size() < static_cast<std::size_t>(workers)) {
    slots_.push_back(std::make_unique<KernelWorkspace>());
  }
}

WorkspacePool::Lease WorkspacePool::lease() {
  std::lock_guard<std::mutex> lock(lease_mutex_);
  if (!idle_.empty()) {
    KernelWorkspace* ws = idle_.back();
    idle_.pop_back();
    return Lease(this, ws);
  }
  slots_.push_back(std::make_unique<KernelWorkspace>());
  return Lease(this, slots_.back().get());
}

void WorkspacePool::release(KernelWorkspace* ws) {
  std::lock_guard<std::mutex> lock(lease_mutex_);
  idle_.push_back(ws);
}

void PartitionWorkspaces::ensure(int teams, int slots_per_team) {
  SPECK_REQUIRE(teams >= 1, "partition workspaces need at least one team");
  while (teams_.size() < static_cast<std::size_t>(teams)) {
    teams_.push_back(std::make_unique<WorkspacePool>());
  }
  const int slots = std::max(1, slots_per_team);
  for (auto& pool : teams_) pool->ensure(slots);
}

}  // namespace speck
