#include "speck/workspace.h"

#include "common/check.h"

namespace speck {

void WorkspacePool::ensure(int workers) {
  SPECK_REQUIRE(workers >= 1, "workspace pool needs at least one worker");
  while (slots_.size() < static_cast<std::size_t>(workers)) {
    slots_.push_back(std::make_unique<KernelWorkspace>());
  }
}

}  // namespace speck
