#include "speck/global_lb.h"

#include <algorithm>
#include <numeric>

#include "common/bit_utils.h"
#include "common/check.h"

namespace speck {
namespace {

offset_t hash_capacity(const KernelConfig& config, bool symbolic) {
  return static_cast<offset_t>(symbolic ? config.symbolic_hash_capacity()
                                        : config.numeric_hash_capacity());
}

struct DemandStats {
  offset_t max = 0;
  double avg = 0.0;
};

DemandStats demand_stats(std::span<const offset_t> entries) {
  DemandStats s;
  offset_t total = 0;
  for (const offset_t e : entries) {
    s.max = std::max(s.max, e);
    total += e;
  }
  s.avg = entries.empty() ? 0.0
                          : static_cast<double>(total) / static_cast<double>(entries.size());
  return s;
}

}  // namespace

int config_for_entries(const std::vector<KernelConfig>& configs, offset_t entries,
                       bool symbolic) {
  SPECK_ASSERT(!configs.empty(), "no kernel configurations");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (hash_capacity(configs[i], symbolic) >= entries) return static_cast<int>(i);
  }
  return static_cast<int>(configs.size()) - 1;
}

LbDecisionStats lb_decision_stats(const GlobalLbInputs& in,
                                  const std::vector<KernelConfig>& configs,
                                  const SpeckConfig& cfg) {
  LbDecisionStats out;
  const DemandStats stats = demand_stats(in.entries_per_row);
  out.rows = static_cast<index_t>(in.entries_per_row.size());
  out.ratio = stats.avg > 0.0 ? static_cast<double>(stats.max) / stats.avg : 0.0;
  const int longest_config = config_for_entries(configs, stats.max, in.symbolic);
  const int large_count = in.symbolic ? cfg.thresholds.symbolic_large_kernel_count
                                      : cfg.thresholds.numeric_large_kernel_count;
  out.large_kernel =
      longest_config >= static_cast<int>(configs.size()) - large_count;
  return out;
}

bool lb_decision(const LbDecisionStats& stats,
                 const LoadBalanceThresholds& general,
                 const LoadBalanceThresholds& large) {
  const LoadBalanceThresholds& t = stats.large_kernel ? large : general;
  return stats.ratio > t.ratio && stats.rows > t.min_rows;
}

bool should_use_global_lb(const GlobalLbInputs& in,
                          const std::vector<KernelConfig>& configs,
                          const SpeckConfig& cfg) {
  const GlobalLbMode mode = in.symbolic ? cfg.features.global_lb_symbolic
                                        : cfg.features.global_lb_numeric;
  switch (mode) {
    case GlobalLbMode::kAlwaysOn: return true;
    case GlobalLbMode::kAlwaysOff: return false;
    case GlobalLbMode::kAuto: break;
  }
  const LbDecisionStats stats = lb_decision_stats(in, configs, cfg);
  if (stats.ratio <= 0.0) return false;
  return in.symbolic
             ? lb_decision(stats, cfg.thresholds.symbolic, cfg.thresholds.symbolic_large)
             : lb_decision(stats, cfg.thresholds.numeric, cfg.thresholds.numeric_large);
}

std::vector<std::pair<std::size_t, std::size_t>> block_merge(
    std::span<const offset_t> demands, offset_t capacity, int max_rows) {
  const std::size_t n = demands.size();
  std::vector<std::pair<std::size_t, std::size_t>> result;
  if (n == 0) return result;

  // segment_size[k]: combined demand of the segment starting at k when that
  // segment is a single merged block; `merged_len[k]`: its row count.
  std::vector<offset_t> segment_size(demands.begin(), demands.end());
  std::vector<std::size_t> merged_len(n, 1);

  // Algorithm 2: pairwise tree merge with doubling stride. Each level
  // merges aligned neighbours when their combined demand stays below the
  // capacity; matches Figure 3 ("neighboring blocks with same row counts").
  for (std::size_t step = 1;
       static_cast<int>(step * 2) <= max_rows && step < n; step *= 2) {
    for (std::size_t k = 0; k + step < n; k += 2 * step) {
      if (merged_len[k] != step || merged_len[k + step] > step) continue;
      if (segment_size[k] + segment_size[k + step] >= capacity) continue;
      segment_size[k] += segment_size[k + step];
      merged_len[k] += merged_len[k + step];
    }
  }

  std::size_t k = 0;
  while (k < n) {
    result.emplace_back(k, k + merged_len[k]);
    k += merged_len[k];
  }
  return result;
}

BinPlan plan_global_lb(const GlobalLbInputs& in,
                       const std::vector<KernelConfig>& configs,
                       const SpeckConfig& cfg, sim::Launch& lb_launch) {
  BinPlan plan;
  const std::size_t rows = in.entries_per_row.size();
  plan.row_order.resize(rows);
  std::iota(plan.row_order.begin(), plan.row_order.end(), index_t{0});
  if (rows == 0) return plan;

  const DemandStats stats = demand_stats(in.entries_per_row);
  plan.used_load_balancer = should_use_global_lb(in, configs, cfg);

  if (!plan.used_load_balancer) {
    // Uniform fallback: one kernel size fitting the longest row, fixed
    // number of rows per block (paper §4.2 "No load balancing"). The row
    // count per block is derived from the *average* demand — for the
    // uniform matrices this path targets, average and maximum coincide;
    // rare overflowing blocks spill to the global hash map.
    const int config = config_for_entries(configs, stats.max, in.symbolic);
    const offset_t capacity = hash_capacity(configs[static_cast<std::size_t>(config)],
                                            in.symbolic);
    const offset_t avg = std::max<offset_t>(1, static_cast<offset_t>(stats.avg + 0.5));
    const auto rows_per_block = static_cast<std::size_t>(std::clamp<offset_t>(
        stats.max > 0 ? capacity / (2 * avg) : cfg.max_rows_per_block, 1,
        cfg.max_rows_per_block));
    for (std::size_t begin = 0; begin < rows; begin += rows_per_block) {
      plan.blocks.push_back(
          BinPlan::Block{begin, std::min(rows, begin + rows_per_block), config});
    }
    return plan;
  }

  // Binning: stable partition of rows by target configuration. Emulates the
  // local prefix-sum binning with a single global append per block.
  std::vector<std::vector<index_t>> bins(configs.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const int config = config_for_entries(configs, in.entries_per_row[r], in.symbolic);
    bins[static_cast<std::size_t>(config)].push_back(static_cast<index_t>(r));
  }

  plan.row_order.clear();
  std::vector<offset_t> smallest_bin_demands;
  for (std::size_t c = 0; c < bins.size(); ++c) {
    const std::vector<index_t>& bin = bins[c];
    if (bin.empty()) continue;
    const std::size_t bin_begin = plan.row_order.size();
    plan.row_order.insert(plan.row_order.end(), bin.begin(), bin.end());

    if (c == 0 && cfg.features.block_merge) {
      // Smallest bin: merge neighbouring rows into shared blocks.
      smallest_bin_demands.resize(bin.size());
      for (std::size_t i = 0; i < bin.size(); ++i) {
        smallest_bin_demands[i] = in.entries_per_row[static_cast<std::size_t>(bin[i])];
      }
      const offset_t capacity = hash_capacity(configs[0], in.symbolic);
      for (const auto& [begin, end] :
           block_merge(smallest_bin_demands, capacity, cfg.max_rows_per_block)) {
        plan.blocks.push_back(
            BinPlan::Block{bin_begin + begin, bin_begin + end, static_cast<int>(c)});
      }
    } else {
      for (std::size_t i = 0; i < bin.size(); ++i) {
        plan.blocks.push_back(
            BinPlan::Block{bin_begin + i, bin_begin + i + 1, static_cast<int>(c)});
      }
    }
  }

  // Simulated cost of the balancer: one pass over the per-row demands with
  // local prefix sums per potentially non-empty bin, then the block-merge
  // reduction over the smallest bin.
  const int block_threads = lb_launch.device().max_threads_per_block;
  int active_bins = 0;
  for (const auto& bin : bins) active_bins += bin.empty() ? 0 : 1;
  const std::size_t num_blocks =
      std::max<std::size_t>(1, ceil_div(rows, static_cast<std::size_t>(block_threads)));
  std::size_t remaining = rows;
  for (std::size_t blk = 0; blk < num_blocks; ++blk) {
    const std::size_t in_block =
        std::min(remaining, static_cast<std::size_t>(block_threads));
    remaining -= in_block;
    auto cost = lb_launch.make_block(block_threads, 8 * 1024);
    cost.global_coalesced(in_block);  // read demands
    // One prefix scan per active bin over the block (log T steps each).
    cost.lockstep(static_cast<double>(std::max(1, active_bins)) *
                  log2_pow2(static_cast<std::uint64_t>(block_threads)));
    cost.smem(2.0 * static_cast<double>(in_block));
    cost.global_atomic(static_cast<double>(std::max(1, active_bins)));  // bin append
    cost.global_coalesced(in_block);  // write row ids
    lb_launch.add(cost);
  }
  if (!smallest_bin_demands.empty()) {
    auto cost = lb_launch.make_block(block_threads, 8 * 1024);
    cost.global_coalesced(smallest_bin_demands.size());
    cost.lockstep(6.0);  // the six merge rounds of Algorithm 2
    cost.smem(2.0 * static_cast<double>(smallest_bin_demands.size()));
    cost.global_coalesced(smallest_bin_demands.size() / 4);
    lb_launch.add(cost);
  }

  plan.lb_memory_bytes =
      rows * sizeof(index_t)          // bin row lists
      + configs.size() * sizeof(offset_t) * 64;  // bin counters / offsets
  return plan;
}

}  // namespace speck
