// Internal helpers shared by the symbolic and numeric pass translation
// units. Not part of the public API.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/alloc_counter.h"
#include "common/bit_utils.h"
#include "common/check.h"
#include "speck/hash_acc.h"
#include "speck/kernels.h"
#include "speck/local_lb.h"
#include "speck/workspace.h"

namespace speck::detail {

/// Blocks per parallel chunk in the symbolic/numeric passes. Fixed — never
/// derived from the thread count — so the chunk boundaries (and with them
/// every per-block result slot) are identical at any parallelism level.
constexpr std::size_t kBlockChunk = 4;

/// Merges the per-block counters of `from` into the pass totals. Seconds
/// and pool bytes are launch-level quantities and are accumulated elsewhere.
inline void merge_pass_counters(PassStats& into, const PassStats& from) {
  into.direct_rows += from.direct_rows;
  into.dense_rows += from.dense_rows;
  into.hash_rows += from.hash_rows;
  into.global_hash_blocks += from.global_hash_blocks;
  into.hash_probes += from.hash_probes;
  into.moved_entries += from.moved_entries;
  into.global_inserts += from.global_inserts;
  into.hot_path_allocs += from.hot_path_allocs;
  into.estimate_underflow_rows += from.estimate_underflow_rows;
}

/// Groups the plan's blocks by kernel configuration in one sweep (the passes
/// used to rescan plan.blocks once per configuration — O(configs x blocks)).
/// Plan order is preserved within each group, which is what keeps the
/// serial cost-commit order — and thus the simulated seconds — unchanged.
inline std::vector<std::vector<const BinPlan::Block*>> blocks_by_config(
    const BinPlan& plan, std::size_t configs) {
  std::vector<std::vector<const BinPlan::Block*>> grouped(configs);
  for (const BinPlan::Block& block : plan.blocks) {
    const auto c = static_cast<std::size_t>(block.config);
    SPECK_ASSERT(c < configs, "block config index out of range");
    grouped[c].push_back(&block);
  }
  return grouped;
}

/// Row statistics for the local load balancer, gathered from the analysis.
inline BlockRowStats block_stats(const KernelContext& ctx, std::span<const index_t> rows) {
  BlockRowStats s;
  for (const index_t r : rows) {
    s.nnz_a += ctx.a->row_length(r);
    s.products += ctx.analysis->products[static_cast<std::size_t>(r)];
    s.max_b_row_len =
        std::max(s.max_b_row_len, ctx.analysis->longest_b_row[static_cast<std::size_t>(r)]);
  }
  return s;
}

/// Charges the cost of sweeping the referenced B rows with groups of g
/// threads (shared by the symbolic and numeric hash paths). Scratch buffers
/// come from the worker's workspace, so the sweep is allocation-free after
/// warm-up.
///
/// Compute is charged per *reference* (idle lanes included), but memory is
/// charged per *unique* referenced row of B: spECK's binning keeps
/// neighbouring rows of A in the same block, so their (overlapping, nearby)
/// B rows hit in L1/L2 after the first fetch. This locality is exactly what
/// the paper's ordered binning preserves (§4.2 "Binning").
inline void charge_row_sweep(sim::BlockCost& cost, const KernelContext& ctx,
                      std::span<const index_t> rows, int group_size, bool numeric,
                      KernelWorkspace& ws) {
  // Compute cost: the block's k groups take successive references in order
  // (Fig. 1); the block runs until its *slowest* group finishes, so idle
  // groups (too few references) and oversubscribed groups (g too small for
  // a long row) both show up as lockstep iterations — the effect Fig. 13
  // measures. Weight 10: address calculation, bounds check, compound-key
  // build, hash multiply/modulo and the probe-loop issue per visited
  // element and lane (collision-dependent probe *traffic* is charged
  // separately via smem_atomic).
  const int groups = std::max(1, cost.threads() / group_size);
  std::vector<std::size_t>& group_iterations = ws.group_iterations();
  group_iterations.assign(static_cast<std::size_t>(groups), 0);
  std::size_t next_group = 0;

  std::vector<index_t>& referenced = ws.referenced_rows();
  referenced.clear();
  for (const index_t r : rows) {
    const auto a_cols = ctx.a->row_cols(r);
    for (const index_t k : a_cols) {
      const auto len = static_cast<std::size_t>(ctx.b->row_length(k));
      if (len == 0) continue;
      group_iterations[next_group] +=
          ceil_div<std::size_t>(len, static_cast<std::size_t>(group_size));
      next_group = next_group + 1 == static_cast<std::size_t>(groups) ? 0 : next_group + 1;
      referenced.push_back(k);
    }
    cost.global_coalesced(a_cols.size());                  // A columns
    if (numeric) cost.global_coalesced64(a_cols.size());   // A values
  }
  const std::size_t critical_iterations =
      *std::max_element(group_iterations.begin(), group_iterations.end());
  cost.lockstep(static_cast<double>(critical_iterations), 10.0);

  // Memory cost: every unique referenced row of B is fetched once per block
  // (spECK's ordered binning keeps neighbouring rows of A together, so their
  // overlapping B rows hit in L1/L2 after the first fetch, §4.2 "Binning").
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  std::size_t words = 0;
  for (const index_t k : referenced) {
    words += static_cast<std::size_t>(ctx.b->row_length(k));
  }
  const double cache = sim::reuse_cache_factor(*ctx.device, ctx.b->byte_size());
  cost.global_segmented(words * (ctx.wide_keys ? 2 : 1), referenced.size(), cache);
  if (numeric) cost.global_segmented(words * 2, referenced.size(), cache);
}

/// Charges hash accumulator activity common to both passes.
template <typename Accumulator>
void charge_hash_activity(sim::BlockCost& cost, const Accumulator& acc,
                          PassStats& stats) {
  cost.smem_atomic(static_cast<double>(acc.probes()));
  stats.hash_probes += acc.probes();
  if (acc.spilled()) {
    ++stats.global_hash_blocks;
    stats.moved_entries += acc.moved_entries();
    stats.global_inserts += acc.global_inserts();
    cost.global_atomic(static_cast<double>(acc.moved_entries()));
    cost.global_atomic(1.5 * static_cast<double>(acc.global_inserts()));
  }
}

/// Shared driver of both passes: runs every block of `plan`, grouped into
/// one simulated launch per kernel configuration. Blocks partition the rows,
/// so each block body writes disjoint output slots plus its own cost /
/// counter / payload slot; costs are committed to the launch (and counters
/// merged, and `commit` called) serially in plan order afterwards, which
/// keeps the simulated schedule — and thus `seconds` — identical to the
/// single-threaded run. Per-block heap allocations are accounted into the
/// block's PassStats (the zero-allocation hot-path metric).
///
/// With ctx.partitions > 1 the blocks of each launch run on the two-level
/// executor (ThreadPool::partitioned_for): the chunk space is cut into
/// product-balanced partitions, each partition's team drains it through its
/// own cursor with partition-local workspaces, and finished teams steal
/// chunks from the most-loaded remaining partition (docs/performance.md
/// "NUMA scale-out"). Chunk boundaries and all output slots stay pure
/// functions of the block list, so results are bit-identical to the flat
/// path; only ctx.partition_diag observes the schedule.
///
/// `run_block(bctx, launch, config, config_index, rows, counters, payload,
/// ws)` returns the block's sim::BlockCost and must read A/B through `bctx`
/// (equal to ctx except that on a partitioned run with ctx.team_b set, `b`
/// points at the executing team's first-touch copy); `commit(payload)` runs
/// serially per block (pass Payload = std::monostate and a no-op when not
/// needed).
template <typename Payload, typename RunBlock, typename Commit>
void execute_block_plan(const KernelContext& ctx, const BinPlan& plan,
                        const char* launch_prefix, PassStats& pass_stats,
                        RunBlock&& run_block, Commit&& commit) {
  ThreadPool& pool = pool_or_global(ctx.pool);
  const int parts = std::max(1, ctx.partitions);
  const bool partitioned = parts > 1;

  WorkspacePool local_workspaces;
  WorkspacePool* workspaces = nullptr;
  PartitionWorkspaces local_team_workspaces;
  PartitionWorkspaces* team_workspaces = nullptr;
  std::vector<KernelContext> team_ctx;
  if (partitioned) {
    team_workspaces = ctx.team_workspaces != nullptr ? ctx.team_workspaces
                                                     : &local_team_workspaces;
    int slots = 1;
    for (int t = 0; t < parts; ++t) {
      slots = std::max(slots,
                       partition_team_lanes(t, pool.thread_count(), parts));
    }
    team_workspaces->ensure(parts, slots);
    team_ctx.assign(static_cast<std::size_t>(parts), ctx);
    if (ctx.team_b != nullptr &&
        ctx.team_b->size() == static_cast<std::size_t>(parts)) {
      for (int t = 0; t < parts; ++t) {
        team_ctx[static_cast<std::size_t>(t)].b =
            &(*ctx.team_b)[static_cast<std::size_t>(t)];
      }
    }
  } else {
    workspaces = ctx.workspaces != nullptr ? ctx.workspaces : &local_workspaces;
    workspaces->ensure(pool.thread_count());
  }

  const auto grouped = blocks_by_config(plan, ctx.configs->size());
  for (std::size_t c = 0; c < ctx.configs->size(); ++c) {
    const KernelConfig& config = (*ctx.configs)[c];
    const std::vector<const BinPlan::Block*>& blocks = grouped[c];
    if (blocks.empty()) continue;
    sim::Launch launch(std::string(launch_prefix) + std::to_string(config.threads),
                       *ctx.device, *ctx.model);

    std::vector<std::optional<sim::BlockCost>> costs(blocks.size());
    std::vector<PassStats> block_counters(blocks.size());
    std::vector<Payload> payloads(blocks.size());
    const auto run_range = [&](std::size_t begin, std::size_t end,
                               const KernelContext& bctx, KernelWorkspace& ws) {
      for (std::size_t i = begin; i < end; ++i) {
        const std::span<const index_t> rows(
            plan.row_order.data() + blocks[i]->begin,
            blocks[i]->end - blocks[i]->begin);
        const std::size_t allocs_before = alloc_events_now();
        costs[i] = run_block(bctx, launch, config, static_cast<int>(c), rows,
                             block_counters[i], payloads[i], ws);
        block_counters[i].hot_path_allocs += alloc_events_now() - allocs_before;
      }
    };
    if (!partitioned) {
      pool.parallel_for(blocks.size(), kBlockChunk,
                        [&](std::size_t begin, std::size_t end, int worker) {
                          run_range(begin, end, ctx, workspaces->at(worker));
                        });
    } else {
      // Cut the chunk space along the same per-row product weights the
      // global load balancer bins by (+1 per block so zero-product blocks
      // still spread by count). Pure function of (plan, parts).
      const std::size_t total_chunks =
          (blocks.size() + kBlockChunk - 1) / kBlockChunk;
      std::vector<std::uint64_t> weights(total_chunks, 0);
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        std::uint64_t w = 1;
        for (std::size_t r = blocks[i]->begin; r < blocks[i]->end; ++r) {
          w += static_cast<std::uint64_t>(
              ctx.analysis->products[static_cast<std::size_t>(
                  plan.row_order[r])]);
        }
        weights[i / kBlockChunk] += w;
      }
      const std::vector<std::size_t> bounds =
          partition_weights_balanced(weights, parts);
      PartitionedRunDiag run_diag;
      pool.partitioned_for(
          blocks.size(), kBlockChunk, bounds, ctx.partition_steal,
          [&](std::size_t begin, std::size_t end, int team, int slot) {
            run_range(begin, end, team_ctx[static_cast<std::size_t>(team)],
                      team_workspaces->team(team).at(slot));
          },
          ctx.partition_diag != nullptr ? &run_diag : nullptr);
      if (ctx.partition_diag != nullptr) ctx.partition_diag->merge(run_diag);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      launch.add(*costs[i]);
      merge_pass_counters(pass_stats, block_counters[i]);
      commit(payloads[i]);
    }

    if (launch.block_count() > 0) {
      sim::LaunchResult finished = launch.finish();
      pass_stats.seconds += finished.seconds;
      if (ctx.trace != nullptr) ctx.trace->record(std::move(finished));
    }
  }
}

/// Size of the pre-allocated global hash map pool for rows that may not fit
/// the largest scratchpad map (paper §4.3 "Sparse Rows of C").
inline std::size_t global_pool_bytes(const KernelContext& ctx, const BinPlan& plan,
                              bool symbolic) {
  const KernelConfig& largest = ctx.configs->back();
  const auto capacity = static_cast<offset_t>(
      symbolic ? largest.symbolic_hash_capacity() : largest.numeric_hash_capacity());
  offset_t candidates = 0;
  offset_t worst = 0;
  for (const BinPlan::Block& block : plan.blocks) {
    if (block.config != static_cast<int>(ctx.configs->size()) - 1) continue;
    for (std::size_t i = block.begin; i < block.end; ++i) {
      const index_t row = plan.row_order[i];
      const offset_t products = ctx.analysis->products[static_cast<std::size_t>(row)];
      if (products > capacity) {
        ++candidates;
        worst = std::max(worst, products);
      }
    }
  }
  if (candidates == 0) return 0;
  const int concurrent = ctx.device->num_sms;  // one 96 KB block per SM
  const auto pool_maps = static_cast<std::size_t>(
      std::min<offset_t>(candidates, concurrent));
  const std::size_t entry_bytes =
      symbolic ? sizeof(key32_t) : sizeof(key32_t) + sizeof(value_t);
  return pool_maps * static_cast<std::size_t>(next_pow2(static_cast<std::uint64_t>(worst))) *
         entry_bytes;
}


}  // namespace speck::detail
