// Multi-GPU SpGEMM — the paper's second stated future-work item (§7):
// "shared matrix storage in multi-GPU setups".
//
// The rows of A are partitioned into one contiguous panel per simulated GPU,
// balanced by intermediate-product volume. B is either replicated on every
// device (fast, memory-hungry) or stored once and shared over the
// interconnect (each device owns a vertical slice of B's rows; references to
// remote rows pay interconnect bandwidth). The output panels are
// concatenated on the host side of the simulation.
#pragma once

#include <vector>

#include "ref/spgemm_api.h"
#include "speck/speck.h"

namespace speck {

struct MultiGpuConfig {
  int gpus = 4;
  /// Interconnect bandwidth as a fraction of device memory bandwidth
  /// (NVLink2 vs HBM2 is roughly 1:4).
  double interconnect_bandwidth_fraction = 0.25;
  /// true: every device holds a full copy of B. false: B is stored once,
  /// row-partitioned across devices; remote rows stream over the
  /// interconnect.
  bool replicate_b = true;
  /// Fraction of a panel's time that is memory-bound and thus dilated by
  /// remote access (model constant; SpGEMM on this device model is
  /// bandwidth-dominated).
  double memory_bound_share = 0.6;
  SpeckConfig speck;
};

struct MultiGpuDiagnostics {
  std::vector<double> device_seconds;
  std::vector<offset_t> device_products;
  /// Fraction of B-row references that were remote (0 when replicated).
  double remote_reference_fraction = 0.0;
  /// Panel makespan / sum of panel times — parallel efficiency measure.
  double parallel_efficiency = 0.0;
  /// Host-side two-level executor telemetry aggregated over the panels
  /// (speck.partitions > 1; zero / 1.0 with the flat executor): total
  /// chunks teams claimed from foreign partitions, and the worst
  /// per-panel team-seconds imbalance (docs/performance.md "NUMA
  /// scale-out"). Schedule-dependent, never part of bit-identity gates.
  std::size_t steal_count = 0;
  double worst_imbalance_ratio = 0.0;
};

class MultiGpuSpeck final : public SpGemmAlgorithm {
 public:
  MultiGpuSpeck(sim::DeviceSpec device, sim::CostModel model,
                MultiGpuConfig config = {})
      : SpGemmAlgorithm(device, model), config_(config) {
    SPECK_REQUIRE(config_.gpus >= 1, "need at least one GPU");
  }

  std::string name() const override {
    return "speck-multigpu" + std::to_string(config_.gpus);
  }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;

  const MultiGpuConfig& config() const { return config_; }
  MultiGpuConfig& config() { return config_; }
  const MultiGpuDiagnostics& last_diagnostics() const { return diagnostics_; }

 private:
  MultiGpuConfig config_;
  MultiGpuDiagnostics diagnostics_;
};

/// Balanced contiguous partition of rows into `parts` chunks by product
/// volume. Greedy prefix cuts: part p ends at the first row where the
/// running volume reaches total * (p + 1) / parts, and the last part takes
/// every remaining row. Guarantees (asserted by test_multi_gpu):
///  - panels are contiguous, non-overlapping and cover [0, rows) exactly,
///    for every input including rows == 0, all-zero volumes and
///    parts > rows (trailing parts come back empty);
///  - balance bound: each *prefix* of panels overshoots its proportional
///    volume share by less than one row's volume, so any single panel
///    carries at most total/parts plus the two boundary rows' volumes —
///    with one dominating row the panel holding it is (unavoidably) that
///    row plus a bounded remainder.
/// Pure function of (row_products, parts); exposed for tests. The chunk-
/// space analogue for the two-level executor is
/// partition_weights_balanced (common/thread_pool.h).
std::vector<std::pair<index_t, index_t>> partition_rows_balanced(
    std::span<const offset_t> row_products, int parts);

}  // namespace speck
