// Multi-GPU SpGEMM — the paper's second stated future-work item (§7):
// "shared matrix storage in multi-GPU setups".
//
// The rows of A are partitioned into one contiguous panel per simulated GPU,
// balanced by intermediate-product volume. B is either replicated on every
// device (fast, memory-hungry) or stored once and shared over the
// interconnect (each device owns a vertical slice of B's rows; references to
// remote rows pay interconnect bandwidth). The output panels are
// concatenated on the host side of the simulation.
#pragma once

#include <vector>

#include "ref/spgemm_api.h"
#include "speck/speck.h"

namespace speck {

struct MultiGpuConfig {
  int gpus = 4;
  /// Interconnect bandwidth as a fraction of device memory bandwidth
  /// (NVLink2 vs HBM2 is roughly 1:4).
  double interconnect_bandwidth_fraction = 0.25;
  /// true: every device holds a full copy of B. false: B is stored once,
  /// row-partitioned across devices; remote rows stream over the
  /// interconnect.
  bool replicate_b = true;
  /// Fraction of a panel's time that is memory-bound and thus dilated by
  /// remote access (model constant; SpGEMM on this device model is
  /// bandwidth-dominated).
  double memory_bound_share = 0.6;
  SpeckConfig speck;
};

struct MultiGpuDiagnostics {
  std::vector<double> device_seconds;
  std::vector<offset_t> device_products;
  /// Fraction of B-row references that were remote (0 when replicated).
  double remote_reference_fraction = 0.0;
  /// Panel makespan / sum of panel times — parallel efficiency measure.
  double parallel_efficiency = 0.0;
};

class MultiGpuSpeck final : public SpGemmAlgorithm {
 public:
  MultiGpuSpeck(sim::DeviceSpec device, sim::CostModel model,
                MultiGpuConfig config = {})
      : SpGemmAlgorithm(device, model), config_(config) {
    SPECK_REQUIRE(config_.gpus >= 1, "need at least one GPU");
  }

  std::string name() const override {
    return "speck-multigpu" + std::to_string(config_.gpus);
  }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;

  const MultiGpuConfig& config() const { return config_; }
  MultiGpuConfig& config() { return config_; }
  const MultiGpuDiagnostics& last_diagnostics() const { return diagnostics_; }

 private:
  MultiGpuConfig config_;
  MultiGpuDiagnostics diagnostics_;
};

/// Balanced contiguous partition of rows into `parts` chunks by product
/// volume (greedy prefix cuts at total/parts). Exposed for tests.
std::vector<std::pair<index_t, index_t>> partition_rows_balanced(
    std::span<const offset_t> row_products, int parts);

}  // namespace speck
