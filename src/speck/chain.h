// Chain multiplication: C = M1 * M2 * ... * Mk with a cost-driven
// association order.
//
// SpGEMM chains appear in the paper's motivating applications — the AMG
// Galerkin product R*A*P is a triple product whose association order can
// change the intermediate-product volume by large factors. The chain
// multiplier greedily contracts the adjacent pair with the smallest exact
// intermediate-product count (computable in O(nnz) without multiplying).
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "ref/spgemm_api.h"
#include "speck/plan_cache.h"
#include "speck/speck.h"

namespace speck {

struct ChainStep {
  std::size_t left_index = 0;  ///< position of the contracted pair (left)
  offset_t products = 0;       ///< intermediate products of that contraction
  double seconds = 0.0;
  /// True when the contraction replayed a cached SpeckPlan (plan-aware
  /// overload only).
  bool plan_reused = false;
};

struct ChainResult {
  SpGemmStatus status = SpGemmStatus::kOk;
  std::string failure_reason;
  Csr c;
  double seconds = 0.0;        ///< sum of the per-step simulated times
  offset_t total_products = 0;
  std::vector<ChainStep> steps;

  bool ok() const { return status == SpGemmStatus::kOk; }
};

/// Multiplies the chain left-to-right compatible matrices with `algorithm`,
/// greedily contracting the cheapest adjacent pair first.
ChainResult multiply_chain(std::vector<Csr> chain, SpGemmAlgorithm& algorithm);

/// One SpeckPlan per distinct link structure of a chain, keyed by full
/// structural fingerprint. Iterative applications re-multiply the same
/// chain with fresh values (AMG re-setup, R·A·P with a changing A): keep
/// one cache alive across multiply_chain calls and every link after the
/// first full pass runs the values-only replay. Contraction order is
/// value-independent (exact product counts of the structure), so a chain's
/// link structures recur exactly.
///
/// A thin veneer over the sharded PlanCache (one shard: chain links are
/// consulted by one caller, and an unbounded-by-default budget keeps every
/// link warm — a chain's working set is the caller's deliberate choice).
class ChainPlanCache {
 public:
  explicit ChainPlanCache(
      std::size_t limit_bytes = std::numeric_limits<std::size_t>::max())
      : cache_(/*shards=*/1, limit_bytes) {}

  /// The cached plan matching `fp`, or null. The shared_ptr keeps the plan
  /// alive across a concurrent eviction.
  std::shared_ptr<const SpeckPlan> find(const PlanFingerprint& fp);

  /// Takes ownership of a freshly built plan (incomplete plans are dropped
  /// — they could never replay).
  void insert(SpeckPlan plan);

  std::size_t size() const { return cache_.entries(); }
  std::size_t byte_size() const { return cache_.bytes(); }

 private:
  PlanCache cache_;
};

/// Plan-aware chain multiplication with `speck`: every contraction first
/// consults `cache` (full fingerprint match) and replays on a hit; misses
/// run the full pipeline once and cache its plan for the next call.
ChainResult multiply_chain(std::vector<Csr> chain, Speck& speck,
                           ChainPlanCache& cache);

/// Products of every adjacent pair in the chain (the greedy decision data).
std::vector<offset_t> chain_pair_products(const std::vector<Csr>& chain);

}  // namespace speck
