// Chain multiplication: C = M1 * M2 * ... * Mk with a cost-driven
// association order.
//
// SpGEMM chains appear in the paper's motivating applications — the AMG
// Galerkin product R*A*P is a triple product whose association order can
// change the intermediate-product volume by large factors. The chain
// multiplier greedily contracts the adjacent pair with the smallest exact
// intermediate-product count (computable in O(nnz) without multiplying).
#pragma once

#include <vector>

#include "ref/spgemm_api.h"

namespace speck {

struct ChainStep {
  std::size_t left_index = 0;  ///< position of the contracted pair (left)
  offset_t products = 0;       ///< intermediate products of that contraction
  double seconds = 0.0;
};

struct ChainResult {
  SpGemmStatus status = SpGemmStatus::kOk;
  std::string failure_reason;
  Csr c;
  double seconds = 0.0;        ///< sum of the per-step simulated times
  offset_t total_products = 0;
  std::vector<ChainStep> steps;

  bool ok() const { return status == SpGemmStatus::kOk; }
};

/// Multiplies the chain left-to-right compatible matrices with `algorithm`,
/// greedily contracting the cheapest adjacent pair first.
ChainResult multiply_chain(std::vector<Csr> chain, SpGemmAlgorithm& algorithm);

/// Products of every adjacent pair in the chain (the greedy decision data).
std::vector<offset_t> chain_pair_products(const std::vector<Csr>& chain);

}  // namespace speck
