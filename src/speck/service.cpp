#include "speck/service.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace speck {
namespace {

Status status_from_result(const SpGemmResult& result, const char* where) {
  switch (result.status) {
    case SpGemmStatus::kOk:
      return {};
    case SpGemmStatus::kOutOfMemory:
      return Status{ErrorCode::kResourceExhausted, result.failure_reason,
                    where};
    case SpGemmStatus::kUnsupported:
      return Status{ErrorCode::kBadInput, result.failure_reason, where};
  }
  return Status{ErrorCode::kInternal, "unknown SpGemmStatus", where};
}

Status admission_rejection(std::size_t bytes, const char* where) {
  return Status{ErrorCode::kResourceExhausted,
                "admission control: request needs " + std::to_string(bytes) +
                    " bytes beyond the configured memory budget",
                where};
}

}  // namespace

bool MemoryBudget::try_acquire(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > limit_ - used_ || bytes > limit_) return false;
  used_ += bytes;
  return true;
}

bool MemoryBudget::acquire(std::size_t bytes) {
  if (bytes > limit_) return false;  // could never fit; waiting is forever
  std::unique_lock<std::mutex> lock(mutex_);
  freed_.wait(lock, [&] { return bytes <= limit_ - used_; });
  used_ += bytes;
  return true;
}

void MemoryBudget::release(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SPECK_ASSERT(bytes <= used_, "MemoryBudget release exceeds admitted bytes");
    used_ -= bytes;
  }
  freed_.notify_all();
}

std::size_t MemoryBudget::used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

SpeckService::SpeckService(Speck& speck, ServiceConfig config)
    : speck_(speck),
      config_(config),
      cache_(config.cache_shards, config.cache_limit_bytes),
      budget_(config.memory_budget_bytes) {}

bool SpeckService::admit(std::size_t bytes) {
  if (config_.memory_budget_bytes == 0) return true;
  return config_.queue_on_budget ? budget_.acquire(bytes)
                                 : budget_.try_acquire(bytes);
}

SpeckService::Response SpeckService::multiply(const Csr& a, const Csr& b) {
  return serve(a, b, nullptr);
}

SpeckService::Response SpeckService::multiply_into(const Csr& a, const Csr& b,
                                                   std::vector<value_t>& out) {
  return serve(a, b, &out);
}

SpeckService::Response SpeckService::serve(const Csr& a, const Csr& b,
                                           std::vector<value_t>* out) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Response resp;
  const PlanFingerprint fp = plan_fingerprint(a, b, speck_.config());

  std::shared_ptr<const SpeckPlan> plan = cache_.find(fp);
  if (plan == nullptr) {
    // Miss: planning runs the full mutable pipeline, so it is serialized.
    // The double-checked find means concurrent first requests for one
    // pattern plan it exactly once.
    std::lock_guard<std::mutex> lock(plan_mutex_);
    plan = cache_.find(fp);
    if (plan == nullptr) {
      const std::size_t build_bytes = estimate_plan_bytes(a, b);
      if (!admit(build_bytes)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        resp.status = admission_rejection(build_bytes, "SpeckService");
        return resp;
      }
      SpGemmResult full;
      SpeckPlan built;
      try {
        built = speck_.plan(a, b, &full);
      } catch (...) {
        // Bad inputs (dimension mismatch, corrupt CSR) throw from the
        // pipeline; a service must answer, not unwind a client thread.
        if (config_.memory_budget_bytes != 0) budget_.release(build_bytes);
        resp.status = status_from_current_exception();
        return resp;
      }
      if (config_.memory_budget_bytes != 0) budget_.release(build_bytes);
      if (!full.ok()) {
        resp.status = status_from_result(full, "SpeckService");
        return resp;
      }
      if (built.complete) {
        cache_.insert(std::make_shared<const SpeckPlan>(std::move(built)));
        plans_built_.fetch_add(1, std::memory_order_relaxed);
        resp.planned = true;
      } else {
        // Unplannable structure (e.g. 32-bit replay overflow): the full run
        // still answers this request; later requests run the pipeline again.
        full_runs_.fetch_add(1, std::memory_order_relaxed);
      }
      // The planning run already computed C with this request's values —
      // serve it directly, nothing is multiplied twice.
      resp.seconds = full.seconds;
      resp.c_nnz = full.c.nnz();
      if (out != nullptr) {
        const std::span<const value_t> vals = full.c.values();
        out->assign(vals.begin(), vals.end());
      } else {
        resp.c = std::move(full.c);
      }
      return resp;
    }
  }

  // Hit: lock-free replay on the calling thread against the immutable plan.
  // Admission covers this request's in-flight response memory — the owned
  // variant materializes a full Csr (pattern copy + values), the into
  // variant only the values buffer.
  const auto c_nnz = static_cast<std::size_t>(plan->c_nnz());
  const auto rows = static_cast<std::size_t>(plan->fingerprint.a_rows);
  const std::size_t response_bytes =
      out != nullptr
          ? c_nnz * sizeof(value_t)
          : c_nnz * (sizeof(index_t) + sizeof(value_t)) +
                (rows + 1) * sizeof(offset_t);
  if (!admit(response_bytes)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    resp.status = admission_rejection(response_bytes, "SpeckService");
    return resp;
  }
  SpGemmResult replayed;
  try {
    if (out != nullptr) {
      out->resize(c_nnz);
      replayed = speck_.replay_values_into(*plan, a, b,
                                           std::span<value_t>(*out), nullptr);
    } else {
      replayed = speck_.multiply_with_plan(*plan, a, b, nullptr);
    }
  } catch (...) {
    if (config_.memory_budget_bytes != 0) budget_.release(response_bytes);
    resp.status = status_from_current_exception();
    return resp;
  }
  if (config_.memory_budget_bytes != 0) budget_.release(response_bytes);
  if (!replayed.ok()) {
    resp.status = status_from_result(replayed, "SpeckService");
    return resp;
  }
  replays_.fetch_add(1, std::memory_order_relaxed);
  resp.replayed = true;
  resp.seconds = replayed.seconds;
  resp.c_nnz = plan->c_nnz();
  if (out == nullptr) resp.c = std::move(replayed.c);
  return resp;
}

std::shared_ptr<const SpeckPlan> SpeckService::plan_for(const Csr& a,
                                                        const Csr& b,
                                                        Status* status) {
  const PlanFingerprint fp = plan_fingerprint(a, b, speck_.config());
  if (std::shared_ptr<const SpeckPlan> plan = cache_.find(fp)) return plan;
  std::lock_guard<std::mutex> lock(plan_mutex_);
  if (std::shared_ptr<const SpeckPlan> plan = cache_.find(fp)) return plan;
  const std::size_t build_bytes = estimate_plan_bytes(a, b);
  if (!admit(build_bytes)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (status != nullptr) {
      *status = admission_rejection(build_bytes, "SpeckService::plan_for");
    }
    return nullptr;
  }
  SpeckPlan built;
  try {
    built = speck_.plan(a, b);
  } catch (...) {
    if (config_.memory_budget_bytes != 0) budget_.release(build_bytes);
    if (status != nullptr) *status = status_from_current_exception();
    return nullptr;
  }
  if (config_.memory_budget_bytes != 0) budget_.release(build_bytes);
  if (!built.complete) {
    if (status != nullptr) {
      *status = Status{ErrorCode::kBadInput, built.incomplete_reason,
                       "SpeckService::plan_for"};
    }
    return nullptr;
  }
  plans_built_.fetch_add(1, std::memory_order_relaxed);
  return cache_.insert(std::make_shared<const SpeckPlan>(std::move(built)));
}

ServiceStats SpeckService::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.replays = replays_.load(std::memory_order_relaxed);
  out.plans_built = plans_built_.load(std::memory_order_relaxed);
  out.full_runs = full_runs_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.cache = cache_.stats();
  return out;
}

}  // namespace speck
