#include "speck/service.h"

#include <bit>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "ref/gustavson.h"
#include "ref/masked.h"

namespace speck {
namespace {

Status status_from_result(const SpGemmResult& result, const char* where) {
  switch (result.status) {
    case SpGemmStatus::kOk:
      return {};
    case SpGemmStatus::kOutOfMemory:
      return Status{ErrorCode::kResourceExhausted, result.failure_reason,
                    where};
    case SpGemmStatus::kUnsupported:
      return Status{ErrorCode::kBadInput, result.failure_reason, where};
  }
  return Status{ErrorCode::kInternal, "unknown SpGemmStatus", where};
}

Status admission_rejection(std::size_t bytes, const char* where) {
  return Status{ErrorCode::kResourceExhausted,
                "admission control: request needs " + std::to_string(bytes) +
                    " bytes beyond the configured memory budget",
                where};
}

Status shed_status(const char* what) {
  return Status{ErrorCode::kResourceExhausted,
                std::string("load shed: ") + what, "SpeckService"};
}

Status deadline_status(const char* where) {
  return Status{ErrorCode::kDeadlineExceeded,
                "deadline exceeded before the request completed", where};
}

}  // namespace

bool MemoryBudget::try_acquire(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > limit_ - used_ || bytes > limit_) return false;
  used_ += bytes;
  return true;
}

bool MemoryBudget::acquire(std::size_t bytes) {
  return acquire_until(bytes, Deadline::infinite()) == Admit::kAdmitted;
}

MemoryBudget::Admit MemoryBudget::acquire_until(std::size_t bytes,
                                                const Deadline& deadline,
                                                std::size_t max_waiters,
                                                bool* waited) {
  if (waited != nullptr) *waited = false;
  if (bytes > limit_) return Admit::kNeverFits;  // waiting is forever
  std::unique_lock<std::mutex> lock(mutex_);
  const auto fits = [&] { return bytes <= limit_ - used_; };
  if (fits()) {
    used_ += bytes;
    return Admit::kAdmitted;
  }
  // Past this point the request did not get immediate admission.
  if (waited != nullptr) *waited = true;
  if (deadline.expired()) return Admit::kTimedOut;
  if (max_waiters > 0 && waiters_.size() >= max_waiters) {
    // LIFO-shed-oldest: the queue is full, so the request that has waited
    // longest (and burned the most of its own deadline) yields its slot to
    // the newcomer, which still has budget worth spending.
    Waiter* oldest = waiters_.front();
    waiters_.pop_front();
    oldest->shed = true;
    freed_.notify_all();
  }
  Waiter self;
  waiters_.push_back(&self);
  const auto done = [&] { return self.shed || fits(); };
  if (deadline.is_infinite()) {
    freed_.wait(lock, done);
  } else {
    freed_.wait_until(lock, deadline.time(), done);
  }
  // A shed waiter was already unlinked by its shedder; unlink ourselves on
  // the admit/timeout paths.
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (*it == &self) {
      waiters_.erase(it);
      break;
    }
  }
  if (self.shed) return Admit::kShed;
  if (fits()) {
    used_ += bytes;
    return Admit::kAdmitted;
  }
  return Admit::kTimedOut;
}

void MemoryBudget::release(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SPECK_ASSERT(bytes <= used_, "MemoryBudget release exceeds admitted bytes");
    used_ -= bytes;
  }
  freed_.notify_all();
}

std::size_t MemoryBudget::used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::size_t MemoryBudget::waiters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiters_.size();
}

SpeckService::SpeckService(Speck& speck, ServiceConfig config)
    : speck_(speck),
      config_(config),
      cache_(config.cache_shards, config.cache_limit_bytes),
      budget_(config.memory_budget_bytes) {
  validate(config_.faults);
}

std::size_t SpeckService::admission_bytes(std::size_t bytes) const {
  const double scale = config_.faults.admission_bytes_scale;
  if (scale <= 1.0) return bytes;
  // Chaos budget squeeze: inflate the charge (symmetrically at acquire and
  // release — callers admit and release the same scaled value).
  return static_cast<std::size_t>(static_cast<double>(bytes) * scale);
}

Deadline SpeckService::wait_deadline(const Deadline& deadline) const {
  if (config_.max_queue_wait_ms <= 0.0) return deadline;
  return Deadline::sooner(deadline,
                          Deadline::after_ms(config_.max_queue_wait_ms));
}

double SpeckService::retry_hint() const {
  // Pressure-scaled backoff: 10 ms per queued waiter, 10 ms floor.
  return 0.010 * static_cast<double>(budget_.waiters() + 1);
}

MemoryBudget::Admit SpeckService::admit(std::size_t bytes,
                                        const Deadline& deadline,
                                        bool* waited) {
  if (waited != nullptr) *waited = false;
  if (config_.memory_budget_bytes == 0) return MemoryBudget::Admit::kAdmitted;
  if (!config_.queue_on_budget) {
    return budget_.try_acquire(bytes) ? MemoryBudget::Admit::kAdmitted
                                      : MemoryBudget::Admit::kRejected;
  }
  return budget_.acquire_until(bytes, wait_deadline(deadline),
                               config_.max_queued_requests, waited);
}

bool SpeckService::fail_admission(MemoryBudget::Admit outcome,
                                  std::size_t bytes, const Deadline& deadline,
                                  Response* resp) {
  switch (outcome) {
    case MemoryBudget::Admit::kAdmitted:
      return false;
    case MemoryBudget::Admit::kRejected:
    case MemoryBudget::Admit::kNeverFits:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      resp->status = admission_rejection(bytes, "SpeckService");
      break;
    case MemoryBudget::Admit::kShed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      resp->status = shed_status("admission queue overflow");
      break;
    case MemoryBudget::Admit::kTimedOut:
      if (deadline.expired()) {
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        resp->status = deadline_status("budget wait");
      } else {
        // The max_queue_wait cap fired before the request's own deadline.
        shed_.fetch_add(1, std::memory_order_relaxed);
        resp->status = shed_status("budget wait exceeded max_queue_wait");
      }
      break;
  }
  resp->retry_after = retry_hint();
  return true;
}

bool SpeckService::is_quarantined(std::uint64_t key) {
  if (config_.quarantine_threshold <= 0) return false;
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  const auto it = quarantine_.find(key);
  return it != quarantine_.end() && Deadline::Clock::now() < it->second.until;
}

void SpeckService::note_plan_failure(std::uint64_t key) {
  if (config_.quarantine_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  QuarantineState& q = quarantine_[key];
  if (++q.consecutive_failures >= config_.quarantine_threshold) {
    q.consecutive_failures = 0;
    q.until = Deadline::Clock::now() +
              std::chrono::duration_cast<Deadline::Clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      config_.quarantine_cooldown_ms));
    quarantine_trips_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SpeckService::note_plan_success(std::uint64_t key) {
  if (config_.quarantine_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(quarantine_mutex_);
  quarantine_.erase(key);
}

SpeckService::Response SpeckService::multiply(const Csr& a, const Csr& b,
                                              const RequestOptions& opts) {
  return serve(a, b, nullptr, opts);
}

SpeckService::Response SpeckService::multiply_into(const Csr& a, const Csr& b,
                                                   std::vector<value_t>& out,
                                                   const RequestOptions& opts) {
  return serve(a, b, &out, opts);
}

SpeckService::Response SpeckService::serve_degraded(const Csr& a, const Csr& b,
                                                    std::vector<value_t>* out,
                                                    const char* why) {
  degraded_.fetch_add(1, std::memory_order_relaxed);
  Response resp;
  resp.degraded = true;
  try {
    // The exact host reference every pipeline output is asserted against —
    // degraded responses stay bit-identical to what the full pipeline would
    // have produced. No plan, no cache insert, no budget accounting (the
    // safety valve must not be throttled by the pressure it relieves).
    // A configured mask routes through the masked oracle, mirroring the
    // masked pipeline's semantics exactly.
    const Csr* mask = speck_.config().mask.get();
    Csr c = mask != nullptr ? masked_spgemm(a, b, *mask)
                            : gustavson_spgemm(a, b);
    resp.c_nnz = c.nnz();
    if (out != nullptr) {
      const std::span<const value_t> vals = c.values();
      out->assign(vals.begin(), vals.end());
    } else {
      resp.c = std::move(c);
    }
  } catch (...) {
    resp.status = status_from_current_exception();
    resp.status.message = std::string(why) + ": " + resp.status.message;
    if (resp.status.context.empty()) {
      resp.status.context = "SpeckService::degraded";
    }
  }
  return resp;
}

SpeckService::Response SpeckService::serve(const Csr& a, const Csr& b,
                                           std::vector<value_t>* out,
                                           const RequestOptions& opts) {
  const std::uint64_t request_id =
      requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  Response resp;
  if (opts.deadline.expired()) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    resp.status = deadline_status("admission");
    resp.retry_after = retry_hint();
    return resp;
  }
  // Chaos: eviction storm — every Nth request drops the whole cache.
  if (config_.faults.evict_every != 0 &&
      request_id % config_.faults.evict_every == 0) {
    cache_.evict(cache_.entries());
  }
  // A mask on the wrapped Speck's config turns every request into a masked
  // product: the fingerprint (and thus the cache key) carries the mask
  // pattern, so masked and unmasked plans for one structure never collide.
  const Csr* mask = speck_.config().mask.get();
  const PlanFingerprint fp =
      mask != nullptr ? plan_fingerprint_masked(a, b, *mask, speck_.config())
                      : plan_fingerprint(a, b, speck_.config());
  const std::uint64_t key = plan_key_hash(fp);

  // True when the request had to block anywhere — the plan mutex or the
  // budget queue. Surfaced as Response::queued so callers can separate the
  // pure lock-free fast path from convoy/queue casualties.
  bool queued = false;

  std::shared_ptr<const SpeckPlan> plan = cache_.find(fp);
  if (plan == nullptr && is_quarantined(key)) {
    // Circuit-broken pattern: its plan builds keep failing, so keep it away
    // from the plan mutex until the cooldown passes — one poisoned input
    // must not serialize every other client's miss.
    return serve_degraded(a, b, out,
                          "quarantined after repeated plan-build failures");
  }
  if (plan == nullptr) {
    // Miss: planning runs the full mutable pipeline, so it is serialized.
    // The double-checked find means concurrent first requests for one
    // pattern plan it exactly once.
    std::unique_lock<std::timed_mutex> lock(plan_mutex_, std::defer_lock);
    const Deadline mutex_deadline = wait_deadline(opts.deadline);
    if (!lock.try_lock()) {
      queued = true;
      if (mutex_deadline.is_infinite()) {
        lock.lock();
      } else if (!lock.try_lock_until(mutex_deadline.time())) {
        if (opts.deadline.expired()) {
          timed_out_.fetch_add(1, std::memory_order_relaxed);
          resp.status = deadline_status("plan mutex wait");
          resp.retry_after = retry_hint();
          return resp;
        }
        if (config_.degraded_mode) {
          return serve_degraded(a, b, out, "plan mutex contention");
        }
        shed_.fetch_add(1, std::memory_order_relaxed);
        resp.status = shed_status("plan mutex wait exceeded max_queue_wait");
        resp.retry_after = retry_hint();
        return resp;
      }
    }
    plan = cache_.find(fp);
    if (plan == nullptr) {
      if (opts.deadline.expired()) {
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        resp.status = deadline_status("plan mutex acquired");
        resp.retry_after = retry_hint();
        return resp;
      }
      // Chaos: injected planning latency, inside the critical section (the
      // convoy behind a slow build is exactly what it exercises).
      if (config_.faults.plan_delay_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            config_.faults.plan_delay_ms));
      }
      // Chaos: deterministic forced plan-build failure by fingerprint hash.
      if (config_.faults.plan_fail_mod != 0 &&
          key % config_.faults.plan_fail_mod == 0) {
        note_plan_failure(key);
        lock.unlock();
        if (config_.degraded_mode) {
          return serve_degraded(a, b, out, "injected plan-build failure");
        }
        resp.status = Status{ErrorCode::kInternal,
                             "fault injection: forced plan-build failure",
                             "SpeckService"};
        return resp;
      }
      const std::size_t build_bytes =
          admission_bytes(estimate_plan_bytes(a, b));
      bool budget_waited = false;
      const MemoryBudget::Admit admitted =
          admit(build_bytes, opts.deadline, &budget_waited);
      queued = queued || budget_waited;
      if (admitted != MemoryBudget::Admit::kAdmitted) {
        lock.unlock();
        if (config_.degraded_mode && !opts.deadline.expired()) {
          return serve_degraded(a, b, out, "admission pressure");
        }
        fail_admission(admitted, build_bytes, opts.deadline, &resp);
        return resp;
      }
      SpGemmResult full;
      SpeckPlan built;
      const CancelToken cancel(opts.deadline);
      try {
        built = mask != nullptr
                    ? speck_.plan_masked(a, b, *mask, &full, &cancel)
                    : speck_.plan(a, b, &full, &cancel);
      } catch (...) {
        // Bad inputs (dimension mismatch, corrupt CSR) throw from the
        // pipeline; a service must answer, not unwind a client thread.
        if (config_.memory_budget_bytes != 0) budget_.release(build_bytes);
        resp.status = status_from_current_exception();
        if (resp.status.code == ErrorCode::kDeadlineExceeded) {
          // Cancellation says nothing about the input; never quarantine it.
          timed_out_.fetch_add(1, std::memory_order_relaxed);
          resp.retry_after = retry_hint();
        } else {
          note_plan_failure(key);
        }
        return resp;
      }
      if (config_.memory_budget_bytes != 0) budget_.release(build_bytes);
      if (!full.ok()) {
        note_plan_failure(key);
        resp.status = status_from_result(full, "SpeckService");
        return resp;
      }
      note_plan_success(key);
      note_build_diagnostics(built.diagnostics);
      if (built.complete) {
        cache_.insert(std::make_shared<const SpeckPlan>(std::move(built)));
        plans_built_.fetch_add(1, std::memory_order_relaxed);
        resp.planned = true;
      } else {
        // Unplannable structure (e.g. 32-bit replay overflow): the full run
        // still answers this request; later requests run the pipeline again.
        full_runs_.fetch_add(1, std::memory_order_relaxed);
      }
      // The planning run already computed C with this request's values —
      // serve it directly, nothing is multiplied twice.
      resp.queued = queued;
      resp.seconds = full.seconds;
      resp.c_nnz = full.c.nnz();
      if (out != nullptr) {
        const std::span<const value_t> vals = full.c.values();
        out->assign(vals.begin(), vals.end());
      } else {
        resp.c = std::move(full.c);
      }
      return resp;
    }
  }

  // Hit: lock-free replay on the calling thread against the immutable plan.
  // Admission covers this request's in-flight response memory — the owned
  // variant materializes a full Csr (pattern copy + values), the into
  // variant only the values buffer. Degraded mode does not apply here: the
  // degraded path would use strictly more memory than the replay it would
  // replace.
  const auto c_nnz = static_cast<std::size_t>(plan->c_nnz());
  const auto rows = static_cast<std::size_t>(plan->fingerprint.a_rows);
  const std::size_t response_bytes = admission_bytes(
      out != nullptr ? c_nnz * sizeof(value_t)
                     : c_nnz * (sizeof(index_t) + sizeof(value_t)) +
                           (rows + 1) * sizeof(offset_t));
  bool budget_waited = false;
  const MemoryBudget::Admit admitted =
      admit(response_bytes, opts.deadline, &budget_waited);
  queued = queued || budget_waited;
  if (fail_admission(admitted, response_bytes, opts.deadline, &resp)) {
    return resp;
  }
  SpGemmResult replayed;
  try {
    if (out != nullptr) {
      out->resize(c_nnz);
      replayed = speck_.replay_values_into(*plan, a, b,
                                           std::span<value_t>(*out), nullptr);
    } else {
      replayed = speck_.multiply_with_plan(*plan, a, b, nullptr);
    }
  } catch (...) {
    if (config_.memory_budget_bytes != 0) budget_.release(response_bytes);
    resp.status = status_from_current_exception();
    return resp;
  }
  if (config_.memory_budget_bytes != 0) budget_.release(response_bytes);
  if (!replayed.ok()) {
    resp.status = status_from_result(replayed, "SpeckService");
    return resp;
  }
  replays_.fetch_add(1, std::memory_order_relaxed);
  resp.replayed = true;
  resp.queued = queued;
  resp.seconds = replayed.seconds;
  resp.c_nnz = plan->c_nnz();
  if (out == nullptr) resp.c = std::move(replayed.c);
  return resp;
}

std::shared_ptr<const SpeckPlan> SpeckService::plan_for(const Csr& a,
                                                        const Csr& b,
                                                        Status* status) {
  const Csr* mask = speck_.config().mask.get();
  const PlanFingerprint fp =
      mask != nullptr ? plan_fingerprint_masked(a, b, *mask, speck_.config())
                      : plan_fingerprint(a, b, speck_.config());
  if (std::shared_ptr<const SpeckPlan> plan = cache_.find(fp)) return plan;
  std::lock_guard<std::timed_mutex> lock(plan_mutex_);
  if (std::shared_ptr<const SpeckPlan> plan = cache_.find(fp)) return plan;
  const std::size_t build_bytes = admission_bytes(estimate_plan_bytes(a, b));
  if (admit(build_bytes, Deadline::infinite()) !=
      MemoryBudget::Admit::kAdmitted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (status != nullptr) {
      *status = admission_rejection(build_bytes, "SpeckService::plan_for");
    }
    return nullptr;
  }
  SpeckPlan built;
  try {
    built = mask != nullptr ? speck_.plan_masked(a, b, *mask) : speck_.plan(a, b);
  } catch (...) {
    if (config_.memory_budget_bytes != 0) budget_.release(build_bytes);
    if (status != nullptr) *status = status_from_current_exception();
    return nullptr;
  }
  if (config_.memory_budget_bytes != 0) budget_.release(build_bytes);
  if (!built.complete) {
    if (status != nullptr) {
      *status = Status{ErrorCode::kBadInput, built.incomplete_reason,
                       "SpeckService::plan_for"};
    }
    return nullptr;
  }
  plans_built_.fetch_add(1, std::memory_order_relaxed);
  note_build_diagnostics(built.diagnostics);
  return cache_.insert(std::make_shared<const SpeckPlan>(std::move(built)));
}

void SpeckService::note_build_diagnostics(const SpeckDiagnostics& diagnostics) {
  estimator_fallback_rows_.fetch_add(
      static_cast<std::uint64_t>(
          diagnostics.numeric.estimate_underflow_rows),
      std::memory_order_relaxed);
  partition_steals_.fetch_add(
      static_cast<std::uint64_t>(diagnostics.partition.steal_count()),
      std::memory_order_relaxed);
  const double ratio = diagnostics.partition.imbalance_ratio();
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(ratio);
  std::uint64_t seen =
      worst_partition_imbalance_bits_.load(std::memory_order_relaxed);
  while (bits > seen &&
         !worst_partition_imbalance_bits_.compare_exchange_weak(
             seen, bits, std::memory_order_relaxed)) {
  }
}

ServiceStats SpeckService::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.replays = replays_.load(std::memory_order_relaxed);
  out.plans_built = plans_built_.load(std::memory_order_relaxed);
  out.full_runs = full_runs_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.timed_out = timed_out_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.quarantine_trips = quarantine_trips_.load(std::memory_order_relaxed);
  out.estimator_fallback_rows =
      estimator_fallback_rows_.load(std::memory_order_relaxed);
  out.partition_steals = partition_steals_.load(std::memory_order_relaxed);
  out.worst_partition_imbalance = std::bit_cast<double>(
      worst_partition_imbalance_bits_.load(std::memory_order_relaxed));
  out.cache = cache_.stats();
  return out;
}

}  // namespace speck
