// Conditional global load balancer: binning by scratchpad demand plus the
// parallel block-merge for the smallest bin (paper §4.2, Algorithms 2 / Fig. 3).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "sim/launch.h"
#include "speck/config.h"

namespace speck {

/// Assignment of matrix rows to simulated thread blocks.
struct BinPlan {
  /// True when the global load balancer (binning + merge) ran; false when
  /// the uniform fallback was used.
  bool used_load_balancer = false;

  /// Rows in execution order: bin by bin, original row order inside a bin.
  std::vector<index_t> row_order;

  struct Block {
    std::size_t begin = 0;  ///< range into row_order
    std::size_t end = 0;
    int config = 0;  ///< index into kernel_configs(), smallest first
  };
  std::vector<Block> blocks;

  /// Temporary device memory the load balancer itself required.
  std::size_t lb_memory_bytes = 0;

  /// Allocated host-memory footprint of the stored plan (capacity-based,
  /// for SpeckPlan byte accounting).
  std::size_t byte_size() const {
    return row_order.capacity() * sizeof(index_t) +
           blocks.capacity() * sizeof(Block);
  }
};

struct GlobalLbInputs {
  /// Per-row scratchpad demand in hash entries: intermediate products for
  /// the symbolic pass, exact C row nnz inflated by the fill limit for the
  /// numeric pass.
  std::span<const offset_t> entries_per_row;
  bool symbolic = true;
};

/// The quantities the Table 2 decision rule inspects; exposed so the
/// auto-tuner can evaluate candidate thresholds without re-running SpGEMM.
struct LbDecisionStats {
  double ratio = 0.0;        ///< m_max / m_avg
  index_t rows = 0;          ///< rows of C
  bool large_kernel = false; ///< longest row needs one of the largest kernels
};

LbDecisionStats lb_decision_stats(const GlobalLbInputs& in,
                                  const std::vector<KernelConfig>& configs,
                                  const SpeckConfig& cfg);

/// Pure threshold evaluation: LB runs when ratio and row count both clear
/// the applicable set.
bool lb_decision(const LbDecisionStats& stats,
                 const LoadBalanceThresholds& general,
                 const LoadBalanceThresholds& large);

/// Decision rule from Table 2: run the balancer when the demand variance
/// (m_max/m_avg) and the matrix size clear the (auto-tuned) thresholds;
/// the large-kernel threshold set applies when the longest row needs one of
/// the largest kernel configurations.
bool should_use_global_lb(const GlobalLbInputs& in,
                          const std::vector<KernelConfig>& configs,
                          const SpeckConfig& cfg);

/// Index of the smallest configuration whose hash capacity fits `entries`;
/// returns the largest configuration when none does.
int config_for_entries(const std::vector<KernelConfig>& configs, offset_t entries,
                       bool symbolic);

/// Builds the block plan. When the balancer runs, its simulated cost
/// (binning pass + block merge) is charged to `lb_launch`.
BinPlan plan_global_lb(const GlobalLbInputs& in,
                       const std::vector<KernelConfig>& configs,
                       const SpeckConfig& cfg, sim::Launch& lb_launch);

/// Exposed for testing: Algorithm 2 block merge over the given per-row
/// demands. Returns block sizes as (begin,end) index pairs; merged blocks
/// never exceed `capacity` entries or `max_rows` rows.
std::vector<std::pair<std::size_t, std::size_t>> block_merge(
    std::span<const offset_t> demands, offset_t capacity, int max_rows);

}  // namespace speck
