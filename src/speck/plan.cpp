#include "speck/plan.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/prefix_sum.h"
#include "common/prng.h"
#include "common/thread_pool.h"
#include "speck/workspace.h"

namespace speck {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ v;
  return splitmix64(s);
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t planning_config_hash(const SpeckConfig& cfg) {
  std::uint64_t h = 0x5eC4'0Bad'F00dULL;
  const SpeckThresholds& t = cfg.thresholds;
  for (const LoadBalanceThresholds* lb :
       {&t.symbolic, &t.symbolic_large, &t.numeric, &t.numeric_large}) {
    h = mix(h, lb->ratio);
    h = mix(h, static_cast<std::uint64_t>(lb->min_rows));
  }
  h = mix(h, static_cast<std::uint64_t>(t.symbolic_large_kernel_count));
  h = mix(h, static_cast<std::uint64_t>(t.numeric_large_kernel_count));

  const SpeckFeatures& f = cfg.features;
  const std::uint64_t feature_bits =
      (f.dense_accumulation ? 1ULL : 0ULL) | (f.direct_rows ? 2ULL : 0ULL) |
      (f.dynamic_group_size ? 4ULL : 0ULL) | (f.block_merge ? 8ULL : 0ULL) |
      (static_cast<std::uint64_t>(f.global_lb_symbolic) << 4) |
      (static_cast<std::uint64_t>(f.global_lb_numeric) << 8);
  h = mix(h, feature_bits);
  h = mix(h, static_cast<std::uint64_t>(f.fixed_group_size));

  h = mix(h, cfg.max_numeric_fill);
  h = mix(h, cfg.symbolic_dense_factor);
  h = mix(h, cfg.dense_density_threshold);
  h = mix(h, static_cast<std::uint64_t>(cfg.max_rows_per_block));

  // The *resolved* planning mode (never kAuto, so an SPECK_PLANNING change
  // between runs changes the fingerprint): estimated and exact plans derive
  // different binning / kernel choices from the same structure, so the cache
  // must never serve one for the other. The estimator knobs only matter in
  // estimated mode but are hashed unconditionally to keep the hash a pure
  // function of the config.
  h = mix(h, static_cast<std::uint64_t>(resolve_planning(cfg.planning)));
  h = mix(h, static_cast<std::uint64_t>(cfg.estimator_samples));
  h = mix(h, cfg.estimator_safety_margin);
  h = mix(h, cfg.estimator_seed);

  // Execution-shape knobs stay out of the hash on purpose, exactly like
  // host_threads: partitions / partition_steal / numa_local_b only move
  // work between teams and never change a single output byte or PassStats
  // counter (the two-level executor's bit-identity invariant), so a plan
  // built at any partition count replays correctly at every other.

  // Only the pipeline-affecting fault fields enter the hash: the serving
  // faults (plan_fail_mod, plan_delay_ms, admission_bytes_scale,
  // evict_every) never change what a plan computes, so hashing them would
  // only fragment the cache.
  const FaultSpec& fs = cfg.faults;
  h = mix(h, fs.estimate_scale);
  h = mix(h, fs.estimate_jitter);
  h = mix(h, fs.seed);
  h = mix(h, static_cast<std::uint64_t>(fs.hash_overflow_after));
  h = mix(h, fs.scratchpad_scale);
  h = mix(h, static_cast<std::uint64_t>(fs.memory_budget_bytes));
  h = mix(h, fs.estimator_scale);
  return h;
}

namespace {

/// Four independent splitmix chains over a strided walk of `data`, folded
/// into `h` at the end. The single-chain version is a serial dependency
/// chain (one splitmix64 latency per element); four lanes expose enough ILP
/// to run at memory speed. Still a pure function of the element sequence.
template <typename T>
std::uint64_t hash_array_lanes(std::uint64_t h, std::span<const T> data) {
  std::uint64_t l0 = h ^ 0x9E37'79B9'7F4A'7C15ULL;
  std::uint64_t l1 = h ^ 0xBF58'476D'1CE4'E5B9ULL;
  std::uint64_t l2 = h ^ 0x94D0'49BB'1331'11EBULL;
  std::uint64_t l3 = h ^ 0xD6E8'FEB8'6659'FD93ULL;
  std::size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    l0 = mix(l0, static_cast<std::uint64_t>(data[i]));
    l1 = mix(l1, static_cast<std::uint64_t>(data[i + 1]));
    l2 = mix(l2, static_cast<std::uint64_t>(data[i + 2]));
    l3 = mix(l3, static_cast<std::uint64_t>(data[i + 3]));
  }
  for (; i < data.size(); ++i) {
    l0 = mix(l0, static_cast<std::uint64_t>(data[i]));
  }
  return mix(mix(mix(mix(h, l0), l1), l2), l3);
}

}  // namespace

std::uint64_t csr_pattern_hash(const Csr& m) {
  std::uint64_t h = 0x9E37'79B9'7F4A'7C15ULL;
  h = mix(h, static_cast<std::uint64_t>(m.rows()));
  h = mix(h, static_cast<std::uint64_t>(m.cols()));
  h = hash_array_lanes(h, m.row_offsets());
  h = hash_array_lanes(h, m.col_indices());
  return h;
}

PlanFingerprint plan_fingerprint(const Csr& a, const Csr& b,
                                 const SpeckConfig& cfg,
                                 bool with_pattern_hashes) {
  PlanFingerprint fp;
  fp.a_rows = a.rows();
  fp.a_cols = a.cols();
  fp.b_rows = b.rows();
  fp.b_cols = b.cols();
  fp.a_nnz = a.nnz();
  fp.b_nnz = b.nnz();
  fp.config_hash = planning_config_hash(cfg);
  if (with_pattern_hashes) {
    fp.a_pattern_hash = csr_pattern_hash(a);
    fp.b_pattern_hash = csr_pattern_hash(b);
  }
  return fp;
}

PlanFingerprint plan_fingerprint_masked(const Csr& a, const Csr& b,
                                        const Csr& mask, const SpeckConfig& cfg,
                                        bool with_pattern_hashes) {
  PlanFingerprint fp = plan_fingerprint(a, b, cfg, with_pattern_hashes);
  fp.masked = true;
  fp.mask_rows = mask.rows();
  fp.mask_cols = mask.cols();
  fp.mask_nnz = mask.nnz();
  if (with_pattern_hashes) fp.mask_pattern_hash = csr_pattern_hash(mask);
  return fp;
}

namespace {

/// Heap bytes behind a std::string: zero while the small-string buffer
/// suffices, capacity + terminator once it spills to the heap.
std::size_t string_heap_bytes(const std::string& s) {
  return s.capacity() > sizeof(std::string) - 1 ? s.capacity() + 1 : 0;
}

}  // namespace

std::size_t SpeckPlan::byte_size() const {
  // Allocated (capacity-based) footprint of everything a cached plan pins:
  // planning state, the C pattern arrays, the replay program, the captured
  // diagnostics tail and the replay trace including each launch's name
  // string. The size-based accounting this replaces undercounted all of the
  // heap slack plus every string, which let the plan-cache byte budget admit
  // more than it was configured for.
  std::size_t trace_bytes = replay_trace.capacity() * sizeof(sim::LaunchResult);
  for (const sim::LaunchResult& launch : replay_trace) {
    trace_bytes += string_heap_bytes(launch.name);
  }
  return sizeof(SpeckPlan) + analysis.byte_size() + symbolic_plan.byte_size() +
         numeric_plan.byte_size() + row_nnz.capacity() * sizeof(index_t) +
         c_row_offsets.capacity() * sizeof(offset_t) +
         c_col_indices.capacity() * sizeof(index_t) + program.byte_size() +
         trace_bytes + string_heap_bytes(incomplete_reason) +
         string_heap_bytes(diagnostics.plan_fallback_reason);
}

std::size_t estimate_plan_bytes(const Csr& a, const Csr& b) {
  // Upper bound on what a plan for (a, b) will pin, computable before any
  // planning work: the replay program stores one packed dest word per
  // intermediate product (the value positions are re-derived from the CSR
  // structure at replay time); the C pattern is at most one entry per
  // product plus the row-offset array; the per-row planning state (analysis
  // arrays, bin plans, row_nnz) is a small per-row constant.
  std::size_t ops = 0;
  for (const index_t k : a.col_indices()) {
    ops += static_cast<std::size_t>(b.row_length(k));
  }
  const auto rows = static_cast<std::size_t>(a.rows());
  const std::size_t program_bytes =
      ops * sizeof(std::uint32_t) + (rows + 1) * sizeof(offset_t);
  const std::size_t pattern_bytes =
      ops * sizeof(index_t) + (rows + 1) * sizeof(offset_t);
  const std::size_t planning_bytes =
      rows * (sizeof(offset_t) + 4 * sizeof(index_t) + sizeof(index_t));
  return sizeof(SpeckPlan) + program_bytes + pattern_bytes + planning_bytes;
}

NumericReplayProgram build_replay_program(const KernelContext& ctx,
                                          const BinPlan& numeric_plan,
                                          std::span<const index_t> row_nnz,
                                          std::span<const offset_t> c_row_offsets,
                                          std::span<const index_t> c_col_indices) {
  const Csr& a = *ctx.a;
  const Csr& b = *ctx.b;
  const auto rows = static_cast<std::size_t>(a.rows());

  NumericReplayProgram program;
  program.row_op_start.assign(rows + 1, 0);
  if (rows == 0) return program;

  ThreadPool& pool = pool_or_global(ctx.pool);
  WorkspacePool local_workspaces;
  WorkspacePool& workspaces =
      ctx.workspaces != nullptr ? *ctx.workspaces : local_workspaces;
  workspaces.ensure(pool.thread_count());

  // Accumulator method per row, mirroring run_numeric_block's block-level
  // selection exactly: a block is all-direct only when every row qualifies;
  // otherwise single-row blocks may pick dense and everything else hashes.
  std::vector<RowMethod> methods(rows, RowMethod::kHash);
  for (const BinPlan::Block& block : numeric_plan.blocks) {
    const std::span<const index_t> block_rows(
        numeric_plan.row_order.data() + block.begin, block.end - block.begin);
    if (block_rows.empty()) continue;
    bool all_direct = ctx.cfg->features.direct_rows;
    for (const index_t r : block_rows) {
      all_direct = all_direct && a.row_length(r) == 1;
    }
    if (all_direct) {
      for (const index_t r : block_rows) {
        methods[static_cast<std::size_t>(r)] = RowMethod::kDirect;
      }
      continue;
    }
    if (block_rows.size() == 1) {
      const index_t r = block_rows.front();
      RowMethod method =
          choose_numeric_method(ctx, r, row_nnz[static_cast<std::size_t>(r)],
                                /*merged_block=*/false, block.config);
      // A direct singleton would have made the block all-direct above; the
      // numeric pass routes any other non-dense choice through hashing.
      if (method != RowMethod::kDense) method = RowMethod::kHash;
      methods[static_cast<std::size_t>(r)] = method;
    }
  }

  // Exact per-row op counts (never the fault-perturbed analysis estimates),
  // then a prefix sum (SIMD scan) so every row owns its program slice.
  // Without a fault injector the analysis products ARE the exact counts
  // (sum of referenced B-row lengths per row of A), so the O(products)
  // recount walk collapses to an O(rows) copy.
  std::vector<offset_t>& starts = program.row_op_start;
  if (ctx.faults == nullptr && ctx.analysis != nullptr &&
      ctx.analysis->products.size() == rows) {
    std::copy(ctx.analysis->products.begin(), ctx.analysis->products.end(),
              starts.begin() + 1);
  } else {
    pool.parallel_for(rows, 512,
                      [&](std::size_t begin, std::size_t end, int /*worker*/) {
                        for (std::size_t r = begin; r < end; ++r) {
                          offset_t ops = 0;
                          for (const index_t k :
                               a.row_cols(static_cast<index_t>(r))) {
                            ops += b.row_length(k);
                          }
                          starts[r + 1] = ops;
                        }
                      });
  }
  inclusive_prefix_sum(std::span<offset_t>(starts.data() + 1, rows), ctx.simd);

  const auto total_ops = static_cast<std::size_t>(starts.back());
  program.dest.resize(total_ops);

  const auto b_cols_total = static_cast<std::size_t>(b.cols());
  pool.parallel_for(rows, 256, [&](std::size_t begin, std::size_t end,
                                   int worker) {
    std::vector<std::uint8_t>& seen = workspaces.at(worker).replay_seen();
    // Column -> local C-row slot scatter map. Never cleared between rows:
    // each row writes all of its own columns before reading, and a stale
    // entry can only surface for a column missing from the frozen pattern,
    // which the recheck below rejects.
    std::vector<std::uint32_t>& colmap = workspaces.at(worker).replay_colmap();
    if (colmap.size() < b_cols_total) colmap.resize(b_cols_total);
    for (std::size_t r = begin; r < end; ++r) {
      auto op = static_cast<std::size_t>(starts[r]);
      const auto c_begin = static_cast<std::size_t>(c_row_offsets[r]);
      const auto c_end = static_cast<std::size_t>(c_row_offsets[r + 1]);
      const auto a_cols = a.row_cols(static_cast<index_t>(r));

      if (methods[r] == RowMethod::kDirect) {
        // Single A entry: the C row is the referenced B row, in order.
        if (!a_cols.empty()) {
          const auto len = static_cast<std::size_t>(b.row_length(a_cols.front()));
          for (std::size_t j = 0; j < len; ++j) {
            program.dest[op] = static_cast<std::uint32_t>(c_begin + j) |
                               NumericReplayProgram::kAssignFirst;
            ++op;
          }
        }
        continue;
      }

      const bool hash = methods[r] == RowMethod::kHash;
      const std::span<const index_t> c_cols =
          c_col_indices.subspan(c_begin, c_end - c_begin);
      if (hash) seen.assign(c_cols.size(), 0);
      for (std::size_t l = 0; l < c_cols.size(); ++l) {
        colmap[static_cast<std::size_t>(c_cols[l])] =
            static_cast<std::uint32_t>(l);
      }
      for (std::size_t i = 0; i < a_cols.size(); ++i) {
        const index_t k = a_cols[i];
        const auto b_cols = b.row_cols(k);
        for (std::size_t j = 0; j < b_cols.size(); ++j) {
          const auto local = static_cast<std::size_t>(
              colmap[static_cast<std::size_t>(b_cols[j])]);
          SPECK_ASSERT(local < c_cols.size() && c_cols[local] == b_cols[j],
                       "replay program: product column missing from the "
                       "frozen C pattern");
          const bool assign = hash && seen[local] == 0;
          program.dest[op] =
              static_cast<std::uint32_t>(c_begin + local) |
              (assign ? NumericReplayProgram::kAssignFirst : 0u);
          if (hash) seen[local] = 1;
          ++op;
        }
      }
    }
  });

  return program;
}

NumericReplayProgram build_replay_program_masked(
    const KernelContext& ctx, std::span<const offset_t> c_row_offsets,
    std::span<const index_t> c_col_indices) {
  const Csr& a = *ctx.a;
  const Csr& b = *ctx.b;
  const auto rows = static_cast<std::size_t>(a.rows());

  NumericReplayProgram program;
  program.masked = true;
  program.row_op_start.assign(rows + 1, 0);
  if (rows == 0) return program;

  ThreadPool& pool = pool_or_global(ctx.pool);
  WorkspacePool local_workspaces;
  WorkspacePool& workspaces =
      ctx.workspaces != nullptr ? *ctx.workspaces : local_workspaces;
  workspaces.ensure(pool.thread_count());

  // Exact per-row op counts — the full product enumeration, not the masked
  // output size: the replay walks every product and drops the off-mask ones
  // via kSkip, which is what keeps the walk a pure function of A's and B's
  // structure (same recount/copy split as the unmasked build).
  std::vector<offset_t>& starts = program.row_op_start;
  if (ctx.faults == nullptr && ctx.analysis != nullptr &&
      ctx.analysis->products.size() == rows) {
    std::copy(ctx.analysis->products.begin(), ctx.analysis->products.end(),
              starts.begin() + 1);
  } else {
    pool.parallel_for(rows, 512,
                      [&](std::size_t begin, std::size_t end, int /*worker*/) {
                        for (std::size_t r = begin; r < end; ++r) {
                          offset_t ops = 0;
                          for (const index_t k :
                               a.row_cols(static_cast<index_t>(r))) {
                            ops += b.row_length(k);
                          }
                          starts[r + 1] = ops;
                        }
                      });
  }
  inclusive_prefix_sum(std::span<offset_t>(starts.data() + 1, rows), ctx.simd);

  const auto total_ops = static_cast<std::size_t>(starts.back());
  program.dest.resize(total_ops);

  const auto b_cols_total = static_cast<std::size_t>(b.cols());
  pool.parallel_for(rows, 256, [&](std::size_t begin, std::size_t end,
                                   int worker) {
    // Column -> local C-row slot scatter map, never cleared between rows:
    // a stale entry only surfaces for a column missing from the row's
    // frozen pattern, exactly the case the recheck below turns into kSkip.
    std::vector<std::uint32_t>& colmap = workspaces.at(worker).replay_colmap();
    if (colmap.size() < b_cols_total) colmap.resize(b_cols_total);
    for (std::size_t r = begin; r < end; ++r) {
      auto op = static_cast<std::size_t>(starts[r]);
      const auto c_begin = static_cast<std::size_t>(c_row_offsets[r]);
      const auto c_end = static_cast<std::size_t>(c_row_offsets[r + 1]);
      const std::span<const index_t> c_cols =
          c_col_indices.subspan(c_begin, c_end - c_begin);
      for (std::size_t l = 0; l < c_cols.size(); ++l) {
        colmap[static_cast<std::size_t>(c_cols[l])] =
            static_cast<std::uint32_t>(l);
      }
      for (const index_t k : a.row_cols(static_cast<index_t>(r))) {
        for (const index_t col : b.row_cols(k)) {
          const auto local =
              static_cast<std::size_t>(colmap[static_cast<std::size_t>(col)]);
          program.dest[op] =
              local < c_cols.size() && c_cols[local] == col
                  ? static_cast<std::uint32_t>(c_begin + local)
                  : NumericReplayProgram::kSkip;
          ++op;
        }
      }
    }
  });

  return program;
}

}  // namespace speck
