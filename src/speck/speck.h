// Public entry point: the spECK SpGEMM algorithm (paper §4, Fig. 2).
//
// Pipeline: row analysis -> (conditional) global load balancing -> symbolic
// SpGEMM -> (conditional) global load balancing -> numeric SpGEMM -> sorting.
#pragma once

#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"
#include "ref/spgemm_api.h"
#include "speck/config.h"
#include "speck/kernels.h"

namespace speck {

/// Per-run diagnostics beyond the common SpGemmResult (used by tests and
/// the ablation benchmarks).
struct SpeckDiagnostics {
  bool symbolic_lb_used = false;
  bool numeric_lb_used = false;
  /// Inputs to the Table 2 decision rule (consumed by the auto-tuner).
  LbDecisionStats symbolic_decision;
  LbDecisionStats numeric_decision;
  PassStats symbolic;
  PassStats numeric;
  offset_t products = 0;
  offset_t radix_sorted_elements = 0;
  int symbolic_blocks = 0;
  int numeric_blocks = 0;
  bool wide_keys = false;
};

class Speck final : public SpGemmAlgorithm {
 public:
  Speck(sim::DeviceSpec device, sim::CostModel model, SpeckConfig config = {})
      : SpGemmAlgorithm(device, model),
        config_(config),
        kernel_configs_(kernel_configs(device)) {
    validate(config_);
  }

  std::string name() const override { return "speck"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;

  /// Outcome of the non-throwing entry point. `status.ok()` implies
  /// `result` carries a successful multiplication; otherwise `result` is
  /// whatever partial state was produced (timeline, failure_reason) and
  /// `status` classifies the failure.
  struct TryMultiplyOutcome {
    Status status;
    SpGemmResult result;
    bool ok() const { return status.ok(); }
  };

  /// Non-throwing variant of multiply(): every exception the pipeline can
  /// raise — BadInput from validation, ResourceExhausted from checked
  /// arithmetic, InternalError from invariant checks — is caught and mapped
  /// to a Status; structured SpGemmResult failures (simulated OOM,
  /// unsupported shapes) are mapped likewise.
  TryMultiplyOutcome try_multiply(const Csr& a, const Csr& b) noexcept;

  const SpeckConfig& config() const { return config_; }
  SpeckConfig& config() { return config_; }
  const std::vector<KernelConfig>& configs() const { return kernel_configs_; }

  /// Diagnostics of the most recent multiply() call.
  const SpeckDiagnostics& last_diagnostics() const { return diagnostics_; }

  /// Launch-by-launch execution trace of the most recent multiply() call.
  const sim::LaunchTrace& last_trace() const { return trace_; }

  /// The pool this instance parallelizes host stages over: a private pool
  /// of `config().host_threads` threads when that is non-zero, else null
  /// (the stages then use the process-wide pool). Rebuilt lazily when the
  /// configured count changes.
  ThreadPool* host_pool();

  /// Per-worker kernel workspaces, owned by the instance so repeated
  /// multiplies reuse warm buffers (the zero-allocation hot path).
  WorkspacePool& workspaces() { return workspaces_; }

 private:
  SpeckConfig config_;
  std::vector<KernelConfig> kernel_configs_;
  SpeckDiagnostics diagnostics_;
  sim::LaunchTrace trace_;
  std::unique_ptr<ThreadPool> pool_;
  WorkspacePool workspaces_;
};

/// Symbolic-only estimate: the exact NNZ of C = A*B plus the simulated cost
/// of obtaining it (analysis + symbolic pass). Lets applications size output
/// buffers or decide between algorithms before committing to the numeric
/// work (the same information spECK's numeric load balancer consumes).
struct SymbolicEstimate {
  std::vector<index_t> row_nnz;
  offset_t c_nnz = 0;
  offset_t products = 0;
  double seconds = 0.0;
};

SymbolicEstimate symbolic_estimate(Speck& speck, const Csr& a, const Csr& b);

}  // namespace speck
