// Public entry point: the spECK SpGEMM algorithm (paper §4, Fig. 2).
//
// Pipeline: row analysis -> (conditional) global load balancing -> symbolic
// SpGEMM -> (conditional) global load balancing -> numeric SpGEMM -> sorting.
#pragma once

#include <memory>
#include <span>

#include "common/check.h"
#include "common/deadline.h"
#include "common/thread_pool.h"
#include "ref/spgemm_api.h"
#include "sim/memory_tracker.h"
#include "speck/config.h"
#include "speck/kernels.h"
#include "speck/plan.h"
#include "speck/plan_cache.h"

namespace speck {

class Speck final : public SpGemmAlgorithm {
 public:
  Speck(sim::DeviceSpec device, sim::CostModel model, SpeckConfig config = {})
      : SpGemmAlgorithm(device, model),
        config_(config),
        kernel_configs_(kernel_configs(device)) {
    validate(config_);
  }

  std::string name() const override { return "speck"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;

  /// Output-masked multiply: C = (A * B) ∘ mask, the mask taken structurally
  /// (GraphBLAS-style — its values never matter). Only mask positions can
  /// appear in C; a mask position touched by at least one intermediate
  /// product is kept even when the accumulated value is 0.0, an untouched
  /// one is dropped. The pipeline skips the symbolic pass entirely — the
  /// mask row *is* the candidate pattern — and sizes accumulators off
  /// min(products, mask_row_nnz), which is what makes masked products (the
  /// triangle-counting kernel tricount builds on) cheaper than
  /// multiply-then-filter. Transparently plan-cached like multiply(), keyed
  /// by the extended masked fingerprint. Equivalent to setting
  /// SpeckConfig::mask and calling multiply().
  SpGemmResult multiply_masked(const Csr& a, const Csr& b, const Csr& mask);

  /// Outcome of the non-throwing entry point. `status.ok()` implies
  /// `result` carries a successful multiplication; otherwise `result` is
  /// whatever partial state was produced (timeline, failure_reason) and
  /// `status` classifies the failure.
  struct TryMultiplyOutcome {
    Status status;
    SpGemmResult result;
    bool ok() const { return status.ok(); }
  };

  /// Non-throwing variant of multiply(): every exception the pipeline can
  /// raise — BadInput from validation, ResourceExhausted from checked
  /// arithmetic, InternalError from invariant checks — is caught and mapped
  /// to a Status; structured SpGemmResult failures (simulated OOM,
  /// unsupported shapes) are mapped likewise.
  TryMultiplyOutcome try_multiply(const Csr& a, const Csr& b) noexcept;

  /// Runs the full pipeline once and freezes everything structure-derived
  /// into a SpeckPlan (docs/performance.md "Structure reuse"). The full
  /// run's result — including the computed C with the inputs' current
  /// values — is stored into `*full_result` when non-null. On failure the
  /// returned plan has `complete == false` and multiply_with_plan falls
  /// back to the full pipeline. A non-null `cancel` token is polled between
  /// pipeline phases; an expired/cancelled token throws DeadlineExceeded
  /// from the coordinating thread (cooperative cancellation — running
  /// kernels are never interrupted).
  SpeckPlan plan(const Csr& a, const Csr& b, SpGemmResult* full_result = nullptr,
                 const CancelToken* cancel = nullptr);

  /// Masked counterpart of plan(): freezes the masked pipeline's structure
  /// state (fingerprint includes the mask pattern) so masked products replay
  /// values-only like any fixed-pattern multiply. Replay the result with
  /// multiply_with_plan / replay_values_into while SpeckConfig::mask holds
  /// the same mask — a masked plan is rejected when the configured mask is
  /// absent or different.
  SpeckPlan plan_masked(const Csr& a, const Csr& b, const Csr& mask,
                        SpGemmResult* full_result = nullptr,
                        const CancelToken* cancel = nullptr);

  /// Values-only multiply against a frozen plan: skips row analysis, global
  /// load balancing, the symbolic pass and sorting, and writes values
  /// straight into the plan's cached C pattern (simulated seconds cover
  /// only the numeric + sorting stages). The plan's fingerprint is verified
  /// first — the O(nnz) pattern-hash check under `validate_inputs`, the
  /// O(1) dims/nnz/config check otherwise; a mismatched or incomplete plan
  /// falls back to the full pipeline and sets
  /// `last_diagnostics().plan_fallback`. Single-caller API (mutates
  /// last_diagnostics()/last_trace()); concurrent clients use the const
  /// overload below.
  SpGemmResult multiply_with_plan(const SpeckPlan& plan, const Csr& a,
                                  const Csr& b);

  /// Thread-safe replay for concurrent clients sharing this instance: const,
  /// touches no member state (diagnostics go to `diag` when non-null, no
  /// launch trace is recorded) and runs the replay serially on the calling
  /// thread — with N clients each replaying their own request, intra-request
  /// parallelism would only contend. Unlike the legacy overload there is no
  /// full-pipeline fallback (that would need mutable state): a stale or
  /// incomplete plan returns SpGemmStatus::kUnsupported with the reason, and
  /// the caller re-plans. Results are bit-identical to multiply().
  SpGemmResult multiply_with_plan(const SpeckPlan& plan, const Csr& a,
                                  const Csr& b, SpeckDiagnostics* diag) const;

  /// Like the const multiply_with_plan, but writes the result values into
  /// caller-owned storage (`out.size()` must equal the plan's c_nnz) and
  /// leaves `result.c` empty — the C pattern lives in the plan, shared by
  /// every replay of it. With a reused buffer the steady state performs zero
  /// heap allocations: the service hot path.
  SpGemmResult replay_values_into(const SpeckPlan& plan, const Csr& a,
                                  const Csr& b, std::span<value_t> out,
                                  SpeckDiagnostics* diag = nullptr) const;

  const SpeckConfig& config() const { return config_; }
  SpeckConfig& config() { return config_; }
  const std::vector<KernelConfig>& configs() const { return kernel_configs_; }

  /// Diagnostics of the most recent multiply() call.
  const SpeckDiagnostics& last_diagnostics() const { return diagnostics_; }

  /// Launch-by-launch execution trace of the most recent multiply() call.
  const sim::LaunchTrace& last_trace() const { return trace_; }

  /// The pool this instance parallelizes host stages over: a private pool
  /// of `config().host_threads` threads when that is non-zero, else null
  /// (the stages then use the process-wide pool). Rebuilt lazily when the
  /// configured count changes.
  ThreadPool* host_pool();

  /// Per-worker kernel workspaces, owned by the instance so repeated
  /// multiplies reuse warm buffers (the zero-allocation hot path).
  WorkspacePool& workspaces() { return workspaces_; }

  /// The transparent sharded LRU plan cache behind multiply() — exposed for
  /// stats and tests. Lazily (re)built when config().plan_cache_shards or
  /// plan_cache_limit_bytes change.
  PlanCache& plan_cache();

 private:
  /// The full pipeline (analysis → LB → symbolic → LB → numeric → sort).
  /// When `capture` is non-null and the run succeeds, the plan is filled
  /// with the frozen structure state and replay program. A non-null
  /// `cancel` token is polled at every stage boundary and throws
  /// DeadlineExceeded when expired. `steal_pattern` is a promise from the
  /// caller that the returned result will be discarded: the capture block
  /// then moves the C pattern arrays out of result.c into the plan instead
  /// of copying them (result.c comes back empty).
  SpGemmResult multiply_full(const Csr& a, const Csr& b, SpeckPlan* capture,
                             const CancelToken* cancel = nullptr,
                             bool steal_pattern = false);

  /// The estimated-planning pipeline (sampled estimator → LB → estimated
  /// numeric merge with exact fallback; the symbolic pass is skipped
  /// entirely). Entered from multiply_full when the resolved
  /// SpeckConfig::planning is kEstimated; `ctx` and `memory` carry the
  /// preamble state multiply_full already set up. Results are bit-identical
  /// to the exact pipeline (docs/performance.md "Estimated planning").
  SpGemmResult multiply_estimated(const Csr& a, const Csr& b,
                                  SpeckPlan* capture, const CancelToken* cancel,
                                  KernelContext& ctx, sim::MemoryTracker& memory,
                                  bool steal_pattern);

  /// The masked pipeline (analysis → numeric LB off min(products,
  /// mask_row_nnz) → masked numeric; no symbolic pass, no sorting — mask
  /// rows are ascending so the output is born sorted). Same capture /
  /// cancel / steal_pattern contract as multiply_full.
  SpGemmResult multiply_masked_full(const Csr& a, const Csr& b,
                                    const Csr& mask, SpeckPlan* capture,
                                    const CancelToken* cancel = nullptr,
                                    bool steal_pattern = false);

  /// The values-only replay of a verified plan (legacy single-caller form:
  /// writes this instance's diagnostics and trace).
  SpGemmResult replay_plan(const SpeckPlan& plan, const Csr& a, const Csr& b);

  /// Shared replay core. Const and member-state-free: diagnostics and the
  /// launch trace are only written through the out-params, values go to
  /// `*external` when non-null (caller-owned, result.c left empty) or to a
  /// freshly built result.c otherwise. A 1-thread `pool` runs the
  /// allocation-free serial replay kernel.
  SpGemmResult replay_plan_into(const SpeckPlan& plan, const Csr& a,
                                const Csr& b, ThreadPool* pool,
                                SpeckDiagnostics* diag, sim::LaunchTrace* trace,
                                std::span<value_t>* external) const;

  /// True when the structure is small enough for the transparent cache.
  bool plan_worth_caching(const Csr& a, const Csr& b) const;

  /// Refreshes the per-team B replicas for numa_local_b runs: one
  /// byte-identical copy of `b` per partition, copied by the owning team's
  /// lanes so the pages are first-touched locally. Replicas persist across
  /// multiplies and copy-assignment reuses their capacity, so repeated
  /// multiplies stay allocation-free in the steady state.
  void ensure_team_b(const Csr& b, const KernelContext& ctx);

  SpeckConfig config_;
  std::vector<KernelConfig> kernel_configs_;
  SpeckDiagnostics diagnostics_;
  sim::LaunchTrace trace_;
  std::unique_ptr<ThreadPool> pool_;
  WorkspacePool workspaces_;
  /// Partition-local workspace pools of the two-level executor
  /// (config().partitions > 1); grows monotonically like workspaces_.
  PartitionWorkspaces team_workspaces_;
  /// Per-team B replicas (config().numa_local_b); see ensure_team_b.
  std::vector<Csr> team_b_;

  /// Transparent plan cache (config().plan_cache): a structure is planned
  /// once it shows up twice in a row; the plan then lives in a sharded LRU
  /// cache keyed by full fingerprint, so multiple patterns stay warm at
  /// once under the byte budget.
  PlanFingerprint last_structure_;
  bool has_last_structure_ = false;
  std::unique_ptr<PlanCache> transparent_cache_;
};

/// Symbolic-only estimate: the exact NNZ of C = A*B plus the simulated cost
/// of obtaining it (analysis + symbolic pass). Lets applications size output
/// buffers or decide between algorithms before committing to the numeric
/// work (the same information spECK's numeric load balancer consumes).
struct SymbolicEstimate {
  std::vector<index_t> row_nnz;
  offset_t c_nnz = 0;
  offset_t products = 0;
  double seconds = 0.0;
};

SymbolicEstimate symbolic_estimate(Speck& speck, const Csr& a, const Csr& b);

}  // namespace speck
