// Public entry point: the spECK SpGEMM algorithm (paper §4, Fig. 2).
//
// Pipeline: row analysis -> (conditional) global load balancing -> symbolic
// SpGEMM -> (conditional) global load balancing -> numeric SpGEMM -> sorting.
#pragma once

#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"
#include "ref/spgemm_api.h"
#include "speck/config.h"
#include "speck/kernels.h"
#include "speck/plan.h"

namespace speck {

class Speck final : public SpGemmAlgorithm {
 public:
  Speck(sim::DeviceSpec device, sim::CostModel model, SpeckConfig config = {})
      : SpGemmAlgorithm(device, model),
        config_(config),
        kernel_configs_(kernel_configs(device)) {
    validate(config_);
  }

  std::string name() const override { return "speck"; }
  SpGemmResult multiply(const Csr& a, const Csr& b) override;

  /// Outcome of the non-throwing entry point. `status.ok()` implies
  /// `result` carries a successful multiplication; otherwise `result` is
  /// whatever partial state was produced (timeline, failure_reason) and
  /// `status` classifies the failure.
  struct TryMultiplyOutcome {
    Status status;
    SpGemmResult result;
    bool ok() const { return status.ok(); }
  };

  /// Non-throwing variant of multiply(): every exception the pipeline can
  /// raise — BadInput from validation, ResourceExhausted from checked
  /// arithmetic, InternalError from invariant checks — is caught and mapped
  /// to a Status; structured SpGemmResult failures (simulated OOM,
  /// unsupported shapes) are mapped likewise.
  TryMultiplyOutcome try_multiply(const Csr& a, const Csr& b) noexcept;

  /// Runs the full pipeline once and freezes everything structure-derived
  /// into a SpeckPlan (docs/performance.md "Structure reuse"). The full
  /// run's result — including the computed C with the inputs' current
  /// values — is stored into `*full_result` when non-null. On failure the
  /// returned plan has `complete == false` and multiply_with_plan falls
  /// back to the full pipeline.
  SpeckPlan plan(const Csr& a, const Csr& b, SpGemmResult* full_result = nullptr);

  /// Values-only multiply against a frozen plan: skips row analysis, global
  /// load balancing, the symbolic pass and sorting, and writes values
  /// straight into the plan's cached C pattern (simulated seconds cover
  /// only the numeric + sorting stages). The plan's fingerprint is verified
  /// first — the O(nnz) pattern-hash check under `validate_inputs`, the
  /// O(1) dims/nnz/config check otherwise; a mismatched or incomplete plan
  /// falls back to the full pipeline and sets
  /// `last_diagnostics().plan_fallback`.
  SpGemmResult multiply_with_plan(const SpeckPlan& plan, const Csr& a,
                                  const Csr& b);

  const SpeckConfig& config() const { return config_; }
  SpeckConfig& config() { return config_; }
  const std::vector<KernelConfig>& configs() const { return kernel_configs_; }

  /// Diagnostics of the most recent multiply() call.
  const SpeckDiagnostics& last_diagnostics() const { return diagnostics_; }

  /// Launch-by-launch execution trace of the most recent multiply() call.
  const sim::LaunchTrace& last_trace() const { return trace_; }

  /// The pool this instance parallelizes host stages over: a private pool
  /// of `config().host_threads` threads when that is non-zero, else null
  /// (the stages then use the process-wide pool). Rebuilt lazily when the
  /// configured count changes.
  ThreadPool* host_pool();

  /// Per-worker kernel workspaces, owned by the instance so repeated
  /// multiplies reuse warm buffers (the zero-allocation hot path).
  WorkspacePool& workspaces() { return workspaces_; }

 private:
  /// The full pipeline (analysis → LB → symbolic → LB → numeric → sort).
  /// When `capture` is non-null and the run succeeds, the plan is filled
  /// with the frozen structure state and replay program.
  SpGemmResult multiply_full(const Csr& a, const Csr& b, SpeckPlan* capture);

  /// The values-only replay of a verified plan.
  SpGemmResult replay_plan(const SpeckPlan& plan, const Csr& a, const Csr& b);

  /// True when the structure is small enough for the transparent cache.
  bool plan_worth_caching(const Csr& a, const Csr& b) const;

  SpeckConfig config_;
  std::vector<KernelConfig> kernel_configs_;
  SpeckDiagnostics diagnostics_;
  sim::LaunchTrace trace_;
  std::unique_ptr<ThreadPool> pool_;
  WorkspacePool workspaces_;

  /// Transparent single-slot plan cache (config().plan_cache): the
  /// fingerprint of the previous multiply's structure, and the plan built
  /// once the same structure shows up twice in a row.
  PlanFingerprint last_structure_;
  bool has_last_structure_ = false;
  std::unique_ptr<SpeckPlan> cached_plan_;
};

/// Symbolic-only estimate: the exact NNZ of C = A*B plus the simulated cost
/// of obtaining it (analysis + symbolic pass). Lets applications size output
/// buffers or decide between algorithms before committing to the numeric
/// work (the same information spECK's numeric load balancer consumes).
struct SymbolicEstimate {
  std::vector<index_t> row_nnz;
  offset_t c_nnz = 0;
  offset_t products = 0;
  double seconds = 0.0;
};

SymbolicEstimate symbolic_estimate(Speck& speck, const Csr& a, const Csr& b);

}  // namespace speck
