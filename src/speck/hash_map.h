// Emulation of the scratchpad hash map with linear probing (paper §4.3,
// Fig. 4). The map computes exact contents while counting probes so that
// the cost model charges real collision behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace speck {

/// Builds the compound key: 5 bits of local row index, 27 bits of column.
inline key64_t compound_key(int local_row, index_t col, bool wide_keys) {
  if (wide_keys) {
    return (static_cast<key64_t>(static_cast<std::uint32_t>(local_row)) << 32) |
           static_cast<std::uint32_t>(col);
  }
  return (static_cast<key64_t>(static_cast<std::uint32_t>(local_row)) << 27) |
         static_cast<std::uint32_t>(col);
}

inline index_t key_column(key64_t key, bool wide_keys) {
  return wide_keys ? static_cast<index_t>(key & 0xFFFFFFFFull)
                   : static_cast<index_t>(key & ((key64_t{1} << 27) - 1));
}

inline int key_local_row(key64_t key, bool wide_keys) {
  return wide_keys ? static_cast<int>(key >> 32) : static_cast<int>(key >> 27);
}

/// Open-addressing hash map with linear probing, modelling a scratchpad
/// array. Tracks the number of probes performed so the simulated cost
/// reflects the actual fill rate.
///
/// Slots are epoch-tagged: a slot is occupied only when its epoch matches
/// the map's current epoch, so `reset()` and `reconfigure()` invalidate the
/// whole contents by bumping one counter — O(1) instead of an O(capacity)
/// refill. This is what lets a per-worker workspace reuse one map across
/// every block it executes without paying a clear between blocks. Probe
/// sequences depend only on the logical capacity, never on the size of the
/// retained slot storage, so a reused map behaves bit-identically to a
/// freshly constructed one.
class DeviceHashMap {
 public:
  /// Empty map; `reconfigure()` must run before any insert.
  DeviceHashMap() = default;
  explicit DeviceHashMap(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool full() const { return size_ == capacity_; }
  double fill_rate() const {
    return capacity_ == 0 ? 1.0 : static_cast<double>(size_) / static_cast<double>(capacity_);
  }

  /// Total linear-probing steps performed since construction/reconfigure.
  std::size_t probes() const { return probes_; }

  /// Symbolic insert: adds the key if absent. Returns true when the key was
  /// new. Returns false with `overflow()` set when the map is full and the
  /// key absent.
  bool insert_key(key64_t key);

  /// Numeric insert: accumulates `value` into the slot for `key`,
  /// creating it if needed. Returns false on overflow.
  bool accumulate(key64_t key, value_t value);

  bool overflowed() const { return overflowed_; }

  /// Extraction: occupied (key, value) pairs in slot order (unsorted).
  struct Entry {
    key64_t key;
    value_t value;
  };
  std::vector<Entry> extract() const;

  /// Appends the occupied (key, value) pairs to `out` in slot order without
  /// allocating beyond `out`'s own growth.
  void extract_into(std::vector<Entry>& out) const;

  /// Visits every occupied slot in slot order with fn(key, value) — the
  /// in-place alternative to extract() when no copy is needed.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      const Slot& s = slots_[i];
      if (s.epoch == epoch_) fn(s.key, s.value);
    }
  }

  /// Clears contents (keeps capacity and the probe counter); models the
  /// reset before moving entries to a global map. O(1) via the epoch tag.
  void reset();

  /// Re-targets the map for a new block: sets the logical capacity (growing
  /// the retained slot storage only when needed), clears contents and
  /// zeroes the probe counter. O(1) when the storage already fits.
  void reconfigure(std::size_t capacity);

 private:
  struct Slot {
    key64_t key = 0;
    value_t value = 0.0;
    std::uint64_t epoch = 0;  ///< occupied iff equal to the map's epoch
  };

  /// Multiplicative hash (paper: index times a prime, modulo capacity).
  std::size_t hash(key64_t key) const {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) % capacity_);
  }

  std::vector<Slot> slots_;
  std::size_t capacity_ = 0;  ///< logical capacity; <= slots_.size()
  std::uint64_t epoch_ = 1;   ///< slots start at 0, i.e. empty
  std::size_t size_ = 0;
  std::size_t probes_ = 0;
  bool overflowed_ = false;
};

}  // namespace speck
