// Emulation of the scratchpad hash map with linear probing (paper §4.3,
// Fig. 4). The map computes exact contents while counting probes so that
// the cost model charges real collision behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace speck {

/// Builds the compound key: 5 bits of local row index, 27 bits of column.
inline key64_t compound_key(int local_row, index_t col, bool wide_keys) {
  if (wide_keys) {
    return (static_cast<key64_t>(static_cast<std::uint32_t>(local_row)) << 32) |
           static_cast<std::uint32_t>(col);
  }
  return (static_cast<key64_t>(static_cast<std::uint32_t>(local_row)) << 27) |
         static_cast<std::uint32_t>(col);
}

inline index_t key_column(key64_t key, bool wide_keys) {
  return wide_keys ? static_cast<index_t>(key & 0xFFFFFFFFull)
                   : static_cast<index_t>(key & ((key64_t{1} << 27) - 1));
}

inline int key_local_row(key64_t key, bool wide_keys) {
  return wide_keys ? static_cast<int>(key >> 32) : static_cast<int>(key >> 27);
}

/// Open-addressing hash map with linear probing. Capacity is fixed at
/// construction (it models a scratchpad array). Tracks the number of probes
/// performed so the simulated cost reflects the actual fill rate.
class DeviceHashMap {
 public:
  explicit DeviceHashMap(std::size_t capacity);

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool full() const { return size_ == capacity(); }
  double fill_rate() const {
    return capacity() == 0 ? 1.0 : static_cast<double>(size_) / static_cast<double>(capacity());
  }

  /// Total linear-probing steps performed since construction/reset.
  std::size_t probes() const { return probes_; }

  /// Symbolic insert: adds the key if absent. Returns true when the key was
  /// new. Returns false with `overflow()` set when the map is full and the
  /// key absent.
  bool insert_key(key64_t key);

  /// Numeric insert: accumulates `value` into the slot for `key`,
  /// creating it if needed. Returns false on overflow.
  bool accumulate(key64_t key, value_t value);

  bool overflowed() const { return overflowed_; }

  /// Extraction: occupied (key, value) pairs in slot order (unsorted).
  struct Entry {
    key64_t key;
    value_t value;
  };
  std::vector<Entry> extract() const;

  /// Clears contents (keeps capacity); models the reset before moving
  /// entries to a global map.
  void reset();

 private:
  struct Slot {
    key64_t key = kEmpty;
    value_t value = 0.0;
  };
  static constexpr key64_t kEmpty = ~key64_t{0};

  /// Multiplicative hash (paper: index times a prime, modulo capacity).
  std::size_t hash(key64_t key) const {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) % slots_.size());
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t probes_ = 0;
  bool overflowed_ = false;
};

}  // namespace speck
