// Emulation of the scratchpad hash map with linear probing (paper §4.3,
// Fig. 4). The map computes exact contents while counting probes so that
// the cost model charges real collision behaviour.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/simd.h"
#include "common/types.h"

namespace speck {

/// Builds the compound key: 5 bits of local row index, 27 bits of column.
inline key64_t compound_key(int local_row, index_t col, bool wide_keys) {
  if (wide_keys) {
    return (static_cast<key64_t>(static_cast<std::uint32_t>(local_row)) << 32) |
           static_cast<std::uint32_t>(col);
  }
  return (static_cast<key64_t>(static_cast<std::uint32_t>(local_row)) << 27) |
         static_cast<std::uint32_t>(col);
}

inline index_t key_column(key64_t key, bool wide_keys) {
  return wide_keys ? static_cast<index_t>(key & 0xFFFFFFFFull)
                   : static_cast<index_t>(key & ((key64_t{1} << 27) - 1));
}

inline int key_local_row(key64_t key, bool wide_keys) {
  return wide_keys ? static_cast<int>(key >> 32) : static_cast<int>(key >> 27);
}

/// Open-addressing hash map with linear probing, modelling a scratchpad
/// array. Tracks the number of probes performed so the simulated cost
/// reflects the actual fill rate.
///
/// Layout: Swiss-table-style control bytes over SoA key/value arrays. Each
/// slot owns one control byte — kEmpty, or a 7-bit tag derived from the
/// key's hash — grouped into 16-byte cache-line-friendly groups, so the SIMD
/// backends compare a whole group per instruction while the scalar backend
/// walks the same bytes one at a time. Both backends visit the *same*
/// logical probe sequence (multiplicative hash modulo the logical capacity,
/// +1 linear steps) and account the same probe count — the number of slots a
/// one-at-a-time scan would visit — so contents, insertion order, and every
/// PassStats counter are bit-identical across backends.
///
/// Groups are epoch-tagged: a group's control bytes are only meaningful when
/// its epoch matches the map's, and are lazily re-materialized (filled with
/// kEmpty) on first touch after a reset. `reset()` and `reconfigure()`
/// therefore invalidate the whole contents by bumping one counter — O(1)
/// instead of an O(capacity) refill — which is what lets a per-worker
/// workspace reuse one map across every block it executes. Probe sequences
/// depend only on the logical capacity, never on the size of the retained
/// slot storage, so a reused map behaves bit-identically to a freshly
/// constructed one.
class DeviceHashMap {
 public:
  /// Empty map; `reconfigure()` must run before any insert.
  DeviceHashMap() = default;
  explicit DeviceHashMap(std::size_t capacity) { reconfigure(capacity); }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool full() const { return size_ == capacity_; }
  double fill_rate() const {
    return capacity_ == 0 ? 1.0 : static_cast<double>(size_) / static_cast<double>(capacity_);
  }

  /// Total linear-probing steps performed since construction/reconfigure.
  std::size_t probes() const { return probes_; }

  /// SIMD backend used by the probe loops (must be resolved, never kAuto).
  /// The backend only changes how fast a probe runs, never its outcome.
  void set_backend(SimdBackend backend) { backend_ = backend; }
  SimdBackend backend() const { return backend_; }

  /// Symbolic insert: adds the key if absent. Returns true when the key was
  /// new. Returns false with `overflow()` set when the map is full and the
  /// key absent.
  bool insert_key(key64_t key);

  /// Numeric insert: accumulates `value` into the slot for `key`,
  /// creating it if needed. Returns false on overflow.
  bool accumulate(key64_t key, value_t value);

  /// Masked-insert mode: pre-seeds `key` as an admissible slot (value zero,
  /// untouched). Same probe, tag and overflow semantics as insert_key, so
  /// seeded maps behave exactly like symbolically-built ones.
  bool seed_key(key64_t key);

  /// Masked accumulate: adds into `key`'s slot only when it was seeded,
  /// marking it touched. A miss (non-mask column) is a no-op — no slot is
  /// claimed — but its probe walk is still counted like any other.
  bool accumulate_if_present(key64_t key, value_t value);

  /// Reads a seeded slot back: true (with the accumulated sum in `*value`)
  /// iff the slot was touched since seeding. Untouched seeds and absent
  /// keys both report false. The probe walk is counted like any other.
  bool lookup_touched(key64_t key, value_t* value);

  bool overflowed() const { return overflowed_; }

  /// Extraction: occupied (key, value) pairs in slot order (unsorted).
  struct Entry {
    key64_t key;
    value_t value;
  };
  std::vector<Entry> extract() const;

  /// Appends the occupied (key, value) pairs to `out` in slot order without
  /// allocating beyond `out`'s own growth.
  void extract_into(std::vector<Entry>& out) const;

  /// Visits every occupied slot in slot order with fn(key, value) — the
  /// in-place alternative to extract() when no copy is needed. Whole stale
  /// groups (not touched since the last reset) are skipped 16 slots at a
  /// time. The vector backends reduce each group to one occupied-lane mask
  /// and walk its set bits in ascending lane order, so the visit order is
  /// the same slot order as the scalar scan (sentinel bytes past the
  /// logical capacity carry the high control bit and never appear in the
  /// mask, so partial tail groups need no special casing).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (backend_ != SimdBackend::kScalar) {
      for (std::size_t g = 0; g < groups_; ++g) {
        if (group_epoch_[g] != epoch_) continue;
        const std::size_t base = g * simd::kGroupWidth;
        std::uint32_t occ = simd::occupied_mask16(ctrl_.data() + base, backend_);
        while (occ != 0) {
          const unsigned p = simd::lowest_bit(occ);
          fn(keys_[base + p], vals_[base + p]);
          occ &= occ - 1;
        }
      }
      return;
    }
    for (std::size_t g = 0; g < groups_; ++g) {
      if (group_epoch_[g] != epoch_) continue;
      const std::size_t base = g * simd::kGroupWidth;
      const std::size_t end = std::min(capacity_, base + simd::kGroupWidth);
      for (std::size_t i = base; i < end; ++i) {
        if (ctrl_[i] < kCtrlEmpty) fn(keys_[i], vals_[i]);
      }
    }
  }

  /// Clears contents (keeps capacity and the probe counter); models the
  /// reset before moving entries to a global map. O(1) via the epoch tag.
  void reset();

  /// Re-targets the map for a new block: sets the logical capacity (growing
  /// the retained slot storage only when needed), clears contents and
  /// zeroes the probe counter. O(1) when the storage already fits.
  void reconfigure(std::size_t capacity);

 private:
  /// Control-byte values: occupied slots carry a 7-bit tag (< 0x80) derived
  /// from the key's hash; kCtrlEmpty marks a free slot; kCtrlSentinel pads
  /// the tail of the last group past the logical capacity (never empty,
  /// never matching, so group scans skip it without extra branches).
  static constexpr std::uint8_t kCtrlEmpty = 0x80;
  static constexpr std::uint8_t kCtrlSentinel = 0xFF;
  static constexpr std::uint64_t kHashPrime = 0x9E3779B97F4A7C15ull;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct Probe {
    std::size_t index;  ///< slot of the match or first empty; kNoSlot: overflow
    bool found;         ///< true when the key is already present
  };

  /// Multiplicative hash (paper: index times a prime, modulo capacity).
  std::size_t hash_slot(std::uint64_t h) const {
    return static_cast<std::size_t>(h % capacity_);
  }
  /// 7-bit control tag from the hash's top bits (always < kCtrlEmpty).
  static std::uint8_t hash_tag(std::uint64_t h) {
    return static_cast<std::uint8_t>(h >> 57);
  }

  /// Lazily fills a group's control bytes with kEmpty (and sentinels past
  /// the logical capacity) on first touch after a reset.
  void materialize_group(std::size_t g) {
    if (group_epoch_[g] == epoch_) return;
    std::uint8_t* gp = ctrl_.data() + g * simd::kGroupWidth;
    std::memset(gp, kCtrlEmpty, simd::kGroupWidth);
    const std::size_t base = g * simd::kGroupWidth;
    if (base + simd::kGroupWidth > capacity_) {
      std::memset(gp + (capacity_ - base), kCtrlSentinel,
                  base + simd::kGroupWidth - capacity_);
    }
    group_epoch_[g] = epoch_;
  }

  Probe probe(key64_t key, std::size_t start, std::uint8_t tag) {
    return backend_ == SimdBackend::kScalar ? probe_scalar(key, start, tag)
                                            : probe_groups(key, start, tag);
  }
  Probe probe_scalar(key64_t key, std::size_t start, std::uint8_t tag);
  Probe probe_groups(key64_t key, std::size_t start, std::uint8_t tag);

  std::vector<std::uint8_t> ctrl_;        ///< one control byte per slot
  std::vector<std::uint64_t> group_epoch_;  ///< ctrl valid iff == epoch_
  std::vector<key64_t> keys_;
  std::vector<value_t> vals_;
  /// Masked mode only: 1 iff the seeded slot has been accumulated into.
  /// Valid only for slots written by seed_key in the current epoch, so no
  /// epoch machinery of its own is needed.
  std::vector<std::uint8_t> touched_;
  std::size_t capacity_ = 0;  ///< logical capacity; <= retained storage
  std::size_t groups_ = 0;    ///< ceil(capacity_ / kGroupWidth)
  std::uint64_t epoch_ = 1;   ///< group epochs start at 0, i.e. stale
  std::size_t size_ = 0;
  std::size_t probes_ = 0;
  bool overflowed_ = false;
  SimdBackend backend_ = SimdBackend::kScalar;
};

}  // namespace speck
