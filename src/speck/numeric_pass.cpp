#include "speck/kernels.h"

#include <algorithm>
#include <optional>

#include "common/alloc_counter.h"
#include "common/bit_utils.h"
#include "common/prefix_sum.h"
#include "common/sorting.h"
#include "speck/dense_acc.h"
#include "speck/hash_acc.h"
#include "speck/kernels_detail.h"
#include "speck/local_lb.h"

namespace speck {

using detail::block_stats;
using detail::charge_hash_activity;
using detail::charge_row_sweep;
using detail::global_pool_bytes;

RowMethod choose_numeric_method(const KernelContext& ctx, index_t row,
                                index_t row_nnz, bool merged_block,
                                int config_index) {
  const auto r = static_cast<std::size_t>(row);
  if (ctx.cfg->features.direct_rows && ctx.a->row_length(row) == 1) {
    return RowMethod::kDirect;
  }
  if (merged_block || !ctx.cfg->features.dense_accumulation || row_nnz == 0) {
    return RowMethod::kHash;
  }
  // Rows needing the largest kernel always accumulate densely: the largest
  // hash kernel would require slow global sorting (paper §4.3).
  if (config_index == static_cast<int>(ctx.configs->size()) - 1) {
    return RowMethod::kDense;
  }
  const double range = static_cast<double>(ctx.analysis->col_max[r]) -
                       static_cast<double>(ctx.analysis->col_min[r]) + 1.0;
  const double density = static_cast<double>(row_nnz) / range;
  return density >= ctx.cfg->dense_density_threshold ? RowMethod::kDense
                                                     : RowMethod::kHash;
}

namespace {

/// Per-block contribution to the post-pass radix sort (merged serially in
/// plan order; sums and maxima are order-independent anyway).
struct RadixContribution {
  offset_t elements = 0;
  index_t max_col = 0;
};

/// Executes one numeric block: writes the block's rows of C into their
/// preallocated output slots (disjoint across blocks — no atomics), counts
/// methods into `stats` and returns the block's simulated cost. All
/// transient state lives in the worker's `ws` — after warm-up this function
/// performs no heap allocations.
sim::BlockCost run_numeric_block(const KernelContext& ctx,
                                 const sim::Launch& launch,
                                 const KernelConfig& config, int config_index,
                                 bool largest_sorts_via_radix,
                                 std::span<const index_t> rows,
                                 std::span<const index_t> row_nnz,
                                 const std::vector<offset_t>& offsets,
                                 std::vector<index_t>& out_cols,
                                 std::vector<value_t>& out_vals,
                                 PassStats& stats, RadixContribution& radix,
                                 KernelWorkspace& ws) {
  const bool merged = rows.size() > 1;
  auto cost = launch.make_block(config.threads, config.scratchpad_bytes);
  const BlockRowStats row_stats = block_stats(ctx, rows);
  const LocalLbDecision lb =
      choose_group_size(config.threads, row_stats, ctx.cfg->features);

  bool all_direct = ctx.cfg->features.direct_rows;
  for (const index_t r : rows) all_direct = all_direct && ctx.a->row_length(r) == 1;

  if (all_direct && !rows.empty()) {
    // Direct referencing: stream each referenced B row to the output,
    // scaled by the single A value. Reads are one segment per row;
    // writes land contiguously in C across the block's rows (CSR order),
    // i.e. one coalesced stream.
    std::size_t total_words = 0;
    std::size_t segments = 0;
    for (const index_t r : rows) {
      const auto a_cols = ctx.a->row_cols(r);
      if (a_cols.empty()) continue;
      const value_t av = ctx.a->row_vals(r).front();
      const index_t k = a_cols.front();
      const auto b_cols = ctx.b->row_cols(k);
      const auto b_vals = ctx.b->row_vals(k);
      auto cursor = static_cast<std::size_t>(offsets[static_cast<std::size_t>(r)]);
      for (std::size_t i = 0; i < b_cols.size(); ++i) {
        out_cols[cursor] = b_cols[i];
        out_vals[cursor] = av * b_vals[i];
        ++cursor;
      }
      total_words += b_cols.size();
      ++segments;
      ++stats.direct_rows;
    }
    const double cache = sim::reuse_cache_factor(*ctx.device, ctx.b->byte_size());
    cost.global_segmented(total_words, segments, cache);       // B columns
    cost.global_segmented(total_words * 2, segments, cache);   // B values
    cost.global_coalesced(total_words);                        // C columns
    cost.global_coalesced64(total_words);                      // C values
    cost.lockstep(static_cast<double>(
        ceil_div<std::size_t>(std::max<std::size_t>(total_words, 1),
                              static_cast<std::size_t>(config.threads))));
    return cost;
  }

  const RowMethod single_method =
      rows.empty() ? RowMethod::kHash
                   : choose_numeric_method(
                         ctx, rows.front(),
                         row_nnz[static_cast<std::size_t>(rows.front())], merged,
                         config_index);

  if (!merged && single_method == RowMethod::kDense) {
    const index_t r = rows.front();
    const auto result = dense_accumulate_row(
        *ctx.b, ctx.a->row_cols(r), ctx.a->row_vals(r),
        ctx.analysis->col_min[static_cast<std::size_t>(r)],
        ctx.analysis->col_max[static_cast<std::size_t>(r)],
        ctx.effective_capacity(config.dense_numeric_capacity()),
        /*numeric=*/true, ws.dense(), ctx.simd);
    SPECK_ASSERT(static_cast<index_t>(result.cols.size()) ==
                     row_nnz[static_cast<std::size_t>(r)],
                 "dense numeric row count disagrees with symbolic pass");
    auto cursor = static_cast<std::size_t>(offsets[static_cast<std::size_t>(r)]);
    for (std::size_t i = 0; i < result.cols.size(); ++i) {
      out_cols[cursor] = result.cols[i];
      out_vals[cursor] = result.vals[i];
      ++cursor;
    }
    ++stats.dense_rows;
    charge_row_sweep(cost, ctx, rows, lb.group_size, /*numeric=*/true, ws);
    cost.smem(2.0 * static_cast<double>(result.element_touches));
    cost.issued(static_cast<double>(result.element_touches), 2.0);
    cost.issued(static_cast<double>(result.cells_scanned));
    cost.smem(static_cast<double>(result.cells_scanned));
    // Per-pass compaction prefix sum + output write.
    cost.lockstep(static_cast<double>(result.passes) *
                  log2_pow2(static_cast<std::uint64_t>(config.threads)));
    cost.global_coalesced(result.cols.size());
    cost.global_coalesced64(result.vals.size());
    return cost;
  }

  // Hash path with values.
  NumericHashAccumulator& acc = ws.numeric_acc(
      ctx.effective_capacity(config.numeric_hash_capacity()), ctx.faults,
      ctx.simd);
  const bool prefetch_gathers = ctx.simd != SimdBackend::kScalar;
  for (std::size_t local = 0; local < rows.size(); ++local) {
    const index_t r = rows[local];
    const auto a_cols = ctx.a->row_cols(r);
    const auto a_vals = ctx.a->row_vals(r);
    for (std::size_t i = 0; i < a_cols.size(); ++i) {
      const index_t k = a_cols[i];
      if (prefetch_gathers && i + 1 < a_cols.size()) {
        // Hide the latency of the next B-row gather behind this one's
        // accumulates; never changes what is accumulated.
        const auto next =
            static_cast<std::size_t>(ctx.b->row_offsets()[
                static_cast<std::size_t>(a_cols[i + 1])]);
        simd::prefetch(ctx.b->col_indices().data() + next);
        simd::prefetch(ctx.b->values().data() + next);
      }
      const auto b_cols = ctx.b->row_cols(k);
      const auto b_vals = ctx.b->row_vals(k);
      for (std::size_t j = 0; j < b_cols.size(); ++j) {
        acc.accumulate(compound_key(static_cast<int>(local), b_cols[j], ctx.wide_keys),
                       a_vals[i] * b_vals[j]);
      }
    }
  }
  // Extraction: counting-sort the entries into per-local-row segments
  // (replaces the former vector-of-vectors bucketing), then sort each
  // segment by key. Keys are unique, so the result does not depend on the
  // maps' iteration order.
  std::vector<DeviceHashMap::Entry>& entries = ws.entries();
  acc.extract_into(entries);
  std::vector<std::size_t>& row_start = ws.row_starts();
  row_start.assign(rows.size() + 1, 0);
  // Striped histogram build: skewed rows put long runs of identical buckets
  // in `entries`, and a single histogram then serializes on the same
  // store-to-load address. Four sub-histograms take every fourth entry and
  // are merged with a vectorized element-wise add — integer additions in a
  // fixed order, so the counts (and everything downstream) are bit-identical
  // to the single-histogram loop this replaces.
  constexpr std::size_t kHistogramStripes = 4;
  const std::size_t hist_width = rows.size() + 1;
  const auto local_row_of = [&](std::size_t e) {
    return static_cast<std::size_t>(key_local_row(entries[e].key, ctx.wide_keys));
  };
  std::vector<std::uint64_t>& stripes = ws.histogram_stripes();
  stripes.assign((kHistogramStripes - 1) * hist_width, 0);
  {
    std::size_t e = 0;
    for (; e + kHistogramStripes <= entries.size(); e += kHistogramStripes) {
      ++row_start[local_row_of(e) + 1];
      ++stripes[0 * hist_width + local_row_of(e + 1) + 1];
      ++stripes[1 * hist_width + local_row_of(e + 2) + 1];
      ++stripes[2 * hist_width + local_row_of(e + 3) + 1];
    }
    for (; e < entries.size(); ++e) ++row_start[local_row_of(e) + 1];
  }
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t));
  for (std::size_t s = 0; s + 1 < kHistogramStripes; ++s) {
    simd::add_u64(reinterpret_cast<std::uint64_t*>(row_start.data()),
                  stripes.data() + s * hist_width, hist_width, ctx.simd);
  }
  inclusive_prefix_sum(std::span<std::size_t>(row_start.data() + 1, rows.size()),
                       ctx.simd);
  std::vector<std::size_t>& row_cursor = ws.row_cursors();
  row_cursor.assign(row_start.begin(), row_start.end());
  std::vector<DeviceHashMap::Entry>& bucketed = ws.bucketed_entries();
  bucketed.resize(entries.size());
  constexpr std::size_t kScatterPrefetch = 8;
  for (std::size_t e = 0; e < entries.size(); ++e) {
    if (prefetch_gathers && e + kScatterPrefetch < entries.size()) {
      // Data-dependent scatter destination; touch the line ahead of time.
      const auto ahead = static_cast<std::size_t>(
          key_local_row(entries[e + kScatterPrefetch].key, ctx.wide_keys));
      simd::prefetch(bucketed.data() + row_cursor[ahead]);
    }
    const auto local = static_cast<std::size_t>(
        key_local_row(entries[e].key, ctx.wide_keys));
    bucketed[row_cursor[local]++] = entries[e];
  }
  for (std::size_t local = 0; local < rows.size(); ++local) {
    const index_t r = rows[local];
    const auto row_begin = bucketed.begin() +
                           static_cast<std::ptrdiff_t>(row_start[local]);
    const auto row_end = bucketed.begin() +
                         static_cast<std::ptrdiff_t>(row_start[local + 1]);
    std::sort(row_begin, row_end,
              [](const auto& x, const auto& y) { return x.key < y.key; });
    SPECK_ASSERT(static_cast<index_t>(row_end - row_begin) ==
                     row_nnz[static_cast<std::size_t>(r)],
                 "hash numeric row count disagrees with symbolic pass");
    auto cursor = static_cast<std::size_t>(offsets[static_cast<std::size_t>(r)]);
    for (auto it = row_begin; it != row_end; ++it) {
      out_cols[cursor] = key_column(it->key, ctx.wide_keys);
      out_vals[cursor] = it->value;
      ++cursor;
    }
    ++stats.hash_rows;
  }
  charge_row_sweep(cost, ctx, rows, lb.group_size, /*numeric=*/true, ws);
  charge_hash_activity(cost, acc, stats);
  const auto total_entries = static_cast<double>(entries.size());
  if (!largest_sorts_via_radix) {
    // Rank sort in scratchpad (O(n^2) issued work, paper §4.3).
    cost.issued(total_entries * total_entries);
    cost.smem(2.0 * total_entries);
  } else {
    // Compact unsorted to global memory; radix-sorted in a later pass.
    radix.elements += static_cast<offset_t>(entries.size());
    for (const auto& entry : entries) {
      radix.max_col = std::max(radix.max_col, key_column(entry.key, ctx.wide_keys));
    }
  }
  cost.issued(static_cast<double>(config.numeric_hash_capacity()));
  cost.smem(static_cast<double>(config.numeric_hash_capacity()));
  cost.global_coalesced(entries.size());
  cost.global_coalesced64(entries.size());
  return cost;
}

}  // namespace

NumericOutcome run_numeric(const KernelContext& ctx, const BinPlan& plan,
                           std::span<const index_t> row_nnz) {
  NumericOutcome out;
  out.stats.global_pool_bytes = global_pool_bytes(ctx, plan, /*symbolic=*/false);

  // Output allocation: offsets from the symbolic row counts — a widening
  // copy followed by the SIMD inclusive scan (bit-identical to the serial
  // running sum; integer addition is associative).
  const auto row_count = static_cast<std::size_t>(ctx.a->rows());
  std::vector<offset_t> offsets(row_count + 1, 0);
  simd::widen_i32_to_i64(row_nnz.data(), offsets.data() + 1, row_count,
                         ctx.simd);
  inclusive_prefix_sum(std::span<offset_t>(offsets.data() + 1, row_count),
                       ctx.simd);
  std::vector<index_t> out_cols(static_cast<std::size_t>(offsets.back()));
  std::vector<value_t> out_vals(static_cast<std::size_t>(offsets.back()));

  offset_t radix_elements = 0;
  index_t radix_max_col = 0;

  // Every block writes its rows of C into disjoint [offsets[r], offsets[r+1])
  // output slots, so the shared driver needs no synchronization beyond its
  // serial commit of costs and radix contributions.
  detail::execute_block_plan<RadixContribution>(
      ctx, plan, "numeric/", out.stats,
      [&](const KernelContext& bctx, const sim::Launch& launch,
          const KernelConfig& config, int config_index,
          std::span<const index_t> rows, PassStats& counters,
          RadixContribution& radix, KernelWorkspace& ws) {
        return run_numeric_block(bctx, launch, config, config_index,
                                 /*largest_sorts_via_radix=*/config_index > 2,
                                 rows, row_nnz, offsets, out_cols, out_vals,
                                 counters, radix, ws);
      },
      [&](const RadixContribution& radix) {
        radix_elements += radix.elements;
        radix_max_col = std::max(radix_max_col, radix.max_col);
      });

  // Device radix sort pass over the rows emitted unsorted.
  if (radix_elements > 0) {
    sim::Launch sort_launch("radix_sort", *ctx.device, *ctx.model);
    const int passes = radix_pass_count(static_cast<std::uint32_t>(radix_max_col));
    const int threads = ctx.device->max_threads_per_block;
    const auto elements_per_block = static_cast<offset_t>(threads) * 8;
    const offset_t blocks = ceil_div<offset_t>(radix_elements, elements_per_block);
    for (offset_t blk = 0; blk < blocks; ++blk) {
      const offset_t elems = std::min<offset_t>(elements_per_block,
                                                radix_elements - blk * elements_per_block);
      auto cost = sort_launch.make_block(threads, 32 * 1024);
      // Each pass reads and writes keys (32-bit) and values (64-bit).
      cost.global_coalesced(static_cast<std::size_t>(elems) * passes * 2);
      cost.global_coalesced64(static_cast<std::size_t>(elems) * passes * 2);
      cost.issued(static_cast<double>(elems) * passes, 4.0);
      cost.smem(static_cast<double>(elems) * passes * 2);
      sort_launch.add(cost);
    }
    sim::LaunchResult finished = sort_launch.finish();
    out.sorting_seconds = finished.seconds;
    if (ctx.trace != nullptr) ctx.trace->record(std::move(finished));
    out.radix_sorted_elements = radix_elements;
  }

  out.c = Csr(ctx.a->rows(), ctx.b->cols(), std::move(offsets), std::move(out_cols),
              std::move(out_vals));
  return out;
}

namespace {

/// Shared replay inner loop for rows [begin, end): walks A's and B's CSR
/// structure in build order — C row outer, A entry next, referenced B row
/// inner — so the program never stores value positions, only the packed
/// dest word per product. The (a, b) value reads are sequential per
/// segment; the only scatter is the dest slot, which is what the vector
/// backends prefetch ahead. Prefetch is a pure hint — the arithmetic and
/// its order are identical on every backend.
void replay_rows_program(const Csr& a, const Csr& b,
                         const NumericReplayProgram& program, std::size_t begin,
                         std::size_t end, std::span<value_t> out,
                         SimdBackend simd) {
  constexpr std::uint32_t kAssign = NumericReplayProgram::kAssignFirst;
  const value_t* a_vals = a.values().data();
  const value_t* b_vals = b.values().data();
  const std::uint32_t* dest = program.dest.data();
  const std::span<const offset_t> a_offsets = a.row_offsets();
  const std::span<const offset_t> b_offsets = b.row_offsets();
  const index_t* a_cols = a.col_indices().data();
  constexpr std::size_t kPrefetchDistance = 16;
  const bool prefetch_slots = simd != SimdBackend::kScalar;
  const auto op_limit = static_cast<std::size_t>(program.row_op_start[end]);
  auto op = static_cast<std::size_t>(program.row_op_start[begin]);
  for (std::size_t r = begin; r < end; ++r) {
    const auto row_begin = static_cast<std::size_t>(a_offsets[r]);
    const auto row_end = static_cast<std::size_t>(a_offsets[r + 1]);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const value_t av = a_vals[i];
      const auto k = static_cast<std::size_t>(a_cols[i]);
      const auto seg_end = static_cast<std::size_t>(b_offsets[k + 1]);
      for (auto bp = static_cast<std::size_t>(b_offsets[k]); bp < seg_end;
           ++bp, ++op) {
        if (prefetch_slots && op + kPrefetchDistance < op_limit) {
          simd::prefetch(out.data() +
                         (dest[op + kPrefetchDistance] & ~kAssign));
        }
        const value_t product = av * b_vals[bp];
        const std::uint32_t d = dest[op];
        value_t& slot = out[d & ~kAssign];
        slot = (d & kAssign) != 0 ? product : slot + product;
      }
    }
  }
}

/// Masked variant of replay_rows_program: the same CSR walk, but dest words
/// may be NumericReplayProgram::kSkip (product's B column outside the frozen
/// masked C pattern — dropped) and never carry kAssignFirst (the caller
/// zero-fills `out`, so pure adds reproduce the masked kernels' 0.0 + p
/// first-touch convention). Kept separate so the unmasked loop stays
/// branch-free.
void replay_rows_program_masked(const Csr& a, const Csr& b,
                                const NumericReplayProgram& program,
                                std::size_t begin, std::size_t end,
                                std::span<value_t> out, SimdBackend simd) {
  constexpr std::uint32_t kSkip = NumericReplayProgram::kSkip;
  const value_t* a_vals = a.values().data();
  const value_t* b_vals = b.values().data();
  const std::uint32_t* dest = program.dest.data();
  const std::span<const offset_t> a_offsets = a.row_offsets();
  const std::span<const offset_t> b_offsets = b.row_offsets();
  const index_t* a_cols = a.col_indices().data();
  constexpr std::size_t kPrefetchDistance = 16;
  const bool prefetch_slots = simd != SimdBackend::kScalar;
  const auto op_limit = static_cast<std::size_t>(program.row_op_start[end]);
  auto op = static_cast<std::size_t>(program.row_op_start[begin]);
  for (std::size_t r = begin; r < end; ++r) {
    const auto row_begin = static_cast<std::size_t>(a_offsets[r]);
    const auto row_end = static_cast<std::size_t>(a_offsets[r + 1]);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const value_t av = a_vals[i];
      const auto k = static_cast<std::size_t>(a_cols[i]);
      const auto seg_end = static_cast<std::size_t>(b_offsets[k + 1]);
      for (auto bp = static_cast<std::size_t>(b_offsets[k]); bp < seg_end;
           ++bp, ++op) {
        if (prefetch_slots && op + kPrefetchDistance < op_limit &&
            dest[op + kPrefetchDistance] != kSkip) {
          simd::prefetch(out.data() + dest[op + kPrefetchDistance]);
        }
        const std::uint32_t d = dest[op];
        if (d == kSkip) continue;
        out[d] += av * b_vals[bp];
      }
    }
  }
}

}  // namespace

std::size_t replay_numeric_values(const Csr& a, const Csr& b,
                                  const NumericReplayProgram& program,
                                  ThreadPool* pool, std::span<value_t> out,
                                  SimdBackend simd) {
  const std::size_t rows =
      program.row_op_start.empty() ? 0 : program.row_op_start.size() - 1;
  if (rows == 0) return 0;

  // Fixed row chunking — like the block passes, boundaries are a pure
  // function of the row count, so the replay is bit-identical at any thread
  // count (each C row's ops run in program order on exactly one worker, and
  // rows own disjoint slots of `out`).
  constexpr std::size_t kRowChunk = 256;
  const std::size_t chunks = (rows + kRowChunk - 1) / kRowChunk;
  std::vector<std::size_t> chunk_allocs(chunks, 0);
  pool_or_global(pool).parallel_for(
      rows, kRowChunk, [&](std::size_t begin, std::size_t end, int /*worker*/) {
        const std::size_t allocs_before = detail::alloc_events_now();
        if (program.masked) {
          replay_rows_program_masked(a, b, program, begin, end, out, simd);
        } else {
          replay_rows_program(a, b, program, begin, end, out, simd);
        }
        chunk_allocs[begin / kRowChunk] +=
            detail::alloc_events_now() - allocs_before;
      });

  std::size_t total_allocs = 0;
  for (const std::size_t n : chunk_allocs) total_allocs += n;
  return total_allocs;
}

std::size_t replay_numeric_values_serial(const Csr& a, const Csr& b,
                                         const NumericReplayProgram& program,
                                         std::span<value_t> out,
                                         SimdBackend simd) {
  const std::size_t rows =
      program.row_op_start.empty() ? 0 : program.row_op_start.size() - 1;
  if (rows == 0) return 0;
  const std::size_t allocs_before = detail::alloc_events_now();
  if (program.masked) {
    replay_rows_program_masked(a, b, program, 0, rows, out, simd);
  } else {
    replay_rows_program(a, b, program, 0, rows, out, simd);
  }
  return detail::alloc_events_now() - allocs_before;
}

}  // namespace speck
