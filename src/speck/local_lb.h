// Local load balancer: chooses g, the number of threads assigned to each
// referenced row of B within a block (paper §3.2 / §4.3, Fig. 1 & 13).
#pragma once

#include "common/types.h"
#include "speck/config.h"

namespace speck {

struct LocalLbDecision {
  int group_size = 1;  ///< g: threads cooperating on one row of B
  int groups = 1;      ///< k = threads / g
};

/// Statistics of the rows of B referenced by one block, gathered from the
/// row analysis (no per-row inspection, paper §3.2).
struct BlockRowStats {
  offset_t nnz_a = 0;        ///< NZ entries of A handled by this block
  offset_t products = 0;     ///< total products => avg B row length
  index_t max_b_row_len = 0; ///< longest referenced row of B
};

/// Selects g for one block of `block_threads` threads. Implements the
/// paper's heuristic: start at the average referenced-row length, then
/// rebalance when max iterations and rows-per-group are out of proportion,
/// finally round to a power of two and ensure every group has work.
LocalLbDecision choose_group_size(int block_threads, const BlockRowStats& stats,
                                  const SpeckFeatures& features);

}  // namespace speck
