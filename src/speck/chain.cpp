#include "speck/chain.h"

#include <algorithm>

#include "matrix/matrix_stats.h"

namespace speck {

std::vector<offset_t> chain_pair_products(const std::vector<Csr>& chain) {
  std::vector<offset_t> products;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    products.push_back(count_products(chain[i], chain[i + 1]));
  }
  return products;
}

ChainResult multiply_chain(std::vector<Csr> chain, SpGemmAlgorithm& algorithm) {
  ChainResult result;
  SPECK_REQUIRE(!chain.empty(), "chain must contain at least one matrix");
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    SPECK_REQUIRE(chain[i].cols() == chain[i + 1].rows(),
                  "chain matrices must be conformable");
  }

  while (chain.size() > 1) {
    const std::vector<offset_t> pair_products = chain_pair_products(chain);
    const auto cheapest =
        std::min_element(pair_products.begin(), pair_products.end());
    const auto index =
        static_cast<std::size_t>(cheapest - pair_products.begin());

    SpGemmResult step = algorithm.multiply(chain[index], chain[index + 1]);
    if (!step.ok()) {
      result.status = step.status;
      result.failure_reason = "contracting pair " + std::to_string(index) + ": " +
                              step.failure_reason;
      return result;
    }
    result.steps.push_back(ChainStep{index, *cheapest, step.seconds});
    result.seconds += step.seconds;
    result.total_products += *cheapest;

    chain[index] = std::move(step.c);
    chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(index) + 1);
  }
  result.c = std::move(chain.front());
  return result;
}

}  // namespace speck
